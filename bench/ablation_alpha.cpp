// Ablation: sensitivity to the congestion exponent alpha of Algorithm 2
// (d(e) = exp(alpha f(e)/c(e)) - 1). The paper does not report its
// constants; this sweep documents how the calibrated default was chosen:
// smaller alpha means more, finer injections (a higher-resolution metric)
// at slightly higher metric-computation cost.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION", "flow-injection congestion exponent alpha",
                     options);

  const std::vector<double> sweep =
      options.quick ? std::vector<double>{0.05, 0.35}
                    : std::vector<double>{0.01, 0.05, 0.15, 0.35};
  for (const char* name : {"c1355", "c2670"}) {
    Hypergraph hg = MakeIscas85Like(name, options.seed);
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    std::printf("%-8s", name);
    for (double alpha : sweep) {
      HtpFlowParams params;
      params.iterations = 2;
      params.injection.alpha = alpha;
      params.seed = options.seed;
      params.threads = options.threads;
      params.budget = bench::FlowBudget(options);
      double cost = 0;
      std::size_t injections = 0;
      const double secs = bench::TimeSeconds([&] {
        const HtpFlowResult r = RunHtpFlow(hg, spec, params);
        cost = r.cost;
        injections = r.iterations[0].injections;
      });
      std::printf("  a=%.2f: %5.0f (%zu inj, %.1fs)", alpha, cost, injections,
                  secs);
    }
    std::printf("\n");
  }
  return 0;
}
