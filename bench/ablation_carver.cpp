// Ablation: find_cut implementations inside FLOW.
//
// The conclusion suggests that "more sophisticated algorithms, such as the
// one in a recent paper by Karger, may also be applied to find a minimum
// cut from a minimum spanning tree". This bench compares the paper's
// Prim-prefix find_cut against the Karger-style 1-respecting MST-split
// carver (core/mst_carver.hpp) under otherwise identical FLOW settings.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION",
                     "find_cut: Prim prefix (paper) vs MST split (Karger "
                     "future work)",
                     options);
  std::printf("%-8s %12s %12s %12s %12s\n", "circuit", "prim-prefix",
              "mst-split", "prim(s)", "mst(s)");
  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    double cost[2];
    double secs[2];
    const CarverKind kinds[2] = {CarverKind::kPrimPrefix,
                                 CarverKind::kMstSplit};
    for (int i = 0; i < 2; ++i) {
      HtpFlowParams params;
      params.iterations = options.quick ? 1 : 2;
      params.carver = kinds[i];
      params.seed = options.seed;
      params.threads = options.threads;
      params.budget = bench::FlowBudget(options);
      secs[i] = bench::TimeSeconds(
          [&] { cost[i] = RunHtpFlow(hg, spec, params).cost; });
    }
    std::printf("%-8s %12.0f %12.0f %12.2f %12.2f\n", name.c_str(), cost[0],
                cost[1], secs[0], secs[1]);
  }
  return 0;
}
