// Ablation: tree flooding (Algorithm 2) vs pair-path flooding ([10]/[17]).
//
// The paper's methodological claim against its predecessors: "Both of
// their approaches try to solve a multicommodity flow problem by
// iteratively adding or rerouting flows on the shortest paths between
// randomly selected pairs of nodes. Derived from the linear programs for
// the HTP problem, our approach is to select a node v and add flows to a
// shortest path tree S(v,k) ... that violates Constraint (5)."
//
// This bench runs both injection styles to the same (5)-feasibility
// termination and compares the injections needed, the metric objective,
// and the FLOW partition cost built from each metric.
#include "bench_common.hpp"
#include "core/build_partition.hpp"
#include "core/cost.hpp"
#include "core/flow_injection.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION",
                     "flow support: violating TREE (Algorithm 2) vs pair "
                     "PATH ([10][17] style)",
                     options);
  std::printf("%-8s | %10s %10s %8s | %10s %10s %8s\n", "circuit",
              "tree inj", "tree cost", "part", "path inj", "path cost",
              "part");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    if (name == "c6288" || name == "c7552") continue;  // keep runtime sane
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    FlowInjectionParams params;
    params.seed = options.seed;
    params.max_rounds = 600;
    if (options.budget.max_rounds != 0)
      params.max_rounds =
          std::min(params.max_rounds, options.budget.max_rounds);
    params.cancel = StartBudget(options.budget);

    const FlowInjectionResult tree = ComputeSpreadingMetric(hg, spec, params);
    const FlowInjectionResult path =
        ComputePairPathSpreadingMetric(hg, spec, params);

    auto build_cost = [&](const FlowInjectionResult& metric) {
      Rng rng(options.seed);
      double best = -1.0;
      for (int attempt = 0; attempt < 4; ++attempt) {
        const TreePartition tp = BuildPartitionTopDown(
            hg, spec, metric.metric, MetricCarver(), rng);
        const double cost = PartitionCost(tp, spec);
        if (best < 0.0 || cost < best) best = cost;
      }
      return best;
    };
    std::printf("%-8s | %10zu %10.1f %8.0f | %10zu %10.1f %8.0f%s\n",
                name.c_str(), tree.injections, tree.metric_cost,
                build_cost(tree), path.injections, path.metric_cost,
                build_cost(path), path.converged ? "" : " (!)");
  }
  std::printf("\nexpected: path flooding needs far more injections for a "
              "comparable metric (the paper's motivation for trees)\n");
  return 0;
}
