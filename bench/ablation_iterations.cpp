// Ablation: cost vs the number N of Algorithm-1 iterations.
//
// "Since both steps use some random processes, they can be iterated to find
// a best solution" (Section 3). This sweep quantifies how much the
// best-of-N outer loop buys on two circuits of different character (a
// Rent-style circuit and the c6288-like multiplier).
#include "bench_common.hpp"
#include "core/htp_flow.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION", "FLOW cost vs iteration count N", options);

  const std::vector<std::size_t> sweep =
      options.quick ? std::vector<std::size_t>{1, 4}
                    : std::vector<std::size_t>{1, 2, 4, 8};
  for (const char* name : {"c1355", "c2670"}) {
    Hypergraph hg = MakeIscas85Like(name, options.seed);
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    std::printf("%-8s", name);
    for (std::size_t n : sweep) {
      HtpFlowParams params;
      params.iterations = n;
      params.seed = options.seed;
      params.threads = options.threads;
      params.budget = bench::FlowBudget(options);
      double cost = 0;
      const double secs =
          bench::TimeSeconds([&] { cost = RunHtpFlow(hg, spec, params).cost; });
      std::printf("  N=%zu: %5.0f (%.1fs)", n, cost, secs);
    }
    std::printf("\n");
  }
  return 0;
}
