// Ablation: multiple constructions per spreading metric.
//
// The paper's conclusion: "we may improve the results from constructing
// multiple partitions for the same spreading metric without a significant
// increase on the run time." This sweep holds the metric count fixed
// (N = 2) and varies constructions_per_metric, reporting cost and runtime —
// the runtime claim holds whenever metric computation dominates.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "ABLATION",
      "constructions per metric (paper conclusion, future work)", options);

  const std::vector<std::size_t> sweep =
      options.quick ? std::vector<std::size_t>{1, 4}
                    : std::vector<std::size_t>{1, 2, 4, 8};
  for (const char* name : {"c1355", "c2670"}) {
    Hypergraph hg = MakeIscas85Like(name, options.seed);
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    std::printf("%-8s", name);
    for (std::size_t cpm : sweep) {
      HtpFlowParams params;
      params.iterations = 2;
      params.constructions_per_metric = cpm;
      params.seed = options.seed;
      params.threads = options.threads;
      params.budget = bench::FlowBudget(options);
      double cost = 0;
      const double secs =
          bench::TimeSeconds([&] { cost = RunHtpFlow(hg, spec, params).cost; });
      std::printf("  cpm=%zu: %5.0f (%.1fs)", cpm, cost, secs);
    }
    std::printf("\n");
  }
  return 0;
}
