// Ablation: the generalized FM improver vs simulated annealing as the
// Table-3 refinement stage, from identical FLOW starting points. Confirms
// that the FM-based "+" results are not an artifact of one local-search
// design (FM is expected to dominate on time and usually on quality —
// which is why [9] and the paper use it).
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/annealing.hpp"
#include "partition/htp_fm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION",
                     "refinement stage: generalized FM vs simulated "
                     "annealing (same FLOW starts)",
                     options);
  std::printf("%-8s %8s | %8s %8s | %8s %8s\n", "circuit", "FLOW", "FM+",
              "time(s)", "SA+", "time(s)");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    if (name == "c6288" && options.quick) continue;
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    HtpFlowParams fp;
    fp.iterations = options.quick ? 1 : 2;
    fp.seed = options.seed;
    fp.threads = options.threads;
    fp.budget = bench::FlowBudget(options);
    const HtpFlowResult flow = RunHtpFlow(hg, spec, fp);

    TreePartition fm_part = flow.partition;
    double fm_cost = 0;
    const double fm_time = bench::TimeSeconds([&] {
      HtpFmParams p;
      p.seed = options.seed;
      fm_cost = RefineHtpFm(fm_part, spec, p).final_cost;
    });

    TreePartition sa_part = flow.partition;
    double sa_cost = 0;
    const double sa_time = bench::TimeSeconds([&] {
      AnnealingParams p;
      p.seed = options.seed;
      sa_cost = AnnealHtp(sa_part, spec, p).final_cost;
    });

    std::printf("%-8s %8.0f | %8.0f %8.2f | %8.0f %8.2f\n", name.c_str(),
                flow.cost, fm_cost, fm_time, sa_cost, sa_time);
  }
  return 0;
}
