// Ablation: global-once vs per-subproblem spreading metrics.
//
// The paper's Algorithm 1 computes one global metric and reuses its
// restriction in every recursive subproblem. On our substrate that
// restriction misguides lower-level carves — a net cut high in the
// hierarchy keeps its full multi-level length inside one block — so the
// default recomputes the metric per subproblem (MetricScope in
// core/htp_flow.hpp). This ablation quantifies the difference, which is the
// single largest quality lever in the reproduction (see EXPERIMENTS.md).
#include "bench_common.hpp"
#include "core/htp_flow.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION",
                     "metric scope: paper-literal global metric vs "
                     "per-subproblem recomputation",
                     options);
  std::printf("%-8s %14s %14s %12s %12s\n", "circuit", "global-once",
              "per-subprob", "global(s)", "per-sub(s)");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    double cost[2];
    double secs[2];
    const MetricScope scopes[2] = {MetricScope::kGlobalOnce,
                                   MetricScope::kPerSubproblem};
    for (int i = 0; i < 2; ++i) {
      HtpFlowParams params;
      params.iterations = options.quick ? 1 : 2;
      params.metric_scope = scopes[i];
      params.seed = options.seed;
      params.threads = options.threads;
      params.budget = bench::FlowBudget(options);
      secs[i] = bench::TimeSeconds(
          [&] { cost[i] = RunHtpFlow(hg, spec, params).cost; });
    }
    std::printf("%-8s %14.0f %14.0f %12.2f %12.2f\n", name.c_str(), cost[0],
                cost[1], secs[0], secs[1]);
  }
  return 0;
}
