// Ablation: non-uniform level weights.
//
// Tables 2/3 use uniform w_l; the problem definition (and Figure 2, with
// w1 = 2 w0) allows arbitrary weights — in the motivating application a
// board-level pin costs far more than an FPGA pin. This bench re-runs the
// three algorithms under geometric weights w_l = 4^l and reports both the
// weighted cost and the number of nets cut at the most expensive level,
// showing which algorithms actually respond to the weighting (FLOW's
// spreading metric sees the weights through g(); the FM carvers only see
// them through the refiner).
#include <cmath>

#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("ABLATION",
                     "geometric level weights w_l = 4^l (board pins cost "
                     "more than FPGA pins)",
                     options);
  std::printf("%-8s | %9s top-cuts | %9s top-cuts | %9s top-cuts\n",
              "circuit", "GFM+", "RFM+", "FLOW+");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    if (name == "c6288") continue;  // grid story covered elsewhere
    const Level height = 3;
    std::vector<double> weights(height);
    for (Level l = 0; l < height; ++l)
      weights[l] = std::pow(4.0, static_cast<double>(l));
    const HierarchySpec spec =
        UniformHierarchy(hg.total_size(), height, 2, 0.15, weights);

    auto run = [&](TreePartition tp) {
      HtpFmParams p;
      p.seed = options.seed;
      RefineHtpFm(tp, spec, p);
      const auto cuts = CutNetsByLevel(tp);
      return std::make_pair(PartitionCost(tp, spec), cuts.back());
    };
    GfmParams gp;
    gp.seed = options.seed;
    const auto gfm = run(RunGfm(hg, spec, gp));
    RfmParams rp;
    rp.seed = options.seed;
    const auto rfm = run(RunRfm(hg, spec, rp));
    HtpFlowParams fp;
    fp.iterations = options.quick ? 1 : 2;
    fp.seed = options.seed;
    fp.threads = options.threads;
    fp.budget = bench::FlowBudget(options);
    const auto flow = run(RunHtpFlow(hg, spec, fp).partition);

    std::printf("%-8s | %9.0f %8zu | %9.0f %8zu | %9.0f %8zu\n",
                name.c_str(), gfm.first, gfm.second, rfm.first, rfm.second,
                flow.first, flow.second);
  }
  return 0;
}
