// Shared plumbing for the table/figure regeneration harnesses.
//
// Every bench prints a self-describing header (what it regenerates, which
// paper artifact it corresponds to, the seeds used) followed by an aligned
// text table, so `for b in build/bench/*; do $b; done` produces a readable
// report. Flags:
//   --quick            smaller circuit set / fewer iterations
//   --seed <u64>       master seed (default 1997)
//   --threads <n>      worker threads for FLOW's outer iterations
//                      (0 = all hardware threads, default 1); FLOW results
//                      are bit-identical for every value, only the wall
//                      clock changes
//   --bench-dir <dir>  load real ISCAS85 .bench files named <circuit>.bench
//                      from <dir> instead of the calibrated generators
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "netlist/bench_parser.hpp"
#include "netlist/generators.hpp"

namespace htp::bench {

struct Options {
  bool quick = false;
  std::uint64_t seed = 1997;
  std::size_t trials = 1;  ///< independent seeds averaged by some benches
  std::size_t threads = 1;  ///< FLOW worker threads (0 = hardware)
  std::string bench_dir;
};

inline Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      options.trials =
          std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
      options.bench_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --quick, --seed N, "
                   "--trials N, --threads N, --bench-dir DIR)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return options;
}

/// The circuits of Tables 1-3, loaded from real .bench files when
/// --bench-dir is given, synthesized otherwise. --quick keeps the two
/// smallest plus the multiplier.
inline std::vector<std::pair<std::string, Hypergraph>> LoadSuite(
    const Options& options) {
  std::vector<std::pair<std::string, Hypergraph>> suite;
  for (const SuiteEntry& entry : Iscas85Suite()) {
    if (options.quick && entry.name != "c1355" && entry.name != "c2670" &&
        entry.name != "c6288")
      continue;
    if (!options.bench_dir.empty()) {
      suite.emplace_back(
          entry.name,
          ParseBenchFile(options.bench_dir + "/" + entry.name + ".bench").hg);
    } else {
      suite.emplace_back(entry.name, MakeIscas85Like(entry.name, options.seed));
    }
  }
  return suite;
}

/// Wall-clock seconds of a callable's execution.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline void PrintHeader(const char* artifact, const char* description,
                        const Options& options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("source circuits: %s | seed=%llu%s\n",
              options.bench_dir.empty()
                  ? "calibrated ISCAS85-like generators (see DESIGN.md)"
                  : options.bench_dir.c_str(),
              static_cast<unsigned long long>(options.seed),
              options.quick ? " | --quick" : "");
  if (options.threads != 1)
    std::printf("FLOW threads: %zu%s (results identical to --threads 1)\n",
                options.threads, options.threads == 0 ? " (all hardware)" : "");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace htp::bench
