// Shared plumbing for the table/figure regeneration harnesses.
//
// Every bench prints a self-describing header (what it regenerates, which
// paper artifact it corresponds to, the seeds used) followed by an aligned
// text table, so `for b in build/bench/*; do $b; done` produces a readable
// report. Flags:
//   --quick            smaller circuit set / fewer iterations
//   --seed <u64>       master seed (default 1997)
//   --threads <n>      worker threads for FLOW's outer iterations
//                      (0 = all hardware threads, default 1); FLOW results
//                      are bit-identical for every value, only the wall
//                      clock changes
//   --metric-threads <n>  worker threads for the candidate scan inside each
//                      flow-injection round (0 = all hardware threads,
//                      default 1); same bit-identity guarantee
//   --build-threads <n>  construction-parallelism mode (default 1 = legacy
//                      serial recursion, the historical baselines); any
//                      other value (0 = all hardware threads) fans
//                      Algorithm-3 carves out per subtree — results are
//                      identical for every such value but NOT comparable
//                      to --build-threads 1 tables (docs/parallelism.md)
//   --time-budget <s>  wall-clock budget per FLOW run (seconds); a fired
//                      deadline returns the best partition found so far
//                      (anytime semantics, docs/robustness.md) — costs are
//                      then budget-dependent, not comparable to unbudgeted
//                      tables
//   --max-rounds <n>   deterministic cap on Algorithm-2 worklist rounds per
//                      metric computation (bit-identical for every thread
//                      count, unlike --time-budget)
//   --oracle-sample <f> sampled separation oracle fraction in [0,1] for the
//                      flow-injection metric (0 or 1 = exact, the default;
//                      docs/scaling.md)
//   --bench-dir <dir>  load real ISCAS85 .bench files named <circuit>.bench
//                      from <dir> instead of the calibrated generators
//   --obs-jsonl <file> append the telemetry snapshot of each measured
//                      section as JSONL rows (obs/sinks.hpp), one line per
//                      counter/timer, tagged with bench name and scope —
//                      the machine-readable per-phase breakdown
//   --report-dir <dir> write one RunReport JSON (obs/report.hpp) per
//                      measured section into <dir>, named
//                      <bench>.<scope>.report.json — the schema-versioned
//                      artifact scripts/obs_report.py validates and diffs
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/csr_view.hpp"
#include "graph/dijkstra.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/sinks.hpp"
#include "runtime/budget.hpp"

namespace htp::bench {

struct Options {
  bool quick = false;
  std::uint64_t seed = 1997;
  std::size_t trials = 1;  ///< independent seeds averaged by some benches
  std::size_t threads = 1;  ///< FLOW worker threads (0 = hardware)
  std::size_t metric_threads = 1;  ///< scan threads per injection round
  std::size_t build_threads = 1;  ///< construction mode knob (1 = serial)
  /// Anytime knobs applied to every FLOW run (--time-budget / --max-rounds;
  /// default unlimited = the exact unbudgeted tables).
  Budget budget;
  /// Sampled separation oracle fraction (FlowInjectionParams::oracle_sample;
  /// 0 = exact). Benches that honor it say so in their header.
  double oracle_sample = 0.0;
  std::string bench_dir;
  std::string obs_jsonl;  ///< JSONL telemetry stream path ("" = off)
  std::string report_dir;  ///< RunReport output directory ("" = off)

  /// True when --time-budget was given: results depend on wall clock, so
  /// the benches must not treat parallel/serial cost divergence as a bug.
  bool Deadlined() const { return budget.HasDeadline(); }
};

/// The budget every FLOW run of a bench should inherit.
inline Budget FlowBudget(const Options& options) { return options.budget; }

inline Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      options.trials =
          std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metric-threads") == 0 && i + 1 < argc) {
      options.metric_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--build-threads") == 0 && i + 1 < argc) {
      options.build_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--time-budget") == 0 && i + 1 < argc) {
      char* end = nullptr;
      options.budget.time_budget_seconds = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "malformed --time-budget value '%s'\n", argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--max-rounds") == 0 && i + 1 < argc) {
      options.budget.max_rounds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--oracle-sample") == 0 && i + 1 < argc) {
      options.oracle_sample = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--bench-dir") == 0 && i + 1 < argc) {
      options.bench_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-jsonl") == 0 && i + 1 < argc) {
      options.obs_jsonl = argv[++i];
    } else if (std::strcmp(argv[i], "--report-dir") == 0 && i + 1 < argc) {
      options.report_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --quick, --seed N, "
                   "--trials N, --threads N, --metric-threads N, "
                   "--build-threads N, --time-budget S, --max-rounds N, "
                   "--oracle-sample F, --bench-dir DIR, --obs-jsonl FILE, "
                   "--report-dir DIR)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return options;
}

/// The circuits of Tables 1-3, loaded from real .bench files when
/// --bench-dir is given, synthesized otherwise. --quick keeps the two
/// smallest plus the multiplier.
inline std::vector<std::pair<std::string, Hypergraph>> LoadSuite(
    const Options& options) {
  std::vector<std::pair<std::string, Hypergraph>> suite;
  for (const SuiteEntry& entry : Iscas85Suite()) {
    if (options.quick && entry.name != "c1355" && entry.name != "c2670" &&
        entry.name != "c6288")
      continue;
    if (!options.bench_dir.empty()) {
      suite.emplace_back(
          entry.name,
          ParseBenchFile(options.bench_dir + "/" + entry.name + ".bench").hg);
    } else {
      suite.emplace_back(entry.name, MakeIscas85Like(entry.name, options.seed));
    }
  }
  return suite;
}

/// Wall-clock seconds of a callable's execution.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Fixed deterministic workload (independent of the suite under test): full
/// CSR Dijkstra sweeps over a mid-size generated circuit. Scales with the
/// host's single-core speed the same way the metric phase does, which is
/// what makes wall ratios normalized by it comparable across machines.
/// Shared by every bench that feeds the regression gate (regression_suite,
/// multilevel_scale) so their "normalized_wall" columns share one unit.
inline double CalibrationSeconds() {
  const Hypergraph hg = MakeIscas85Like("c1355", 7);
  const CsrView view(hg);
  const std::vector<double> len(hg.num_nets(), 1.0);
  DijkstraWorkspace workspace;
  ShortestPathTree tree;
  double sink = 0.0;
  const double seconds = TimeSeconds([&] {
    for (int rep = 0; rep < 6; ++rep)
      for (NodeId source = 0; source < hg.num_nodes(); source += 7) {
        workspace.Grow(
            view, source, len,
            [](const GrowState&) { return GrowAction::kContinue; }, tree);
        sink += tree.dist[tree.order.back()];
      }
  });
  if (sink < 0.0) std::printf("impossible\n");  // keep the work observable
  return seconds;
}

/// Value of a counter in a snapshot (0 when absent, e.g. obs off).
inline std::uint64_t CounterTotal(const obs::Snapshot& snap,
                                  std::string_view name) {
  for (const obs::CounterValue& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

/// Scopes telemetry totals to one measured section (a circuit, a parameter
/// setting): resets the registry on construction; on destruction emits the
/// section's snapshot as JSONL (when --obs-jsonl is set) and optionally a
/// one-line per-phase breakdown under the section's table row. Everything
/// degrades to a no-op when obs is compiled out (snapshots are empty).
class ObsSection {
 public:
  ObsSection(const Options& options, const char* bench, std::string scope,
             bool print_phases = true)
      : options_(options), bench_(bench), scope_(std::move(scope)),
        print_phases_(print_phases) {
    obs::ResetAll();
  }
  ~ObsSection() {
    const obs::Snapshot snap = obs::TakeSnapshot();
    if (!options_.obs_jsonl.empty()) {
      std::ofstream out(options_.obs_jsonl, std::ios::app);
      if (out) obs::WriteJsonlSnapshot(out, snap, bench_, scope_);
    }
    if (!options_.report_dir.empty()) {
      obs::RunReportBuilder rb(bench_);
      rb.MetaString("scope", scope_);
      rb.MetaNumber("seed", static_cast<double>(options_.seed));
      rb.WallNumber("threads", static_cast<double>(options_.threads));
      rb.WallNumber("metric_threads",
                    static_cast<double>(options_.metric_threads));
      std::error_code ec;  // best-effort: a failed mkdir surfaces below
      std::filesystem::create_directories(options_.report_dir, ec);
      const std::string path = options_.report_dir + "/" + bench_ + "." +
                               scope_ + ".report.json";
      std::ofstream out(path);
      if (out)
        out << rb.Render(snap, obs::DrainEvents()) << '\n';
      else
        std::fprintf(stderr, "warning: cannot write RunReport to %s\n",
                     path.c_str());
    }
    if (print_phases_) PrintPhaseBreakdown(snap);
  }
  ObsSection(const ObsSection&) = delete;
  ObsSection& operator=(const ObsSection&) = delete;

  /// Compact per-phase line, e.g.
  ///   phases: metric 12.3ms/8 | build 4.5ms/8 | carve 3.2ms/96 | fm ...
  /// Timer totals are CPU time summed over workers, so with --threads > 1
  /// they can exceed the wall clock.
  static void PrintPhaseBreakdown(const obs::Snapshot& snap) {
    static constexpr struct { const char* label; const char* timer; } kPhases[] = {
        {"metric", "flow.compute_metric"},
        {"build", "build.partition"},
        {"carve", "carve.find_cut"},
        {"mst", "carve.mst_split"},
        {"fm", "fm.refine"},
    };
    std::string line;
    char buf[96];
    for (const auto& phase : kPhases) {
      for (const obs::TimerValue& t : snap.timers) {
        if (t.name != phase.timer || t.count == 0) continue;
        std::snprintf(buf, sizeof buf, "%s%s %.1fms/%llu",
                      line.empty() ? "" : " | ", phase.label,
                      static_cast<double>(t.total_ns) / 1e6,
                      static_cast<unsigned long long>(t.count));
        line += buf;
      }
    }
    if (!line.empty()) std::printf("  phases: %s\n", line.c_str());
  }

 private:
  const Options& options_;
  const char* bench_;
  std::string scope_;
  bool print_phases_;
};

inline void PrintHeader(const char* artifact, const char* description,
                        const Options& options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("source circuits: %s | seed=%llu%s\n",
              options.bench_dir.empty()
                  ? "calibrated ISCAS85-like generators (see DESIGN.md)"
                  : options.bench_dir.c_str(),
              static_cast<unsigned long long>(options.seed),
              options.quick ? " | --quick" : "");
  if (options.threads != 1)
    std::printf("FLOW threads: %zu%s (results identical to --threads 1)\n",
                options.threads, options.threads == 0 ? " (all hardware)" : "");
  if (options.metric_threads != 1)
    std::printf(
        "metric scan threads: %zu%s (results identical to "
        "--metric-threads 1)\n",
        options.metric_threads,
        options.metric_threads == 0 ? " (all hardware)" : "");
  if (options.build_threads != 1)
    std::printf(
        "build threads: %zu%s (tasked construction mode; identical for "
        "every value != 1, NOT comparable to --build-threads 1 tables)\n",
        options.build_threads,
        options.build_threads == 0 ? " (all hardware)" : "");
  if (options.budget.HasDeadline())
    std::printf(
        "time budget: %.3gs per FLOW run (anytime best-so-far; costs are "
        "budget-dependent)\n",
        options.budget.time_budget_seconds);
  if (options.budget.max_rounds != 0)
    std::printf("round cap: %zu Algorithm-2 rounds per metric "
                "(deterministic)\n",
                options.budget.max_rounds);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace htp::bench
