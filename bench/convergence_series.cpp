// Convergence trace of Algorithm 2 (figure-style series).
//
// The paper argues convergence qualitatively ("As d(e) increases for some
// edges in each iteration, more constraints in (5) are satisfied ...
// eventually all constraints are satisfied"). This bench prints the
// worklist size and the metric objective sum c(e) d(e) after every pass,
// so the monotone shrinkage of V' and the growth of the metric toward its
// final cost can be plotted directly.
#include "bench_common.hpp"
#include "core/flow_injection.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("SERIES", "Algorithm 2 convergence (worklist + metric "
                               "cost per pass)",
                     options);

  Hypergraph hg = MakeIscas85Like("c1355", options.seed);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());

  // Re-running with increasing round caps exposes the whole trajectory
  // through the public API (one row per cap; costs are cumulative states,
  // not re-randomized: the seed fixes the whole run). The two telemetry
  // columns (Dijkstra pops during the metric computation, its CPU time)
  // come from the obs registry and read 0 when obs is compiled out.
  std::printf("%8s %12s %14s %12s %10s %14s %12s\n", "rounds", "violated",
              "injections", "metric cost", "converged", "dijkstra pops",
              "metric ms");
  const std::size_t caps[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  for (std::size_t cap : caps) {
    bench::ObsSection obs_section(options, "convergence_series",
                                  "cap=" + std::to_string(cap),
                                  /*print_phases=*/false);
    FlowInjectionParams params;
    params.seed = options.seed;
    params.max_rounds = cap;
    if (options.budget.max_rounds != 0)
      params.max_rounds =
          std::min(params.max_rounds, options.budget.max_rounds);
    params.cancel = StartBudget(options.budget);
    const FlowInjectionResult r = ComputeSpreadingMetric(hg, spec, params);
    // Snapshot before the feasibility recheck below adds its own Dijkstra
    // growth to the totals.
    const obs::Snapshot snap = obs::TakeSnapshot();
    double metric_ms = 0.0;
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        metric_ms = static_cast<double>(t.total_ns) / 1e6;
    // Count still-violated sources under the produced metric.
    std::size_t violated = 0;
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      if (FindViolationFrom(hg, spec, r.metric, v)) ++violated;
    std::printf("%8zu %12zu %14zu %12.2f %10s %14llu %12.2f\n", r.rounds,
                violated, r.injections, r.metric_cost,
                r.converged ? "yes" : "no",
                static_cast<unsigned long long>(
                    bench::CounterTotal(snap, "dijkstra.pops")),
                metric_ms);
    if (r.converged) break;
  }
  return 0;
}
