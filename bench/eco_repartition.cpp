// Warm-vs-cold ECO repartitioning gate on the 10k-node Rent circuit
// (docs/incremental.md): converge a cold FLOW run, persist its warm-start
// state, apply a single-net delta, and resume through RunEcoRepartition.
// Both phases emit rows in the regression_suite JSON shape, so
// scripts/bench_regression.py gates them as the "eco" section of
// BENCH_htp.json (docs/benchmarks.md).
//
// The bench enforces the warm-start floor itself — a warm resume whose
// metric silently re-converges from scratch fails the binary, not just the
// baseline diff: on a single-net delta the warm Algorithm-2 resume must
// take at most kMaxWarmRoundsFraction x the cold run's injection rounds.
// Both phases run MetricScope::kGlobalOnce so `flow.rounds` counts exactly
// one metric computation per phase — the root metric the warm state seeds —
// and the ratio measures pure warm-start savings, not per-subproblem
// recomputation (which injects cold on both sides and would dilute the
// signal; see the scope note in docs/incremental.md).
//
// Deterministic row fields: the whole ECO family is bit-identical across
// threads x metric-threads x build-threads, so cost / injections /
// dijkstra_pops are gated exactly; only normalized_wall is tolerance-gated.
//
// Usage: eco_repartition --json out.json [--quick] [--seed N]
//                        [--threads N] [--metric-threads N]
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cost.hpp"
#include "core/hierarchy.hpp"
#include "core/htp_flow.hpp"
#include "incremental/eco_repartition.hpp"
#include "incremental/netlist_delta.hpp"
#include "incremental/warm_start.hpp"

namespace {

struct EcoRow {
  std::string name;
  double wall_seconds = 0.0;
  double cost = 0.0;
  std::uint64_t injections = 0;
  std::uint64_t dijkstra_pops = 0;
  double metric_phase_ms = 0.0;
  std::uint64_t rounds = 0;
};

// Warm resume rounds must be at most half the cold run's (the issue's
// acceptance floor; in practice the converged seed resumes in one round).
constexpr double kMaxWarmRoundsFraction = 0.5;

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  const bench::Options options =
      bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  bench::PrintHeader("ECO REPARTITION",
                     "warm-start resume vs cold run on a single-net delta "
                     "over the 10k-node Rent circuit (docs/incremental.md)",
                     options);

  const double calibration = bench::CalibrationSeconds();
  std::printf("calibration kernel: %.3fs\n", calibration);

  RentCircuitParams circuit;
  circuit.num_gates = 10000;
  circuit.num_primary_inputs = 400;
  circuit.seed = options.seed;
  const Hypergraph base = RentCircuit(circuit);
  const HierarchySpec spec = FullBinaryHierarchy(base.total_size(), 3, 0.2);

  // Flat FLOW with the sampled separation oracle — the same regime the
  // serve_throughput bench runs this circuit in. kGlobalOnce keeps the
  // round counters a pure cold-vs-warm comparison (header comment).
  HtpFlowParams params;
  params.iterations = 1;
  params.seed = options.seed;
  params.threads = options.threads;
  params.metric_threads = options.metric_threads;
  params.metric_scope = MetricScope::kGlobalOnce;
  params.injection.oracle_sample = 0.02;
  params.keep_best_metric = true;
  params.budget = bench::FlowBudget(options);

  std::printf("%-14s %12s %12s %10s %10s %14s\n", "phase", "wall(s)",
              "wall(norm)", "cost", "rounds", "dijkstra pops");

  std::vector<EcoRow> rows;

  // --- Cold phase: converge and persist the warm-start state. ---
  obs::ResetAll();
  std::optional<HtpFlowResult> cold;
  EcoRow cold_row;
  cold_row.name = "eco10k_cold";
  cold_row.wall_seconds = bench::TimeSeconds(
      [&] { cold.emplace(RunHtpFlow(base, spec, params)); });
  {
    const obs::Snapshot snap = obs::TakeSnapshot();
    cold_row.cost = cold->cost;
    cold_row.rounds = bench::CounterTotal(snap, "flow.rounds");
    cold_row.injections = bench::CounterTotal(snap, "flow.injections");
    cold_row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        cold_row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
  }
  std::printf("%-14s %12.3f %12.3f %10.0f %10llu %14llu\n",
              cold_row.name.c_str(), cold_row.wall_seconds,
              cold_row.wall_seconds / calibration, cold_row.cost,
              static_cast<unsigned long long>(cold_row.rounds),
              static_cast<unsigned long long>(cold_row.dijkstra_pops));
  rows.push_back(cold_row);

  const WarmStartState state =
      MakeWarmStartState(base, cold->best_metric, cold->partition, params.seed);

  // --- The ECO edit: remove one *local* net (lowest-id net whose pins all
  // live in one root subtree of the converged partition — the typical ECO
  // edit; a net spanning every root child forces a full rebuild instead,
  // which is the degenerate case, not the one this bench gates). ---
  const Level child_level = cold->partition.root_level() - 1;
  NetId removed = 0;
  for (NetId e = 0; e < base.num_nets(); ++e) {
    const auto pins = base.pins(e);
    bool local = true;
    for (const NodeId v : pins)
      if (cold->partition.block_at(v, child_level) !=
          cold->partition.block_at(pins.front(), child_level)) {
        local = false;
        break;
      }
    if (local) {
      removed = e;
      break;
    }
  }
  NetlistDelta delta;
  delta.removed_nets.push_back(removed);
  const DeltaApplication app = ApplyDelta(base, delta);

  // --- Warm phase: remap the metric through the delta and resume. ---
  obs::ResetAll();
  EcoParams eco;
  eco.flow = params;
  // Pin the leanest delta-scoped configuration: one construction replica
  // (replica 0 = the exact cold construct stream) and no stitch-vs-rebuild
  // race. The baseline gates the reuse story — clone untouched subtrees,
  // re-carve the touched one, resume the metric warm — while best-of-R and
  // race quality are the property battery's subject (tests/incremental/).
  eco.construction_replicas = 1;
  eco.race_rebuild = false;
  std::optional<EcoResult> warm;
  EcoRow warm_row;
  warm_row.name = "eco10k_warm";
  warm_row.wall_seconds = bench::TimeSeconds([&] {
    warm.emplace(RunEcoRepartition(app, spec, cold->partition,
                                   RemapWarmMetric(state, app), eco));
  });
  {
    const obs::Snapshot snap = obs::TakeSnapshot();
    warm_row.cost = warm->cost;
    warm_row.rounds = bench::CounterTotal(snap, "flow.rounds");
    warm_row.injections = bench::CounterTotal(snap, "flow.injections");
    warm_row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        warm_row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
  }
  std::printf("%-14s %12.3f %12.3f %10.0f %10llu %14llu\n",
              warm_row.name.c_str(), warm_row.wall_seconds,
              warm_row.wall_seconds / calibration, warm_row.cost,
              static_cast<unsigned long long>(warm_row.rounds),
              static_cast<unsigned long long>(warm_row.dijkstra_pops));
  rows.push_back(warm_row);

  std::printf("eco: reused %zu blocks, recarved %zu, full_rebuild=%s, "
              "warm rounds %llu vs cold %llu\n",
              warm->blocks_reused, warm->blocks_recarved,
              warm->full_rebuild ? "yes" : "no",
              static_cast<unsigned long long>(warm_row.rounds),
              static_cast<unsigned long long>(cold_row.rounds));

  // The two contracts this bench exists to enforce.
  RequireValidPartition(warm->partition, spec);
  const double rounds_ceiling =
      kMaxWarmRoundsFraction * static_cast<double>(cold_row.rounds);
  if (static_cast<double>(warm_row.rounds) > rounds_ceiling) {
    std::fprintf(stderr,
                 "FAIL: warm resume took %llu injection rounds, more than "
                 "%.2f x the cold run's %llu (warm start not working)\n",
                 static_cast<unsigned long long>(warm_row.rounds),
                 kMaxWarmRoundsFraction,
                 static_cast<unsigned long long>(cold_row.rounds));
    return 1;
  }
  std::printf("warm rounds floor: %llu <= %.2f x %llu (ok)\n",
              static_cast<unsigned long long>(warm_row.rounds),
              kMaxWarmRoundsFraction,
              static_cast<unsigned long long>(cold_row.rounds));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"htp-bench-regression-v1\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"threads\": " << options.threads << ",\n";
    out << "  \"metric_threads\": " << options.metric_threads << ",\n";
    out << "  \"oracle_sample\": " << params.injection.oracle_sample << ",\n";
    out << "  \"calibration_seconds\": " << calibration << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const EcoRow& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\""
          << ", \"flow_wall_seconds\": " << r.wall_seconds
          << ", \"normalized_wall\": " << r.wall_seconds / calibration
          << ", \"cost\": " << r.cost
          << ", \"injections\": " << r.injections
          << ", \"dijkstra_pops\": " << r.dijkstra_pops
          << ", \"metric_phase_ms\": " << r.metric_phase_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
