// Regenerates FIGURE 2 of the paper: the worked 16-node / 30-edge example
// with size bounds C0 = 4, C1 = 8 and weights w0 = 1, w1 = 2.
//
// Reproduces every claim the paper makes about it:
//  * the shown partition is optimal (certified here by exhaustive search);
//  * edges cut only at level 0 have cost/metric 2, edges cut at both levels
//    have cost/metric 6 (the labels of Figure 2(b));
//  * the induced spreading metric is a feasible integral solution to (P1)
//    (Lemma 1), with objective equal to the partition cost;
//  * the exact LP optimum of (P1) lower-bounds the partition cost
//    (Lemma 2) — on this instance the relaxation is tight;
//  * Algorithm 1 (flow injection + find_cut) recovers the optimum.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "lp/spreading_lp.hpp"
#include "partition/exhaustive.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("FIGURE 2", "the worked spreading-metric example",
                     options);

  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  std::printf("instance: %u nodes, %u edges, %s\n", hg.num_nodes(),
              hg.num_nets(), spec.ToString().c_str());

  TreePartition intended = Figure2OptimalPartition(hg);
  const double intended_cost = PartitionCost(intended, spec);
  std::printf("\nintended partition cost (Equation (1)):   %.0f\n",
              intended_cost);

  const SpreadingMetric metric = MetricFromPartition(intended, spec);
  std::size_t d0 = 0, d2 = 0, d6 = 0;
  for (double d : metric) (d == 0 ? d0 : d == 2 ? d2 : d6) += 1;
  std::printf("induced spreading metric d(e)=cost(e)/c(e): %zu edges at 0, "
              "%zu at 2, %zu at 6 (Figure 2(b) labels)\n",
              d0, d2, d6);
  std::printf("metric feasible for (P1) family (5):        %s (Lemma 1)\n",
              CheckSpreadingMetric(hg, spec, metric) ? "NO (!)" : "yes");

  const auto exact = ExhaustiveHtp(hg, spec);
  std::printf("exhaustive optimum over all partitions:     %.0f (%zu "
              "partitions enumerated)\n",
              exact ? exact->cost : -1.0, exact ? exact->evaluated : 0);

  const SpreadingLpResult lp = SolveSpreadingLp(hg, spec);
  std::printf("exact LP (P1) lower bound (Lemma 2):        %.4f "
              "(%zu cutting planes, converged=%s)\n",
              lp.lower_bound, lp.cuts, lp.converged ? "yes" : "no");

  HtpFlowParams params;
  params.iterations = 4;
  params.seed = options.seed;
  params.threads = options.threads;
  params.budget = bench::FlowBudget(options);
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  std::printf("Algorithm 1 (FLOW, N=4):                    %.0f\n",
              flow.cost);
  std::printf("\nfound tree:\n%s", flow.partition.ToString().c_str());
  return 0;
}
