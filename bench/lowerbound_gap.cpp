// Lemma 2 in practice: on small instances, compare
//   * the exact LP optimum of (P1) (cutting-plane simplex),
//   * the heuristic flow-injection metric's objective,
//   * the true optimal partition cost (exhaustive),
//   * the FLOW heuristic's partition cost.
// Paper ordering that must hold: LP <= OPT <= FLOW. The flow-injected
// metric is feasible for (5) but not optimal, so its objective lands at or
// above the LP value (it is NOT itself a certified lower bound).
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "lp/spreading_lp.hpp"
#include "netlist/rng.hpp"
#include "partition/exhaustive.hpp"

namespace {

htp::Hypergraph SmallRandom(htp::NodeId n, std::size_t extra,
                            std::uint64_t seed) {
  htp::Rng rng(seed);
  htp::HypergraphBuilder builder;
  for (htp::NodeId v = 0; v < n; ++v) builder.add_node(1.0);
  for (htp::NodeId v = 1; v < n; ++v)
    builder.add_net({static_cast<htp::NodeId>(rng.next_below(v)), v});
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<htp::NodeId>(rng.next_below(n));
    const auto b = static_cast<htp::NodeId>(rng.next_below(n));
    if (a != b) builder.add_net({a, b});
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("LEMMA 2", "LP lower bound vs optimum vs FLOW on small "
                                "instances",
                     options);
  std::printf("%-12s %10s %10s %10s %12s %8s\n", "instance", "LP bound",
              "optimum", "FLOW", "flow-metric", "LP/OPT");

  struct Case {
    std::string name;
    Hypergraph hg;
    HierarchySpec spec;
  };
  std::vector<Case> cases;
  cases.push_back({"figure2", Figure2Graph(), Figure2Spec()});
  const std::size_t count = options.quick ? 2 : 5;
  for (std::size_t i = 0; i < count; ++i) {
    Hypergraph hg = SmallRandom(10, 8, options.seed + i);
    HierarchySpec spec({{4.0, 2, 1.0}, {7.0, 2, 2.0}, {10.0, 2, 1.0}});
    cases.push_back({"rand10-" + std::to_string(i), std::move(hg), spec});
  }

  for (Case& c : cases) {
    const SpreadingLpResult lp = SolveSpreadingLp(c.hg, c.spec);
    const auto exact = ExhaustiveHtp(c.hg, c.spec);
    HtpFlowParams params;
    params.iterations = 4;
    params.seed = options.seed;
    params.threads = options.threads;
    params.budget = bench::FlowBudget(options);
    const HtpFlowResult flow = RunHtpFlow(c.hg, c.spec, params);
    const double opt = exact ? exact->cost : -1.0;
    std::printf("%-12s %10.3f %10.0f %10.0f %12.3f %8.3f\n", c.name.c_str(),
                lp.lower_bound, opt, flow.cost,
                flow.iterations.back().metric_cost,
                opt > 0 ? lp.lower_bound / opt : 1.0);
  }
  std::printf("\ninvariant: LP bound <= optimum <= FLOW on every row\n");
  return 0;
}
