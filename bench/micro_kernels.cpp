// Micro-benchmarks (google-benchmark) for the kernels whose complexity
// Section 3.3 analyzes:
//   * Dijkstra shortest-path trees: O((n + p) log n) per source,
//   * Prim growth / find_cut: O((n + p) log n) per carve,
//   * Algorithm 2 (spreading metric): O(b_c log b_d * m (n + p) log n),
//   * one generalized-FM refinement pass,
//   * Equation (1) cost evaluation.
// The _BigO fits below empirically confirm the near-linear scaling in the
// circuit size (n + p) at fixed hierarchy depth.
#include <benchmark/benchmark.h>

#include "core/find_cut.hpp"
#include "core/flow_injection.hpp"
#include "core/htp_flow.hpp"
#include "graph/dijkstra.hpp"
#include "graph/prim.hpp"
#include "netlist/generators.hpp"
#include "partition/htp_fm.hpp"
#include "partition/random_partition.hpp"

namespace {

using namespace htp;

Hypergraph Circuit(std::int64_t gates) {
  RentCircuitParams params;
  params.num_gates = static_cast<std::size_t>(gates);
  params.num_primary_inputs = std::max<std::size_t>(8, gates / 20);
  params.seed = 7;
  return RentCircuit(params);
}

void BM_Dijkstra(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng rng(3);
  for (double& d : len) d = rng.next_double();
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dijkstra(hg, source, len));
    source = (source + 17) % hg.num_nodes();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_PrimGrow(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng rng(3);
  for (double& d : len) d = rng.next_double();
  for (auto _ : state)
    benchmark::DoNotOptimize(GrowPrimTree(hg, 0, len));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrimGrow)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_FindCut(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng lrng(3);
  for (double& d : len) d = lrng.next_double();
  Rng rng(5);
  const double total = hg.total_size();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        MetricFindCut(hg, len, total * 0.4, total * 0.55, rng));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindCut)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_SpreadingMetric(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  FlowInjectionParams params;
  for (auto _ : state) {
    params.seed += 1;
    benchmark::DoNotOptimize(ComputeSpreadingMetric(hg, spec, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpreadingMetric)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

void BM_HtpFmPass(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    TreePartition tp = RandomPartition(hg, spec, rng);
    HtpFmParams params;
    params.max_passes = 1;
    state.ResumeTiming();
    benchmark::DoNotOptimize(RefineHtpFm(tp, spec, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HtpFmPass)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN)->Unit(benchmark::kMillisecond);

void BM_PartitionCost(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  Rng rng(11);
  TreePartition tp = RandomPartition(hg, spec, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(PartitionCost(tp, spec));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PartitionCost)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
