// Micro-benchmarks (google-benchmark) for the kernels whose complexity
// Section 3.3 analyzes:
//   * Dijkstra shortest-path trees: O((n + p) log n) per source,
//   * Prim growth / find_cut: O((n + p) log n) per carve,
//   * Algorithm 2 (spreading metric): O(b_c log b_d * m (n + p) log n),
//   * one generalized-FM refinement pass,
//   * Equation (1) cost evaluation.
// The _BigO fits below empirically confirm the near-linear scaling in the
// circuit size (n + p) at fixed hierarchy depth.
//
// The BM_Obs* group prices the telemetry probes themselves (obs/obs.hpp)
// with no sink attached — the configuration every production run pays for.
// Comparing BM_Dijkstra here against an -DHTP_OBS_ENABLED=OFF build is the
// "<1% overhead when compiled in but unused" check from the design note.
#include <benchmark/benchmark.h>

#include "core/find_cut.hpp"
#include "core/flow_injection.hpp"
#include "core/htp_flow.hpp"
#include "graph/csr_view.hpp"
#include "graph/dijkstra.hpp"
#include "graph/prim.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "partition/htp_fm.hpp"
#include "partition/random_partition.hpp"

namespace {

using namespace htp;

Hypergraph Circuit(std::int64_t gates) {
  RentCircuitParams params;
  params.num_gates = static_cast<std::size_t>(gates);
  params.num_primary_inputs = std::max<std::size_t>(8, gates / 20);
  params.seed = 7;
  return RentCircuit(params);
}

// The production hot path: growths over a prebuilt CsrView with a reused
// workspace — exactly what ViolationScanner workers run. The view and
// workspace live outside the timed loop, like the scanner amortizes them
// across an entire metric computation.
void BM_Dijkstra(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng rng(3);
  for (double& d : len) d = rng.next_double();
  const CsrView view(hg);
  DijkstraWorkspace workspace;
  ShortestPathTree tree;
  NodeId source = 0;
  for (auto _ : state) {
    workspace.Grow(view, source, len,
                   [](const GrowState&) { return GrowAction::kContinue; },
                   tree);
    benchmark::DoNotOptimize(tree);
    source = (source + 17) % hg.num_nodes();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

// The pre-CSR walk over the Hypergraph itself (kept as the diff-test
// reference): the BM_Dijkstra / BM_DijkstraLegacy ratio is the headline
// single-core win of the CSR + 4-ary-heap engine.
void BM_DijkstraLegacy(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng rng(3);
  for (double& d : len) d = rng.next_double();
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dijkstra(hg, source, len));
    source = (source + 17) % hg.num_nodes();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DijkstraLegacy)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

// One-time cost of lowering the star expansion (paid once per metric
// computation, amortized over ~n growths).
void BM_CsrBuild(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(CsrView(hg));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CsrBuild)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oN);

void BM_PrimGrow(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng rng(3);
  for (double& d : len) d = rng.next_double();
  for (auto _ : state)
    benchmark::DoNotOptimize(GrowPrimTree(hg, 0, len));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrimGrow)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_FindCut(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  std::vector<double> len(hg.num_nets());
  Rng lrng(3);
  for (double& d : len) d = lrng.next_double();
  Rng rng(5);
  const double total = hg.total_size();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        MetricFindCut(hg, len, total * 0.4, total * 0.55, rng));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindCut)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN);

void BM_SpreadingMetric(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  FlowInjectionParams params;
  for (auto _ : state) {
    params.seed += 1;
    benchmark::DoNotOptimize(ComputeSpreadingMetric(hg, spec, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpreadingMetric)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

// The same Algorithm-2 run on the parallel candidate scan. Comparing this
// against BM_SpreadingMetric at equal circuit sizes is the headline
// serial-vs-scan pair: the metric returned is bit-identical (the scanner's
// determinism contract), so any delta is pure scan-engine wall clock. On a
// single-core host expect ~1.0x; the scan path's win is the speculative
// Dijkstras overlapping on real cores.
void BM_SpreadingMetricScan(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  FlowInjectionParams params;
  params.threads = 4;
  for (auto _ : state) {
    params.seed += 1;
    benchmark::DoNotOptimize(ComputeSpreadingMetric(hg, spec, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpreadingMetricScan)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

// One batch scan over every node of a satisfied metric — the worst case for
// the scanner (no early hit, full window) and the best case for workspace
// reuse: zero allocations after the first batch. The serial baseline for
// this shape is BM_Dijkstra times n sources plus the legacy per-call tree
// construction it no longer pays.
void BM_ViolationScanFullWindow(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  // A generously infeasible-free metric: long lengths spread everything.
  std::vector<double> metric(hg.num_nets(), 10.0);
  std::vector<NodeId> candidates(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) candidates[v] = v;
  ViolationScanner scanner(hg, spec, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scanner.FindFirstViolation(candidates, 0, metric, 1e-7));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ViolationScanFullWindow)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

void BM_HtpFmPass(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    TreePartition tp = RandomPartition(hg, spec, rng);
    HtpFmParams params;
    params.max_passes = 1;
    state.ResumeTiming();
    benchmark::DoNotOptimize(RefineHtpFm(tp, spec, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HtpFmPass)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oNLogN)->Unit(benchmark::kMillisecond);

void BM_PartitionCost(benchmark::State& state) {
  Hypergraph hg = Circuit(state.range(0));
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  Rng rng(11);
  TreePartition tp = RandomPartition(hg, spec, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(PartitionCost(tp, spec));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PartitionCost)->RangeMultiplier(4)->Range(256, 4096)
    ->Complexity(benchmark::oN);

// Cost of one counter increment on the thread-local shard (the unit the
// hot loops pay per *batched* flush, not per element). Expect ~1ns when
// obs is on and ~0 when compiled out.
void BM_ObsCounterAdd(benchmark::State& state) {
  static obs::Counter counter("bench.obs_counter_add");
  for (auto _ : state) counter.Add();
}
BENCHMARK(BM_ObsCounterAdd);

// One steady_clock timed section recorded into the shard histogram cell.
void BM_ObsScopedTimer(benchmark::State& state) {
  static obs::Timer timer("bench.obs_scoped_timer");
  for (auto _ : state) {
    obs::ScopedTimer scoped(timer);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsScopedTimer);

// PhaseScope with tracing disabled (the default): identical timing work as
// ScopedTimer plus one relaxed atomic load deciding not to buffer an event.
void BM_ObsPhaseScopeUntraced(benchmark::State& state) {
  static obs::Timer timer("bench.obs_phase_scope");
  std::uint64_t i = 0;
  for (auto _ : state) {
    obs::PhaseScope scoped(timer, "i", i++);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsPhaseScopeUntraced);

// One histogram record: a bit_width plus three shard-cell updates. Same
// ~ns budget as Counter::Add — it shares the no-lock shard design.
void BM_ObsHistogramRecord(benchmark::State& state) {
  static obs::Histogram histogram("bench.obs_histogram_record");
  std::uint64_t i = 0;
  for (auto _ : state) histogram.Record(i++ & 0xffff);
}
BENCHMARK(BM_ObsHistogramRecord);

// One journal record with a typical payload width (6 fields, like
// flow.round). Events fire at decision granularity (per round/iteration/
// level), so tens of ns here is far below noise for any real run; the
// bench exists to catch accidental allocation on the record path.
void BM_ObsEventRecord(benchmark::State& state) {
  static obs::Event event("bench.obs_event_record");
  double i = 0.0;
  for (auto _ : state) {
    event.Record({{"a", i},
                  {"b", i + 1},
                  {"c", i + 2},
                  {"d", i + 3},
                  {"e", i + 4},
                  {"f", i + 5}});
    i += 1.0;
    // Journals grow; cap memory by draining periodically outside timing.
    if (static_cast<std::uint64_t>(i) % (1u << 18) == 0) {
      state.PauseTiming();
      obs::DrainEvents();
      state.ResumeTiming();
    }
  }
  obs::DrainEvents();
}
BENCHMARK(BM_ObsEventRecord);

}  // namespace

BENCHMARK_MAIN();
