// Modern-baseline comparison: how do the paper's 1997 algorithms fare
// against a multilevel (hMETIS-style) carver in the same Algorithm-3
// skeleton ("MLFM")?
//
// Context from the reproduction brief: multilevel methods made flat
// partitioners obsolete shortly after this paper. This bench quantifies
// that on our substrate — and tests whether FLOW's global spreading metric
// still buys anything once the carver itself is multilevel.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/htp_fm.hpp"
#include "partition/multilevel.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("MODERN BASELINE",
                     "RFM (flat FM carve) vs MLFM (multilevel carve) vs "
                     "FLOW, all +FM-refined",
                     options);
  std::printf("%-8s %8s %8s %8s | %8s %8s %8s\n", "circuit", "RFM", "MLFM",
              "FLOW", "RFM+", "MLFM+", "FLOW+");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());

    RfmParams rp;
    rp.seed = options.seed;
    TreePartition rfm = RunRfm(hg, spec, rp);
    MlfmParams mp;
    mp.seed = options.seed;
    TreePartition mlfm = RunMlfm(hg, spec, mp);
    HtpFlowParams fp;
    fp.iterations = options.quick ? 1 : 2;
    fp.seed = options.seed;
    fp.threads = options.threads;
    fp.budget = bench::FlowBudget(options);
    HtpFlowResult flow = RunHtpFlow(hg, spec, fp);

    const double rfm_c = PartitionCost(rfm, spec);
    const double mlfm_c = PartitionCost(mlfm, spec);
    const double flow_c = flow.cost;
    HtpFmParams hp;
    hp.seed = options.seed;
    const double rfm_p = RefineHtpFm(rfm, spec, hp).final_cost;
    const double mlfm_p = RefineHtpFm(mlfm, spec, hp).final_cost;
    const double flow_p = RefineHtpFm(flow.partition, spec, hp).final_cost;

    std::printf("%-8s %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f\n", name.c_str(),
                rfm_c, mlfm_c, flow_c, rfm_p, mlfm_p, flow_p);
  }
  return 0;
}
