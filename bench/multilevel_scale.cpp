// Multilevel scaling harness: RunMultilevelFlow on generated Rent-style
// circuits of 10k / 50k / 100k nodes — the sizes the flat exact-oracle
// pipeline cannot touch (one injection round is O(n^2 log n); docs/scaling.md
// works the numbers). Reports the same row schema as regression_suite so
// scripts/bench_regression.py gates it against the "multilevel" section of
// BENCH_htp.json:
//
//   multilevel_scale --json out.json [--quick] [--seed N] [--threads N]
//                    [--metric-threads N] [--oracle-sample F]
//
// --quick keeps the 10k and 50k circuits (the CI gate); the full run adds
// 100k. Deterministic fields (cost, injections, dijkstra_pops) are bit-exact
// for every threads x metric-threads combination — the multilevel pipeline
// inherits the flat driver's determinism contract (coarsening and
// refinement are serial and RNG-free).
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "multilevel/multilevel_flow.hpp"

namespace {

struct ScaleRow {
  std::string name;
  double flow_wall_seconds = 0.0;
  double cost = 0.0;
  std::uint64_t injections = 0;
  std::uint64_t dijkstra_pops = 0;
  double metric_phase_ms = 0.0;
  std::size_t levels = 0;
  htp::NodeId coarsest_nodes = 0;
};

htp::Hypergraph ScaleCircuit(std::size_t gates, std::uint64_t seed) {
  htp::RentCircuitParams params;
  params.num_gates = gates;
  params.num_primary_inputs = gates / 25;
  params.seed = seed;
  return htp::RentCircuit(params);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  const bench::Options options =
      bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  bench::PrintHeader("MULTILEVEL SCALE",
                     "coarsen -> FLOW -> uncoarsen on 10k..100k-node Rent "
                     "circuits (docs/scaling.md)",
                     options);
  if (options.oracle_sample > 0.0)
    std::printf("oracle sample: %.3g of sources per metric (results differ "
                "from the exact-oracle table)\n",
                options.oracle_sample);

  const double calibration = bench::CalibrationSeconds();
  std::printf("calibration kernel: %.3fs\n", calibration);
  std::printf("%-10s %9s %12s %12s %10s %14s %7s %9s\n", "circuit", "nodes",
              "wall(s)", "wall(norm)", "cost", "dijkstra pops", "levels",
              "coarsest");

  std::vector<std::size_t> sizes{10000, 50000};
  if (!options.quick) sizes.push_back(100000);

  std::vector<ScaleRow> rows;
  for (const std::size_t gates : sizes) {
    const Hypergraph hg = ScaleCircuit(gates, options.seed);
    obs::ResetAll();
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    MultilevelParams params;
    params.flow.iterations = options.quick ? 1 : 2;
    params.flow.seed = options.seed;
    params.flow.threads = options.threads;
    params.flow.metric_threads = options.metric_threads;
    params.flow.budget = bench::FlowBudget(options);
    params.flow.injection.oracle_sample = options.oracle_sample;
    ScaleRow row;
    row.name = "rent" + std::to_string(gates / 1000) + "k";
    MultilevelResult result{TreePartition(hg, spec.root_level())};
    row.flow_wall_seconds = bench::TimeSeconds(
        [&] { result = RunMultilevelFlow(hg, spec, params); });
    RequireValidPartition(result.partition, spec);
    row.cost = result.cost;
    row.levels = result.coarsen_levels;
    row.coarsest_nodes = result.coarsest_nodes;
    const obs::Snapshot snap = obs::TakeSnapshot();
    row.injections = bench::CounterTotal(snap, "flow.injections");
    row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
    std::printf("%-10s %9u %12.3f %12.3f %10.0f %14llu %7zu %9u\n",
                row.name.c_str(), hg.num_nodes(), row.flow_wall_seconds,
                row.flow_wall_seconds / calibration, row.cost,
                static_cast<unsigned long long>(row.dijkstra_pops),
                row.levels, row.coarsest_nodes);
    rows.push_back(std::move(row));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"htp-bench-regression-v1\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"threads\": " << options.threads << ",\n";
    out << "  \"metric_threads\": " << options.metric_threads << ",\n";
    out << "  \"oracle_sample\": " << options.oracle_sample << ",\n";
    out << "  \"calibration_seconds\": " << calibration << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\""
          << ", \"flow_wall_seconds\": " << r.flow_wall_seconds
          << ", \"normalized_wall\": " << r.flow_wall_seconds / calibration
          << ", \"cost\": " << r.cost
          << ", \"injections\": " << r.injections
          << ", \"dijkstra_pops\": " << r.dijkstra_pops
          << ", \"metric_phase_ms\": " << r.metric_phase_ms
          << ", \"levels\": " << r.levels
          << ", \"coarsest_nodes\": " << r.coarsest_nodes << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
