// Crossover study: where does FLOW stop winning?
//
// Table 2's one FLOW loss is c6288, the array multiplier — a regular grid
// with no cluster structure for a spreading metric to discover. This bench
// sweeps the structure axis: array multipliers of growing width (pure
// grids) against Rent-style circuits of matched size (clustered), showing
// that the FLOW-vs-RFM outcome flips with the circuit family, not with the
// circuit size — the mechanism behind the paper's c6288 row.
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("CROSSOVER",
                     "FLOW vs RFM across circuit structure (grid "
                     "multipliers vs clustered Rent circuits)",
                     options);
  std::printf("%-22s %8s %10s %10s %10s\n", "circuit", "#nodes", "FLOW",
              "RFM", "FLOW/RFM");

  auto run = [&](const std::string& name, const Hypergraph& hg) {
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.15);
    HtpFlowParams fp;
    fp.iterations = options.quick ? 1 : 2;
    fp.seed = options.seed;
    fp.threads = options.threads;
    fp.budget = bench::FlowBudget(options);
    const double flow = RunHtpFlow(hg, spec, fp).cost;
    RfmParams rp;
    rp.seed = options.seed;
    const double rfm = PartitionCost(RunRfm(hg, spec, rp), spec);
    std::printf("%-22s %8u %10.0f %10.0f %10.2f\n", name.c_str(),
                hg.num_nodes(), flow, rfm, rfm > 0 ? flow / rfm : 0.0);
  };

  const std::vector<std::size_t> bits =
      options.quick ? std::vector<std::size_t>{6, 10}
                    : std::vector<std::size_t>{6, 8, 10, 12};
  for (std::size_t b : bits) {
    Hypergraph mult = ArrayMultiplier(b);
    run("multiplier " + std::to_string(b) + "x" + std::to_string(b), mult);
    RentCircuitParams params;
    params.num_gates = mult.num_nodes();
    params.num_primary_inputs = std::max<std::size_t>(8, 2 * b);
    params.seed = options.seed + b;
    run("rent " + std::to_string(mult.num_nodes()) + " gates",
        RentCircuit(params));
  }
  std::printf("\nexpected shape: FLOW/RFM > 1 on the grids, < 1 on the "
              "clustered circuits (the c6288 mechanism)\n");
  return 0;
}
