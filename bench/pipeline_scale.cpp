// Whole-pipeline wall-clock gate for the parallel-construction path:
// times FLOW with the disjoint-subtree task engine enabled plus the
// per-block parallel FM refiner end to end, and emits the same
// machine-readable JSON shape as regression_suite so
// scripts/bench_regression.py can gate it as the "pipeline" section of
// BENCH_htp.json (docs/benchmarks.md).
//
// The engine is a *mode*: results here are bit-identical for every
// --build-threads value != 1 (and for every --threads x --metric-threads
// combination), but intentionally NOT comparable to the serial-mode
// "circuits" section — the deterministic fields (cost, injections,
// dijkstra_pops) form their own baseline.
//
// Usage: pipeline_scale --json out.json [--quick] [--seed N] [--threads N]
//                       [--metric-threads N] [--build-threads N]
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/parallel_refine.hpp"

namespace {

struct CircuitRow {
  std::string name;
  double pipeline_wall_seconds = 0.0;  ///< construction + refinement
  double cost = 0.0;                   ///< refined cost (the pipeline output)
  std::uint64_t injections = 0;
  std::uint64_t dijkstra_pops = 0;
  double metric_phase_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  bench::Options options =
      bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  if (options.build_threads == 1) {
    // The point of this bench is the tasked path; default the knob on so a
    // bare run measures what the gate gates.
    options.build_threads = 2;
  }
  bench::PrintHeader("PIPELINE",
                     "tasked FLOW construction + per-block parallel FM, "
                     "end to end (see docs/parallelism.md)",
                     options);

  const double calibration = bench::CalibrationSeconds();
  std::printf("calibration kernel: %.3fs\n", calibration);
  std::printf("%-8s %12s %12s %10s %14s %14s\n", "circuit", "PIPE(s)",
              "PIPE(norm)", "cost", "dijkstra pops", "metric ms");

  std::vector<CircuitRow> rows;
  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    obs::ResetAll();
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    HtpFlowParams params;
    params.iterations = options.quick ? 2 : 4;
    params.seed = options.seed;
    params.threads = options.threads;
    params.metric_threads = options.metric_threads;
    params.build_threads = options.build_threads;
    HtpFmParams refine;
    CircuitRow row;
    row.name = name;
    HtpFlowResult result{TreePartition(hg, spec.root_level())};
    HtpFmStats refined;
    row.pipeline_wall_seconds = bench::TimeSeconds([&] {
      result = RunHtpFlow(hg, spec, params);
      refined = RefineHtpFmBlocks(result.partition, spec, refine,
                                  options.build_threads);
    });
    row.cost = refined.final_cost;
    for (const HtpFlowIteration& it : result.iterations)
      row.injections += it.injections;
    const obs::Snapshot snap = obs::TakeSnapshot();
    row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
    std::printf("%-8s %12.3f %12.3f %10.0f %14llu %14.1f\n", name.c_str(),
                row.pipeline_wall_seconds,
                row.pipeline_wall_seconds / calibration, row.cost,
                static_cast<unsigned long long>(row.dijkstra_pops),
                row.metric_phase_ms);
    rows.push_back(std::move(row));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    // Rows live under the "circuits" key like every suite bench: the gate
    // script lifts them into the baseline section named by --section.
    out << "{\n";
    out << "  \"schema\": \"htp-bench-regression-v1\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"threads\": " << options.threads << ",\n";
    out << "  \"metric_threads\": " << options.metric_threads << ",\n";
    out << "  \"build_threads\": " << options.build_threads << ",\n";
    out << "  \"calibration_seconds\": " << calibration << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CircuitRow& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\""
          << ", \"flow_wall_seconds\": " << r.pipeline_wall_seconds
          << ", \"normalized_wall\": " << r.pipeline_wall_seconds / calibration
          << ", \"cost\": " << r.cost
          << ", \"injections\": " << r.injections
          << ", \"dijkstra_pops\": " << r.dijkstra_pops
          << ", \"metric_phase_ms\": " << r.metric_phase_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
