// Performance-regression runner: times FLOW on the benchmark suite and
// emits a machine-readable BENCH_htp.json that scripts/bench_regression.py
// compares against the committed baseline (repo root BENCH_htp.json).
//
// Two classes of fields, compared differently:
//  * deterministic fields (cost, injections, dijkstra_pops) — bit-exact by
//    the library's determinism contract for every threads x metric-threads
//    combination, so the checker demands equality;
//  * wall-clock fields — machine-dependent, so each run also times a fixed
//    deterministic calibration kernel and reports per-circuit wall seconds
//    normalized by it. The checker compares the normalized ratios within a
//    tolerance, which transfers across hosts of different speeds.
//
// Usage: regression_suite --json out.json [--quick] [--seed N]
//                         [--threads N] [--metric-threads N]
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/htp_flow.hpp"

namespace {

struct CircuitRow {
  std::string name;
  double flow_wall_seconds = 0.0;
  double cost = 0.0;
  std::uint64_t injections = 0;
  std::uint64_t dijkstra_pops = 0;
  double metric_phase_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  // Strip --json (ours) before handing the rest to the shared parser.
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  const bench::Options options =
      bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  bench::PrintHeader("REGRESSION",
                     "FLOW wall-clock + deterministic work counters per "
                     "circuit (see docs/benchmarks.md)",
                     options);

  const double calibration = bench::CalibrationSeconds();
  std::printf("calibration kernel: %.3fs\n", calibration);
  std::printf("%-8s %12s %12s %10s %14s %14s\n", "circuit", "FLOW(s)",
              "FLOW(norm)", "cost", "dijkstra pops", "metric ms");

  std::vector<CircuitRow> rows;
  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    obs::ResetAll();
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
    HtpFlowParams params;
    params.iterations = options.quick ? 2 : 4;
    params.seed = options.seed;
    params.threads = options.threads;
    params.metric_threads = options.metric_threads;
    CircuitRow row;
    row.name = name;
    HtpFlowResult result{TreePartition(hg, spec.root_level())};
    row.flow_wall_seconds =
        bench::TimeSeconds([&] { result = RunHtpFlow(hg, spec, params); });
    row.cost = result.cost;
    for (const HtpFlowIteration& it : result.iterations)
      row.injections += it.injections;
    const obs::Snapshot snap = obs::TakeSnapshot();
    row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
    std::printf("%-8s %12.3f %12.3f %10.0f %14llu %14.1f\n", name.c_str(),
                row.flow_wall_seconds, row.flow_wall_seconds / calibration,
                row.cost,
                static_cast<unsigned long long>(row.dijkstra_pops),
                row.metric_phase_ms);
    rows.push_back(std::move(row));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"htp-bench-regression-v1\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"threads\": " << options.threads << ",\n";
    out << "  \"metric_threads\": " << options.metric_threads << ",\n";
    out << "  \"calibration_seconds\": " << calibration << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CircuitRow& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\""
          << ", \"flow_wall_seconds\": " << r.flow_wall_seconds
          << ", \"normalized_wall\": " << r.flow_wall_seconds / calibration
          << ", \"cost\": " << r.cost
          << ", \"injections\": " << r.injections
          << ", \"dijkstra_pops\": " << r.dijkstra_pops
          << ", \"metric_phase_ms\": " << r.metric_phase_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
