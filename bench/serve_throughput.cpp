// Cold-vs-warm artifact-cache gate for the htp_serve session pipeline:
// runs the SAME 10k-node Rent-circuit request twice through RunSession
// against one ArtifactCache — first with every tier cold, then warm — and
// emits both as rows in the regression_suite JSON shape, so
// scripts/bench_regression.py gates them as the "serve" section of
// BENCH_htp.json (docs/benchmarks.md, docs/server.md).
//
// The warm run must be at least kMinWarmSpeedup x faster: the spreading
// metric (the dominant phase; docs/server.md works the numbers) and the
// CSR lowering are served from cache, leaving only construction and
// uncoarsening refinement. The bench enforces the floor itself — a cache
// that silently stops hitting fails the binary, not just the baseline
// diff — and also re-checks the bit-identity contract: the warm partition
// must equal the cold one exactly.
//
// Deterministic row fields: the cold row carries the full run's
// cost/injections/dijkstra_pops; the warm row's injections are 0 BY
// DESIGN — every metric was a cache hit, no injection ever ran — which is
// precisely the behavior the baseline pins down.
//
// Usage: serve_throughput --json out.json [--quick] [--seed N]
//                         [--threads N] [--metric-threads N]
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/partition_io.hpp"
#include "server/session.hpp"

namespace {

struct ServeRow {
  std::string name;
  double wall_seconds = 0.0;
  double cost = 0.0;
  std::uint64_t injections = 0;
  std::uint64_t dijkstra_pops = 0;
  double metric_phase_ms = 0.0;
};

constexpr double kMinWarmSpeedup = 5.0;

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  const bench::Options options =
      bench::ParseArgs(static_cast<int>(rest.size()), rest.data());
  bench::PrintHeader("SERVE THROUGHPUT",
                     "cold vs warm artifact cache on a repeated 10k-node "
                     "request (docs/server.md)",
                     options);

  const double calibration = bench::CalibrationSeconds();
  std::printf("calibration kernel: %.3fs\n", calibration);

  RentCircuitParams circuit;
  circuit.num_gates = 10000;
  circuit.num_primary_inputs = 400;
  circuit.seed = options.seed;
  auto hg = std::make_shared<const Hypergraph>(RentCircuit(circuit));

  // The request a serve client would repeat: flat FLOW with the sampled
  // separation oracle (docs/scaling.md) — the tractable way to run 10k
  // nodes flat, and the regime where the metric phase dominates the wall
  // clock, which is exactly what the cache tiers skip on the warm run.
  serve::SessionRequest request;
  request.netlist = hg;
  request.height = 3;
  request.iterations = 1;
  request.oracle_sample = 0.02;
  request.threads = options.threads;
  request.metric_threads = options.metric_threads;
  request.seed = options.seed;

  serve::ArtifactCache cache;
  std::printf("%-14s %12s %12s %10s %14s %12s\n", "phase", "wall(s)",
              "wall(norm)", "cost", "dijkstra pops", "metric hits");

  std::vector<ServeRow> rows;
  std::string partitions[2];
  for (const char* phase : {"cold", "warm"}) {
    obs::ResetAll();
    serve::SessionResult result = RunSession(request, &cache);
    ServeRow row;
    row.name = std::string("rent10k_") + phase;
    row.wall_seconds = result.run_seconds;
    row.cost = result.cost;
    const obs::Snapshot snap = obs::TakeSnapshot();
    row.injections = bench::CounterTotal(snap, "flow.injections");
    row.dijkstra_pops = bench::CounterTotal(snap, "dijkstra.pops");
    for (const obs::TimerValue& t : snap.timers)
      if (t.name == "flow.compute_metric")
        row.metric_phase_ms = static_cast<double>(t.total_ns) / 1e6;
    partitions[rows.size()] = WritePartitionText(*result.partition);
    std::printf("%-14s %12.3f %12.3f %10.0f %14llu %12zu\n", row.name.c_str(),
                row.wall_seconds, row.wall_seconds / calibration, row.cost,
                static_cast<unsigned long long>(row.dijkstra_pops),
                result.cache.metric_hits);
    rows.push_back(std::move(row));
  }

  // The two contracts this bench exists to enforce.
  if (partitions[0] != partitions[1]) {
    std::fprintf(stderr,
                 "FAIL: warm partition differs from cold partition "
                 "(cache broke bit-identity)\n");
    return 1;
  }
  const double speedup = rows[0].wall_seconds / rows[1].wall_seconds;
  std::printf("warm speedup: %.1fx (floor %.1fx)\n", speedup,
              kMinWarmSpeedup);
  if (speedup < kMinWarmSpeedup) {
    std::fprintf(stderr,
                 "FAIL: warm run only %.2fx faster than cold "
                 "(>= %.1fx required)\n",
                 speedup, kMinWarmSpeedup);
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"htp-bench-regression-v1\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << options.seed << ",\n";
    out << "  \"threads\": " << options.threads << ",\n";
    out << "  \"metric_threads\": " << options.metric_threads << ",\n";
    out << "  \"oracle_sample\": " << options.oracle_sample << ",\n";
    out << "  \"calibration_seconds\": " << calibration << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ServeRow& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\""
          << ", \"flow_wall_seconds\": " << r.wall_seconds
          << ", \"normalized_wall\": " << r.wall_seconds / calibration
          << ", \"cost\": " << r.cost
          << ", \"injections\": " << r.injections
          << ", \"dijkstra_pops\": " << r.dijkstra_pops
          << ", \"metric_phase_ms\": " << r.metric_phase_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
