// Regenerates TABLE 1 of the paper: "The sizes of the ISCAS85 test cases"
// (#nodes, #nets, #pins per circuit).
//
// The published numeric cells did not survive the scan; the table below
// reports the statistics of our calibrated stand-in circuits (gate counts
// match the published ISCAS85 gate counts; see DESIGN.md). Pass
// --bench-dir to print the statistics of real .bench files instead.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("TABLE 1", "the sizes of the ISCAS85 test cases",
                     options);
  std::printf("%-8s %8s %8s %8s %12s %14s\n", "circuit", "#nodes", "#nets",
              "#pins", "max net deg", "avg net deg");
  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    const HypergraphStats st = ComputeStats(hg);
    std::printf("%-8s %8zu %8zu %8zu %12zu %14.2f\n", name.c_str(), st.nodes,
                st.nets, st.pins, st.max_net_degree, st.avg_net_degree);
  }
  return 0;
}
