// Regenerates TABLE 2 of the paper: "Partitioning results of three
// algorithms" — the interconnection cost (Equation (1)) of the GFM, RFM,
// and FLOW constructive algorithms on the five ISCAS85 test cases, with the
// FLOW runtime, under the paper's experimental hierarchy (full binary tree
// of height 4, Section 4).
//
// Expected shape (the published cells did not survive the scan): "FLOW
// outperforms GFM and RFM in most cases, especially with significant
// improvements for circuits c2670 and c7552. However, the result for c6288
// by FLOW was worse than those by GFM and RFM."
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/gfm.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("TABLE 2",
                     "partitioning results of the three constructive "
                     "algorithms (full binary tree, height 4)",
                     options);
  if (options.trials > 1)
    std::printf("costs are means over %zu independent seeds\n",
                options.trials);
  // With --threads != 1 or --metric-threads != 1 every FLOW run is repeated
  // fully serially, so the table also reports the parallel wall-clock
  // speedup (costs are identical by construction; any mismatch aborts the
  // bench). A --time-budget makes costs wall-clock-dependent, which voids
  // the bit-identity premise, so the divergence check is downgraded to a
  // warning then.
  const bool report_speedup =
      options.threads != 1 || options.metric_threads != 1;
  std::printf("%-8s %10s %10s %10s %12s %12s %12s", "circuit", "GFM", "RFM",
              "FLOW", "GFM CPU(s)", "RFM CPU(s)", "FLOW CPU(s)");
  if (report_speedup) std::printf(" %12s %8s", "FLOW@1(s)", "speedup");
  std::printf("\n");

  double flow_wins = 0, cases = 0;
  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    // Per-circuit telemetry scope: prints the per-phase breakdown under the
    // row and streams it to --obs-jsonl. With --threads != 1 the totals
    // include the serial reference re-runs.
    bench::ObsSection obs_section(options, "table2_constructive", name);
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());

    double gfm_cost = 0, rfm_cost = 0, flow_cost = 0;
    double gfm_t = 0, rfm_t = 0, flow_t = 0, flow_serial_t = 0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed = options.seed + trial * 7919;
      gfm_t += bench::TimeSeconds([&] {
        GfmParams p;
        p.seed = seed;
        gfm_cost += PartitionCost(RunGfm(hg, spec, p), spec);
      });
      rfm_t += bench::TimeSeconds([&] {
        RfmParams p;
        p.seed = seed;
        rfm_cost += PartitionCost(RunRfm(hg, spec, p), spec);
      });
      HtpFlowParams p;
      p.iterations = options.quick ? 2 : 4;
      p.seed = seed;
      p.threads = options.threads;
      p.budget = bench::FlowBudget(options);
      p.metric_threads = options.metric_threads;
      double cost = 0;
      flow_t += bench::TimeSeconds([&] { cost = RunHtpFlow(hg, spec, p).cost; });
      flow_cost += cost;
      if (report_speedup) {
        p.threads = 1;
        p.metric_threads = 1;
        double serial_cost = 0;
        flow_serial_t += bench::TimeSeconds(
            [&] { serial_cost = RunHtpFlow(hg, spec, p).cost; });
        if (serial_cost != cost) {
          if (options.Deadlined()) {
            std::fprintf(stderr,
                         "note: costs diverge under --time-budget "
                         "(expected; the deadline is schedule-dependent): "
                         "%s %.17g vs serial %.17g\n",
                         name.c_str(), cost, serial_cost);
          } else {
            std::fprintf(stderr,
                         "determinism violation on %s: threads=%zu "
                         "metric-threads=%zu cost %.17g != serial cost "
                         "%.17g\n",
                         name.c_str(), options.threads,
                         options.metric_threads, cost, serial_cost);
            return 1;
          }
        }
      }
    }
    const double n = static_cast<double>(options.trials);
    gfm_cost /= n;
    rfm_cost /= n;
    flow_cost /= n;
    std::printf("%-8s %10.0f %10.0f %10.0f %12.2f %12.2f %12.2f",
                name.c_str(), gfm_cost, rfm_cost, flow_cost, gfm_t / n,
                rfm_t / n, flow_t / n);
    if (report_speedup)
      std::printf(" %12.2f %7.2fx", flow_serial_t / n,
                  flow_t > 0 ? flow_serial_t / flow_t : 0.0);
    std::printf("\n");
    cases += 1;
    if (flow_cost <= std::min(gfm_cost, rfm_cost)) flow_wins += 1;
  }
  std::printf("\nFLOW best on %.0f of %.0f circuits "
              "(paper: best on 4 of 5, losing on c6288)\n",
              flow_wins, cases);
  return 0;
}
