// Regenerates TABLE 3 of the paper: "Partitioning results of three
// algorithms combined with iterative improvement algorithms" — the GFM+,
// RFM+, and FLOW+ costs (each constructive result refined by the
// generalized Fiduccia-Mattheyses improver of [9]) and the percentage
// improvement the refinement achieved.
//
// Expected shape: "the FM algorithm definitely improves the initial
// solutions from the three constructive algorithms. Combined with FM,
// FLOW+ still beats GFM+ and RFM+ for c2670 and c7552 but the cost
// differences have decreased."
#include "bench_common.hpp"
#include "core/htp_flow.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  const bench::Options options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("TABLE 3",
                     "constructive algorithms combined with the generalized "
                     "FM iterative improvement",
                     options);
  std::printf("%-8s | %8s %8s | %8s %8s | %8s %8s\n", "circuit", "GFM+",
              "improv", "RFM+", "improv", "FLOW+", "improv");

  for (const auto& [name, hg] : bench::LoadSuite(options)) {
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());

    GfmParams gp;
    gp.seed = options.seed;
    TreePartition gfm = RunGfm(hg, spec, gp);
    RfmParams rp;
    rp.seed = options.seed;
    TreePartition rfm = RunRfm(hg, spec, rp);
    HtpFlowParams fp;
    fp.iterations = options.quick ? 2 : 4;
    fp.seed = options.seed;
    fp.threads = options.threads;
    fp.budget = bench::FlowBudget(options);
    HtpFlowResult flow = RunHtpFlow(hg, spec, fp);

    struct Row {
      TreePartition* tp;
      double plus;
      double improv;
    } rows[] = {{&gfm, 0, 0}, {&rfm, 0, 0}, {&flow.partition, 0, 0}};
    for (Row& row : rows) {
      const double before = PartitionCost(*row.tp, spec);
      HtpFmParams hp;
      hp.seed = options.seed;
      const HtpFmStats stats = RefineHtpFm(*row.tp, spec, hp);
      row.plus = stats.final_cost;
      row.improv = before > 0 ? 100.0 * (before - stats.final_cost) / before
                              : 0.0;
    }
    std::printf("%-8s | %8.0f %7.1f%% | %8.0f %7.1f%% | %8.0f %7.1f%%\n",
                name.c_str(), rows[0].plus, rows[0].improv, rows[1].plus,
                rows[1].improv, rows[2].plus, rows[2].improv);
  }
  return 0;
}
