// The paper's Figure 2, end to end: a 16-node graph whose optimal
// hierarchical tree partition and spreading metric the paper draws.
// Prints the metric labels, verifies Lemma 1 feasibility, and shows FLOW
// recovering the optimum. (bench/figure2_example additionally certifies
// optimality by exhaustive search and solves the LP exactly.)
#include <cstdio>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"

int main() {
  using namespace htp;
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();

  std::printf("Figure 2 instance: %u nodes, %u unit-capacity edges\n",
              hg.num_nodes(), hg.num_nets());
  std::printf("hierarchy: %s\n\n", spec.ToString().c_str());

  TreePartition optimal = Figure2OptimalPartition(hg);
  std::printf("intended partition (cost %.0f):\n%s\n",
              PartitionCost(optimal, spec), optimal.ToString().c_str());

  // The spreading metric of Figure 2(b): label every nonzero edge.
  const SpreadingMetric metric = MetricFromPartition(optimal, spec);
  std::printf("nonzero spreading-metric labels d(e) = cost(e)/c(e):\n");
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    if (metric[e] == 0.0) continue;
    const auto pins = hg.pins(e);
    std::printf("  (%2u,%2u): d = %.0f\n", pins[0], pins[1], metric[e]);
  }
  std::printf("metric feasibility for (P1): %s\n\n",
              CheckSpreadingMetric(hg, spec, metric) ? "violated (!)"
                                                     : "feasible (Lemma 1)");

  HtpFlowParams params;
  params.iterations = 4;
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  std::printf("FLOW (Algorithm 1) cost: %.0f — %s\n", flow.cost,
              flow.cost == kFigure2OptimalCost ? "optimal" : "suboptimal");
  return 0;
}
