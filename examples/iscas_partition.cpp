// Partition an ISCAS85 `.bench` netlist from disk — or the embedded c17
// when no path is given — into the paper's full-binary-height-4 hierarchy
// (scaled down for tiny circuits), comparing all three constructive
// algorithms plus FM refinement.
//
//   $ ./iscas_partition [path/to/circuit.bench] [height]
#include <cstdio>
#include <cstdlib>

#include "core/htp_flow.hpp"
#include "netlist/bench_parser.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"

int main(int argc, char** argv) {
  using namespace htp;
  BenchCircuit circuit;
  if (argc > 1) {
    circuit = ParseBenchFile(argv[1]);
    std::printf("loaded %s: ", argv[1]);
  } else {
    circuit = ParseBench(C17BenchText());
    std::printf("no file given; using the embedded ISCAS85 c17: ");
  }
  std::printf("%zu gates (%zu PIs, %zu POs) -> %u nodes, %u nets, %zu pins\n",
              circuit.num_gates, circuit.num_primary_inputs,
              circuit.num_primary_outputs, circuit.hg.num_nodes(),
              circuit.hg.num_nets(), circuit.hg.num_pins());
  const Hypergraph& hg = circuit.hg;

  // The paper's experimental hierarchy is a full binary tree of height 4
  // (16 leaves); tiny circuits get a shallower tree so leaves stay >= 2
  // cells.
  Level height = 4;
  if (argc > 2) height = static_cast<Level>(std::strtoul(argv[2], nullptr, 10));
  while (height > 1 && hg.total_size() < 4.0 * (1u << height)) --height;
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), height);
  std::printf("hierarchy: %s\n\n", spec.ToString().c_str());

  struct Row {
    const char* name;
    TreePartition tp;
  };
  GfmParams gfm_params;
  RfmParams rfm_params;
  HtpFlowParams flow_params;
  flow_params.iterations = 4;
  std::vector<Row> rows;
  rows.push_back({"GFM", RunGfm(hg, spec, gfm_params)});
  rows.push_back({"RFM", RunRfm(hg, spec, rfm_params)});
  rows.push_back({"FLOW", RunHtpFlow(hg, spec, flow_params).partition});

  std::printf("%-6s %12s %12s %10s\n", "algo", "constructive", "after FM",
              "improv");
  for (Row& row : rows) {
    const double before = PartitionCost(row.tp, spec);
    const HtpFmStats fm = RefineHtpFm(row.tp, spec);
    RequireValidPartition(row.tp, spec);
    std::printf("%-6s %12.0f %12.0f %9.1f%%\n", row.name, before,
                fm.final_cost,
                before > 0 ? 100.0 * (before - fm.final_cost) / before : 0.0);
  }
  return 0;
}
