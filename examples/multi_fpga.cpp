// Multi-FPGA prototyping scenario — the application that motivates HTP.
//
// The paper's first author worked on FPGA-based logic emulation (Aptix):
// a large netlist is mapped onto a *hardware hierarchy* — boards hold
// FPGAs, FPGAs hold logic regions — and an I/O pin consumed at a higher
// level of the hierarchy is much more expensive (board connectors vs FPGA
// pins vs internal routing). That is exactly a weighted HTP instance:
//
//   level 0: FPGA quadrant   (cheap internal crossings,   w0 = 1)
//   level 1: FPGA            (FPGA pins,                  w1 = 4)
//   level 2: board           (backplane connector pins,   w2 = 16)
//   level 3: system          (root)
//
// This example partitions a 1200-gate synthetic design onto 2 boards x
// 2 FPGAs x 2 quadrants and compares FLOW+ against the RFM baseline,
// reporting pins consumed per hierarchy level.
#include <cstdio>

#include "core/htp_flow.hpp"
#include "netlist/generators.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"

int main() {
  using namespace htp;

  RentCircuitParams circuit_params;
  circuit_params.num_gates = 1200;
  circuit_params.num_primary_inputs = 80;
  circuit_params.seed = 7;
  Hypergraph design = RentCircuit(circuit_params);
  std::printf("design: %u gates, %u nets, %zu pins\n", design.num_nodes(),
              design.num_nets(), design.num_pins());

  // 2 boards x 2 FPGAs x 2 quadrants = 8 leaves, 12% utilization slack,
  // crossing costs rising 1 -> 4 -> 16 with the hierarchy level.
  const HierarchySpec system =
      UniformHierarchy(design.total_size(), /*height=*/3, /*branching=*/2,
                       /*slack=*/0.12, {1.0, 4.0, 16.0});
  std::printf("hardware hierarchy: %s\n\n", system.ToString().c_str());

  auto report = [&](const char* tag, const TreePartition& tp) {
    const std::vector<double> by_level = PartitionCostByLevel(tp, system);
    const std::vector<std::size_t> cut = CutNetsByLevel(tp);
    std::printf("%-6s total weighted pin cost %7.0f | quadrant-crossing "
                "nets %4zu, FPGA-crossing %4zu, board-crossing %4zu\n",
                tag, PartitionCost(tp, system), cut[0], cut[1], cut[2]);
  };

  HtpFlowParams flow_params;
  flow_params.iterations = 4;
  flow_params.seed = 1;
  HtpFlowResult flow = RunHtpFlow(design, system, flow_params);
  report("FLOW", flow.partition);
  RefineHtpFm(flow.partition, system);
  report("FLOW+", flow.partition);

  RfmParams rfm_params;
  rfm_params.seed = 1;
  TreePartition rfm = RunRfm(design, system, rfm_params);
  report("RFM", rfm);
  RefineHtpFm(rfm, system);
  report("RFM+", rfm);

  RequireValidPartition(flow.partition, system);
  RequireValidPartition(rfm, system);

  // Show the placement of the first few gates.
  std::printf("\nsample assignment (gate -> board/FPGA/quadrant):\n");
  for (NodeId v = 0; v < 6; ++v) {
    std::printf("  %-4s -> board %u, fpga %u, quadrant %u\n",
                design.node_name(v).c_str(),
                flow.partition.block_at(v, 2), flow.partition.block_at(v, 1),
                flow.partition.block_at(v, 0));
  }
  return 0;
}
