// Quickstart: build a netlist with the public API, describe a hierarchy,
// run the network-flow partitioner (Algorithm 1), refine with the
// generalized FM improver, and inspect the result.
//
//   $ ./quickstart
//
// The circuit is a tiny 12-cell design with three natural 4-cell clusters;
// the hierarchy asks for leaves of capacity 4 under a binary tree of
// height 2.
#include <cstdio>

#include "core/htp_flow.hpp"
#include "partition/htp_fm.hpp"

int main() {
  using namespace htp;

  // 1. Describe the netlist. Nodes are cells with a size; nets connect two
  //    or more cells and carry a capacity (pin weight).
  HypergraphBuilder builder;
  std::vector<NodeId> cell(12);
  for (int i = 0; i < 12; ++i)
    cell[i] = builder.add_node(1.0, "u" + std::to_string(i));
  // Three clusters of four cells, each wired as a ring plus a chord...
  for (int c = 0; c < 3; ++c) {
    const NodeId base = cell[4 * c];
    builder.add_net({base, base + 1});
    builder.add_net({base + 1, base + 2});
    builder.add_net({base + 2, base + 3});
    builder.add_net({base + 3, base});
    builder.add_net({base, base + 2});
  }
  // ...plus sparse inter-cluster nets (one of them a 3-pin net).
  builder.add_net({cell[0], cell[4]}, 1.0, "bus_a");
  builder.add_net({cell[5], cell[9]}, 1.0, "bus_b");
  builder.add_net({cell[2], cell[6], cell[10]}, 1.0, "ctl");
  Hypergraph hg = builder.build();
  std::printf("netlist: %u cells, %u nets, %zu pins\n", hg.num_nodes(),
              hg.num_nets(), hg.num_pins());

  // 2. Describe the target hierarchy: leaves hold 4 units (C0), level-1
  //    blocks hold 8 (C1), the root holds everything; binary branching; the
  //    level-1 boundary costs twice the leaf boundary.
  HierarchySpec spec({
      {4.0, 2, 1.0},   // level 0: C=4, w=1
      {8.0, 2, 2.0},   // level 1: C=8, K=2, w=2
      {12.0, 2, 1.0},  // root
  });
  std::printf("hierarchy: %s\n", spec.ToString().c_str());

  // 3. Run the FLOW partitioner (spreading metric by stochastic flow
  //    injection + Prim-style find_cut, best of N iterations).
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 42;
  HtpFlowResult result = RunHtpFlow(hg, spec, params);
  std::printf("\nFLOW cost (Equation (1)): %.0f\n", result.cost);

  // 4. Refine with the generalized Fiduccia-Mattheyses improver.
  const HtpFmStats fm = RefineHtpFm(result.partition, spec);
  std::printf("after FM refinement:      %.0f\n", fm.final_cost);

  // 5. Inspect the tree and the per-level cost breakdown.
  std::printf("\n%s", result.partition.ToString().c_str());
  const std::vector<double> by_level =
      PartitionCostByLevel(result.partition, spec);
  for (Level l = 0; l < by_level.size(); ++l)
    std::printf("cost at level %u: %.0f\n", l, by_level[l]);

  // A partition is always worth validating after custom post-processing.
  RequireValidPartition(result.partition, spec);
  std::printf("\npartition is valid against the spec\n");
  return 0;
}
