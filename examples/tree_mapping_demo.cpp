// Min-cost tree partitioning (Vijayan 1991) — the predecessor problem the
// paper's introduction builds on: map a netlist onto an ARBITRARY tree of
// capacitated sites, minimizing the total tree-routing cost of the nets
// (each net pays the weighted size of the minimal subtree spanning its
// pins' sites).
//
// Scenario: a backplane modeled as a path of 6 card slots — nets routed
// between distant slots traverse every intermediate backplane segment —
// versus a hub-and-spoke topology of the same capacity. The mapper shows
// how topology changes both the achievable cost and where the optimizer
// places the clusters.
#include <cstdio>

#include "netlist/generators.hpp"
#include "treemap/tree_mapping.hpp"

int main() {
  using namespace htp;

  RentCircuitParams params;
  params.num_gates = 480;
  params.num_primary_inputs = 40;
  params.seed = 5;
  Hypergraph design = RentCircuit(params);
  std::printf("design: %u gates, %u nets, %zu pins\n\n", design.num_nodes(),
              design.num_nets(), design.num_pins());

  const double slot_capacity = design.total_size() / 5.0;  // 20% headroom

  struct Scenario {
    const char* name;
    TreeTopology tree;
  } scenarios[] = {
      {"backplane path (6 slots)", TreeTopology::Path(6, slot_capacity)},
      {"hub and spoke (6 cards)", TreeTopology::Star(6, slot_capacity)},
      {"2-level H-tree (4 leaves)",
       TreeTopology::KAryLeaves(2, 2, design.total_size() / 3.0)},
  };

  for (Scenario& sc : scenarios) {
    Rng rng(17);
    TreeMapping mapping = GreedyTreeMap(design, sc.tree, rng);
    const double greedy_cost = MappingCost(mapping);
    const TreeMapStats stats = RefineTreeMap(mapping);
    if (auto issues = ValidateMapping(mapping); !issues.empty())
      throw Error("invalid mapping in scenario");
    std::printf("%-28s greedy %8.0f -> refined %8.0f (%zu moves, %zu "
                "passes)\n",
                sc.name, greedy_cost, stats.final_cost, stats.moves_kept,
                stats.passes);
    // Occupancy per capacitated site.
    std::printf("  site loads:");
    for (TreeVertexId v = 0; v < sc.tree.num_vertices(); ++v)
      if (sc.tree.capacity(v) > 0.0)
        std::printf(" %s=%.0f", sc.tree.name(v).c_str(), mapping.load(v));
    std::printf("\n");
  }
  return 0;
}
