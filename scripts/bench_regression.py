#!/usr/bin/env python3
"""Run bench/regression_suite and compare against the committed baseline.

The baseline (BENCH_htp.json at the repo root) records, per circuit, the
deterministic work fields of a quick-mode FLOW run — cost, injections,
dijkstra_pops — plus wall-clock seconds normalized by a fixed calibration
kernel timed inside the same process. Comparison rules:

* deterministic fields must match the baseline EXACTLY: these are covered
  by the library's determinism contract (bit-identical for every
  threads x metric-threads combination), so any drift is a real behavior
  change, not noise;
* ``normalized_wall`` may regress by at most ``--tolerance`` (default 15%).
  Normalization by the calibration kernel makes the ratio transfer across
  hosts of different speeds; improvements never fail the check.

Usage (CI runs exactly this — see .github/workflows/ci.yml):

    python3 scripts/bench_regression.py --binary build-release/bench/regression_suite \\
        -- --quick --threads 2 --metric-threads 2

Pass ``--update`` to regenerate the baseline instead of checking (commit
the resulting BENCH_htp.json together with the change that moved the
numbers, e.g. after retuning the quick suite or intentionally changing
results). Stdlib only.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "BENCH_htp.json"
EXACT_FIELDS = ("cost", "injections", "dijkstra_pops")


def run_suite(binary, extra_args):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    cmd = [str(binary), "--json", str(out_path)] + list(extra_args)
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)
    with open(out_path) as f:
        result = json.load(f)
    out_path.unlink()
    return result


def compare(baseline, current, tolerance):
    failures = []
    base_by_name = {c["name"]: c for c in baseline["circuits"]}
    cur_by_name = {c["name"]: c for c in current["circuits"]}
    if sorted(base_by_name) != sorted(cur_by_name):
        failures.append(
            f"circuit sets differ: baseline {sorted(base_by_name)} vs "
            f"current {sorted(cur_by_name)}"
        )
        return failures
    for name, base in base_by_name.items():
        cur = cur_by_name[name]
        for field in EXACT_FIELDS:
            if base[field] != cur[field]:
                failures.append(
                    f"{name}: deterministic field '{field}' changed: "
                    f"baseline {base[field]} vs current {cur[field]} "
                    f"(exact match required; if intended, rerun with "
                    f"--update and commit BENCH_htp.json)"
                )
        ratio = cur["normalized_wall"] / base["normalized_wall"]
        status = "ok" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(
            f"{name}: normalized wall {base['normalized_wall']:.3f} -> "
            f"{cur['normalized_wall']:.3f} ({ratio:.2f}x, {status})"
        )
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: normalized wall regressed {ratio:.2f}x "
                f"(> {1.0 + tolerance:.2f}x allowed)"
            )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--binary",
        default=str(REPO / "build-release" / "bench" / "regression_suite"),
        help="path to the built regression_suite binary",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: repo-root BENCH_htp.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional normalized-wall regression (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the baseline from this run instead of checking",
    )
    parser.add_argument(
        "suite_args",
        nargs="*",
        help="arguments forwarded to regression_suite (after --), "
        "e.g. --quick --threads 2 --metric-threads 2",
    )
    args = parser.parse_args()

    current = run_suite(args.binary, args.suite_args)
    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    for knob in ("quick", "seed"):
        if baseline.get(knob) != current.get(knob):
            print(
                f"error: baseline was recorded with {knob}="
                f"{baseline.get(knob)} but this run used {current.get(knob)}",
                file=sys.stderr,
            )
            return 1
    failures = compare(baseline, current, args.tolerance)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("bench regression check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
