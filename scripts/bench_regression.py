#!/usr/bin/env python3
"""Run bench/regression_suite and compare against the committed baseline.

The baseline (BENCH_htp.json at the repo root) records, per circuit, the
deterministic work fields of a quick-mode FLOW run — cost, injections,
dijkstra_pops — plus wall-clock seconds normalized by a fixed calibration
kernel timed inside the same process. Comparison rules:

* deterministic fields must match the baseline EXACTLY: these are covered
  by the library's determinism contract (bit-identical for every
  threads x metric-threads combination), so any drift is a real behavior
  change, not noise;
* ``normalized_wall`` may regress by at most ``--tolerance`` (default 15%).
  Normalization by the calibration kernel makes the ratio transfer across
  hosts of different speeds; improvements never fail the check.

Usage (CI runs exactly this — see .github/workflows/ci.yml):

    python3 scripts/bench_regression.py --binary build-release/bench/regression_suite \\
        -- --quick --threads 2 --metric-threads 2

Pass ``--update`` to regenerate the baseline instead of checking (commit
the resulting BENCH_htp.json together with the change that moved the
numbers, e.g. after retuning the quick suite or intentionally changing
results). Stdlib only.

The baseline holds one row list per gated bench: ``circuits`` for
bench/regression_suite (the default) and ``multilevel`` for
bench/multilevel_scale. ``--section NAME`` selects which baseline list the
current run's rows are compared against (the suite binary always emits its
rows under ``circuits`` in its own output); ``--update --section NAME``
rewrites only that list, leaving the others untouched:

    python3 scripts/bench_regression.py \\
        --binary build-release/bench/multilevel_scale --section multilevel \\
        -- --quick --threads 2 --metric-threads 2
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "BENCH_htp.json"
EXACT_FIELDS = ("cost", "injections", "dijkstra_pops")


def run_suite(binary, extra_args):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    cmd = [str(binary), "--json", str(out_path)] + list(extra_args)
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)
    with open(out_path) as f:
        result = json.load(f)
    out_path.unlink()
    return result


def compare(baseline_rows, current_rows, tolerance):
    failures = []
    base_by_name = {c["name"]: c for c in baseline_rows}
    cur_by_name = {c["name"]: c for c in current_rows}
    if sorted(base_by_name) != sorted(cur_by_name):
        failures.append(
            f"circuit sets differ: baseline {sorted(base_by_name)} vs "
            f"current {sorted(cur_by_name)}"
        )
        return failures
    for name, base in base_by_name.items():
        cur = cur_by_name[name]
        for field in EXACT_FIELDS:
            if base[field] != cur[field]:
                failures.append(
                    f"{name}: deterministic field '{field}' changed: "
                    f"baseline {base[field]} vs current {cur[field]} "
                    f"(exact match required; if intended, rerun with "
                    f"--update and commit BENCH_htp.json)"
                )
        ratio = cur["normalized_wall"] / base["normalized_wall"]
        status = "ok" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(
            f"{name}: normalized wall {base['normalized_wall']:.3f} -> "
            f"{cur['normalized_wall']:.3f} ({ratio:.2f}x, {status})"
        )
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: normalized wall regressed {ratio:.2f}x "
                f"(> {1.0 + tolerance:.2f}x allowed)"
            )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--binary",
        default=str(REPO / "build-release" / "bench" / "regression_suite"),
        help="path to the built regression_suite binary",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: repo-root BENCH_htp.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional normalized-wall regression (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the baseline from this run instead of checking",
    )
    parser.add_argument(
        "--section",
        default="circuits",
        help="baseline row list to compare/update (default 'circuits'; "
        "multilevel_scale rows live under 'multilevel')",
    )
    parser.add_argument(
        "suite_args",
        nargs="*",
        help="arguments forwarded to regression_suite (after --), "
        "e.g. --quick --threads 2 --metric-threads 2",
    )
    args = parser.parse_args()

    current = run_suite(args.binary, args.suite_args)
    if args.update:
        # Replace only the selected section; other gated benches' baselines
        # (and the shared knob fields, when untouched) survive the rewrite.
        baseline_path = pathlib.Path(args.baseline)
        baseline = {}
        if baseline_path.exists():
            with open(baseline_path) as f:
                baseline = json.load(f)
        for key, value in current.items():
            if key != "circuits":
                baseline[key] = value
        baseline[args.section] = current["circuits"]
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline section '{args.section}' written to {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    for knob in ("quick", "seed"):
        if baseline.get(knob) != current.get(knob):
            print(
                f"error: baseline was recorded with {knob}="
                f"{baseline.get(knob)} but this run used {current.get(knob)}",
                file=sys.stderr,
            )
            return 1
    if args.section not in baseline:
        print(
            f"error: baseline has no '{args.section}' section; regenerate "
            f"with --update --section {args.section}",
            file=sys.stderr,
        )
        return 1
    failures = compare(baseline[args.section], current["circuits"],
                       args.tolerance)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("bench regression check passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
