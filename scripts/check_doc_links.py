#!/usr/bin/env python3
"""Fail on dead relative links and stale file paths in the markdown docs.

Two checks over README.md, DESIGN.md, and docs/*.md:

1. Inline markdown links [text](target): every relative target must resolve
   to a file or directory in the repository (after stripping #fragments).
   External links (http/https/mailto) and in-page #fragments are ignored.

2. Backticked file paths (`src/core/htp_flow.cpp`, `docs/usage.md`,
   `scripts/check_doc_links.py`, ...): every path-looking inline code span
   must name something that exists in the tree — this catches doc drift
   when sources are renamed. A span counts as a path when its first segment
   is a known top-level directory (src, docs, tests, bench, examples,
   scripts, .github) or it ends in a doc/source suffix and contains a '/'.
   Fenced code blocks are skipped (they show shell output, not references);
   so are spans with spaces, flags, or shell metacharacters, `build*/`
   paths (CI has no build tree), and `{hpp,cpp}` brace shorthand (expanded
   before checking). Paths are resolved repo-root-relative first, then
   doc-relative, then with a .cpp/.hpp suffix appended (so `bench/
   table1_sizes` — a binary name — matches its source).

Exit code 1 and one line per finding otherwise. Stdlib only — runs in CI
as-is (.github/workflows/ci.yml) and locally via

    python3 scripts/check_doc_links.py
"""

import itertools
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) with no nested brackets; good enough for our docs, which
# use plain inline links only.
LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

CODE_SPAN = re.compile(r"`([^`\n]+)`")
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

# First path segments that mark a backticked span as a file reference.
PATH_ROOTS = {"src", "docs", "tests", "bench", "examples", "scripts",
              ".github"}
# Suffixes that mark a slash-containing span as a file reference even when
# it does not start at a known root (e.g. `core/htp_flow.hpp`, resolved
# relative to src/).
PATH_SUFFIXES = (".hpp", ".cpp", ".h", ".md", ".py", ".yml", ".json",
                 ".txt", ".cmake")
# Characters that mean "this span is code or shell, not a bare path".
NON_PATH_CHARS = set(" <>()\"'|=:;,[]$*")


def doc_files():
    files = [REPO / "README.md", REPO / "DESIGN.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def expand_braces(span):
    """`a.{hpp,cpp}` -> [`a.hpp`, `a.cpp`]; spans without braces pass through."""
    match = re.fullmatch(r"([^{}]*)\{([^{}]+)\}([^{}]*)", span)
    if not match:
        return [span]
    head, alternatives, tail = match.groups()
    return [head + alt + tail for alt in alternatives.split(",")]


def looks_like_path(span):
    if set(span) & NON_PATH_CHARS:
        return False
    first = span.split("/", 1)[0]
    if first.startswith("build"):
        return False  # build trees exist locally, not in a checkout
    if first in PATH_ROOTS:
        return True
    return "/" in span and span.endswith(PATH_SUFFIXES)


def resolves(span, doc):
    """True when `span` names something in the tree under any of the
    resolution rules documented above."""
    candidates = [REPO / span, REPO / "src" / span, doc.parent / span]
    # Bench/example binary names (`bench/table1_sizes`) match their source.
    candidates += [REPO / (span + ext) for ext in (".cpp", ".hpp")]
    return any(c.exists() for c in candidates)


def strip_fences(text):
    """Replace fenced code blocks with equivalent newlines so line numbers
    of the remaining text stay correct."""
    return FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), text)


def main():
    findings = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                findings.append(f"{doc.relative_to(REPO)}:{line}: dead link "
                                f"'{target}'")

        prose = strip_fences(text)
        for match in CODE_SPAN.finditer(prose):
            span = match.group(1).strip().rstrip("/")
            expanded = list(itertools.chain.from_iterable(
                expand_braces(s) for s in [span]))
            for candidate in expanded:
                if not looks_like_path(candidate):
                    continue
                if not resolves(candidate, doc):
                    line = prose.count("\n", 0, match.start()) + 1
                    findings.append(f"{doc.relative_to(REPO)}:{line}: stale "
                                    f"path reference '{candidate}'")
    for entry in findings:
        print(entry)
    if findings:
        print(f"{len(findings)} dead link(s) / stale path(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(doc_files())} docs: all relative links and "
          f"backticked paths resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
