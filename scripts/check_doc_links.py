#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md, DESIGN.md, and docs/*.md for inline markdown links
[text](target) and checks that every relative target resolves to a file or
directory in the repository (after stripping #fragments). External links
(http/https/mailto) are ignored; so are in-page #fragment-only links.
Exit code 1 and one line per dead link otherwise. Stdlib only — runs in CI
as-is (.github/workflows/ci.yml) and locally via

    python3 scripts/check_doc_links.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) with no nested brackets; good enough for our docs, which
# use plain inline links only.
LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files():
    files = [REPO / "README.md", REPO / "DESIGN.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def main():
    dead = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                dead.append(f"{doc.relative_to(REPO)}:{line}: dead link "
                            f"'{target}'")
    for entry in dead:
        print(entry)
    if dead:
        print(f"{len(dead)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(doc_files())} docs: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
