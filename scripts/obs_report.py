#!/usr/bin/env python3
"""Validate, render, and diff htp RunReport artifacts.

A RunReport is the JSON document ``htp_cli --report FILE`` writes (schema
``htp-run-report``, assembled by ``src/obs/report.cpp``). It has two
top-level sections with opposite contracts (docs/observability.md):

* ``deterministic`` — meta, result, counter totals, value-histogram
  distributions, and the decision journal. For unbudgeted runs this whole
  section is bit-identical for every threads x metric-threads combination.
* ``wall`` — thread counts, timers, time-histograms, and wall-derived
  counters. Two otherwise-identical runs may differ arbitrarily here.

Subcommands:

``validate FILE...``
    Structural check: parses the JSON, verifies the schema tag, rejects
    unknown ``schema_version`` values, and checks every section has the
    expected shape (counters are ints, histograms carry count/sum/min/max
    and sparse [bucket, count] pairs, journal records name their event).
    Exit 0 when every file passes, 1 otherwise.

``render FILE``
    Human-readable summary to stdout: run meta, result, the top counters,
    and a per-event-type digest of the journal (record counts plus first/
    last records), so a report is skimmable without jq.

``diff A B [--wall-tolerance FRAC]``
    Compares the two reports' ``deterministic`` sections for EXACT
    equality (this is the cross-thread-count determinism gate CI runs) and
    the ``wall`` sections loosely: wall meta may differ freely (that is
    where thread counts live), timer totals are compared only when
    ``--wall-tolerance`` is given (default: not compared — wall clocks are
    machine noise). Exit 0 when the deterministic sections match, 1
    otherwise, with a field-level description of the first differences.

Stdlib only, like every script in this repository.
"""

import argparse
import json
import sys

KNOWN_SCHEMA = "htp-run-report"
KNOWN_VERSIONS = {1}


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------- validate


def check(cond, errors, msg):
    if not cond:
        errors.append(msg)


def validate_histograms(histograms, where, errors):
    check(isinstance(histograms, dict), errors, f"{where} must be an object")
    if not isinstance(histograms, dict):
        return
    for name, h in histograms.items():
        w = f"{where}[{name!r}]"
        check(isinstance(h, dict), errors, f"{w} must be an object")
        if not isinstance(h, dict):
            continue
        for key in ("count", "sum", "min", "max"):
            check(isinstance(h.get(key), int), errors,
                  f"{w}.{key} must be an integer")
        buckets = h.get("buckets")
        check(isinstance(buckets, list), errors, f"{w}.buckets must be a list")
        for pair in buckets if isinstance(buckets, list) else []:
            check(
                isinstance(pair, list) and len(pair) == 2
                and all(isinstance(x, int) for x in pair), errors,
                f"{w}.buckets entries must be [bucket_index, count] int pairs")


def validate_report(doc, errors):
    check(isinstance(doc, dict), errors, "document must be a JSON object")
    if not isinstance(doc, dict):
        return
    check(doc.get("schema") == KNOWN_SCHEMA, errors,
          f"schema must be {KNOWN_SCHEMA!r}, got {doc.get('schema')!r}")
    version = doc.get("schema_version")
    check(version in KNOWN_VERSIONS, errors,
          f"unknown schema_version {version!r} (known: {sorted(KNOWN_VERSIONS)})")
    check(isinstance(doc.get("tool"), str), errors, "tool must be a string")

    # Strict top level: an unknown section is a producer bug (or a report
    # from a future schema_version this validator does not know), never
    # something to wave through silently.
    known_sections = {"schema", "schema_version", "tool", "deterministic",
                      "wall"}
    for key in doc:
        check(key in known_sections, errors,
              f"unknown top-level section {key!r} "
              f"(known: {sorted(known_sections)})")

    det = doc.get("deterministic")
    check(isinstance(det, dict), errors, "deterministic must be an object")
    if isinstance(det, dict):
        for key in ("meta", "result", "counters", "histograms"):
            check(isinstance(det.get(key), dict), errors,
                  f"deterministic.{key} must be an object")
        counters = det.get("counters")
        if isinstance(counters, dict):
            for name, value in counters.items():
                check(isinstance(value, int), errors,
                      f"deterministic.counters[{name!r}] must be an integer")
        validate_histograms(det.get("histograms", {}),
                            "deterministic.histograms", errors)
        journal = det.get("journal")
        check(isinstance(journal, list), errors,
              "deterministic.journal must be a list")
        for i, record in enumerate(journal if isinstance(journal, list) else []):
            check(
                isinstance(record, dict)
                and isinstance(record.get("event"), str), errors,
                f"deterministic.journal[{i}] must be an object with an"
                " 'event' string")

    wall = doc.get("wall")
    check(isinstance(wall, dict), errors, "wall must be an object")
    if isinstance(wall, dict):
        for key in ("meta", "counters", "timers", "histograms"):
            check(isinstance(wall.get(key), dict), errors,
                  f"wall.{key} must be an object")
        timers = wall.get("timers")
        if isinstance(timers, dict):
            for name, t in timers.items():
                check(
                    isinstance(t, dict) and all(
                        isinstance(t.get(k), int)
                        for k in ("count", "total_ns", "min_ns", "max_ns")),
                    errors, f"wall.timers[{name!r}] must carry integer"
                    " count/total_ns/min_ns/max_ns")
        validate_histograms(wall.get("histograms", {}), "wall.histograms",
                            errors)


def cmd_validate(args):
    status = 0
    for path in args.files:
        errors = []
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: FAIL ({exc})")
            status = 1
            continue
        validate_report(doc, errors)
        if errors:
            print(f"{path}: FAIL")
            for err in errors:
                print(f"  {err}")
            status = 1
        else:
            print(f"{path}: OK (schema_version {doc['schema_version']},"
                  f" tool {doc['tool']},"
                  f" {len(doc['deterministic']['journal'])} journal records)")
    return status


# ------------------------------------------------------------------ render


def render_section(title, entries):
    print(f"{title}:")
    if not entries:
        print("  (empty)")
        return
    width = max(len(str(k)) for k in entries)
    for key, value in entries.items():
        print(f"  {key:<{width}}  {value}")


def cmd_render(args):
    doc = load(args.file)
    errors = []
    validate_report(doc, errors)
    if errors:
        return fail(f"{args.file} is not a valid report: {errors[0]}")
    det, wall = doc["deterministic"], doc["wall"]
    print(f"RunReport (tool {doc['tool']},"
          f" schema_version {doc['schema_version']})")
    render_section("meta", det["meta"])
    render_section("result", det["result"])
    render_section("wall meta", wall["meta"])

    counters = det["counters"]
    top = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    render_section("counters (largest first)", dict(top[:args.top]))
    if len(top) > args.top:
        print(f"  ... {len(top) - args.top} more")

    if det["histograms"]:
        print("value histograms:")
        for name, h in det["histograms"].items():
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            print(f"  {name}: count {h['count']}, sum {h['sum']},"
                  f" min {h['min']}, max {h['max']}, mean {mean:.1f}")
            # Log2 buckets: index 0 holds value 0, index i >= 1 holds
            # values in [2^(i-1), 2^i) — print the boundaries so the
            # distribution is readable without knowing the encoding.
            for index, count in h.get("buckets", []):
                if index == 0:
                    bounds = "[0]"
                else:
                    bounds = f"[{2 ** (index - 1)}, {2 ** index})"
                print(f"    bucket {index} {bounds}: {count}")

    journal = det["journal"]
    print(f"journal: {len(journal)} records")
    by_event = {}
    for record in journal:
        by_event.setdefault(record["event"], []).append(record)
    for event, records in sorted(by_event.items()):
        print(f"  {event}: {len(records)} records")
        for record in ([records[0]] if len(records) == 1
                       else [records[0], records[-1]]):
            fields = {k: v for k, v in record.items() if k != "event"}
            print(f"    {fields}")
    return 0


# -------------------------------------------------------------------- diff


def flatten(value, prefix=""):
    """(path, scalar) pairs for every leaf, lists indexed by position."""
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from flatten(sub, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            yield from flatten(sub, f"{prefix}[{i}]")
    else:
        yield prefix, value


def diff_exact(a, b, limit=10):
    fa, fb = dict(flatten(a)), dict(flatten(b))
    diffs = []
    for path in sorted(set(fa) | set(fb)):
        if path not in fa:
            diffs.append(f"  only in B: {path} = {fb[path]!r}")
        elif path not in fb:
            diffs.append(f"  only in A: {path} = {fa[path]!r}")
        elif fa[path] != fb[path]:
            diffs.append(f"  {path}: A {fa[path]!r} != B {fb[path]!r}")
    shown = diffs[:limit]
    if len(diffs) > limit:
        shown.append(f"  ... {len(diffs) - limit} more differing fields")
    return diffs, shown


def cmd_diff(args):
    a, b = load(args.a), load(args.b)
    for path, doc in ((args.a, a), (args.b, b)):
        errors = []
        validate_report(doc, errors)
        if errors:
            return fail(f"{path} is not a valid report: {errors[0]}")

    status = 0
    diffs, shown = diff_exact(a["deterministic"], b["deterministic"])
    if diffs:
        print(f"deterministic sections DIFFER ({len(diffs)} fields):")
        print("\n".join(shown))
        status = 1
    else:
        print("deterministic sections match exactly")

    if args.wall_tolerance is not None:
        # Wall meta (thread counts) and per-run noise are expected to vary;
        # only total timer time is compared, within the tolerance.
        ta = a["wall"]["timers"]
        tb = b["wall"]["timers"]
        for name in sorted(set(ta) | set(tb)):
            if name not in ta or name not in tb:
                print(f"wall timer {name}: present in only one report"
                      " (informational)")
                continue
            ref = max(ta[name]["total_ns"], tb[name]["total_ns"], 1)
            rel = abs(ta[name]["total_ns"] - tb[name]["total_ns"]) / ref
            if rel > args.wall_tolerance:
                print(f"wall timer {name}: total_ns differ by"
                      f" {rel:.1%} (> {args.wall_tolerance:.1%})"
                      " (informational)")
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="structurally check reports")
    p_validate.add_argument("files", nargs="+")
    p_validate.set_defaults(func=cmd_validate)

    p_render = sub.add_parser("render", help="human-readable summary")
    p_render.add_argument("file")
    p_render.add_argument("--top", type=int, default=12,
                          help="counters to show (default 12)")
    p_render.set_defaults(func=cmd_render)

    p_diff = sub.add_parser(
        "diff", help="exact deterministic-section comparison")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.add_argument("--wall-tolerance", type=float, default=None,
                        help="also report wall timer totals differing by"
                        " more than this fraction (informational)")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
