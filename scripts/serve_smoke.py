#!/usr/bin/env python3
"""End-to-end smoke test for the htp_serve daemon.

Starts the daemon on a throwaway AF_UNIX socket, sends the same partition
request twice over one connection (cold cache, then warm), and checks the
contracts docs/server.md promises:

* both responses report status "ok" with matching echoed ids;
* the cold request misses every cache tier and the warm one hits them;
* the top-level ``deterministic`` sections of the two responses are
  byte-identical (cache state must never leak into results);
* the partition the daemon returns is byte-identical to what ``htp_cli
  --out`` writes for the same request and seed — the two binaries drive
  the same session pipeline and must never drift apart;
* the ECO warm-start path keeps the same parity (docs/incremental.md): a
  request carrying ``emit_warm_state`` returns the warm-start document, an
  empty-delta resume from it reports ``warm_source`` "state" with zero
  warm injections and returns the cold partition byte for byte, and the
  daemon's warm partition is byte-identical to what ``htp_cli
  --warm-start`` writes from the same state file;
* ping answers inline and shutdown terminates the daemon cleanly.

Usage (CI and ctest run exactly this):

    python3 scripts/serve_smoke.py --serve build/src/tools/htp_serve \\
        --cli build/src/tools/htp_cli

Stdlib only.
"""

import argparse
import json
import pathlib
import socket
import subprocess
import sys
import tempfile
import time

REQUEST = {
    "circuit": "c1355",
    "height": 3,
    "iterations": 1,
    "seed": 1,
}
CLI_ARGS = [
    "--circuit", "c1355", "--height", "3", "--iterations", "1", "--seed", "1",
]


def recv_line(sock):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError(f"daemon closed the connection early: {buf!r}")
        buf += chunk
    return json.loads(buf)


def deterministic_slice(response):
    # Key order is part of the wire format, so a plain re-dump with
    # preserved order compares the section byte for byte.
    return json.dumps(response["deterministic"])


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serve", required=True, help="htp_serve binary")
    parser.add_argument("--cli", required=True, help="htp_cli binary")
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="overall deadline in seconds (default 120)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        sock_path = tmp / "htp.sock"
        daemon = subprocess.Popen(
            [args.serve, "--socket", str(sock_path), "--threads", "1"])
        try:
            deadline = time.monotonic() + args.timeout
            while not sock_path.exists():
                if time.monotonic() > deadline:
                    raise RuntimeError("daemon never created its socket")
                if daemon.poll() is not None:
                    raise RuntimeError(
                        f"daemon exited early with {daemon.returncode}")
                time.sleep(0.05)

            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(args.timeout)
            sock.connect(str(sock_path))

            sock.sendall(json.dumps({"op": "ping", "id": "p"}).encode()
                         + b"\n")
            ping = recv_line(sock)
            assert ping["status"] == "ok" and ping["op"] == "ping", ping

            responses = []
            for request_id in ("cold", "warm"):
                request = dict(REQUEST, id=request_id)
                sock.sendall(json.dumps(request).encode() + b"\n")
                response = recv_line(sock)
                assert response["status"] == "ok", response
                assert response["id"] == request_id, response
                responses.append(response)
            cold, warm = responses

            assert cold["cache"]["netlist"] == "miss", cold["cache"]
            assert cold["cache"]["metric"]["hits"] == 0, cold["cache"]
            assert cold["cache"]["metric"]["misses"] > 0, cold["cache"]
            assert warm["cache"]["netlist"] == "hit", warm["cache"]
            assert warm["cache"]["metric"]["misses"] == 0, warm["cache"]
            assert warm["cache"]["metric"]["hits"] > 0, warm["cache"]
            print(f"cache: cold missed, warm hit "
                  f"({warm['cache']['metric']['hits']} metric hits)")

            cold_det = deterministic_slice(cold)
            warm_det = deterministic_slice(warm)
            assert cold_det == warm_det, (
                "deterministic sections differ between cold and warm:\n"
                f"  cold: {cold_det[:200]}...\n  warm: {warm_det[:200]}...")
            print("determinism: cold and warm deterministic sections are "
                  "byte-identical")

            out_file = tmp / "cli.part"
            subprocess.run(
                [args.cli, *CLI_ARGS, "--out", str(out_file)],
                check=True, stdout=subprocess.DEVNULL)
            cli_partition = out_file.read_text()
            serve_partition = cold["deterministic"]["partition"]
            assert serve_partition == cli_partition, (
                "daemon partition differs from htp_cli --out for the same "
                "request and seed")
            print(f"parity: daemon partition is byte-identical to htp_cli "
                  f"({len(cli_partition)} bytes)")

            # ECO warm-start parity: emit the state, resume from it, and
            # check the daemon's warm run against htp_cli --warm-start.
            emit_request = dict(REQUEST, id="emit", emit_warm_state=True)
            sock.sendall(json.dumps(emit_request).encode() + b"\n")
            emitted = recv_line(sock)
            assert emitted["status"] == "ok", emitted
            warm_state = emitted["deterministic"]["warm_state"]
            assert warm_state.startswith("htp-warm-start v1"), warm_state[:40]

            eco_request = dict(REQUEST, id="eco", warm_text=warm_state)
            sock.sendall(json.dumps(eco_request).encode() + b"\n")
            eco = recv_line(sock)
            assert eco["status"] == "ok", eco
            eco_summary = eco["deterministic"]["result"]["eco"]
            assert eco_summary["warm_source"] == "state", eco_summary
            assert not eco_summary["full_rebuild"], eco_summary
            assert eco_summary["warm_injections"] == 0, eco_summary
            assert eco["deterministic"]["partition"] == serve_partition, (
                "empty-delta warm resume is not byte-identical to the cold "
                "partition")

            state_file = tmp / "state.warm"
            state_file.write_text(warm_state)
            warm_out = tmp / "cli_warm.part"
            subprocess.run(
                [args.cli, *CLI_ARGS, "--warm-start", str(state_file),
                 "--out", str(warm_out)],
                check=True, stdout=subprocess.DEVNULL)
            assert eco["deterministic"]["partition"] == warm_out.read_text(), (
                "daemon warm partition differs from htp_cli --warm-start "
                "for the same state and seed")
            print("eco: daemon warm resume matches htp_cli --warm-start "
                  f"(reused {eco_summary['blocks_reused']} blocks, "
                  f"0 warm injections)")

            sock.sendall(b'{"op":"shutdown"}\n')
            bye = recv_line(sock)
            assert bye["status"] == "ok" and bye["op"] == "shutdown", bye
            sock.close()
            if daemon.wait(timeout=args.timeout) != 0:
                raise RuntimeError(
                    f"daemon exited with {daemon.returncode} after shutdown")
            print("shutdown: daemon exited cleanly")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
