#include "core/build_partition.hpp"

#include <algorithm>
#include <memory>

#include "netlist/subhypergraph.hpp"
#include "obs/obs.hpp"
#include "runtime/subtree_tasks.hpp"

namespace htp {
namespace {

obs::Counter c_builds("build.partitions");
obs::Counter c_carves("build.carves");
obs::Counter c_blocks("build.blocks");
obs::Counter c_max_depth("build.max_depth", obs::CounterKind::kMax);
obs::Timer t_build("build.partition");
// Task-engine telemetry (BuildPartitionTasked only; all zero in serial
// builds, so legacy counter totals are untouched). Every value is a pure
// function of the task tree — never of queue depth or completion order —
// keeping the totals inside the determinism contract.
obs::Counter c_tasked_builds("build.tasks_runs");
obs::Counter c_tasks_spawned("build.tasks_spawned");
obs::Counter c_tasks_committed_blocks("build.tasks_committed_blocks");
// Node-set size handed to each carve task (log2 buckets): the skew of this
// distribution is what bounds the engine's critical path.
obs::Histogram h_task_nodes("build.task_nodes");
// One journal record per tasked build, emitted from the serial commit walk.
obs::Event e_subtree("build.subtree");

// Per-level carve counts, `build.carves.l1` .. `build.carves.l8+` (carves
// only happen at levels >= 1; everything above 8 shares the last bucket).
obs::Counter& CarvesAtLevel(Level level) {
  static obs::Counter counters[] = {
      obs::Counter("build.carves.l1"),  obs::Counter("build.carves.l2"),
      obs::Counter("build.carves.l3"),  obs::Counter("build.carves.l4"),
      obs::Counter("build.carves.l5"),  obs::Counter("build.carves.l6"),
      obs::Counter("build.carves.l7"),  obs::Counter("build.carves.l8+")};
  return counters[std::min<std::size_t>(level >= 1 ? level - 1 : 0, 7)];
}

double SetSize(const Hypergraph& hg, const std::vector<NodeId>& nodes) {
  double s = 0.0;
  for (NodeId v : nodes) s += hg.node_size(v);
  return s;
}

double MaxNodeSize(const Hypergraph& hg) {
  double g = 0.0;
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    g = std::max(g, hg.node_size(v));
  return std::max(g, 1e-12);
}

class Builder {
 public:
  Builder(const Hypergraph& hg, const HierarchySpec& spec,
          const SpreadingMetric& metric, const CarveFn& carve, Rng& rng,
          TreePartition& tp, const CancellationToken& cancel)
      : hg_(hg), spec_(spec), metric_(metric), carve_(carve), rng_(rng),
        tp_(tp), cancel_(cancel), integral_(hg.unit_sizes()),
        granularity_(MaxNodeSize(hg)) {
    HTP_CHECK(metric.size() == hg.num_nets());
  }

  // Populates block `q` with `nodes` (ids in the root hypergraph);
  // `depth` counts recursion levels from the root call (telemetry only).
  void Build(BlockId q, std::vector<NodeId> nodes, std::size_t depth = 1) {
    c_max_depth.Add(depth);
    const double s = SetSize(hg_, nodes);
    // Descend a single-child chain while the whole set fits in one child,
    // so every leaf ends up at level 0 (Algorithm 3 step 2: the effective
    // top level is decided by the set's size).
    while (tp_.level(q) > 0 &&
           s <= spec_.AchievableCapacity(tp_.level(q) - 1, integral_,
                                         granularity_))
      q = tp_.AddChild(q);
    if (tp_.level(q) == 0) {
      HTP_CHECK_MSG(s <= spec_.capacity(0) + 1e-9,
                    "node set does not fit a leaf (is some node > C_0?)");
      for (NodeId v : nodes) tp_.AssignNode(v, q);
      return;
    }

    const Level l = tp_.level(q);
    // Carve against the achievable subtree capacity, not C_{l-1} directly:
    // a child the recursion cannot legally subdivide must never be created.
    const double ub = spec_.AchievableCapacity(l - 1, integral_, granularity_);
    const double lb =
        s / static_cast<double>(spec_.max_branches(l));  // Algorithm 3 step 2
    const std::size_t max_children = spec_.max_branches(l);

    std::vector<NodeId> remaining = std::move(nodes);
    std::size_t children = 0;
    while (!remaining.empty()) {
      const double rem_size = SetSize(hg_, remaining);
      const std::size_t children_left = max_children - children;
      if (rem_size <= ub || children_left <= 1) {
        // Final child takes everything still here; an over-capacity final
        // child means the instance (or a carve fallback) was infeasible and
        // is caught by validation.
        c_blocks.Add();
        Build(tp_.AddChild(q), std::move(remaining), depth + 1);
        ++children;
        break;
      }
      // Raise the lower bound so the leftover still fits the remaining
      // child slots. Slots(j) is the largest leftover j further carves can
      // absorb: j*ub exactly for unit sizes, minus a (j-1)*granularity
      // bin-packing margin otherwise (so every later window stays at least
      // one node wide and prefix growth cannot step over it).
      const double j = static_cast<double>(children_left - 1);
      const double slots =
          integral_ ? j * ub : j * ub - std::max(0.0, j - 1.0) * granularity_;
      const double lb_eff = std::max(lb, rem_size - slots);

      // Safepoint: between carve steps (never inside one). A partition
      // under construction cannot be returned partially, so a fired token
      // unwinds via CancelledError to the caller's catch.
      if (cancel_.Cancelled()) throw CancelledError();

      SubHypergraph sub = InducedSubHypergraph(hg_, remaining);
      std::vector<double> sub_metric(sub.hg.num_nets());
      for (NetId e = 0; e < sub.hg.num_nets(); ++e)
        sub_metric[e] = metric_[sub.net_to_parent[e]];

      c_carves.Add();
      CarvesAtLevel(l).Add();
      const CarveResult cut =
          carve_(sub.hg, sub_metric, std::min(lb_eff, ub), ub, rng_);
      HTP_CHECK_MSG(!cut.nodes.empty(), "carver returned an empty block");

      std::vector<char> taken(sub.hg.num_nodes(), 0);
      std::vector<NodeId> carved;
      carved.reserve(cut.nodes.size());
      for (NodeId local : cut.nodes) {
        taken[local] = 1;
        carved.push_back(sub.node_to_parent[local]);
      }
      std::vector<NodeId> rest;
      rest.reserve(remaining.size() - carved.size());
      for (NodeId local = 0; local < sub.hg.num_nodes(); ++local)
        if (!taken[local]) rest.push_back(sub.node_to_parent[local]);

      c_blocks.Add();
      Build(tp_.AddChild(q), std::move(carved), depth + 1);
      ++children;
      remaining = std::move(rest);
    }
  }

 private:
  const Hypergraph& hg_;
  const HierarchySpec& spec_;
  const SpreadingMetric& metric_;
  const CarveFn& carve_;
  Rng& rng_;
  TreePartition& tp_;
  const CancellationToken& cancel_;
  bool integral_;
  double granularity_;
};

// --- Tasked (parallel) builder -------------------------------------------
//
// Two phases (docs/parallelism.md):
//  1. PLAN, parallel: each engine task owns one future block. It repeats
//     the serial builder's logic — chain descent, the carve loop — but
//     writes the outcome (chain depth, leaf assignment, carved child node
//     sets) into a private TaskNode its parent allocated before the spawn,
//     and spawns one child task per carved block. The task's RNG stream is
//     forked from its parent at the spawn point, so every stream is a pure
//     function of the task's path.
//  2. COMMIT, serial: a depth-first replay over the TaskNode tree performs
//     every AddChild/AssignNode in the exact order the serial recursion
//     would have, so block ids — which depend on AddChild call order — are
//     schedule-independent.
struct TaskNode {
  std::size_t chain = 0;  ///< single-child descents before the split/leaf
  bool leaf = false;
  std::vector<NodeId> leaf_nodes;              ///< set iff `leaf`
  std::vector<std::unique_ptr<TaskNode>> children;  ///< carve order
};

class TaskedBuilder {
 public:
  TaskedBuilder(const Hypergraph& hg, const HierarchySpec& spec,
                const SpreadingMetric& metric, const CarveFn& carve,
                const CancellationToken& cancel)
      : hg_(hg), spec_(spec), metric_(metric), carve_(carve), cancel_(cancel),
        integral_(hg.unit_sizes()), granularity_(MaxNodeSize(hg)) {
    HTP_CHECK(metric.size() == hg.num_nets());
  }

  // Phase 1, runs inside one engine task: plans the subtree of `tn` for
  // `nodes` entering at `level`. Mirrors Builder::Build step for step; the
  // only structural difference is that recursion becomes Spawn.
  void Plan(SubtreeTasks::Context& ctx, TaskNode& tn,
            std::vector<NodeId> nodes, Level level, std::size_t depth,
            Rng rng) {
    c_tasks_spawned.Add();
    c_max_depth.Add(depth);
    h_task_nodes.Record(nodes.size());
    const double s = SetSize(hg_, nodes);
    while (level > 0 &&
           s <= spec_.AchievableCapacity(level - 1, integral_, granularity_)) {
      ++tn.chain;
      --level;
    }
    if (level == 0) {
      HTP_CHECK_MSG(s <= spec_.capacity(0) + 1e-9,
                    "node set does not fit a leaf (is some node > C_0?)");
      tn.leaf = true;
      tn.leaf_nodes = std::move(nodes);
      return;
    }

    const Level l = level;
    const double ub = spec_.AchievableCapacity(l - 1, integral_, granularity_);
    const double lb = s / static_cast<double>(spec_.max_branches(l));
    const std::size_t max_children = spec_.max_branches(l);

    std::vector<NodeId> remaining = std::move(nodes);
    std::size_t children = 0;
    while (!remaining.empty()) {
      const double rem_size = SetSize(hg_, remaining);
      const std::size_t children_left = max_children - children;
      if (rem_size <= ub || children_left <= 1) {
        SpawnChild(ctx, tn, std::move(remaining), l - 1, depth + 1, rng);
        ++children;
        break;
      }
      const double j = static_cast<double>(children_left - 1);
      const double slots =
          integral_ ? j * ub : j * ub - std::max(0.0, j - 1.0) * granularity_;
      const double lb_eff = std::max(lb, rem_size - slots);

      // Safepoint: between carve steps, as in the serial builder. The
      // engine rethrows the lowest failing path's CancelledError.
      if (cancel_.Cancelled()) throw CancelledError();

      SubHypergraph sub = InducedSubHypergraph(hg_, remaining);
      std::vector<double> sub_metric(sub.hg.num_nets());
      for (NetId e = 0; e < sub.hg.num_nets(); ++e)
        sub_metric[e] = metric_[sub.net_to_parent[e]];

      c_carves.Add();
      CarvesAtLevel(l).Add();
      const CarveResult cut =
          carve_(sub.hg, sub_metric, std::min(lb_eff, ub), ub, rng);
      HTP_CHECK_MSG(!cut.nodes.empty(), "carver returned an empty block");

      std::vector<char> taken(sub.hg.num_nodes(), 0);
      std::vector<NodeId> carved;
      carved.reserve(cut.nodes.size());
      for (NodeId local : cut.nodes) {
        taken[local] = 1;
        carved.push_back(sub.node_to_parent[local]);
      }
      std::vector<NodeId> rest;
      rest.reserve(remaining.size() - carved.size());
      for (NodeId local = 0; local < sub.hg.num_nodes(); ++local)
        if (!taken[local]) rest.push_back(sub.node_to_parent[local]);

      SpawnChild(ctx, tn, std::move(carved), l - 1, depth + 1, rng);
      ++children;
      remaining = std::move(rest);
    }
  }

  // Phase 2: serial depth-first replay of the planned tree. AddChild calls
  // happen in the exact order the serial recursion would issue them, so
  // block ids are schedule-independent. Returns blocks created.
  std::size_t Commit(TreePartition& tp, BlockId q, const TaskNode& tn,
                     std::size_t& tasks, std::size_t& leaves,
                     std::size_t& max_depth, std::size_t depth) {
    ++tasks;
    max_depth = std::max(max_depth, depth);
    std::size_t created = tn.chain;
    for (std::size_t i = 0; i < tn.chain; ++i) q = tp.AddChild(q);
    if (tn.leaf) {
      ++leaves;
      for (NodeId v : tn.leaf_nodes) tp.AssignNode(v, q);
      return created;
    }
    for (const std::unique_ptr<TaskNode>& child : tn.children) {
      c_blocks.Add();
      created += 1 + Commit(tp, tp.AddChild(q), *child, tasks, leaves,
                            max_depth, depth + 1);
    }
    return created;
  }

 private:
  void SpawnChild(SubtreeTasks::Context& ctx, TaskNode& tn,
                  std::vector<NodeId> nodes, Level level, std::size_t depth,
                  Rng& rng) {
    // The child's stream is forked here, at a fixed point in the parent's
    // serial draw order, labelled by the spawn index — so it is a pure
    // function of the task path, never of the schedule.
    const std::uint64_t child_index = tn.children.size();
    tn.children.push_back(std::make_unique<TaskNode>());
    TaskNode* child = tn.children.back().get();
    Rng child_rng = rng.fork(child_index);
    ctx.Spawn([this, child, level, depth, child_rng,
               nodes = std::move(nodes)](SubtreeTasks::Context& cctx) mutable {
      Plan(cctx, *child, std::move(nodes), level, depth, child_rng);
    });
  }

  const Hypergraph& hg_;
  const HierarchySpec& spec_;
  const SpreadingMetric& metric_;
  const CarveFn& carve_;
  const CancellationToken& cancel_;
  bool integral_;
  double granularity_;
};

}  // namespace

void BuildPartitionSubtree(TreePartition& tp, BlockId q,
                           std::vector<NodeId> nodes,
                           const HierarchySpec& spec,
                           const SpreadingMetric& metric, const CarveFn& carve,
                           Rng& rng, const CancellationToken& cancel) {
  HTP_CHECK(!nodes.empty());
  HTP_CHECK_MSG(tp.children(q).empty(),
                "subtree build target must not already have children");
  obs::PhaseScope obs_span(t_build);
  Builder builder(tp.hypergraph(), spec, metric, carve, rng, tp, cancel);
  builder.Build(q, std::move(nodes));
}

TreePartition BuildPartitionTopDown(const Hypergraph& hg,
                                    const HierarchySpec& spec,
                                    const SpreadingMetric& metric,
                                    const CarveFn& carve, Rng& rng,
                                    const CancellationToken& cancel) {
  HTP_CHECK(hg.num_nodes() > 0);
  obs::PhaseScope obs_span(t_build);
  c_builds.Add();
  TreePartition tp(hg, spec.LevelForSize(hg.total_size()));
  std::vector<NodeId> all(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) all[v] = v;
  Builder builder(hg, spec, metric, carve, rng, tp, cancel);
  builder.Build(TreePartition::kRoot, std::move(all));
  HTP_CHECK(tp.fully_assigned());
  return tp;
}

TreePartition BuildPartitionTasked(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const SpreadingMetric& metric,
                                   const CarveFn& carve, Rng& rng,
                                   std::size_t build_threads,
                                   const CancellationToken& cancel) {
  HTP_CHECK(hg.num_nodes() > 0);
  obs::PhaseScope obs_span(t_build);
  c_builds.Add();
  c_tasked_builds.Add();
  TreePartition tp(hg, spec.LevelForSize(hg.total_size()));
  std::vector<NodeId> all(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) all[v] = v;

  TaskedBuilder builder(hg, spec, metric, carve, cancel);
  TaskNode root;
  // fork(0) decouples the caller's stream from the task-path streams, so a
  // caller drawing from `rng` after the build sees the same state whether
  // the build was tasked or not run at all with this generator.
  Rng root_rng = rng.fork(0);
  SubtreeTasks::Run(build_threads, [&](SubtreeTasks::Context& ctx) {
    builder.Plan(ctx, root, std::move(all), tp.root_level(), 1, root_rng);
  });

  std::size_t tasks = 0;
  std::size_t leaves = 0;
  std::size_t max_depth = 0;
  const std::size_t blocks = builder.Commit(tp, TreePartition::kRoot, root,
                                            tasks, leaves, max_depth, 1);
  c_tasks_committed_blocks.Add(blocks);
  e_subtree.Record({{"tasks", static_cast<double>(tasks)},
                    {"blocks", static_cast<double>(blocks)},
                    {"leaves", static_cast<double>(leaves)},
                    {"max_depth", static_cast<double>(max_depth)}});
  HTP_CHECK(tp.fully_assigned());
  return tp;
}

}  // namespace htp
