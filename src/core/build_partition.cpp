#include "core/build_partition.hpp"

#include <algorithm>

#include "netlist/subhypergraph.hpp"
#include "obs/obs.hpp"

namespace htp {
namespace {

obs::Counter c_builds("build.partitions");
obs::Counter c_carves("build.carves");
obs::Counter c_blocks("build.blocks");
obs::Counter c_max_depth("build.max_depth", obs::CounterKind::kMax);
obs::Timer t_build("build.partition");

// Per-level carve counts, `build.carves.l1` .. `build.carves.l8+` (carves
// only happen at levels >= 1; everything above 8 shares the last bucket).
obs::Counter& CarvesAtLevel(Level level) {
  static obs::Counter counters[] = {
      obs::Counter("build.carves.l1"),  obs::Counter("build.carves.l2"),
      obs::Counter("build.carves.l3"),  obs::Counter("build.carves.l4"),
      obs::Counter("build.carves.l5"),  obs::Counter("build.carves.l6"),
      obs::Counter("build.carves.l7"),  obs::Counter("build.carves.l8+")};
  return counters[std::min<std::size_t>(level >= 1 ? level - 1 : 0, 7)];
}

double SetSize(const Hypergraph& hg, const std::vector<NodeId>& nodes) {
  double s = 0.0;
  for (NodeId v : nodes) s += hg.node_size(v);
  return s;
}

double MaxNodeSize(const Hypergraph& hg) {
  double g = 0.0;
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    g = std::max(g, hg.node_size(v));
  return std::max(g, 1e-12);
}

class Builder {
 public:
  Builder(const Hypergraph& hg, const HierarchySpec& spec,
          const SpreadingMetric& metric, const CarveFn& carve, Rng& rng,
          TreePartition& tp, const CancellationToken& cancel)
      : hg_(hg), spec_(spec), metric_(metric), carve_(carve), rng_(rng),
        tp_(tp), cancel_(cancel), integral_(hg.unit_sizes()),
        granularity_(MaxNodeSize(hg)) {
    HTP_CHECK(metric.size() == hg.num_nets());
  }

  // Populates block `q` with `nodes` (ids in the root hypergraph);
  // `depth` counts recursion levels from the root call (telemetry only).
  void Build(BlockId q, std::vector<NodeId> nodes, std::size_t depth = 1) {
    c_max_depth.Add(depth);
    const double s = SetSize(hg_, nodes);
    // Descend a single-child chain while the whole set fits in one child,
    // so every leaf ends up at level 0 (Algorithm 3 step 2: the effective
    // top level is decided by the set's size).
    while (tp_.level(q) > 0 &&
           s <= spec_.AchievableCapacity(tp_.level(q) - 1, integral_,
                                         granularity_))
      q = tp_.AddChild(q);
    if (tp_.level(q) == 0) {
      HTP_CHECK_MSG(s <= spec_.capacity(0) + 1e-9,
                    "node set does not fit a leaf (is some node > C_0?)");
      for (NodeId v : nodes) tp_.AssignNode(v, q);
      return;
    }

    const Level l = tp_.level(q);
    // Carve against the achievable subtree capacity, not C_{l-1} directly:
    // a child the recursion cannot legally subdivide must never be created.
    const double ub = spec_.AchievableCapacity(l - 1, integral_, granularity_);
    const double lb =
        s / static_cast<double>(spec_.max_branches(l));  // Algorithm 3 step 2
    const std::size_t max_children = spec_.max_branches(l);

    std::vector<NodeId> remaining = std::move(nodes);
    std::size_t children = 0;
    while (!remaining.empty()) {
      const double rem_size = SetSize(hg_, remaining);
      const std::size_t children_left = max_children - children;
      if (rem_size <= ub || children_left <= 1) {
        // Final child takes everything still here; an over-capacity final
        // child means the instance (or a carve fallback) was infeasible and
        // is caught by validation.
        c_blocks.Add();
        Build(tp_.AddChild(q), std::move(remaining), depth + 1);
        ++children;
        break;
      }
      // Raise the lower bound so the leftover still fits the remaining
      // child slots. Slots(j) is the largest leftover j further carves can
      // absorb: j*ub exactly for unit sizes, minus a (j-1)*granularity
      // bin-packing margin otherwise (so every later window stays at least
      // one node wide and prefix growth cannot step over it).
      const double j = static_cast<double>(children_left - 1);
      const double slots =
          integral_ ? j * ub : j * ub - std::max(0.0, j - 1.0) * granularity_;
      const double lb_eff = std::max(lb, rem_size - slots);

      // Safepoint: between carve steps (never inside one). A partition
      // under construction cannot be returned partially, so a fired token
      // unwinds via CancelledError to the caller's catch.
      if (cancel_.Cancelled()) throw CancelledError();

      SubHypergraph sub = InducedSubHypergraph(hg_, remaining);
      std::vector<double> sub_metric(sub.hg.num_nets());
      for (NetId e = 0; e < sub.hg.num_nets(); ++e)
        sub_metric[e] = metric_[sub.net_to_parent[e]];

      c_carves.Add();
      CarvesAtLevel(l).Add();
      const CarveResult cut =
          carve_(sub.hg, sub_metric, std::min(lb_eff, ub), ub, rng_);
      HTP_CHECK_MSG(!cut.nodes.empty(), "carver returned an empty block");

      std::vector<char> taken(sub.hg.num_nodes(), 0);
      std::vector<NodeId> carved;
      carved.reserve(cut.nodes.size());
      for (NodeId local : cut.nodes) {
        taken[local] = 1;
        carved.push_back(sub.node_to_parent[local]);
      }
      std::vector<NodeId> rest;
      rest.reserve(remaining.size() - carved.size());
      for (NodeId local = 0; local < sub.hg.num_nodes(); ++local)
        if (!taken[local]) rest.push_back(sub.node_to_parent[local]);

      c_blocks.Add();
      Build(tp_.AddChild(q), std::move(carved), depth + 1);
      ++children;
      remaining = std::move(rest);
    }
  }

 private:
  const Hypergraph& hg_;
  const HierarchySpec& spec_;
  const SpreadingMetric& metric_;
  const CarveFn& carve_;
  Rng& rng_;
  TreePartition& tp_;
  const CancellationToken& cancel_;
  bool integral_;
  double granularity_;
};

}  // namespace

TreePartition BuildPartitionTopDown(const Hypergraph& hg,
                                    const HierarchySpec& spec,
                                    const SpreadingMetric& metric,
                                    const CarveFn& carve, Rng& rng,
                                    const CancellationToken& cancel) {
  HTP_CHECK(hg.num_nodes() > 0);
  obs::PhaseScope obs_span(t_build);
  c_builds.Add();
  TreePartition tp(hg, spec.LevelForSize(hg.total_size()));
  std::vector<NodeId> all(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) all[v] = v;
  Builder builder(hg, spec, metric, carve, rng, tp, cancel);
  builder.Build(TreePartition::kRoot, std::move(all));
  HTP_CHECK(tp.fully_assigned());
  return tp;
}

}  // namespace htp
