// Algorithm 3: top-down construction of a hierarchical tree partition.
//
// Starting from the whole node set, each tree vertex at level l repeatedly
// carves off a child block of size within [LB..UB] = [s(V)/K_l .. C_{l-1}]
// using a CarveFn, then recurses on the carved subgraph. The carve function
// is the only pluggable part: MetricCarver() (Prim over the spreading
// metric) yields the paper's FLOW construction, FmCarver (in
// src/partition/) yields the RFM baseline.
//
// Robustness extensions over the pseudo-code (documented in DESIGN.md):
//  * when a whole set already fits one child (s <= C_{l-1}), a single-child
//    chain descends instead of carving, so leaves always sit at level 0;
//  * the carve lower bound is raised to s - (children_left - 1) * UB so the
//    branch bound K_l can always be honored;
//  * disconnected sets are handled inside the carvers.
#pragma once

#include "core/find_cut.hpp"
#include "runtime/budget.hpp"

namespace htp {

/// Builds a partition of `hg` with respect to `spec` from a spreading
/// metric, using `carve` to separate the children of every vertex.
/// The partition root sits at spec.LevelForSize(total size).
/// Throws htp::Error when the instance is infeasible (e.g. a single node
/// larger than C_0).
///
/// `cancel` is polled before every carve step (a construction is
/// all-or-nothing, so there is no partial result to hand back): a fired
/// token throws CancelledError, which callers that guarantee a result
/// (RunHtpFlow's floor construction) avoid by passing the default inert
/// token. The poll is read-only, so results with an unfired token are
/// bit-identical to an un-cancellable build.
TreePartition BuildPartitionTopDown(const Hypergraph& hg,
                                    const HierarchySpec& spec,
                                    const SpreadingMetric& metric,
                                    const CarveFn& carve, Rng& rng,
                                    const CancellationToken& cancel = {});

}  // namespace htp
