// Algorithm 3: top-down construction of a hierarchical tree partition.
//
// Starting from the whole node set, each tree vertex at level l repeatedly
// carves off a child block of size within [LB..UB] = [s(V)/K_l .. C_{l-1}]
// using a CarveFn, then recurses on the carved subgraph. The carve function
// is the only pluggable part: MetricCarver() (Prim over the spreading
// metric) yields the paper's FLOW construction, FmCarver (in
// src/partition/) yields the RFM baseline.
//
// Robustness extensions over the pseudo-code (documented in DESIGN.md):
//  * when a whole set already fits one child (s <= C_{l-1}), a single-child
//    chain descends instead of carving, so leaves always sit at level 0;
//  * the carve lower bound is raised to s - (children_left - 1) * UB so the
//    branch bound K_l can always be honored;
//  * disconnected sets are handled inside the carvers.
#pragma once

#include "core/find_cut.hpp"
#include "runtime/budget.hpp"

namespace htp {

/// Builds a partition of `hg` with respect to `spec` from a spreading
/// metric, using `carve` to separate the children of every vertex.
/// The partition root sits at spec.LevelForSize(total size).
/// Throws htp::Error when the instance is infeasible (e.g. a single node
/// larger than C_0).
///
/// `cancel` is polled before every carve step (a construction is
/// all-or-nothing, so there is no partial result to hand back): a fired
/// token throws CancelledError, which callers that guarantee a result
/// (RunHtpFlow's floor construction) avoid by passing the default inert
/// token. The poll is read-only, so results with an unfired token are
/// bit-identical to an un-cancellable build.
TreePartition BuildPartitionTopDown(const Hypergraph& hg,
                                    const HierarchySpec& spec,
                                    const SpreadingMetric& metric,
                                    const CarveFn& carve, Rng& rng,
                                    const CancellationToken& cancel = {});

/// Parallel Algorithm 3 on the disjoint-subtree task engine
/// (runtime/subtree_tasks.hpp; docs/parallelism.md). Once a carve commits,
/// each child's recursion is an independent task: tasks *plan* their
/// subtree (chain depth, carved child node sets, leaf assignment) into
/// private slots, and a serial depth-first replay after the engine drains
/// performs every AddChild/AssignNode — so block numbering, the partition,
/// and every build counter are bit-identical for all `build_threads`
/// values the engine accepts (0 = all hardware threads, otherwise literal,
/// including 1).
///
/// NOT bit-identical to BuildPartitionTopDown for the same `rng`: the
/// serial recursion threads one RNG stream through depth-first order (each
/// carve sees every prior subtree's draws), which no parallel schedule can
/// reproduce. The tasked builder instead forks a per-task stream from the
/// task's spawn path, making the result a pure function of (inputs, seed)
/// — a *different* pure function than the serial one. Callers expose the
/// choice as a mode knob (HtpFlowParams::build_threads: 1 = serial legacy,
/// anything else = this builder) and never mix results across modes.
///
/// `carve` must be safe to call concurrently from pool workers; the Rng it
/// receives is the calling task's private stream (draw local-metric seeds
/// from it, never from shared state). Cancellation matches the serial
/// builder: polled before every carve, a fired token throws CancelledError.
TreePartition BuildPartitionTasked(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const SpreadingMetric& metric,
                                   const CarveFn& carve, Rng& rng,
                                   std::size_t build_threads,
                                   const CancellationToken& cancel = {});

/// Runs the serial Algorithm-3 recursion below block `q` of an existing
/// partition, populating it with `nodes` (ids in `tp.hypergraph()`; the
/// block must be childless). Exactly the recursion BuildPartitionTopDown
/// applies below its root — same chain descent, carve windows, and RNG
/// draw order — just entered at an interior block, so the delta-scoped ECO
/// re-carver (src/incremental/eco_repartition.cpp) can rebuild only the
/// subtrees a netlist delta touched while cloning untouched siblings from
/// the prior partition. `metric` spans the nets of `tp.hypergraph()`.
void BuildPartitionSubtree(TreePartition& tp, BlockId q,
                           std::vector<NodeId> nodes,
                           const HierarchySpec& spec,
                           const SpreadingMetric& metric, const CarveFn& carve,
                           Rng& rng, const CancellationToken& cancel = {});

}  // namespace htp
