#include "core/cost.hpp"

#include <algorithm>

namespace htp {
namespace {

// Collects the distinct level-l blocks of a net's pins into `scratch`.
std::size_t DistinctBlocks(const TreePartition& tp, NetId e, Level l,
                           std::vector<BlockId>& scratch) {
  const Hypergraph& hg = tp.hypergraph();
  scratch.clear();
  for (NodeId v : hg.pins(e)) scratch.push_back(tp.block_at(v, l));
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  return scratch.size();
}

}  // namespace

std::size_t NetSpan(const TreePartition& tp, NetId e, Level l) {
  std::vector<BlockId> scratch;
  const std::size_t f = DistinctBlocks(tp, e, l, scratch);
  return f >= 2 ? f : 0;
}

double NetCost(const TreePartition& tp, const HierarchySpec& spec, NetId e) {
  const Hypergraph& hg = tp.hypergraph();
  std::vector<BlockId> scratch;
  double cost = 0.0;
  // Walk levels bottom-up; once a net's pins converge to one block, all
  // higher levels contribute nothing.
  for (Level l = 0; l < tp.root_level(); ++l) {
    const std::size_t f = DistinctBlocks(tp, e, l, scratch);
    if (f <= 1) break;
    cost += spec.weight(l) * static_cast<double>(f) * hg.net_capacity(e);
  }
  return cost;
}

double PartitionCost(const TreePartition& tp, const HierarchySpec& spec) {
  double total = 0.0;
  for (NetId e = 0; e < tp.hypergraph().num_nets(); ++e)
    total += NetCost(tp, spec, e);
  return total;
}

std::vector<double> PartitionCostByLevel(const TreePartition& tp,
                                         const HierarchySpec& spec) {
  const Hypergraph& hg = tp.hypergraph();
  std::vector<double> by_level(tp.root_level(), 0.0);
  std::vector<BlockId> scratch;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    for (Level l = 0; l < tp.root_level(); ++l) {
      const std::size_t f = DistinctBlocks(tp, e, l, scratch);
      if (f <= 1) break;
      by_level[l] +=
          spec.weight(l) * static_cast<double>(f) * hg.net_capacity(e);
    }
  }
  return by_level;
}

double ConnectivityCost(const TreePartition& tp, Level l) {
  HTP_CHECK(l <= tp.root_level());
  const Hypergraph& hg = tp.hypergraph();
  std::vector<BlockId> scratch;
  double total = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const std::size_t lambda = DistinctBlocks(tp, e, l, scratch);
    if (lambda >= 2)
      total += static_cast<double>(lambda - 1) * hg.net_capacity(e);
  }
  return total;
}

std::vector<std::size_t> CutNetsByLevel(const TreePartition& tp) {
  const Hypergraph& hg = tp.hypergraph();
  std::vector<std::size_t> by_level(tp.root_level(), 0);
  std::vector<BlockId> scratch;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    for (Level l = 0; l < tp.root_level(); ++l) {
      const std::size_t f = DistinctBlocks(tp, e, l, scratch);
      if (f <= 1) break;
      ++by_level[l];
    }
  return by_level;
}

}  // namespace htp
