// Interconnection cost of a hierarchical tree partition — Equation (1).
//
//   span(e, l) = number f of distinct level-l blocks containing pins of e,
//                counted as 0 when f == 1;
//   cost(e)    = sum_{l=0}^{L-1} w_l * span(e, l) * c(e);
//   cost(P)    = sum_e cost(e).
//
// All algorithms in this library (FLOW, GFM, RFM, and the FM refiner) are
// scored by this one implementation, so Table 2/3 comparisons are apples to
// apples.
#pragma once

#include <vector>

#include "core/tree_partition.hpp"

namespace htp {

/// span(e, l) for one net at one level (0 when the net stays in one block).
std::size_t NetSpan(const TreePartition& tp, NetId e, Level l);

/// cost(e): the weighted multi-level span cost of one net.
double NetCost(const TreePartition& tp, const HierarchySpec& spec, NetId e);

/// cost(P): total interconnection cost of the partition (Equation (1)).
double PartitionCost(const TreePartition& tp, const HierarchySpec& spec);

/// Per-level cost breakdown: entry l = sum_e w_l * span(e, l) * c(e).
std::vector<double> PartitionCostByLevel(const TreePartition& tp,
                                         const HierarchySpec& spec);

/// Number of nets cut (span >= 2) at each level — a secondary statistic
/// handy in benches and examples.
std::vector<std::size_t> CutNetsByLevel(const TreePartition& tp);

/// The modern "connectivity minus one" objective at one level:
/// sum_e (lambda(e, l) - 1) * c(e), where lambda is the number of distinct
/// level-l blocks touched (hMETIS/KaHyPar's km1 metric). Not the paper's
/// objective — provided so partitions can be scored the way today's tools
/// score them. Relation per net: (lambda - 1) = span - 1 when span >= 2,
/// else 0.
double ConnectivityCost(const TreePartition& tp, Level l);

}  // namespace htp
