#include "core/dot_export.hpp"

#include <sstream>

namespace htp {

std::string PartitionToDot(const TreePartition& tp,
                           const HierarchySpec& spec) {
  const PartitionReport report = ReportPartition(tp, spec);
  std::ostringstream os;
  os << "digraph htp_partition {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const BlockReport& block : report.blocks) {
    os << "  b" << block.block << " [label=\"L" << block.level << " #"
       << block.block << "\\n" << block.size << "/" << block.capacity;
    if (block.level < tp.root_level())
      os << "\\n" << block.io_pins << " pins";
    os << "\"];\n";
  }
  for (BlockId q = 0; q < tp.num_blocks(); ++q)
    for (BlockId c : tp.children(q)) os << "  b" << q << " -> b" << c << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace htp
