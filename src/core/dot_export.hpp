// Graphviz (DOT) rendering of hierarchical tree partitions.
//
// `dot -Tsvg` of the output draws the hierarchy with one box per block
// labelled by level, size/capacity, and I/O pins — the picture Figure 1 of
// the paper sketches, generated from real partitions.
#pragma once

#include <string>

#include "core/pin_report.hpp"

namespace htp {

/// DOT source for the partition tree. Blocks become nodes
/// ("L<level> #<id>\n<size>/<capacity>\n<pins> pins"); edges follow the
/// hierarchy.
std::string PartitionToDot(const TreePartition& tp, const HierarchySpec& spec);

}  // namespace htp
