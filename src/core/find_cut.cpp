#include "core/find_cut.hpp"

#include <limits>
#include <queue>

#include "obs/obs.hpp"

namespace htp {
namespace {

obs::Counter c_calls("carve.find_cut.calls");
obs::Counter c_in_window("carve.find_cut.in_window");
obs::Counter c_prefix_nodes("carve.find_cut.prefix_nodes");
obs::Counter c_grown_nodes("carve.find_cut.grown_nodes");
obs::Timer t_find_cut("carve.find_cut");

// Ties on d(e) are frequent (the flow-injected metric takes few distinct
// values). Ties are broken by *attraction* — the total capacity of nets
// already straddling the boundary that contain the candidate (classic
// maximum-adjacency ordering), which keeps the recorded prefix cuts tight —
// and then by a per-carve random rank, so different carves of the same
// metric explore genuinely different prefixes and Algorithm 1's "best of N
// constructions" has variance to exploit.
struct QueueEntry {
  double key;
  double attraction;  // larger is better
  std::uint64_t rank;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    if (key != other.key) return key > other.key;
    if (attraction != other.attraction) return attraction < other.attraction;
    if (rank != other.rank) return rank > other.rank;
    return node > other.node;
  }
};

}  // namespace

CarveResult MetricFindCut(const Hypergraph& hg,
                          std::span<const double> net_length, double lb,
                          double ub, Rng& rng) {
  HTP_CHECK(net_length.size() == hg.num_nets());
  HTP_CHECK(hg.num_nodes() > 0);
  HTP_CHECK(lb <= ub && ub > 0.0);
  obs::ScopedTimer obs_timer(t_find_cut);

  const NodeId n = hg.num_nodes();
  std::vector<std::uint64_t> rank(n);
  for (NodeId v = 0; v < n; ++v) rank[v] = rng.next_u64();
  std::vector<char> in_set(n, 0);
  std::vector<double> best_key(n, std::numeric_limits<double>::infinity());
  std::vector<double> attraction(n, 0.0);
  std::vector<std::size_t> pins_inside(hg.num_nets(), 0);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;

  std::vector<NodeId> order;
  order.reserve(n);
  double size = 0.0;
  double cut = 0.0;

  // Best recorded prefix within the window; fallback prefix = last <= ub.
  std::size_t best_prefix = 0;
  double best_cut = std::numeric_limits<double>::infinity();
  std::size_t fallback_prefix = 0;

  NodeId next_seed = static_cast<NodeId>(rng.next_below(n));

  auto add_node = [&](NodeId u) {
    in_set[u] = 1;
    order.push_back(u);
    size += hg.node_size(u);
    for (NetId e : hg.nets(u)) {
      std::size_t& inside = ++pins_inside[e];
      // A net enters the cut with its first inside pin and leaves it once
      // every pin is inside.
      if (inside == 1 && hg.net_degree(e) > 1) cut += hg.net_capacity(e);
      if (inside == hg.net_degree(e)) cut -= hg.net_capacity(e);
      const double key = net_length[e];
      const bool first_touch = inside == 1;
      for (NodeId x : hg.pins(e)) {
        if (in_set[x]) continue;
        // attraction[x] = capacity of already-cut nets containing x:
        // absorbing a high-attraction node tightens the boundary.
        bool repush = false;
        if (first_touch) {
          attraction[x] += hg.net_capacity(e);
          repush = best_key[x] != std::numeric_limits<double>::infinity();
        }
        if (key < best_key[x]) {
          best_key[x] = key;
          repush = true;
        }
        if (repush)
          queue.push({best_key[x], attraction[x], rank[x], x});
      }
    }
    if (size <= ub) {
      fallback_prefix = order.size();
      if (size >= lb && cut < best_cut) {
        best_cut = cut;
        best_prefix = order.size();
      }
    }
  };

  while (size < ub && order.size() < n) {
    NodeId u = kInvalidNode;
    while (!queue.empty()) {
      const QueueEntry top = queue.top();
      queue.pop();
      if (!in_set[top.node] && top.key <= best_key[top.node] &&
          top.attraction >= attraction[top.node]) {
        u = top.node;
        break;
      }
    }
    if (u == kInvalidNode) {
      // Start (or restart after exhausting a component) from a random
      // unreached node.
      while (in_set[next_seed]) next_seed = (next_seed + 1) % n;
      u = next_seed;
    }
    add_node(u);
  }

  CarveResult result;
  result.in_window = best_prefix > 0;
  const std::size_t take =
      result.in_window ? best_prefix : std::max<std::size_t>(fallback_prefix, 1);
  result.nodes.assign(order.begin(),
                      order.begin() + static_cast<long>(take));

  // Recompute the reported size and cut for the chosen prefix.
  result.size = 0.0;
  for (NodeId v : result.nodes) result.size += hg.node_size(v);
  std::vector<std::size_t> inside(hg.num_nets(), 0);
  for (NodeId v : result.nodes)
    for (NetId e : hg.nets(v)) ++inside[e];
  result.cut_value = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    if (inside[e] > 0 && inside[e] < hg.net_degree(e))
      result.cut_value += hg.net_capacity(e);
  c_calls.Add();
  if (result.in_window) c_in_window.Add();
  c_prefix_nodes.Add(take);
  c_grown_nodes.Add(order.size());
  return result;
}

CarveFn MetricCarver() {
  return [](const Hypergraph& hg, std::span<const double> net_length,
            double lb, double ub, Rng& rng) {
    return MetricFindCut(hg, net_length, lb, ub, rng);
  };
}

}  // namespace htp
