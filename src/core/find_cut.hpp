// Procedure find_cut: carve one block out of a hypergraph.
//
// FLOW's find_cut grows a node set from a random start "following Prim's
// minimum spanning tree algorithm" keyed by the spreading metric d(e),
// recording the capacity-weighted cut between the grown set and the rest at
// every step, and returns the recorded prefix with minimum cut among those
// whose size lies in [LB..UB] (Figure 5).
//
// The same interface (CarveFn) is implemented by the FM-based carver in
// src/partition/ — the single component the paper varies between FLOW and
// RFM — so Algorithm 3 is shared verbatim by both.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/spreading_metric.hpp"
#include "netlist/rng.hpp"

namespace htp {

/// Result of one carve.
struct CarveResult {
  /// Chosen node set V' (ids local to the carved hypergraph).
  std::vector<NodeId> nodes;
  /// cut(V', V - V'): total capacity of nets with pins on both sides.
  double cut_value = 0.0;
  /// s(V').
  double size = 0.0;
  /// True when some recorded prefix satisfied LB <= s <= UB. When false the
  /// carver returns its best-effort prefix with s <= UB (callers may accept
  /// it as a final remainder block).
  bool in_window = false;
};

/// A carving strategy: pick V' within [lb..ub] minimizing the cut.
/// `net_length` is the spreading metric restricted to `hg`'s nets (carvers
/// that do not use a metric may ignore it).
using CarveFn = std::function<CarveResult(
    const Hypergraph& hg, std::span<const double> net_length, double lb,
    double ub, Rng& rng)>;

/// The paper's find_cut: Prim growth under the metric with min-cut prefix
/// selection. Disconnected remainders are handled by restarting the growth
/// from a random unreached node (the recorded cut accounting continues).
CarveResult MetricFindCut(const Hypergraph& hg,
                          std::span<const double> net_length, double lb,
                          double ub, Rng& rng);

/// CarveFn adapter for MetricFindCut.
CarveFn MetricCarver();

}  // namespace htp
