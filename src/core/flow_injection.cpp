#include "core/flow_injection.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/rng.hpp"
#include "obs/obs.hpp"

namespace htp {
namespace {

// Algorithm 2 telemetry. Totals are schedule-independent (each metric
// computation is a deterministic function of its pre-forked seed), so they
// share the `threads`-invariance guarantee of the FLOW driver.
obs::Counter c_metrics("flow.metrics");
obs::Counter c_rounds("flow.rounds");
obs::Counter c_injections("flow.injections");
obs::Counter c_flooded_nets("flow.flooded_nets");
obs::Counter c_violated_tree_nodes("flow.violated_tree_nodes");
obs::Counter c_converged("flow.converged");
// Metric computations cut short by a fired CancellationToken. Non-zero only
// when a budget actually fires, so unbudgeted totals stay bit-identical.
obs::Counter c_rounds_truncated("flow.rounds_truncated");
// Computations seeded from a prior converged metric (ECO warm starts,
// docs/incremental.md); zero on cold runs, so cold totals are untouched.
obs::Counter c_warm_starts("flow.warm_starts");
// Sources dropped by the sampled separation oracle (oracle_sample in
// (0,1)); zero on exact runs, so exact totals are untouched by the knob.
obs::Counter c_oracle_skipped("flow.oracle_skipped_sources");
obs::Timer t_compute_metric("flow.compute_metric");
// Distributions across metric computations (one Record per call). kValue:
// deterministic, so they land in the RunReport's deterministic section.
obs::Histogram h_rounds_per_metric("flow.rounds_per_metric");
obs::Histogram h_injections_per_metric("flow.injections_per_metric");
obs::Histogram h_compute_metric_ns("flow.compute_metric_ns",
                                   obs::HistogramKind::kTimeNs);
// Per-round journal record; `metric_seed` leads the payload so records from
// nested subproblems (multilevel levels, driver iterations — each with its
// own pre-forked seed) sort into distinct runs, `round` orders within one.
obs::Event e_round("flow.round");

// Applies FlowInjectionParams::oracle_sample to a freshly initialized
// worklist: keeps a deterministic random subset of ceil(fraction * n)
// sources, restored to ascending id order (the round loop shuffles again
// anyway; the sort just makes the sample a canonical set). Draws from `rng`
// only when sampling is active, so the exact path's RNG stream — and with
// it every pre-existing seed's result — is bit-for-bit unchanged.
void MaybeSampleWorklist(std::vector<NodeId>& worklist, double fraction,
                         Rng& rng) {
  HTP_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                "oracle_sample must lie in [0, 1]");
  if (fraction <= 0.0 || fraction >= 1.0) return;
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(worklist.size()))));
  if (keep >= worklist.size()) return;
  rng.shuffle(worklist);
  c_oracle_skipped.Add(worklist.size() - keep);
  worklist.resize(keep);
  std::sort(worklist.begin(), worklist.end());
}

// Applies FlowInjectionParams::warm_metric to the freshly epsilon-filled
// flow vector: each seed value d is inverted back into the flow that would
// produce it, clamped below by epsilon so a zeroed (touched) net starts
// exactly where a cold run would. No-op when no seed is set, keeping the
// cold path bit-identical.
void MaybeSeedWarmFlow(const Hypergraph& hg, const FlowInjectionParams& params,
                       std::vector<double>& flow) {
  if (!params.warm_metric) return;
  const SpreadingMetric& seed = *params.warm_metric;
  HTP_CHECK_MSG(seed.size() == hg.num_nets(),
                "warm_metric must carry exactly one value per net");
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    HTP_CHECK_MSG(seed[e] >= 0.0, "warm_metric values must be >= 0");
    flow[e] = std::max(params.epsilon,
                       hg.net_capacity(e) * std::log1p(seed[e]) / params.alpha);
  }
  c_warm_starts.Add();
}

}  // namespace

FlowInjectionResult ComputeSpreadingMetric(const Hypergraph& hg,
                                           const HierarchySpec& spec,
                                           const FlowInjectionParams& params) {
  HTP_CHECK(params.epsilon > 0.0);
  HTP_CHECK(params.alpha > 0.0);
  HTP_CHECK(params.delta > 0.0);
  Rng rng(params.seed);
  obs::PhaseScope obs_span(t_compute_metric);
  obs::ScopedHistogramTimer obs_hist_span(h_compute_metric_ns);
  std::uint64_t flooded_nets = 0, violated_tree_nodes = 0;

  FlowInjectionResult result;
  result.flow.assign(hg.num_nets(), params.epsilon);
  MaybeSeedWarmFlow(hg, params, result.flow);
  result.metric.assign(hg.num_nets(), 0.0);
  // Running sum_e c(e) d(e), maintained incrementally: O(tree_nets) per
  // injection instead of an O(nets) sweep per round just to journal it.
  // Commits are serialized in deterministic order for every `threads`
  // value, so the float accumulation order — and the journaled mass — is
  // bit-identical too.
  double metric_mass = 0.0;
  auto update_length = [&](NetId e) {
    const double cap = hg.net_capacity(e);
    metric_mass -= cap * result.metric[e];
    result.metric[e] = std::exp(params.alpha * result.flow[e] / cap) - 1.0;
    metric_mass += cap * result.metric[e];
  };
  for (NetId e = 0; e < hg.num_nets(); ++e) update_length(e);

  // Worklist V' of possibly-violated sources. Lengths only grow, so a node
  // that passes a full constraint sweep can never become violated again and
  // leaves the worklist permanently.
  std::vector<NodeId> worklist(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) worklist[v] = v;
  MaybeSampleWorklist(worklist, params.oracle_sample, rng);
  std::vector<NodeId> still_violated;

  // Each round is a sequence of scan/commit batches over the shuffled
  // worklist: the scanner finds the lowest-index violating source after the
  // cursor against the current metric (in parallel when params.threads > 1),
  // then this thread — alone — injects flow and re-penalizes lengths. The
  // candidates the scanner looked at past the hit are re-scanned next batch
  // against the updated metric, so the sequence of injections, the RNG draw
  // order, and the surviving worklist are bit-for-bit the old serial sweep.
  ViolationScanner scanner(hg, spec, params.threads, params.csr);

  while (!worklist.empty() && result.rounds < params.max_rounds) {
    // Safepoint: between rounds the metric is fully re-penalized and the
    // worklist consistent, so stopping here leaves a usable partial metric.
    if (params.cancel.Cancelled()) {
      result.cancelled = true;
      break;
    }
    ++result.rounds;
    rng.shuffle(worklist);
    still_violated.clear();
    const std::size_t round_start_injections = result.injections;
    std::uint64_t round_flooded = 0, round_tree_nodes = 0;
    std::size_t cursor = 0;
    while (cursor < worklist.size()) {
      auto hit = scanner.FindFirstViolation(worklist, cursor, result.metric,
                                            params.tolerance);
      if (!hit) break;  // every source from cursor on is satisfied: drop all
      // Steps 2.1.4 / 2.1.5: flood the violating tree and re-penalize.
      for (NetId e : hit->tree_nets) {
        result.flow[e] += params.delta;
        update_length(e);
      }
      ++result.injections;
      flooded_nets += hit->tree_nets.size();
      violated_tree_nodes += hit->tree_nodes;
      round_flooded += hit->tree_nets.size();
      round_tree_nodes += hit->tree_nodes;
      // A tree with no nets (k == 1 with a single oversized node) can never
      // be repaired by injection; drop the node to guarantee progress.
      if (!hit->tree_nets.empty()) still_violated.push_back(hit->source);
      cursor = hit->index + 1;
      // Safepoint: after a commit (flood + re-penalize applied in full),
      // never mid-scan.
      if (params.cancel.Cancelled()) {
        result.cancelled = true;
        break;
      }
    }
    // One journal record per committed round, cancelled or not: the
    // trajectory of the convergence (how much mass each round added, how
    // fast the violating set shrank) is what the RunReport visualizes.
    e_round.Record(
        {{"metric_seed", static_cast<double>(params.seed)},
         {"round", static_cast<double>(result.rounds)},
         {"injections",
          static_cast<double>(result.injections - round_start_injections)},
         {"flooded_nets", static_cast<double>(round_flooded)},
         {"tree_nodes", static_cast<double>(round_tree_nodes)},
         {"metric_mass", metric_mass}});
    if (result.cancelled) break;
    std::swap(worklist, still_violated);
  }

  result.converged = worklist.empty() && !result.cancelled;
  if (result.cancelled) c_rounds_truncated.Add();
  result.metric_cost = MetricCost(hg, result.metric);
  c_metrics.Add();
  c_rounds.Add(result.rounds);
  c_injections.Add(result.injections);
  c_flooded_nets.Add(flooded_nets);
  c_violated_tree_nodes.Add(violated_tree_nodes);
  if (result.converged) c_converged.Add();
  h_rounds_per_metric.Record(result.rounds);
  h_injections_per_metric.Record(result.injections);
  return result;
}

FlowInjectionResult ComputePairPathSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const FlowInjectionParams& params) {
  HTP_CHECK(params.epsilon > 0.0);
  HTP_CHECK(params.alpha > 0.0);
  HTP_CHECK(params.delta > 0.0);
  Rng rng(params.seed);
  obs::PhaseScope obs_span(t_compute_metric);
  obs::ScopedHistogramTimer obs_hist_span(h_compute_metric_ns);
  std::uint64_t flooded_nets = 0;

  FlowInjectionResult result;
  result.flow.assign(hg.num_nets(), params.epsilon);
  MaybeSeedWarmFlow(hg, params, result.flow);
  result.metric.assign(hg.num_nets(), 0.0);
  auto update_length = [&](NetId e) {
    result.metric[e] =
        std::exp(params.alpha * result.flow[e] / hg.net_capacity(e)) - 1.0;
  };
  for (NetId e = 0; e < hg.num_nets(); ++e) update_length(e);

  std::vector<NodeId> worklist(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) worklist[v] = v;
  MaybeSampleWorklist(worklist, params.oracle_sample, rng);

  while (!worklist.empty() && result.rounds < params.max_rounds) {
    // Same safepoint placement as ComputeSpreadingMetric: round top and
    // after each committed injection.
    if (params.cancel.Cancelled()) {
      result.cancelled = true;
      break;
    }
    ++result.rounds;
    rng.shuffle(worklist);
    std::vector<NodeId> still_violated;
    for (NodeId v : worklist) {
      if (result.cancelled) break;
      auto violation =
          FindViolationFrom(hg, spec, result.metric, v, params.tolerance);
      if (!violation) continue;
      // Pair-path injection: pick a random partner inside the violating
      // (under-spread) region and flood only the v -> u shortest path.
      const ShortestPathTree& tree = violation->tree;
      if (tree.order.size() < 2) continue;  // lone oversized node
      const NodeId u = tree.order[1 + rng.next_below(tree.order.size() - 1)];
      for (NodeId x = u; x != v && x != kInvalidNode;
           x = tree.parent[x].node) {
        const NetId e = tree.parent[x].net;
        if (e == kInvalidNet) break;
        result.flow[e] += params.delta;
        update_length(e);
        ++flooded_nets;
      }
      ++result.injections;
      still_violated.push_back(v);
      if (params.cancel.Cancelled()) result.cancelled = true;
    }
    if (result.cancelled) break;
    worklist = std::move(still_violated);
  }

  result.converged = worklist.empty() && !result.cancelled;
  if (result.cancelled) c_rounds_truncated.Add();
  result.metric_cost = MetricCost(hg, result.metric);
  c_metrics.Add();
  c_rounds.Add(result.rounds);
  c_injections.Add(result.injections);
  c_flooded_nets.Add(flooded_nets);
  if (result.converged) c_converged.Add();
  h_rounds_per_metric.Record(result.rounds);
  h_injections_per_metric.Record(result.injections);
  return result;
}

}  // namespace htp
