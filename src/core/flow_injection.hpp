// Algorithm 2: stochastic flow injection for computing spreading metrics.
//
// Motivated by the duality between (P1) and a maximum-flow problem over the
// shortest-path trees S(v,k) (Section 3.1): each edge carries a flow f(e)
// and an exponential length d(e) = exp(alpha * f(e) / c(e)) - 1. Nodes whose
// constraints (5) may be violated live in a worklist V'. For each worklist
// node v (visited in random order), a truncated Dijkstra grows S(v,k) until
// a constraint is violated or the whole graph is covered; on violation,
// `delta` units of flow are injected on every net of the violating tree and
// their lengths re-penalized; otherwise v leaves the worklist for good —
// lengths only ever grow, so satisfied constraints stay satisfied.
#pragma once

#include <cstdint>
#include <memory>

#include "core/spreading_metric.hpp"
#include "runtime/budget.hpp"

namespace htp {

/// Tunables of Algorithm 2 (paper values for epsilon/alpha/delta are not
/// reported; defaults were calibrated on the ISCAS85-like suite — see the
/// ablation benches).
struct FlowInjectionParams {
  /// Initial flow on every edge ("a very small amount of flows, epsilon, so
  /// that its length will be close (but not equal) to 0").
  double epsilon = 1e-3;
  /// Congestion exponent in d(e) = exp(alpha f(e) / c(e)) - 1.
  double alpha = 0.05;
  /// Flow units injected on each edge of a violating tree (step 2.1.4).
  double delta = 0.5;
  /// Absolute tolerance granted to constraint (5) checks.
  double tolerance = 1e-7;
  /// Safety cap on passes over the worklist (each pass visits every
  /// remaining node once, in random order).
  std::size_t max_rounds = 4000;
  /// Random seed for the per-round visiting order.
  std::uint64_t seed = 1;
  /// Sampled separation oracle for constraint family (5). The exact oracle
  /// checks (5) from every source, so one round of Algorithm 2 costs
  /// O(n^2 log n) in the worst case — the scaling wall ROADMAP item 1
  /// names. With `oracle_sample` in (0, 1), each metric computation seeds
  /// its worklist with a deterministic random sample of
  /// ceil(oracle_sample * n) sources instead of all n, so rounds stay
  /// subquadratic on large inputs. The resulting metric satisfies (5) only
  /// on the sampled family — a relaxation in the Charikar–Chatziafratis
  /// approximate-separation sense (docs/scaling.md) — which FLOW's
  /// construction tolerates because the metric is a guide, not a
  /// certificate (the Lemma-2 lower bound no longer applies). 0 (the
  /// default) and 1 both mean exact. Sampling is drawn from `seed` before
  /// any scan starts, so results remain bit-identical for every `threads`
  /// value.
  double oracle_sample = 0.0;
  /// Worker threads for the candidate scan inside each injection round
  /// (ViolationScanner). 1 = serial, 0 = all hardware threads. Results are
  /// bit-identical for every value; only wall-clock changes. Ignored by
  /// ComputePairPathSpreadingMetric, whose injection step needs the full
  /// violating tree (a path walk through parent links) rather than just its
  /// net set, so it stays on the serial oracle.
  std::size_t threads = 1;
  /// Cooperative cancellation handle, polled at the algorithm's safepoints:
  /// the top of every worklist round and after every commit (an injection
  /// is applied and re-penalized in full — never mid-scan). A fired token
  /// stops the loop with `cancelled = true`; the returned metric is the
  /// last committed state, so it is always internally consistent (just not
  /// necessarily feasible for family (5)). Inert by default: unbudgeted
  /// runs are bit-identical to the pre-anytime code path.
  CancellationToken cancel;
  /// Optional pre-lowered CSR adjacency of the input hypergraph (the
  /// metric-independent star expansion ViolationScanner otherwise builds
  /// per computation). A caching layer (src/server) passes the shared view
  /// here so repeat requests skip the lowering; null (the default) keeps
  /// the private per-computation build. Never affects results — the view
  /// is a pure function of the hypergraph. Ignored by
  /// ComputePairPathSpreadingMetric, which stays on the serial oracle.
  std::shared_ptr<const CsrView> csr;
  /// Warm-start seed for incremental (ECO) repartitioning
  /// (docs/incremental.md). When set it must carry exactly one value per
  /// net of `hg`: a prior run's converged metric d(e), remapped through a
  /// netlist delta (untouched nets keep their converged length, touched or
  /// added nets carry 0). Initialization inverts each seed back into flow,
  ///
  ///   f(e) = max(epsilon, c(e) * ln(1 + d(e)) / alpha),
  ///
  /// so Algorithm 2 *resumes* injection from the prior near-feasible state
  /// instead of starting from the uniform-epsilon cold start; the monotone
  /// length-growth convergence argument is unchanged because a warm start
  /// only raises initial lengths. Null (the default) is the cold start,
  /// bit-identical to every prior release. A warm seed changes results, so
  /// it participates in the artifact-cache key (server/artifact_key.hpp) —
  /// warm-seeded metrics never alias cold cache entries.
  std::shared_ptr<const SpreadingMetric> warm_metric;
};

/// Outcome of Algorithm 2.
struct FlowInjectionResult {
  SpreadingMetric metric;        ///< d(e) per net
  std::vector<double> flow;      ///< f(e) per net
  std::size_t injections = 0;    ///< number of violating trees flooded
  std::size_t rounds = 0;        ///< worklist passes executed
  bool converged = false;        ///< worklist emptied within max_rounds
  bool cancelled = false;        ///< params.cancel fired at a safepoint
  double metric_cost = 0.0;      ///< sum_e c(e) d(e) of the final metric
};

/// Runs Algorithm 2 and returns the computed spreading metric. The result
/// is feasible for constraint family (5) whenever `converged` is true.
FlowInjectionResult ComputeSpreadingMetric(const Hypergraph& hg,
                                           const HierarchySpec& spec,
                                           const FlowInjectionParams& params);

/// The predecessor injection style of Lang–Rao [10] and Yeh–Cheng–Lin [17]
/// ("iteratively adding or rerouting flows on the shortest paths between
/// randomly selected pairs of nodes", Section 3.1), adapted to the same
/// termination criterion as Algorithm 2 so the two are directly
/// comparable: while some source still violates family (5), inject `delta`
/// flow on the shortest PATH between a random pair instead of on the
/// violating shortest-path TREE. Converges for the same monotonicity
/// reason; typically needs many more injections because each one lengthens
/// only one path. Compared against Algorithm 2 in bench/ablation_injection.
FlowInjectionResult ComputePairPathSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const FlowInjectionParams& params);

}  // namespace htp
