#include "core/hierarchy.hpp"

#include <cmath>
#include <sstream>

namespace htp {

double HierarchySpec::g(double x) const {
  HTP_CHECK(!levels_.empty());
  if (x <= levels_[0].capacity) return 0.0;
  double sum = 0.0;
  const Level top = root_level();
  for (Level i = 0; i < top; ++i) {
    if (x <= levels_[i].capacity) break;
    sum += (x - levels_[i].capacity) * levels_[i].weight;
  }
  return 2.0 * sum;
}

Level HierarchySpec::LevelForSize(double x) const {
  for (Level l = 0; l < levels_.size(); ++l)
    if (x <= levels_[l].capacity) return l;
  throw Error("total size " + std::to_string(x) +
              " exceeds the root capacity " +
              std::to_string(levels_.back().capacity));
}

double HierarchySpec::AchievableCapacity(Level l, bool integral,
                                         double granularity) const {
  HTP_CHECK(granularity > 0.0);
  auto clip = [integral](double x) { return integral ? std::floor(x) : x; };
  double cap = clip(levels_[0].capacity);
  for (Level i = 1; i <= l; ++i) {
    const double branches = static_cast<double>(levels_[i].max_branches);
    const double children_cap =
        integral ? cap * branches
                 : cap * branches - (branches - 1.0) * granularity;
    cap = std::min(clip(levels_[i].capacity), children_cap);
    HTP_CHECK_MSG(cap > 0.0,
                  "hierarchy capacities too tight for the node granularity");
  }
  return cap;
}

void HierarchySpec::Validate() const {
  HTP_CHECK_MSG(levels_.size() >= 2, "hierarchy needs at least two levels");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    HTP_CHECK_MSG(levels_[l].capacity > 0.0, "capacities must be positive");
    HTP_CHECK_MSG(levels_[l].weight >= 0.0, "weights must be nonnegative");
    if (l > 0) {
      HTP_CHECK_MSG(levels_[l].capacity >= levels_[l - 1].capacity,
                    "capacities must be nondecreasing with level");
      HTP_CHECK_MSG(levels_[l].max_branches >= 2,
                    "branch bounds above level 0 must be >= 2");
    }
  }
}

std::string HierarchySpec::ToString() const {
  std::ostringstream os;
  os << "hierarchy[L=" << root_level();
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    os << (l == 0 ? "; " : " | ") << "l" << l << ": C=" << levels_[l].capacity;
    if (l > 0) os << " K=" << levels_[l].max_branches;
    if (l + 1 < levels_.size()) os << " w=" << levels_[l].weight;
  }
  os << "]";
  return os.str();
}

HierarchySpec UniformHierarchy(double total_size, Level height,
                               std::size_t branching, double slack,
                               const std::vector<double>& weights) {
  HTP_CHECK(height >= 1);
  HTP_CHECK(branching >= 2);
  HTP_CHECK(slack >= 0.0);
  HTP_CHECK(weights.size() == height);
  HTP_CHECK(total_size > 0.0);
  std::vector<LevelSpec> levels(height + 1);
  for (Level l = 0; l <= height; ++l) {
    const double ideal =
        total_size / std::pow(static_cast<double>(branching),
                              static_cast<double>(height - l));
    levels[l].capacity =
        l == height ? total_size : std::ceil(ideal) * (1.0 + slack);
    levels[l].max_branches = branching;
    levels[l].weight = l < height ? weights[l] : 1.0;
  }
  return HierarchySpec(std::move(levels));
}

HierarchySpec FullBinaryHierarchy(double total_size, Level height,
                                  double slack, double weight) {
  return UniformHierarchy(total_size, height, 2, slack,
                          std::vector<double>(height, weight));
}

}  // namespace htp
