// Hierarchy specification for the HTP problem (Section 2.1).
//
// A rooted tree hierarchy with leaves at level 0 and the root at level L.
// Each level l carries a block-capacity bound C_l, a branch bound K_l (max
// children of a level-l vertex; meaningless at level 0), and a cost weight
// w_l (the weight of spans at level l in Equation (1); meaningless at the
// root, whose span is always 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/common.hpp"

namespace htp {

/// Per-level parameters of a hierarchy.
struct LevelSpec {
  /// C_l: upper bound on the total node size assigned to a level-l block.
  double capacity = 0.0;
  /// K_l: upper bound on the number of children of a level-l block.
  /// Ignored for level 0 (leaves have no children).
  std::size_t max_branches = 2;
  /// w_l: weighting factor of the interconnection cost at level l.
  /// Ignored for the root level (the root always holds every node).
  double weight = 1.0;
};

/// The tree-hierarchy parameters (C_l, K_l, w_l) of an HTP instance.
///
/// `levels[l]` describes level l; `levels.back()` is the root level L.
/// Validity (checked by Validate()): at least two levels, positive
/// capacities, nondecreasing capacities, branch bounds >= 2 above level 0,
/// nonnegative weights.
class HierarchySpec {
 public:
  HierarchySpec() = default;
  explicit HierarchySpec(std::vector<LevelSpec> levels)
      : levels_(std::move(levels)) {
    Validate();
  }

  const std::vector<LevelSpec>& levels() const { return levels_; }
  const LevelSpec& level(Level l) const {
    HTP_CHECK(l < levels_.size());
    return levels_[l];
  }
  /// L: the level of the root.
  Level root_level() const {
    return static_cast<Level>(levels_.size() - 1);
  }
  std::size_t num_levels() const { return levels_.size(); }

  double capacity(Level l) const { return level(l).capacity; }
  std::size_t max_branches(Level l) const { return level(l).max_branches; }
  double weight(Level l) const { return level(l).weight; }

  /// The spreading lower-bound function g of linear program (P1):
  ///   g(x) = 0                                   when x <= C_0
  ///   g(x) = 2 * sum_{i=0..l} (x - C_i) * w_i    when C_l < x <= C_{l+1}
  /// For x beyond the root capacity the last branch (l = L-1) applies.
  double g(double x) const;

  /// The smallest level l whose capacity admits total size `x`
  /// (Algorithm 3 step 2). Throws when x exceeds the root capacity.
  Level LevelForSize(double x) const;

  /// The size a level-l subtree can actually absorb: C_l capped by what its
  /// K_l children can absorb recursively. Two regimes:
  ///  * `integral` (unit-size cells, the paper's experiments): capacities
  ///    are floored — C_0 = 2.4 holds 2 unit cells, so a K = 2 level-1
  ///    block holds 4, not C_1 = 4.8. Exact for unit sizes.
  ///  * otherwise, a bin-packing margin of (K_l - 1) * `granularity` is
  ///    subtracted per level, where `granularity` bounds the largest node:
  ///    prefix-growth carves advance in steps of at most `granularity`, so
  ///    any window at least that wide is always hit. Safe (slightly
  ///    conservative) for arbitrary node sizes <= granularity.
  /// Top-down constructors must bound carves by this, not by C_l alone, or
  /// they create blocks that cannot be legally subdivided. Throws when the
  /// spec is too tight for the granularity (capacity underflows).
  double AchievableCapacity(Level l, bool integral,
                            double granularity = 1.0) const;

  /// Throws htp::Error when the spec is malformed.
  void Validate() const;

  /// One-line human-readable description.
  std::string ToString() const;

 private:
  std::vector<LevelSpec> levels_;
};

/// The hierarchy used by the paper's experiments: "the target tree hierarchy
/// will be a full binary tree with height 4" (Section 4). K_l = 2 at every
/// level, root at level `height`, uniform weights, and capacities
///   C_l = ceil(total_size / 2^(height - l)) * (1 + slack)
/// with 10% slack by default; the root capacity admits everything.
HierarchySpec FullBinaryHierarchy(double total_size, Level height = 4,
                                  double slack = 0.10, double weight = 1.0);

/// A general helper: K-ary hierarchy of the given height with per-level
/// weights (weights.size() == height; weights[l] = w_l).
HierarchySpec UniformHierarchy(double total_size, Level height,
                               std::size_t branching, double slack,
                               const std::vector<double>& weights);

}  // namespace htp
