#include "core/htp_flow.hpp"

#include <chrono>

#include "core/mst_carver.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

// Algorithm-1 driver telemetry. Each iteration span lands on the lane of
// whichever pool thread ran it, tagged with the iteration index.
obs::Counter c_runs("driver.runs");
obs::Counter c_iterations("driver.iterations");
obs::Counter c_carve_attempts("carve.attempts");
obs::Timer t_run("driver.run");
obs::Timer t_iteration("driver.iteration");
obs::Timer t_construct("driver.construct");

// Wraps a carve in best-of-`attempts` restarts (in-window results strictly
// dominate out-of-window ones).
CarveResult BestOfCarves(const Hypergraph& hg,
                         std::span<const double> metric, double lb, double ub,
                         Rng& rng, std::size_t attempts, CarverKind carver) {
  CarveResult best;
  bool have = false;
  c_carve_attempts.Add(attempts);
  for (std::size_t t = 0; t < attempts; ++t) {
    CarveResult cut = carver == CarverKind::kMstSplit
                          ? MstSplitCarve(hg, metric, lb, ub, rng)
                          : MetricFindCut(hg, metric, lb, ub, rng);
    const bool better =
        !have ||
        (cut.in_window && !best.in_window) ||
        (cut.in_window == best.in_window && cut.cut_value < best.cut_value);
    if (better) {
      best = std::move(cut);
      have = true;
    }
  }
  return best;
}

// The RNG streams one iteration consumes, pre-forked from the master in the
// exact order the serial loop drew them (injection seed, then the metric
// stream, then the construction stream). Forking mutates the master, so all
// streams are materialized up front before any iteration runs; afterwards an
// iteration touches only its own entry, making the outer loop data-parallel.
struct IterationStreams {
  std::uint64_t injection_seed;
  Rng metric_rng;
  Rng construct_rng;
};

// Result slot of one outer iteration.
struct IterationOutcome {
  HtpFlowIteration stats;
  std::optional<TreePartition> best_partition;
  double best_cost = 0.0;
};

// One Algorithm-1 iteration: compute a metric, construct
// `constructions_per_metric` partitions on it, keep the cheapest (first on
// ties). Reads only shared immutable state plus its own stream slot.
IterationOutcome RunIteration(const Hypergraph& hg, const HierarchySpec& spec,
                              const HtpFlowParams& params,
                              IterationStreams& streams) {
  const auto start = std::chrono::steady_clock::now();
  FlowInjectionParams injection = params.injection;
  injection.seed = streams.injection_seed;
  injection.threads = params.metric_threads;
  const FlowInjectionResult metric = ComputeSpreadingMetric(hg, spec, injection);

  IterationOutcome out;
  out.stats.metric_cost = metric.metric_cost;
  out.stats.injections = metric.injections;
  out.stats.metric_converged = metric.converged;
  out.stats.best_partition_cost = -1.0;

  // The carver: in kPerSubproblem mode the whole-graph carves use the
  // metric computed above, and every proper subproblem gets a freshly
  // injected local metric (the restriction of a global metric keeps
  // full multi-level lengths on boundary nets and so misguides
  // lower-level carves; see MetricScope).
  Rng& metric_rng = streams.metric_rng;
  const CarveFn carve = [&](const Hypergraph& sub,
                            std::span<const double> sub_metric, double lb,
                            double ub, Rng& rng) {
    if (params.metric_scope == MetricScope::kPerSubproblem &&
        sub.num_nodes() < hg.num_nodes() &&
        sub.total_size() > spec.capacity(0)) {
      FlowInjectionParams local = params.injection;
      local.seed = metric_rng.next_u64();
      local.threads = params.metric_threads;
      const FlowInjectionResult local_metric =
          ComputeSpreadingMetric(sub, spec, local);
      return BestOfCarves(sub, local_metric.metric, lb, ub, rng,
                          params.carve_attempts, params.carver);
    }
    return BestOfCarves(sub, sub_metric, lb, ub, rng,
                        params.carve_attempts, params.carver);
  };

  for (std::size_t c = 0; c < params.constructions_per_metric; ++c) {
    obs::PhaseScope construct_span(t_construct, "construction", c);
    TreePartition tp = BuildPartitionTopDown(hg, spec, metric.metric, carve,
                                             streams.construct_rng);
    const double cost = PartitionCost(tp, spec);
    if (out.stats.best_partition_cost < 0.0 ||
        cost < out.stats.best_partition_cost)
      out.stats.best_partition_cost = cost;
    if (!out.best_partition || cost < out.best_cost) {
      out.best_partition = std::move(tp);
      out.best_cost = cost;
    }
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace

HtpFlowResult RunHtpFlow(const Hypergraph& hg, const HierarchySpec& spec,
                         const HtpFlowParams& params) {
  HTP_CHECK(params.iterations >= 1);
  HTP_CHECK(params.constructions_per_metric >= 1);
  HTP_CHECK(params.carve_attempts >= 1);
  obs::PhaseScope run_span(t_run);
  c_runs.Add();
  c_iterations.Add(params.iterations);
  Rng master(params.seed);

  std::vector<IterationStreams> streams;
  streams.reserve(params.iterations);
  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    // Braced init evaluates left to right — the serial draw order.
    streams.push_back(IterationStreams{master.fork(iter).next_u64(),
                                       master.fork(2000 + iter),
                                       master.fork(1000 + iter)});
  }

  // Each iteration fills exactly its own slot; with threads == 1 this runs
  // inline on the calling thread. Exceptions (e.g. infeasible instances)
  // propagate from the lowest failing iteration regardless of thread count.
  std::vector<IterationOutcome> outcomes(params.iterations);
  ParallelFor(params.threads, params.iterations, [&](std::size_t iter) {
    // The span lands on the lane of whichever worker ran this iteration.
    obs::PhaseScope iteration_span(t_iteration, "iter", iter);
    outcomes[iter] = RunIteration(hg, spec, params, streams[iter]);
  });

  // Deterministic reduction: the serial loop kept the first strictly
  // cheaper construction, i.e. the lowest (iteration, construction) index
  // achieving the minimum cost — reproduce that tie-break exactly.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < params.iterations; ++i)
    if (outcomes[i].best_cost < outcomes[winner].best_cost) winner = i;

  HtpFlowResult result{std::move(*outcomes[winner].best_partition),
                       outcomes[winner].best_cost,
                       {}};
  result.iterations.reserve(params.iterations);
  for (IterationOutcome& out : outcomes)
    result.iterations.push_back(out.stats);
  return result;
}

}  // namespace htp
