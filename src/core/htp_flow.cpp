#include "core/htp_flow.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/mst_carver.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

// Algorithm-1 driver telemetry. Each iteration span lands on the lane of
// whichever pool thread ran it, tagged with the iteration index.
obs::Counter c_runs("driver.runs");
obs::Counter c_iterations("driver.iterations");
obs::Counter c_carve_attempts("carve.attempts");
// Anytime telemetry: all three stay zero unless a budget is set, so
// unbudgeted counter totals are untouched. `driver.budget_remaining_ms` is
// the wall-clock headroom left when a deadline-budgeted run returned (kMax:
// the roomiest run in the snapshot window).
obs::Counter c_cancelled("driver.cancelled");
obs::Counter c_iterations_skipped("driver.iterations_skipped");
obs::Counter c_budget_remaining_ms("driver.budget_remaining_ms",
                                   obs::CounterKind::kMax);
obs::Timer t_run("driver.run");
obs::Timer t_iteration("driver.iteration");
obs::Timer t_construct("driver.construct");
// One journal record per executed Algorithm-1 iteration; `iter` leads the
// payload so the drained journal lists iterations in index order.
obs::Event e_iteration("driver.iteration");

// Wraps a carve in best-of-`attempts` restarts (in-window results strictly
// dominate out-of-window ones). A fired token stops the restarts after the
// first completed attempt — one attempt always runs, so the carve (and thus
// the enclosing construction) stays valid.
CarveResult BestOfCarves(const Hypergraph& hg,
                         std::span<const double> metric, double lb, double ub,
                         Rng& rng, std::size_t attempts, CarverKind carver,
                         const CancellationToken& cancel) {
  CarveResult best;
  bool have = false;
  std::size_t executed = 0;
  for (std::size_t t = 0; t < attempts; ++t) {
    CarveResult cut = carver == CarverKind::kMstSplit
                          ? MstSplitCarve(hg, metric, lb, ub, rng)
                          : MetricFindCut(hg, metric, lb, ub, rng);
    ++executed;
    const bool better =
        !have ||
        (cut.in_window && !best.in_window) ||
        (cut.in_window == best.in_window && cut.cut_value < best.cut_value);
    if (better) {
      best = std::move(cut);
      have = true;
    }
    // Safepoint: between attempts (an attempt is never abandoned midway).
    if (cancel.Cancelled()) break;
  }
  c_carve_attempts.Add(executed);
  return best;
}

// The RNG streams one iteration consumes, pre-forked from the master in the
// exact order the serial loop drew them (injection seed, then the metric
// stream, then the construction stream). Forking mutates the master, so all
// streams are materialized up front before any iteration runs; afterwards an
// iteration touches only its own entry, making the outer loop data-parallel.
struct IterationStreams {
  std::uint64_t injection_seed;
  Rng metric_rng;
  Rng construct_rng;
};

// Result slot of one outer iteration.
struct IterationOutcome {
  HtpFlowIteration stats;
  std::optional<TreePartition> best_partition;
  double best_cost = 0.0;
  bool skipped = false;    ///< token fired before the iteration started
  bool truncated = false;  ///< token fired somewhere inside the iteration
  /// The iteration's converged global metric, kept iff keep_best_metric
  /// (the winner's copy moves into HtpFlowResult::best_metric).
  SpreadingMetric metric;
};

// Applies the budget's deterministic round cap to one metric computation
// and attaches the shared token.
FlowInjectionParams BudgetedInjection(const FlowInjectionParams& base,
                                      const Budget& budget,
                                      const CancellationToken& cancel) {
  FlowInjectionParams injection = base;
  if (budget.max_rounds > 0)
    injection.max_rounds = std::min(injection.max_rounds, budget.max_rounds);
  injection.cancel = cancel;
  return injection;
}

// One Algorithm-1 iteration: compute a metric, construct
// `constructions_per_metric` partitions on it, keep the cheapest (first on
// ties). Reads only shared immutable state plus its own stream slot.
//
// `guarantee_result` implements the anytime floor: the first construction
// runs to completion no matter what (its build gets an inert token), so
// even a pre-expired deadline yields a valid partition. Every later
// construction may be cut short by CancelledError, caught here — the
// exception never escapes RunHtpFlow.
IterationOutcome RunIteration(const Hypergraph& hg, const HierarchySpec& spec,
                              const HtpFlowParams& params,
                              IterationStreams& streams,
                              const CancellationToken& cancel,
                              bool guarantee_result) {
  const auto start = std::chrono::steady_clock::now();
  FlowInjectionParams injection =
      BudgetedInjection(params.injection, params.budget, cancel);
  injection.seed = streams.injection_seed;
  injection.threads = params.metric_threads;
  // All metric computations route through the optional provider so a
  // caching layer can intercept both this global metric and the
  // per-subproblem ones below. Must be thread-safe: the carve lambda calls
  // it from pool workers under build_threads != 1.
  const auto compute_metric = [&params](const Hypergraph& g,
                                        const HierarchySpec& s,
                                        const FlowInjectionParams& p) {
    return params.metric_compute ? params.metric_compute(g, s, p)
                                 : ComputeSpreadingMetric(g, s, p);
  };
  const FlowInjectionResult metric = compute_metric(hg, spec, injection);

  IterationOutcome out;
  out.stats.metric_cost = metric.metric_cost;
  out.stats.injections = metric.injections;
  out.stats.metric_converged = metric.converged;
  out.stats.best_partition_cost = -1.0;
  out.truncated = metric.cancelled;
  if (params.keep_best_metric) out.metric = metric.metric;

  // The carver: in kPerSubproblem mode the whole-graph carves use the
  // metric computed above, and every proper subproblem gets a freshly
  // injected local metric (the restriction of a global metric keeps
  // full multi-level lengths on boundary nets and so misguides
  // lower-level carves; see MetricScope).
  Rng& metric_rng = streams.metric_rng;
  // build_threads != 1 routes construction through the subtree task engine,
  // where the carve lambda runs concurrently on pool workers: the
  // local-metric seed must come from the calling task's private stream
  // (`rng`), not the iteration-shared metric_rng, and the truncation flag
  // becomes an atomic folded into `out` after the build returns.
  const bool tasked = params.build_threads != 1;
  std::atomic<bool> carve_truncated{false};
  const CarveFn carve = [&](const Hypergraph& sub,
                            std::span<const double> sub_metric, double lb,
                            double ub, Rng& rng) {
    if (params.metric_scope == MetricScope::kPerSubproblem &&
        sub.num_nodes() < hg.num_nodes() &&
        sub.total_size() > spec.capacity(0)) {
      FlowInjectionParams local =
          BudgetedInjection(params.injection, params.budget, cancel);
      local.seed = tasked ? rng.next_u64() : metric_rng.next_u64();
      local.threads = params.metric_threads;
      // A warm seed (ECO, docs/incremental.md) is sized for the *input*
      // hypergraph; per-subproblem locals run on different net sets, so
      // they always inject cold (exactly what a cold run would do).
      local.warm_metric.reset();
      const FlowInjectionResult local_metric = compute_metric(sub, spec, local);
      if (local_metric.cancelled)
        carve_truncated.store(true, std::memory_order_relaxed);
      return BestOfCarves(sub, local_metric.metric, lb, ub, rng,
                          params.carve_attempts, params.carver, cancel);
    }
    return BestOfCarves(sub, sub_metric, lb, ub, rng,
                        params.carve_attempts, params.carver, cancel);
  };

  for (std::size_t c = 0; c < params.constructions_per_metric; ++c) {
    // Floor guarantee: the first construction must complete while no
    // partition exists yet, so its build polls an inert token (the metric
    // computations and carve restarts inside it still honor `cancel` and
    // degrade to their fastest valid behaviour once it fires).
    const bool must_finish = guarantee_result && !out.best_partition;
    if (!must_finish && cancel.Cancelled()) {
      out.truncated = true;
      break;
    }
    obs::PhaseScope construct_span(t_construct, "construction", c);
    try {
      const CancellationToken build_cancel =
          must_finish ? CancellationToken{} : cancel;
      TreePartition tp =
          tasked ? BuildPartitionTasked(hg, spec, metric.metric, carve,
                                        streams.construct_rng,
                                        params.build_threads, build_cancel)
                 : BuildPartitionTopDown(hg, spec, metric.metric, carve,
                                         streams.construct_rng, build_cancel);
      const double cost = PartitionCost(tp, spec);
      if (out.stats.best_partition_cost < 0.0 ||
          cost < out.stats.best_partition_cost)
        out.stats.best_partition_cost = cost;
      if (!out.best_partition || cost < out.best_cost) {
        out.best_partition = std::move(tp);
        out.best_cost = cost;
      }
    } catch (const CancelledError&) {
      out.truncated = true;
      break;
    }
  }
  if (carve_truncated.load(std::memory_order_relaxed)) out.truncated = true;
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace

HtpFlowResult RunHtpFlow(const Hypergraph& hg, const HierarchySpec& spec,
                         const HtpFlowParams& params) {
  HTP_CHECK(params.iterations >= 1);
  HTP_CHECK(params.constructions_per_metric >= 1);
  HTP_CHECK(params.carve_attempts >= 1);
  obs::PhaseScope run_span(t_run);
  c_runs.Add();
  // The deterministic iteration cap truncates the plan up front; because
  // streams are forked in serial order below, the capped run equals the
  // uncapped run's first `planned` iterations bit for bit.
  const std::size_t planned =
      params.budget.max_iterations > 0
          ? std::min(params.iterations, params.budget.max_iterations)
          : params.iterations;
  c_iterations.Add(planned);
  const CancellationToken cancel = StartBudget(params.budget, params.cancel);
  Rng master(params.seed);

  std::vector<IterationStreams> streams;
  streams.reserve(planned);
  for (std::size_t iter = 0; iter < planned; ++iter) {
    // Braced init evaluates left to right — the serial draw order.
    streams.push_back(IterationStreams{master.fork(iter).next_u64(),
                                       master.fork(2000 + iter),
                                       master.fork(1000 + iter)});
  }

  // Each iteration fills exactly its own slot; with threads == 1 this runs
  // inline on the calling thread. Exceptions (e.g. infeasible instances)
  // propagate from the lowest failing iteration regardless of thread count.
  // Safepoint: between outer iterations — a fired token skips whole
  // iterations, except iteration 0, which carries the floor guarantee.
  std::vector<IterationOutcome> outcomes(planned);
  ParallelFor(params.threads, planned, [&](std::size_t iter) {
    if (iter != 0 && cancel.Cancelled()) {
      outcomes[iter].skipped = true;
      return;
    }
    // The span lands on the lane of whichever worker ran this iteration.
    obs::PhaseScope iteration_span(t_iteration, "iter", iter);
    outcomes[iter] =
        RunIteration(hg, spec, params, streams[iter], cancel, iter == 0);
    const IterationOutcome& out = outcomes[iter];
    // Journaled from whichever worker ran the iteration; the record's
    // payload is a function of the pre-forked stream alone, so the drained
    // (name, fields)-ordered journal is thread-count-invariant.
    e_iteration.Record(
        {{"iter", static_cast<double>(iter)},
         {"seed", static_cast<double>(streams[iter].injection_seed)},
         {"injections", static_cast<double>(out.stats.injections)},
         {"metric_cost", out.stats.metric_cost},
         {"constructive_cost", out.stats.best_partition_cost},
         {"converged", out.stats.metric_converged ? 1.0 : 0.0},
         {"truncated", out.truncated ? 1.0 : 0.0}});
  });

  // Deterministic reduction: the serial loop kept the first strictly
  // cheaper construction, i.e. the lowest (iteration, construction) index
  // achieving the minimum cost — reproduce that tie-break exactly.
  // Skipped/fully-truncated iterations have no partition and never win;
  // iteration 0 always has one (the floor guarantee).
  std::size_t winner = planned;
  std::size_t skipped = 0;
  bool token_truncated = false;
  for (std::size_t i = 0; i < planned; ++i) {
    if (outcomes[i].skipped) {
      ++skipped;
      continue;
    }
    token_truncated |= outcomes[i].truncated;
    if (!outcomes[i].best_partition) continue;
    if (winner == planned ||
        outcomes[i].best_cost < outcomes[winner].best_cost)
      winner = i;
  }
  token_truncated |= skipped > 0;
  HTP_CHECK_MSG(winner != planned,
                "anytime floor violated: no construction completed");

  HtpFlowResult result{std::move(*outcomes[winner].best_partition),
                       outcomes[winner].best_cost,
                       {},
                       true,
                       StopReason::kCompleted,
                       {},
                       {}};
  if (params.keep_best_metric)
    result.best_metric = std::move(outcomes[winner].metric);
  result.iterations.reserve(planned - skipped);
  for (IterationOutcome& out : outcomes)
    if (!out.skipped) result.iterations.push_back(out.stats);

  if (token_truncated) {
    // A fired token is the runtime event that actually cut the run, so it
    // outranks the deterministic iteration cap.
    const StopReason fired = cancel.FiredReason();
    result.stop_reason =
        fired != StopReason::kCompleted ? fired : StopReason::kCancelled;
    result.completed = false;
    c_cancelled.Add();
  } else if (planned < params.iterations) {
    result.stop_reason = StopReason::kIterationCap;
    result.completed = false;
  }
  if (skipped > 0) c_iterations_skipped.Add(skipped);
  // Finite only when a deadline was armed (via params.budget or an already
  // deadline-bearing params.cancel), so unbudgeted totals stay untouched.
  const double remaining = cancel.RemainingSeconds();
  if (remaining < Budget::kNoTimeLimit) {
    c_budget_remaining_ms.Add(
        static_cast<std::uint64_t>(remaining * 1000.0));
  }
  if (params.collect_report) {
    obs::RunReportBuilder rb("htp_flow");
    rb.MetaString("algorithm", "flow");
    rb.MetaNumber("nodes", static_cast<double>(hg.num_nodes()));
    rb.MetaNumber("nets", static_cast<double>(hg.num_nets()));
    rb.MetaNumber("levels", static_cast<double>(spec.num_levels()));
    rb.MetaNumber("seed", static_cast<double>(params.seed));
    rb.MetaNumber("iterations_requested",
                  static_cast<double>(params.iterations));
    rb.MetaNumber("constructions_per_metric",
                  static_cast<double>(params.constructions_per_metric));
    rb.MetaNumber("carve_attempts",
                  static_cast<double>(params.carve_attempts));
    rb.MetaString("metric_scope",
                  params.metric_scope == MetricScope::kPerSubproblem
                      ? "per_subproblem"
                      : "global_once");
    rb.MetaString("carver", params.carver == CarverKind::kMstSplit
                                ? "mst_split"
                                : "prim_prefix");
    // The construction mode changes deterministic results (per-task RNG
    // streams vs the serial stream), so it belongs in meta; the worker
    // count does not, so it goes to the wall section below.
    rb.MetaString("build_mode",
                  params.build_threads == 1 ? "serial" : "tasked");
    rb.ResultNumber("cost", result.cost);
    rb.ResultBool("completed", result.completed);
    rb.ResultString("stop_reason", StopReasonName(result.stop_reason));
    rb.ResultNumber("iterations_run",
                    static_cast<double>(result.iterations.size()));
    rb.WallNumber("threads", static_cast<double>(params.threads));
    rb.WallNumber("metric_threads",
                  static_cast<double>(params.metric_threads));
    rb.WallNumber("build_threads",
                  static_cast<double>(params.build_threads));
    result.report = rb.Render(obs::TakeSnapshot(), obs::DrainEvents());
  }
  return result;
}

}  // namespace htp
