#include "core/htp_flow.hpp"

#include "core/mst_carver.hpp"

namespace htp {
namespace {

// Wraps a carve in best-of-`attempts` restarts (in-window results strictly
// dominate out-of-window ones).
CarveResult BestOfCarves(const Hypergraph& hg,
                         std::span<const double> metric, double lb, double ub,
                         Rng& rng, std::size_t attempts, CarverKind carver) {
  CarveResult best;
  bool have = false;
  for (std::size_t t = 0; t < attempts; ++t) {
    CarveResult cut = carver == CarverKind::kMstSplit
                          ? MstSplitCarve(hg, metric, lb, ub, rng)
                          : MetricFindCut(hg, metric, lb, ub, rng);
    const bool better =
        !have ||
        (cut.in_window && !best.in_window) ||
        (cut.in_window == best.in_window && cut.cut_value < best.cut_value);
    if (better) {
      best = std::move(cut);
      have = true;
    }
  }
  return best;
}

}  // namespace

HtpFlowResult RunHtpFlow(const Hypergraph& hg, const HierarchySpec& spec,
                         const HtpFlowParams& params) {
  HTP_CHECK(params.iterations >= 1);
  HTP_CHECK(params.constructions_per_metric >= 1);
  HTP_CHECK(params.carve_attempts >= 1);
  Rng master(params.seed);

  std::optional<HtpFlowResult> best;
  std::vector<HtpFlowIteration> stats;
  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    FlowInjectionParams injection = params.injection;
    injection.seed = master.fork(iter).next_u64();
    const FlowInjectionResult metric =
        ComputeSpreadingMetric(hg, spec, injection);

    HtpFlowIteration it_stats;
    it_stats.metric_cost = metric.metric_cost;
    it_stats.injections = metric.injections;
    it_stats.metric_converged = metric.converged;
    it_stats.best_partition_cost = -1.0;

    // The carver: in kPerSubproblem mode the whole-graph carves use the
    // metric computed above, and every proper subproblem gets a freshly
    // injected local metric (the restriction of a global metric keeps
    // full multi-level lengths on boundary nets and so misguides
    // lower-level carves; see MetricScope).
    Rng metric_rng = master.fork(2000 + iter);
    const CarveFn carve = [&](const Hypergraph& sub,
                              std::span<const double> sub_metric, double lb,
                              double ub, Rng& rng) {
      if (params.metric_scope == MetricScope::kPerSubproblem &&
          sub.num_nodes() < hg.num_nodes() &&
          sub.total_size() > spec.capacity(0)) {
        FlowInjectionParams local = params.injection;
        local.seed = metric_rng.next_u64();
        const FlowInjectionResult local_metric =
            ComputeSpreadingMetric(sub, spec, local);
        return BestOfCarves(sub, local_metric.metric, lb, ub, rng,
                            params.carve_attempts, params.carver);
      }
      return BestOfCarves(sub, sub_metric, lb, ub, rng,
                          params.carve_attempts, params.carver);
    };

    Rng construct_rng = master.fork(1000 + iter);
    for (std::size_t c = 0; c < params.constructions_per_metric; ++c) {
      TreePartition tp = BuildPartitionTopDown(hg, spec, metric.metric, carve,
                                               construct_rng);
      const double cost = PartitionCost(tp, spec);
      if (it_stats.best_partition_cost < 0.0 ||
          cost < it_stats.best_partition_cost)
        it_stats.best_partition_cost = cost;
      if (!best || cost < best->cost) {
        best = HtpFlowResult{std::move(tp), cost, {}};
      }
    }
    stats.push_back(it_stats);
  }
  best->iterations = std::move(stats);
  return std::move(*best);
}

}  // namespace htp
