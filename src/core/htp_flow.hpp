// Algorithm 1: the complete network-flow-based HTP heuristic (FLOW).
//
//   repeat N times:
//     1.1  compute a spreading metric by stochastic flow injection (Alg. 2)
//     1.2  construct a partition from the metric (Alg. 3 / find_cut)
//   output the best partition found
//
// The conclusion of the paper suggests amortizing the expensive metric
// computation by "constructing multiple partitions for the same spreading
// metric without a significant increase on the run time" —
// `constructions_per_metric` implements exactly that and is swept by
// bench/ablation_multipart.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/build_partition.hpp"
#include "core/flow_injection.hpp"

namespace htp {

/// How spreading metrics feed Algorithm 3's recursion.
enum class MetricScope {
  /// The paper's literal pipeline: one global metric, reused (restricted)
  /// in every subproblem. Cheap, but the restriction blurs the metric's
  /// signal at lower levels (boundary nets keep their full multi-level
  /// length inside a block) — see DESIGN.md and bench/ablation_scope.
  kGlobalOnce,
  /// Re-run the flow injection on each subproblem with the same hierarchy
  /// spec (the sub-level capacities are the binding ones, so g() is
  /// unchanged). Subproblems shrink geometrically, so the asymptotic cost
  /// matches a single global computation up to the branching factor. This
  /// recovers the paper's reported quality on our substrate and is the
  /// default.
  kPerSubproblem,
};

/// find_cut implementation used by Algorithm 3 inside FLOW.
enum class CarverKind {
  /// The paper's Procedure find_cut: Prim prefix growth with min-cut
  /// prefix selection (core/find_cut.hpp).
  kPrimPrefix,
  /// The conclusion's future-work suggestion: Karger-style 1-respecting
  /// cuts of the metric MST (core/mst_carver.hpp).
  kMstSplit,
};

/// Parameters of Algorithm 1.
struct HtpFlowParams {
  FlowInjectionParams injection;
  /// N: outer iterations (fresh metric + construction each time).
  std::size_t iterations = 4;
  /// Partitions constructed per computed metric (>= 1; the paper's
  /// future-work amortization).
  std::size_t constructions_per_metric = 1;
  /// Metric reuse strategy for the recursion (see MetricScope).
  MetricScope metric_scope = MetricScope::kPerSubproblem;
  /// find_cut restarts per carve; the cheapest in-window result wins.
  std::size_t carve_attempts = 4;
  /// Which carve implementation find_cut uses.
  CarverKind carver = CarverKind::kPrimPrefix;
  /// Master seed; per-iteration streams are forked from it.
  std::uint64_t seed = 1;
  /// Worker threads for the outer iterations: 1 = serial (default, the
  /// pre-parallelism code path), 0 = all hardware threads, anything else
  /// literal. Every iteration draws from its own pre-forked RNG stream and
  /// writes into its own result slot, so the returned partition, cost, and
  /// iteration stats (wall_seconds aside) are bit-identical for every
  /// value of `threads`.
  std::size_t threads = 1;
  /// Worker threads for the candidate scan *inside* each Algorithm-2
  /// injection round (ViolationScanner; overrides injection.threads). The
  /// two knobs compose: `threads` parallelizes across iterations,
  /// `metric_threads` parallelizes within one metric computation — when
  /// both exceed 1 the runtime's nested-parallelism guard keeps the inner
  /// scan serial inside pool workers rather than oversubscribing. Results
  /// are bit-identical for every combination (asserted by
  /// tests/core/htp_flow_parallel_test.cpp).
  std::size_t metric_threads = 1;
  /// Worker threads for Algorithm 3's recursive carves *inside* each
  /// construction (the disjoint-subtree task engine,
  /// runtime/subtree_tasks.hpp). Unlike the other two knobs this is a
  /// *mode* switch, not just a worker count: `1` (default) keeps the
  /// legacy serial recursion, bit-identical to every release to date;
  /// any other value (0 = all hardware threads) routes construction
  /// through BuildPartitionTasked, whose results are bit-identical to
  /// each other for every engine worker count — but not to the serial
  /// mode, because per-task RNG streams replace the single stream the
  /// serial recursion threads through depth-first order. Composes with
  /// the other knobs via the nested-parallelism guard: inside a pool
  /// worker (threads > 1) the task tree drains serially. See
  /// docs/parallelism.md for the decision table.
  std::size_t build_threads = 1;
  /// Anytime controls (docs/robustness.md): optional wall-clock deadline
  /// plus deterministic caps on injection rounds and outer iterations. The
  /// default (unlimited) budget reproduces the pre-anytime behaviour bit
  /// for bit. When the deadline fires, the driver still returns a *valid*
  /// best-so-far partition: the first construction of iteration 0 always
  /// runs to completion (the floor guarantee), everything else may be
  /// skipped or truncated, and `HtpFlowResult::stop_reason` says why.
  Budget budget;
  /// Optional external cancellation handle (e.g. a signal handler's
  /// Manual() token). Linked as the parent of the budget deadline, so
  /// either source stops the run. Inert by default.
  CancellationToken cancel;
  /// When true, RunHtpFlow assembles a RunReport (obs/report.hpp) into
  /// `HtpFlowResult::report` from the telemetry of this run. Side effect:
  /// assembly *drains* the obs journal (DrainEvents) — so leave this false
  /// when a larger pipeline (e.g. the multilevel driver) owns the report
  /// and wants the inner runs' events to accumulate into its own journal.
  /// Counter/timer totals are snapshotted, not reset. With obs compiled
  /// out the report still renders; its telemetry sections are just empty.
  bool collect_report = false;
  /// Optional metric provider. When set, every spreading-metric
  /// computation FLOW performs — the global per-iteration metric *and* the
  /// per-subproblem metrics of MetricScope::kPerSubproblem — goes through
  /// this function instead of calling ComputeSpreadingMetric directly. The
  /// artifact cache (src/server/cache.hpp) hooks in here to serve
  /// converged metrics from memory on repeat requests. The provider must
  /// be thread-safe (called concurrently from pool workers when threads or
  /// build_threads exceed 1) and must return exactly what
  /// ComputeSpreadingMetric(hg, spec, params) would — the determinism
  /// contract extends through it. Null (the default) is the direct call.
  std::function<FlowInjectionResult(
      const Hypergraph&, const HierarchySpec&, const FlowInjectionParams&)>
      metric_compute;
  /// When true, the winning iteration's converged *global* metric is moved
  /// into `HtpFlowResult::best_metric` so callers can persist it as an ECO
  /// warm-start seed (src/incremental/warm_start.hpp). Costs one
  /// O(num_nets) vector copy per iteration and nothing else — results are
  /// unchanged. Off by default.
  bool keep_best_metric = false;
};

/// Statistics of one Algorithm-1 iteration.
struct HtpFlowIteration {
  double metric_cost = 0.0;        ///< sum c(e) d(e) — the Lemma-2 witness
  double best_partition_cost = 0.0;  ///< best construction on this metric
  std::size_t injections = 0;
  bool metric_converged = false;
  /// Wall-clock of this iteration (metric + all constructions). Purely
  /// informational: the one field excluded from the determinism guarantee.
  double wall_seconds = 0.0;
};

/// Outcome of Algorithm 1. The partition is *always* valid (it passes
/// ValidatePartition), even when a budget fired: `completed` and
/// `stop_reason` report whether it is the full best-of-N answer or an
/// anytime best-so-far.
struct HtpFlowResult {
  TreePartition partition;  ///< best partition over all constructions
  double cost = 0.0;        ///< its interconnection cost (Equation (1))
  /// Stats of the iterations that actually ran (skipped iterations are
  /// omitted, so `iterations.size()` can be below `params.iterations`
  /// when a budget fired).
  std::vector<HtpFlowIteration> iterations;
  /// True iff every requested iteration ran every construction to the end.
  bool completed = true;
  /// Why the run stopped (kCompleted, kIterationCap, kDeadline,
  /// kCancelled). A fired token outranks the deterministic iteration cap.
  StopReason stop_reason = StopReason::kCompleted;
  /// The RunReport JSON document (schema "htp-run-report"), populated iff
  /// `params.collect_report` was set. Its `deterministic` section is
  /// bit-identical across `threads` × `metric_threads` on unbudgeted runs
  /// (tests/obs/report_test.cpp).
  std::string report;
  /// The winning iteration's converged global metric d(e), populated iff
  /// `params.keep_best_metric` was set (empty otherwise). This is the seed
  /// a WarmStartState persists for incremental repartitioning.
  SpreadingMetric best_metric;
};

/// Runs Algorithm 1 (FLOW) on `hg` with respect to `spec`.
HtpFlowResult RunHtpFlow(const Hypergraph& hg, const HierarchySpec& spec,
                         const HtpFlowParams& params = {});

}  // namespace htp
