#include "core/mst_carver.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/obs.hpp"

namespace htp {
namespace {

obs::Counter c_calls("carve.mst_split.calls");
obs::Counter c_in_window("carve.mst_split.in_window");
obs::Counter c_candidates("carve.mst_split.candidates");
obs::Counter c_fallbacks("carve.mst_split.fallbacks");
obs::Timer t_mst_split("carve.mst_split");

struct QueueEntry {
  double key;
  std::uint64_t rank;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    if (key != other.key) return key > other.key;
    if (rank != other.rank) return rank > other.rank;
    return node > other.node;
  }
};

// Prim spanning forest with explicit parent nodes (the settled pin that
// first scanned the attaching net). Random start per component.
struct Forest {
  std::vector<NodeId> order;        // settle order, roots first per tree
  std::vector<NodeId> parent;       // kInvalidNode for roots
};

Forest GrowForest(const Hypergraph& hg, std::span<const double> net_length,
                  Rng& rng) {
  const NodeId n = hg.num_nodes();
  Forest forest;
  forest.parent.assign(n, kInvalidNode);
  std::vector<std::uint64_t> rank(n);
  for (NodeId v = 0; v < n; ++v) rank[v] = rng.next_u64();
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> offer_parent(n, kInvalidNode);
  std::vector<char> net_scanned(hg.num_nets(), 0);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> q;

  NodeId seed = static_cast<NodeId>(rng.next_below(n));
  for (NodeId settled = 0; settled < n;) {
    NodeId u = kInvalidNode;
    while (!q.empty()) {
      const QueueEntry top = q.top();
      q.pop();
      if (!in_tree[top.node] && top.key <= best[top.node]) {
        u = top.node;
        break;
      }
    }
    if (u == kInvalidNode) {  // new component root
      while (in_tree[seed]) seed = (seed + 1) % n;
      u = seed;
      offer_parent[u] = kInvalidNode;
    }
    in_tree[u] = 1;
    ++settled;
    forest.order.push_back(u);
    forest.parent[u] = offer_parent[u];
    for (NetId e : hg.nets(u)) {
      if (net_scanned[e]) continue;
      net_scanned[e] = 1;
      const double key = net_length[e];
      for (NodeId x : hg.pins(e)) {
        if (in_tree[x] || key >= best[x]) continue;
        best[x] = key;
        offer_parent[x] = u;
        q.push({key, rank[x], x});
      }
    }
  }
  return forest;
}

// Exact capacity-weighted hypergraph cut of a node set.
double ExactCut(const Hypergraph& hg, const std::vector<NodeId>& nodes,
                std::vector<std::size_t>& inside_scratch,
                std::vector<NetId>& touched_scratch) {
  touched_scratch.clear();
  for (NodeId v : nodes) {
    for (NetId e : hg.nets(v)) {
      if (inside_scratch[e]++ == 0) touched_scratch.push_back(e);
    }
  }
  double cut = 0.0;
  for (NetId e : touched_scratch) {
    if (inside_scratch[e] < hg.net_degree(e)) cut += hg.net_capacity(e);
    inside_scratch[e] = 0;
  }
  return cut;
}

}  // namespace

CarveResult MstSplitCarve(const Hypergraph& hg,
                          std::span<const double> net_length, double lb,
                          double ub, Rng& rng) {
  HTP_CHECK(net_length.size() == hg.num_nets());
  HTP_CHECK(hg.num_nodes() > 0);
  obs::ScopedTimer obs_timer(t_mst_split);
  c_calls.Add();
  const NodeId n = hg.num_nodes();
  const Forest forest = GrowForest(hg, net_length, rng);

  // Subtree sizes bottom-up (settle order is topological).
  std::vector<double> subtree(n, 0.0);
  for (NodeId v = 0; v < n; ++v) subtree[v] = hg.node_size(v);
  for (auto it = forest.order.rbegin(); it != forest.order.rend(); ++it)
    if (forest.parent[*it] != kInvalidNode)
      subtree[forest.parent[*it]] += subtree[*it];

  // Children lists for subtree extraction.
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v : forest.order)
    if (forest.parent[v] != kInvalidNode) children[forest.parent[v]].push_back(v);

  // Candidate roots whose subtree size lands in the window; cap the exact
  // evaluations to keep the carve near-linear.
  std::vector<NodeId> candidates;
  for (NodeId v : forest.order)
    if (subtree[v] >= lb - 1e-9 && subtree[v] <= ub + 1e-9)
      candidates.push_back(v);
  constexpr std::size_t kMaxEvaluations = 128;
  if (candidates.size() > kMaxEvaluations) {
    rng.shuffle(candidates);
    candidates.resize(kMaxEvaluations);
  }
  c_candidates.Add(candidates.size());

  CarveResult best;
  std::vector<std::size_t> inside(hg.num_nets(), 0);
  std::vector<NetId> touched;
  std::vector<NodeId> stack, nodes;
  for (NodeId root : candidates) {
    nodes.clear();
    stack.assign(1, root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      nodes.push_back(v);
      stack.insert(stack.end(), children[v].begin(), children[v].end());
    }
    const double cut = ExactCut(hg, nodes, inside, touched);
    if (!best.in_window || cut < best.cut_value) {
      best.nodes = nodes;
      best.cut_value = cut;
      best.size = subtree[root];
      best.in_window = true;
    }
  }
  if (best.in_window) {
    c_in_window.Add();
    return best;
  }
  // No 1-respecting subtree hits the window (e.g. star topologies): fall
  // back to the prefix-growth carver.
  c_fallbacks.Add();
  return MetricFindCut(hg, net_length, lb, ub, rng);
}

CarveFn MstSplitCarver() {
  return [](const Hypergraph& hg, std::span<const double> net_length,
            double lb, double ub, Rng& rng) {
    return MstSplitCarve(hg, net_length, lb, ub, rng);
  };
}

}  // namespace htp
