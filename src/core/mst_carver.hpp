// MST-split carver — the paper's future-work construction.
//
// "In constructing the partition, more sophisticated algorithms, such as
// the one in a recent paper by Karger [7], may also be applied to find a
// minimum cut from a minimum spanning tree." (Conclusions.)
//
// Karger's near-linear min-cut algorithm scores cuts by how few spanning-
// tree edges they cross. This carver adopts the 1-respecting special case,
// which is exact for cuts crossing the MST once and a strong heuristic
// otherwise: grow a Prim MST of the (metric-weighted) hypergraph, then
// evaluate the hypergraph cut of every subtree whose size lies in
// [LB..UB] — each tree edge removal proposes one candidate block — and
// return the cheapest. Subtree cuts are evaluated exactly (not by tree
// weight), in O(sum of candidate sizes) overall.
#pragma once

#include "core/find_cut.hpp"

namespace htp {

/// Carves the min-cut subtree of a metric MST with size within [lb..ub].
/// Falls back to MetricFindCut when no subtree hits the window (e.g. a
/// star-shaped tree whose subtrees are all tiny).
CarveResult MstSplitCarve(const Hypergraph& hg,
                          std::span<const double> net_length, double lb,
                          double ub, Rng& rng);

/// CarveFn adapter for MstSplitCarve.
CarveFn MstSplitCarver();

}  // namespace htp
