#include "core/paper_examples.hpp"

namespace htp {

Hypergraph Figure2Graph() {
  HypergraphBuilder builder;
  for (int v = 0; v < 16; ++v) builder.add_node(1.0);
  auto edge = [&](NodeId a, NodeId b) { builder.add_net({a, b}); };
  // K4 inside each of the four clusters (24 edges).
  for (NodeId base : {0u, 4u, 8u, 12u})
    for (NodeId i = 0; i < 4; ++i)
      for (NodeId j = i + 1; j < 4; ++j) edge(base + i, base + j);
  // Two edges inside each level-1 block — cut at level 0 only, cost 2
  // (the (a,b) edges of the figure).
  edge(0, 4);
  edge(1, 5);
  edge(8, 12);
  edge(9, 13);
  // Two edges across the level-1 blocks — cut at both levels, cost 6
  // (the (c,d) edges of the figure).
  edge(2, 10);
  edge(6, 14);
  return builder.build();
}

HierarchySpec Figure2Spec() {
  std::vector<LevelSpec> levels(3);
  levels[0] = {4.0, 2, 1.0};   // C0 = 4, w0 = 1
  levels[1] = {8.0, 2, 2.0};   // C1 = 8, w1 = 2
  levels[2] = {16.0, 2, 1.0};  // root
  return HierarchySpec(std::move(levels));
}

TreePartition Figure2OptimalPartition(const Hypergraph& hg) {
  TreePartition tp(hg, 2);
  const BlockId left = tp.AddChild(TreePartition::kRoot);
  const BlockId right = tp.AddChild(TreePartition::kRoot);
  const BlockId leaves[4] = {tp.AddChild(left), tp.AddChild(left),
                             tp.AddChild(right), tp.AddChild(right)};
  for (NodeId v = 0; v < 16; ++v) tp.AssignNode(v, leaves[v / 4]);
  return tp;
}

}  // namespace htp
