// The worked example of Figure 2 of the paper.
//
// "Suppose we want to partition a netlist into a tree hierarchy with the
// size upper bounds C0 = 4, C1 = 8 and cost weighting factors w0 = 1,
// w1 = 2 ... A graph of 16 nodes with unit sizes and 30 edges with unit
// capacities can be optimally partitioned into this tree hierarchy."
//
// The scanned figure does not list the edges; this reconstruction follows
// its description exactly: four 4-node clusters (complete K4 inside, 6
// edges each = 24 edges), grouped pairwise into two level-1 blocks, plus six
// inter-cluster edges — two inside each level-1 block (the cost-2 edges
// like (a,b)) and two across the level-1 blocks (the cost-6 edges like
// (c,d)). The intended partition is provably optimal for this graph (see
// tests/core/figure2_test.cpp, which certifies it by exhaustive search).
#pragma once

#include "core/hierarchy.hpp"
#include "core/tree_partition.hpp"

namespace htp {

/// The 16-node / 30-edge graph of Figure 2(b). Nodes 0-3, 4-7, 8-11, 12-15
/// are the four clusters; clusters {0,1} and {2,3} form the level-1 blocks.
Hypergraph Figure2Graph();

/// The hierarchy of Figure 2(a): C0 = 4, C1 = 8, w0 = 1, w1 = 2, K = 2,
/// root at level 2 (capacity 16).
HierarchySpec Figure2Spec();

/// The intended (optimal) partition: one leaf per cluster, clusters 0/1 and
/// 2/3 paired at level 1. Its cost is 20 = 4 edges * 2 + 2 edges * 6.
TreePartition Figure2OptimalPartition(const Hypergraph& hg);

/// The optimal cost of the Figure 2 instance.
inline constexpr double kFigure2OptimalCost = 20.0;

}  // namespace htp
