#include "core/partition_io.hpp"

#include <fstream>
#include <sstream>

namespace htp {
namespace {

[[noreturn]] void Fail(std::size_t line_no, const std::string& msg) {
  throw Error("partition parse error at line " + std::to_string(line_no) +
              ": " + msg);
}

}  // namespace

std::string WritePartitionText(const TreePartition& tp) {
  HTP_CHECK_MSG(tp.fully_assigned(), "cannot serialize a partial partition");
  std::ostringstream os;
  os << "htp-partition v1\n";
  const Hypergraph& fp = tp.hypergraph();
  os << "netlist " << fp.num_nodes() << " " << fp.num_nets() << " "
     << fp.num_pins() << "\n";
  os << "root_level " << tp.root_level() << "\n";
  os << "blocks " << tp.num_blocks() << "\n";
  for (BlockId q = 0; q < tp.num_blocks(); ++q) {
    os << "block " << q << " " << tp.level(q) << " ";
    if (tp.parent(q) == kInvalidBlock)
      os << "-1\n";
    else
      os << tp.parent(q) << "\n";
  }
  const Hypergraph& hg = tp.hypergraph();
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    os << "assign " << v << " " << tp.leaf_of(v) << "\n";
  return os.str();
}

TreePartition ReadPartitionText(const Hypergraph& hg,
                                const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "htp-partition v1")
    Fail(line_no, "missing 'htp-partition v1' header");

  // Netlist fingerprint: a partition is meaningless against a different
  // hypergraph, and a matching node count alone does not catch that.
  // Optional for backward compatibility with fingerprint-less files.
  {
    const std::istream::pos_type mark = in.tellg();
    const std::size_t mark_line = line_no;
    if (next_line()) {
      std::istringstream ls(line);
      std::string key;
      long long nodes = 0, nets = 0, pins = 0;
      if (ls >> key && key == "netlist") {
        if (!(ls >> nodes >> nets >> pins))
          Fail(line_no, "expected 'netlist <nodes> <nets> <pins>'");
        if (nodes != static_cast<long long>(hg.num_nodes()) ||
            nets != static_cast<long long>(hg.num_nets()) ||
            pins != static_cast<long long>(hg.num_pins()))
          Fail(line_no,
               "partition was written for a different netlist (" +
                   std::to_string(nodes) + "/" + std::to_string(nets) + "/" +
                   std::to_string(pins) + " vs " +
                   std::to_string(hg.num_nodes()) + "/" +
                   std::to_string(hg.num_nets()) + "/" +
                   std::to_string(hg.num_pins()) + " nodes/nets/pins)");
      } else {
        in.seekg(mark);  // no fingerprint line: rewind
        line_no = mark_line;
      }
    }
  }

  auto expect_kv = [&](const std::string& key) -> long long {
    if (!next_line()) Fail(line_no, "unexpected end of input");
    std::istringstream ls(line);
    std::string k;
    long long value = 0;
    if (!(ls >> k >> value) || k != key)
      Fail(line_no, "expected '" + key + " <n>'");
    return value;
  };

  const long long root_level = expect_kv("root_level");
  if (root_level < 0 || root_level > 64) Fail(line_no, "bad root level");
  const long long num_blocks = expect_kv("blocks");
  if (num_blocks < 1) Fail(line_no, "bad block count");

  TreePartition tp(hg, static_cast<Level>(root_level));
  for (long long q = 0; q < num_blocks; ++q) {
    if (!next_line()) Fail(line_no, "missing block line");
    std::istringstream ls(line);
    std::string k;
    long long id = 0, level = 0, parent = 0;
    if (!(ls >> k >> id >> level >> parent) || k != "block")
      Fail(line_no, "expected 'block <id> <level> <parent>'");
    if (id != q) Fail(line_no, "blocks must appear in id order");
    if (q == 0) {
      if (parent != -1 || level != root_level)
        Fail(line_no, "block 0 must be the root");
      continue;
    }
    if (parent < 0 || parent >= q)
      Fail(line_no, "parent must precede the child");
    const BlockId created = tp.AddChild(static_cast<BlockId>(parent));
    if (created != static_cast<BlockId>(q) ||
        tp.level(created) != static_cast<Level>(level))
      Fail(line_no, "inconsistent block level");
  }

  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    if (!next_line()) Fail(line_no, "missing assign line");
    std::istringstream ls(line);
    std::string k;
    long long node = 0, leaf = 0;
    if (!(ls >> k >> node >> leaf) || k != "assign")
      Fail(line_no, "expected 'assign <node> <leaf>'");
    if (node < 0 || static_cast<NodeId>(node) >= hg.num_nodes())
      Fail(line_no, "node id out of range");
    if (leaf < 0 || static_cast<BlockId>(leaf) >= tp.num_blocks())
      Fail(line_no, "leaf id out of range");
    tp.AssignNode(static_cast<NodeId>(node), static_cast<BlockId>(leaf));
  }
  if (next_line()) Fail(line_no, "trailing content after assignments");
  HTP_CHECK(tp.fully_assigned());
  return tp;
}

void WritePartitionFile(const TreePartition& tp, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << WritePartitionText(tp);
  if (!out) throw Error("failed writing: " + path);
}

TreePartition ReadPartitionFile(const Hypergraph& hg,
                                const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open partition file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadPartitionText(hg, ss.str());
}

}  // namespace htp
