// Text serialization of hierarchical tree partitions.
//
// A stable, diff-friendly format so partitions survive across runs and
// feed downstream tools (placement, board assignment):
//
//   htp-partition v1
//   netlist <nodes> <nets> <pins>        # fingerprint of the hypergraph
//   root_level <L>
//   blocks <count>
//   block <id> <level> <parent-id|-1>      # in id order; parents precede
//   assign <node-id> <leaf-id>             # one line per node
//
// Block ids are the TreePartition's own ids (0 = root); writing then
// reading reproduces them exactly because children are recreated in id
// order.
#pragma once

#include <iosfwd>
#include <string>

#include "core/tree_partition.hpp"

namespace htp {

/// Serializes `tp` (which must be fully assigned) to the text format.
std::string WritePartitionText(const TreePartition& tp);

/// Parses the text format against `hg`. Throws htp::Error (with a line
/// number) on malformed input, a netlist-fingerprint mismatch (the file
/// was written for a different hypergraph), inconsistent structure, or
/// assignments that do not cover every node exactly once. Files without a
/// fingerprint line (older format) are accepted.
TreePartition ReadPartitionText(const Hypergraph& hg, const std::string& text);

/// File helpers.
void WritePartitionFile(const TreePartition& tp, const std::string& path);
TreePartition ReadPartitionFile(const Hypergraph& hg, const std::string& path);

}  // namespace htp
