#include "core/pin_report.hpp"

#include <algorithm>
#include <sstream>

namespace htp {

PartitionReport ReportPartition(const TreePartition& tp,
                                const HierarchySpec& spec) {
  HTP_CHECK_MSG(tp.fully_assigned(), "report needs a complete partition");
  const Hypergraph& hg = tp.hypergraph();
  PartitionReport report;

  std::vector<double> pins(tp.num_blocks(), 0.0);
  // One pass per net: at each level below the root, every distinct block
  // the net touches gains one pin of weight c(e) — unless the net is
  // entirely inside a single block at that level.
  std::vector<BlockId> scratch;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    for (Level l = 0; l < tp.root_level(); ++l) {
      scratch.clear();
      for (NodeId v : hg.pins(e)) scratch.push_back(tp.block_at(v, l));
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      if (scratch.size() <= 1) break;  // contained here and above
      for (BlockId q : scratch) pins[q] += hg.net_capacity(e);
    }
  }

  report.levels.resize(tp.root_level());
  for (Level l = 0; l < tp.root_level(); ++l) report.levels[l].level = l;
  for (BlockId q = 0; q < tp.num_blocks(); ++q) {
    const Level l = tp.level(q);
    BlockReport block;
    block.block = q;
    block.level = l;
    block.size = tp.block_size(q);
    block.capacity = spec.capacity(l);
    block.utilization = block.size / block.capacity;
    block.io_pins = pins[q];
    report.blocks.push_back(block);
    if (l >= tp.root_level()) continue;  // root has no boundary
    LevelReport& lev = report.levels[l];
    ++lev.blocks;
    lev.total_pins += block.io_pins;
    lev.max_pins = std::max(lev.max_pins, block.io_pins);
    lev.max_utilization = std::max(lev.max_utilization, block.utilization);
  }
  return report;
}

std::string FormatReport(const PartitionReport& report) {
  std::ostringstream os;
  for (const LevelReport& lev : report.levels) {
    os << "level " << lev.level << ": " << lev.blocks << " blocks, "
       << lev.total_pins << " pins total (max " << lev.max_pins
       << " per block), max utilization "
       << static_cast<int>(lev.max_utilization * 100.0 + 0.5) << "%\n";
    for (const BlockReport& block : report.blocks) {
      if (block.level != lev.level) continue;
      os << "  block#" << block.block << " size=" << block.size << "/"
         << block.capacity << " pins=" << block.io_pins << "\n";
    }
  }
  return os.str();
}

}  // namespace htp
