// Per-block I/O pin and utilization reporting.
//
// The HTP objective is "the total weighted I/O pin cost at all levels of
// hierarchy": a net spanning f >= 2 level-l blocks consumes one I/O pin on
// each of them. This module exposes that per-block view — the quantity a
// board/FPGA engineer actually checks against a package's pin budget —
// and it ties out exactly with Equation (1):
//
//   sum over level-l blocks of io_pins(q)  ==  sum_e c(e) * span(e, l)
//
// (verified in tests/core/pin_report_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/cost.hpp"

namespace htp {

/// Pin/size accounting of one block.
struct BlockReport {
  BlockId block = kInvalidBlock;
  Level level = 0;
  double size = 0.0;         ///< s(V_q)
  double capacity = 0.0;     ///< C_l
  double utilization = 0.0;  ///< size / capacity
  double io_pins = 0.0;      ///< total capacity of nets crossing q's boundary
};

/// Aggregates per level.
struct LevelReport {
  Level level = 0;
  std::size_t blocks = 0;
  double total_pins = 0.0;
  double max_pins = 0.0;
  double max_utilization = 0.0;
};

/// Full partition report.
struct PartitionReport {
  std::vector<BlockReport> blocks;  ///< every block, id order
  std::vector<LevelReport> levels;  ///< levels 0..root-1 (root excluded)
};

/// Computes per-block I/O pins and utilizations for a complete partition.
PartitionReport ReportPartition(const TreePartition& tp,
                                const HierarchySpec& spec);

/// Human-readable rendering (one line per block, grouped by level).
std::string FormatReport(const PartitionReport& report);

}  // namespace htp
