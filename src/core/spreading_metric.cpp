#include "core/spreading_metric.hpp"

#include <algorithm>
#include <atomic>

#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {
namespace {

// Batch-scan telemetry. Every counter here is a function of (begin, hit,
// end) only — quantities the determinism contract already fixes — so totals
// are bit-identical across worker counts. Speculative work that a higher
// worker count performs and then cancels shows up in wall time only, never
// in a counter; the committed dijkstra.* totals are likewise restricted to
// the serial-order prefix [begin..hit].
obs::Counter c_scan_batches("flow.scan_batches");
obs::Counter c_scan_window("flow.scan_window");
obs::Counter c_scan_committed("flow.scan_committed");
obs::Counter c_scan_discarded("flow.scan_discarded");

// Below this many nodes a fork-join costs more than the scan it shelters.
// Safe to flip serially: results are worker-count independent by contract.
constexpr std::size_t kMinParallelNodes = 64;

}  // namespace

SpreadingMetric MetricFromPartition(const TreePartition& tp,
                                    const HierarchySpec& spec) {
  const Hypergraph& hg = tp.hypergraph();
  SpreadingMetric metric(hg.num_nets(), 0.0);
  for (NetId e = 0; e < hg.num_nets(); ++e)
    metric[e] = NetCost(tp, spec, e) / hg.net_capacity(e);
  return metric;
}

double MetricCost(const Hypergraph& hg, const SpreadingMetric& metric) {
  HTP_CHECK(metric.size() == hg.num_nets());
  double total = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    total += hg.net_capacity(e) * metric[e];
  return total;
}

std::optional<SpreadingViolation> FindViolationFrom(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, NodeId source, double tolerance) {
  HTP_CHECK(metric.size() == hg.num_nets());
  std::optional<SpreadingViolation> found;
  // g is nondecreasing (weights are validated nonnegative), so g(s(V))
  // bounds every rhs the growth can still produce; once the nondecreasing
  // lhs clears it no later prefix can violate — stop growing.
  const double g_cap = spec.g(hg.total_size());
  ShortestPathTree tree = GrowShortestPathTree(
      hg, source, metric, [&](const GrowState& state) {
        const double rhs = spec.g(state.tree_size);
        if (state.weighted_dist + tolerance < rhs) {
          found = SpreadingViolation{source,
                                     state.tree_nodes,
                                     state.tree_size,
                                     state.weighted_dist,
                                     rhs,
                                     {}};
          return GrowAction::kStop;
        }
        if (state.weighted_dist + tolerance >= g_cap)
          return GrowAction::kStop;
        return GrowAction::kContinue;
      });
  if (found) found->tree = std::move(tree);
  return found;
}

std::optional<SpreadingViolation> CheckSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, double tolerance) {
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (auto violation = FindViolationFrom(hg, spec, metric, v, tolerance))
      return violation;
  return std::nullopt;
}

// One candidate's scan result. Slots are indexed by candidate position, so
// workers never write the same slot and the committing thread reads them
// race-free after the fork-join barrier.
struct ViolationScanner::Slot {
  bool violated = false;
  std::size_t tree_nodes = 0;
  double tree_size = 0.0;
  double lhs = 0.0;
  double rhs = 0.0;
  std::vector<NetId> nets;  // sorted distinct tree nets, violated only
  DijkstraStats stats;      // this candidate's Dijkstra work (even if clean)
};

// Per-worker reusable state: the workspace keeps its epoch-stamped arrays
// and heap across batches, the tree keeps its node-sized vectors. Together
// these eliminate every per-candidate allocation on the steady state.
struct ViolationScanner::Worker {
  DijkstraWorkspace workspace;
  ShortestPathTree tree;
};

ViolationScanner::ViolationScanner(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   std::size_t threads,
                                   std::shared_ptr<const CsrView> shared_csr)
    : hg_(hg),
      spec_(spec),
      csr_(std::move(shared_csr)),
      g_cap_(spec.g(hg.total_size())) {
  if (!csr_) {
    csr_ = std::make_shared<const CsrView>(hg);
  } else {
    // A mismatched view would silently scan the wrong topology; the check
    // is cheap and catches stale cache entries at the boundary.
    HTP_CHECK(csr_->num_nodes() == hg.num_nodes());
    HTP_CHECK(csr_->num_nets() == hg.num_nets());
  }
  workers_ = ResolveThreadCount(threads);
  // Nested-parallelism guard: inside a parallel FLOW iteration each pool
  // worker gets a serial scanner instead of a pool-within-a-pool.
  if (InParallelWorker()) workers_ = 1;
  if (hg.num_nodes() < kMinParallelNodes) workers_ = 1;
  if (workers_ > 1) pool_ = std::make_unique<ThreadPool>(workers_);
  worker_state_ = std::make_unique<Worker[]>(workers_);
}

ViolationScanner::~ViolationScanner() = default;

std::optional<ViolationScanner::ScanHit> ViolationScanner::FindFirstViolation(
    std::span<const NodeId> candidates, std::size_t begin,
    const SpreadingMetric& metric, double tolerance) {
  HTP_CHECK(metric.size() == hg_.num_nets());
  const std::size_t end = candidates.size();
  HTP_CHECK(begin <= end);
  if (begin == end) return std::nullopt;
  if (slots_.size() < end) slots_.resize(end);

  // Workers grab candidate indices from `next`; `first_violation` is the
  // CAS-min of violating indices found so far. A worker holding index i may
  // stop — mid-Dijkstra or before starting — once first_violation < i,
  // because a lower-indexed violation always wins the commit. Cancellation
  // never loses work we need: grabbed indices only increase and
  // first_violation only decreases, so every index below the final hit was
  // scanned to completion.
  std::atomic<std::size_t> next{begin};
  std::atomic<std::size_t> first_violation{end};

  auto scan = [&](std::size_t /*worker_rank*/, Worker& worker) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      if (first_violation.load(std::memory_order_acquire) < i) return;
      Slot& slot = slots_[i];
      slot.violated = false;
      slot.stats = DijkstraStats{};
      bool cancelled = false;
      worker.workspace.Grow(
          *csr_, candidates[i], metric,
          [&](const GrowState& state) {
            if (first_violation.load(std::memory_order_relaxed) < i) {
              cancelled = true;
              return GrowAction::kStop;
            }
            const double rhs = spec_.g(state.tree_size);
            if (state.weighted_dist + tolerance < rhs) {
              slot.violated = true;
              slot.tree_nodes = state.tree_nodes;
              slot.tree_size = state.tree_size;
              slot.lhs = state.weighted_dist;
              slot.rhs = rhs;
              return GrowAction::kStop;
            }
            // No remaining prefix can violate: lhs is nondecreasing and
            // g_cap_ = g(s(V)) bounds every future rhs. Deterministic —
            // a pure function of (source, metric) — so thread-invariant.
            if (state.weighted_dist + tolerance >= g_cap_)
              return GrowAction::kStop;
            return GrowAction::kContinue;
          },
          worker.tree, &slot.stats);
      if (cancelled) return;  // a lower index already won; nothing after
                              // this index can commit either
      if (slot.violated) {
        TreeNetsInto(worker.tree, slot.nets);
        // CAS-min: publish i as the best-so-far violation.
        std::size_t cur = first_violation.load(std::memory_order_relaxed);
        while (i < cur && !first_violation.compare_exchange_weak(
                              cur, i, std::memory_order_release,
                              std::memory_order_relaxed)) {
        }
      }
    }
  };

  const std::size_t window = end - begin;
  const std::size_t launch = std::min(workers_, window);
  if (launch > 1) {
    ParallelFor(*pool_, launch,
                [&](std::size_t r) { scan(r, worker_state_[r]); });
  } else {
    scan(0, worker_state_[0]);
  }

  // Deterministic sequential commit: everything up to and including the hit
  // is exactly the work a serial sweep would have done — credit it to the
  // dijkstra.* counters; everything past the hit is speculation the caller
  // will re-scan, so it stays out of every counter.
  const std::size_t hit = first_violation.load(std::memory_order_acquire);
  const std::size_t commit_end = std::min(hit + 1, end);
  DijkstraStats committed;
  for (std::size_t i = begin; i < commit_end; ++i) committed += slots_[i].stats;
  RecordDijkstraCounters(committed, commit_end - begin);
  c_scan_batches.Add();
  c_scan_window.Add(window);
  c_scan_committed.Add(commit_end - begin);
  c_scan_discarded.Add(end - commit_end);

  if (hit == end) return std::nullopt;
  Slot& slot = slots_[hit];
  ScanHit result;
  result.index = hit;
  result.source = candidates[hit];
  result.tree_nodes = slot.tree_nodes;
  result.tree_size = slot.tree_size;
  result.lhs = slot.lhs;
  result.rhs = slot.rhs;
  result.tree_nets = slot.nets;
  return result;
}

}  // namespace htp
