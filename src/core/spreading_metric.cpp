#include "core/spreading_metric.hpp"

namespace htp {

SpreadingMetric MetricFromPartition(const TreePartition& tp,
                                    const HierarchySpec& spec) {
  const Hypergraph& hg = tp.hypergraph();
  SpreadingMetric metric(hg.num_nets(), 0.0);
  for (NetId e = 0; e < hg.num_nets(); ++e)
    metric[e] = NetCost(tp, spec, e) / hg.net_capacity(e);
  return metric;
}

double MetricCost(const Hypergraph& hg, const SpreadingMetric& metric) {
  HTP_CHECK(metric.size() == hg.num_nets());
  double total = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    total += hg.net_capacity(e) * metric[e];
  return total;
}

std::optional<SpreadingViolation> FindViolationFrom(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, NodeId source, double tolerance) {
  HTP_CHECK(metric.size() == hg.num_nets());
  std::optional<SpreadingViolation> found;
  ShortestPathTree tree = GrowShortestPathTree(
      hg, source, metric, [&](const GrowState& state) {
        const double rhs = spec.g(state.tree_size);
        if (state.weighted_dist + tolerance < rhs) {
          found = SpreadingViolation{source,
                                     state.tree_nodes,
                                     state.tree_size,
                                     state.weighted_dist,
                                     rhs,
                                     {}};
          return GrowAction::kStop;
        }
        return GrowAction::kContinue;
      });
  if (found) found->tree = std::move(tree);
  return found;
}

std::optional<SpreadingViolation> CheckSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, double tolerance) {
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (auto violation = FindViolationFrom(hg, spec, metric, v, tolerance))
      return violation;
  return std::nullopt;
}

}  // namespace htp
