// Spreading metrics: fractional solutions to linear program (P1).
//
// A spreading metric is a nonnegative length d(e) per net. Feasibility for
// (P1) means every node set is spread apart:
//
//   for all S ⊆ V, v ∈ S:  sum_{u ∈ S} s(u) * dist_d(v, u) >= g(s(S))   (3)
//
// which, by Claim 4 of Even et al. [4], holds iff it holds for the O(n^2)
// shortest-path-tree prefixes S(v, k):
//
//   for all v, k:  sum_{u ∈ S(v,k)} s(u) * dist_d(v, u) >= g(s(S(v,k)))  (5)
//
// This header provides: metrics induced by partitions (Lemma 1), the metric
// objective sum_e c(e) d(e), and the constraint checker / separation oracle
// over family (5) shared by Algorithm 2, the exact LP solver, and the tests.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/cost.hpp"
#include "core/hierarchy.hpp"
#include "core/tree_partition.hpp"
#include "graph/dijkstra.hpp"

namespace htp {

/// d(e) per net, aligned with net ids.
using SpreadingMetric = std::vector<double>;

/// Lemma 1: the integral metric d(e) = cost(e) / c(e) induced by a
/// hierarchical tree partition — feasible for (P1) with objective equal to
/// the partition's interconnection cost.
SpreadingMetric MetricFromPartition(const TreePartition& tp,
                                    const HierarchySpec& spec);

/// The (P1) objective: sum_e c(e) * d(e).
double MetricCost(const Hypergraph& hg, const SpreadingMetric& metric);

/// One violated constraint of family (5).
struct SpreadingViolation {
  NodeId source = kInvalidNode;   ///< v
  std::size_t tree_nodes = 0;     ///< k
  double tree_size = 0.0;         ///< s(S(v,k))
  double lhs = 0.0;               ///< sum s(u) dist(v,u)
  double rhs = 0.0;               ///< g(s(S(v,k)))
  /// The violating shortest-path tree itself (for flow injection / cuts).
  ShortestPathTree tree;
};

/// Checks constraints (5) rooted at one node; returns the *first* violation
/// met while growing S(v,k) for k = 1..n, or nullopt when v is satisfied.
/// `tolerance` is the absolute slack granted to the left-hand side.
std::optional<SpreadingViolation> FindViolationFrom(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, NodeId source, double tolerance = 1e-7);

/// Full feasibility check of family (5) over all sources. Returns the first
/// violation found (scanning sources in id order), or nullopt when `metric`
/// is a feasible spreading metric.
std::optional<SpreadingViolation> CheckSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, double tolerance = 1e-7);

}  // namespace htp
