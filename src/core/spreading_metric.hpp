// Spreading metrics: fractional solutions to linear program (P1).
//
// A spreading metric is a nonnegative length d(e) per net. Feasibility for
// (P1) means every node set is spread apart:
//
//   for all S ⊆ V, v ∈ S:  sum_{u ∈ S} s(u) * dist_d(v, u) >= g(s(S))   (3)
//
// which, by Claim 4 of Even et al. [4], holds iff it holds for the O(n^2)
// shortest-path-tree prefixes S(v, k):
//
//   for all v, k:  sum_{u ∈ S(v,k)} s(u) * dist_d(v, u) >= g(s(S(v,k)))  (5)
//
// This header provides: metrics induced by partitions (Lemma 1), the metric
// objective sum_e c(e) d(e), the constraint checker / separation oracle
// over family (5) shared by Algorithm 2, the exact LP solver, and the
// tests, and ViolationScanner — the deterministic (optionally parallel)
// batch form of that oracle that Algorithm 2's injection rounds run on.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cost.hpp"
#include "core/hierarchy.hpp"
#include "core/tree_partition.hpp"
#include "graph/csr_view.hpp"
#include "graph/dijkstra.hpp"

namespace htp {

class ThreadPool;

/// d(e) per net, aligned with net ids.
using SpreadingMetric = std::vector<double>;

/// Lemma 1: the integral metric d(e) = cost(e) / c(e) induced by a
/// hierarchical tree partition — feasible for (P1) with objective equal to
/// the partition's interconnection cost.
SpreadingMetric MetricFromPartition(const TreePartition& tp,
                                    const HierarchySpec& spec);

/// The (P1) objective: sum_e c(e) * d(e).
double MetricCost(const Hypergraph& hg, const SpreadingMetric& metric);

/// One violated constraint of family (5).
struct SpreadingViolation {
  NodeId source = kInvalidNode;   ///< v
  std::size_t tree_nodes = 0;     ///< k
  double tree_size = 0.0;         ///< s(S(v,k))
  double lhs = 0.0;               ///< sum s(u) dist(v,u)
  double rhs = 0.0;               ///< g(s(S(v,k)))
  /// The violating shortest-path tree itself (for flow injection / cuts).
  ShortestPathTree tree;
};

/// Checks constraints (5) rooted at one node; returns the *first* violation
/// met while growing S(v,k) for k = 1..n, or nullopt when v is satisfied.
/// `tolerance` is the absolute slack granted to the left-hand side.
std::optional<SpreadingViolation> FindViolationFrom(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, NodeId source, double tolerance = 1e-7);

/// Full feasibility check of family (5) over all sources. Returns the first
/// violation found (scanning sources in id order), or nullopt when `metric`
/// is a feasible spreading metric.
std::optional<SpreadingViolation> CheckSpreadingMetric(
    const Hypergraph& hg, const HierarchySpec& spec,
    const SpreadingMetric& metric, double tolerance = 1e-7);

/// Deterministic parallel candidate scan over constraint family (5) — the
/// engine inside one Algorithm-2 injection round (core/flow_injection.cpp).
///
/// A batch call scans `candidates[begin..end)` against one fixed metric and
/// returns the *lowest-index* violating candidate: precisely what a serial
/// `FindViolationFrom` sweep from `begin` would have committed, because the
/// candidates below the hit saw the same metric the sweep would have shown
/// them, and everything after the hit is discarded (the caller re-scans it
/// against the post-injection metric). Workers grab candidates from a
/// shared cursor, grow each S(v,k) tree on their own preallocated
/// DijkstraWorkspace, and report violation status plus the tree's net set
/// into a pre-sized slot; an early-cancel flag stops a worker as soon as a
/// lower-indexed violation exists, since its result could never commit.
///
/// Hot path: trees grow over a CsrView built once at construction (one
/// lowering per metric computation, shared read-only by every worker) and
/// each growth stops early once no remaining prefix of S(v,k) can violate
/// (5) — g is nondecreasing, so g(s(V)) bounds every future right-hand side
/// (docs/algorithms.md, "CSR hot path"). The early exit is a pure function
/// of (source, metric), so it never disturbs determinism.
///
/// Determinism contract: the returned hit, the committed dijkstra.* counter
/// totals, and the flow.scan_* counters are bit-identical for every
/// `threads` value (asserted by tests/core/htp_flow_parallel_test.cpp);
/// only wall-clock changes. Construction inside a pool worker (a parallel
/// FLOW iteration) degrades to serial via the runtime's nested-parallelism
/// guard, as does any hypergraph too small to amortize the fork-join.
class ViolationScanner {
 public:
  /// `threads`: scan workers (1 = serial, 0 = all hardware threads). The
  /// pool (if any) is spun up once here and reused across every batch.
  /// `shared_csr` (optional) supplies a pre-lowered CsrView of `hg` —
  /// metric-independent and immutable, so a caching layer (src/server)
  /// can amortize the lowering across metric computations. Null (the
  /// default) lowers a private view, exactly the pre-sharing behaviour;
  /// results are identical either way because the view is a pure function
  /// of the hypergraph.
  ViolationScanner(const Hypergraph& hg, const HierarchySpec& spec,
                   std::size_t threads,
                   std::shared_ptr<const CsrView> shared_csr = nullptr);
  ~ViolationScanner();
  ViolationScanner(const ViolationScanner&) = delete;
  ViolationScanner& operator=(const ViolationScanner&) = delete;

  /// One violated constraint as found by a batch scan: the slim form of
  /// SpreadingViolation — the committing caller needs the tree's net set,
  /// not the tree itself. `tree_nets` points into scanner-owned storage and
  /// is valid until the next FindFirstViolation call.
  struct ScanHit {
    std::size_t index = 0;          ///< position within `candidates`
    NodeId source = kInvalidNode;   ///< v = candidates[index]
    std::size_t tree_nodes = 0;     ///< k
    double tree_size = 0.0;         ///< s(S(v,k))
    double lhs = 0.0;               ///< sum s(u) dist(v,u)
    double rhs = 0.0;               ///< g(s(S(v,k)))
    std::span<const NetId> tree_nets;  ///< sorted distinct nets of S(v,k)
  };

  /// Scans candidates[begin..end) against `metric` with `tolerance` slack
  /// and returns the lowest-index violation, or nullopt when every scanned
  /// candidate satisfies family (5).
  std::optional<ScanHit> FindFirstViolation(std::span<const NodeId> candidates,
                                            std::size_t begin,
                                            const SpreadingMetric& metric,
                                            double tolerance);

  /// Resolved worker count (1 when serial; never affects results).
  std::size_t workers() const { return workers_; }

 private:
  struct Slot;
  struct Worker;

  const Hypergraph& hg_;
  const HierarchySpec& spec_;
  /// Shared read-only adjacency for all workers; owned here when built
  /// privately, co-owned with an artifact cache when passed in.
  std::shared_ptr<const CsrView> csr_;
  double g_cap_ = 0.0; ///< g(s(V)): upper bound on every rhs of family (5)
  std::size_t workers_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Worker[]> worker_state_;
  std::vector<Slot> slots_;
};

}  // namespace htp
