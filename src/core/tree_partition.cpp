#include "core/tree_partition.hpp"

#include <algorithm>
#include <sstream>

namespace htp {

TreePartition::TreePartition(const Hypergraph& hg, Level root_level)
    : hg_(&hg) {
  level_.push_back(root_level);
  parent_.push_back(kInvalidBlock);
  children_.emplace_back();
  size_.push_back(0.0);
  leaf_of_.assign(hg.num_nodes(), kInvalidBlock);
}

BlockId TreePartition::AddChild(BlockId parent) {
  HTP_CHECK(parent < num_blocks());
  HTP_CHECK_MSG(level_[parent] > 0, "level-0 blocks cannot have children");
  const BlockId q = static_cast<BlockId>(level_.size());
  level_.push_back(level_[parent] - 1);
  parent_.push_back(parent);
  children_.emplace_back();
  size_.push_back(0.0);
  children_[parent].push_back(q);
  return q;
}

void TreePartition::AssignNode(NodeId v, BlockId leaf) {
  HTP_CHECK(v < hg_->num_nodes());
  HTP_CHECK(leaf < num_blocks());
  HTP_CHECK_MSG(level_[leaf] == 0, "nodes are assigned to level-0 leaves");
  HTP_CHECK_MSG(leaf_of_[v] == kInvalidBlock, "node already assigned");
  leaf_of_[v] = leaf;
  ++assigned_;
  const double s = hg_->node_size(v);
  for (BlockId q = leaf; q != kInvalidBlock; q = parent_[q]) size_[q] += s;
}

void TreePartition::MoveNode(NodeId v, BlockId new_leaf) {
  HTP_CHECK(v < hg_->num_nodes());
  HTP_CHECK(new_leaf < num_blocks() && level_[new_leaf] == 0);
  const BlockId old_leaf = leaf_of_[v];
  HTP_CHECK_MSG(old_leaf != kInvalidBlock, "node not assigned yet");
  if (old_leaf == new_leaf) return;
  const double s = hg_->node_size(v);
  for (BlockId q = old_leaf; q != kInvalidBlock; q = parent_[q]) size_[q] -= s;
  for (BlockId q = new_leaf; q != kInvalidBlock; q = parent_[q]) size_[q] += s;
  leaf_of_[v] = new_leaf;
}

BlockId TreePartition::block_at(NodeId v, Level l) const {
  const BlockId leaf = leaf_of(v);
  HTP_CHECK_MSG(leaf != kInvalidBlock, "node not assigned");
  return ancestor(leaf, l);
}

BlockId TreePartition::ancestor(BlockId q, Level l) const {
  HTP_CHECK(q < num_blocks());
  HTP_CHECK(l <= root_level() && l >= level_[q]);
  while (level_[q] < l) q = parent_[q];
  return q;
}

Level TreePartition::LcaLevel(BlockId leaf_a, BlockId leaf_b) const {
  HTP_CHECK(leaf_a < num_blocks() && leaf_b < num_blocks());
  HTP_CHECK(level_[leaf_a] == 0 && level_[leaf_b] == 0);
  Level l = 0;
  while (leaf_a != leaf_b) {
    leaf_a = parent_[leaf_a];
    leaf_b = parent_[leaf_b];
    ++l;
  }
  return l;
}

std::vector<BlockId> TreePartition::Leaves() const { return BlocksAtLevel(0); }

std::vector<BlockId> TreePartition::BlocksAtLevel(Level l) const {
  std::vector<BlockId> out;
  for (BlockId q = 0; q < num_blocks(); ++q)
    if (level_[q] == l) out.push_back(q);
  return out;
}

std::string TreePartition::ToString() const {
  std::ostringstream os;
  // Depth-first rendering with indentation by (root_level - level).
  std::vector<std::pair<BlockId, int>> stack{{kRoot, 0}};
  while (!stack.empty()) {
    auto [q, depth] = stack.back();
    stack.pop_back();
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "L"
       << level_[q] << " block#" << q << " size=" << size_[q];
    if (level_[q] == 0) {
      std::size_t count = 0;
      for (NodeId v = 0; v < hg_->num_nodes(); ++v)
        if (leaf_of_[v] == q) ++count;
      os << " nodes=" << count;
    }
    os << "\n";
    for (auto it = children_[q].rbegin(); it != children_[q].rend(); ++it)
      stack.emplace_back(*it, depth + 1);
  }
  return os.str();
}

std::vector<std::string> ValidatePartition(const TreePartition& tp,
                                           const HierarchySpec& spec) {
  std::vector<std::string> issues;
  const Hypergraph& hg = tp.hypergraph();
  if (tp.root_level() > spec.root_level())
    issues.push_back("partition root level exceeds the spec's root level");
  if (!tp.fully_assigned())
    issues.push_back("not every node is assigned to a leaf");

  for (BlockId q = 0; q < tp.num_blocks(); ++q) {
    const Level l = tp.level(q);
    if (tp.block_size(q) > spec.capacity(l) + 1e-9)
      issues.push_back("block #" + std::to_string(q) + " at level " +
                       std::to_string(l) + " has size " +
                       std::to_string(tp.block_size(q)) + " > C_l = " +
                       std::to_string(spec.capacity(l)));
    if (l > 0 && tp.children(q).size() > spec.max_branches(l))
      issues.push_back("block #" + std::to_string(q) + " at level " +
                       std::to_string(l) + " has " +
                       std::to_string(tp.children(q).size()) +
                       " children > K_l = " +
                       std::to_string(spec.max_branches(l)));
    for (BlockId c : tp.children(q))
      if (tp.level(c) + 1 != l || tp.parent(c) != q)
        issues.push_back("structural inconsistency at block #" +
                         std::to_string(c));
  }

  // Block sizes must equal the sum of their assigned nodes (guards against
  // incremental-update drift in refiners).
  std::vector<double> recomputed(tp.num_blocks(), 0.0);
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    BlockId leaf = tp.leaf_of(v);
    if (leaf == kInvalidBlock) continue;
    for (BlockId q = leaf;; q = tp.parent(q)) {
      recomputed[q] += hg.node_size(v);
      if (q == TreePartition::kRoot) break;
    }
  }
  for (BlockId q = 0; q < tp.num_blocks(); ++q)
    if (std::abs(recomputed[q] - tp.block_size(q)) > 1e-6)
      issues.push_back("cached size of block #" + std::to_string(q) +
                       " drifted from its true value");
  return issues;
}

void RequireValidPartition(const TreePartition& tp,
                           const HierarchySpec& spec) {
  const std::vector<std::string> issues = ValidatePartition(tp, spec);
  if (issues.empty()) return;
  std::string all = "invalid partition:";
  for (const std::string& s : issues) all += "\n  - " + s;
  throw Error(all);
}

}  // namespace htp
