// TreePartition: the hierarchical tree partition P = (T, {V_q}).
//
// Blocks (tree vertices) are dense ids; block 0 is the root. Every child
// lives exactly one level below its parent, so the path from a leaf to the
// root visits every level once and `block_at(v, l)` is well defined for all
// l in [0, root_level]. Small blocks that conceptually skip levels are
// represented as single-child chains (see DESIGN.md).
//
// The structure is mutable in two phases: construction (AddChild /
// AssignNode) and refinement (MoveNode, used by the generalized FM
// improver). Sizes are maintained incrementally along root paths.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/hierarchy.hpp"
#include "netlist/hypergraph.hpp"

namespace htp {

/// A hierarchical tree partition of a hypergraph.
class TreePartition {
 public:
  /// Creates a partition with a lone root block at `root_level` and every
  /// node unassigned.
  TreePartition(const Hypergraph& hg, Level root_level);

  const Hypergraph& hypergraph() const { return *hg_; }
  Level root_level() const { return level_[kRoot]; }
  static constexpr BlockId kRoot = 0;

  std::size_t num_blocks() const { return level_.size(); }
  Level level(BlockId q) const {
    HTP_CHECK(q < num_blocks());
    return level_[q];
  }
  BlockId parent(BlockId q) const {
    HTP_CHECK(q < num_blocks());
    return parent_[q];
  }
  std::span<const BlockId> children(BlockId q) const {
    HTP_CHECK(q < num_blocks());
    return children_[q];
  }
  /// s(V_q): total size of the nodes assigned to block q (or below it).
  double block_size(BlockId q) const {
    HTP_CHECK(q < num_blocks());
    return size_[q];
  }

  /// Adds a child one level below `parent`; the parent must not be at level 0.
  BlockId AddChild(BlockId parent);

  /// Assigns an unassigned node to a level-0 leaf.
  void AssignNode(NodeId v, BlockId leaf);

  /// Reassigns node `v` to a different leaf (the FM refinement move).
  void MoveNode(NodeId v, BlockId new_leaf);

  /// Leaf holding node v (kInvalidBlock when unassigned).
  BlockId leaf_of(NodeId v) const {
    HTP_CHECK(v < hg_->num_nodes());
    return leaf_of_[v];
  }

  /// Ancestor block of node v at level `l` (l <= root_level; level 0 returns
  /// the leaf itself). The node must be assigned.
  BlockId block_at(NodeId v, Level l) const;

  /// Ancestor of block `q` at level `l` >= level(q).
  BlockId ancestor(BlockId q, Level l) const;

  /// Lowest common ancestor level of two leaves (0 when identical).
  Level LcaLevel(BlockId leaf_a, BlockId leaf_b) const;

  /// All level-0 blocks, in id order.
  std::vector<BlockId> Leaves() const;
  /// All blocks at a given level, in id order.
  std::vector<BlockId> BlocksAtLevel(Level l) const;

  /// True when every node has been assigned to a leaf.
  bool fully_assigned() const { return assigned_ == hg_->num_nodes(); }

  /// ASCII rendering of the tree (sizes per block), for examples and logs.
  std::string ToString() const;

 private:
  const Hypergraph* hg_;
  std::vector<Level> level_;
  std::vector<BlockId> parent_;
  std::vector<std::vector<BlockId>> children_;
  std::vector<double> size_;
  std::vector<BlockId> leaf_of_;
  NodeId assigned_ = 0;
};

/// Checks a finished partition against the spec: total assignment, capacity
/// bounds s(V_q) <= C_l, branch bounds <= K_l, structural consistency.
/// Returns human-readable violation messages (empty = valid).
std::vector<std::string> ValidatePartition(const TreePartition& tp,
                                           const HierarchySpec& spec);

/// Convenience: throws htp::Error listing the violations, if any.
void RequireValidPartition(const TreePartition& tp, const HierarchySpec& spec);

}  // namespace htp
