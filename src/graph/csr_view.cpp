#include "graph/csr_view.hpp"

#include <atomic>
#include <limits>

namespace htp {

namespace {
std::uint64_t NextViewId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

CsrView::CsrView(const Hypergraph& hg, CsrLayout layout)
    : num_nodes_(hg.num_nodes()),
      num_nets_(hg.num_nets()),
      id_(NextViewId()) {
  // The duplicated layout stores, per (node, net) incidence, every pin of
  // the net except the node itself.
  std::size_t duplicated_entries = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const std::size_t deg = hg.net_degree(e);
    duplicated_entries += deg * (deg - 1);
  }
  const std::size_t budget = kDuplicationLimit * std::max<std::size_t>(
                                 hg.num_pins(), std::size_t{1});
  duplicated_ = layout == CsrLayout::kDuplicated ||
                (layout == CsrLayout::kAuto && duplicated_entries <= budget);
  const std::size_t pin_entries =
      duplicated_ ? duplicated_entries : hg.num_pins();
  HTP_CHECK_MSG(pin_entries <= std::numeric_limits<std::uint32_t>::max(),
                "hypergraph too large for 32-bit CSR pin offsets");

  node_size_.resize(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) node_size_[v] = hg.node_size(v);

  arc_offset_.reserve(hg.num_nodes() + 1);
  arcs_.reserve(hg.num_pins());
  pins_.reserve(pin_entries);

  // Shared layout: one pin block per net, filled lazily the first time an
  // arc references the net (net ids are dense, so a direct-mapped table of
  // begins suffices).
  std::vector<std::uint32_t> shared_begin;
  constexpr std::uint32_t kUnplaced = std::numeric_limits<std::uint32_t>::max();
  if (!duplicated_) shared_begin.assign(hg.num_nets(), kUnplaced);

  arc_offset_.push_back(0);
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    for (NetId e : hg.nets(v)) {
      CsrArc arc;
      arc.net = e;
      if (duplicated_) {
        arc.pin_begin = static_cast<std::uint32_t>(pins_.size());
        for (NodeId x : hg.pins(e))
          if (x != v) pins_.push_back(x);
        arc.pin_end = static_cast<std::uint32_t>(pins_.size());
      } else {
        if (shared_begin[e] == kUnplaced) {
          shared_begin[e] = static_cast<std::uint32_t>(pins_.size());
          for (NodeId x : hg.pins(e)) pins_.push_back(x);
        }
        arc.pin_begin = shared_begin[e];
        arc.pin_end =
            arc.pin_begin + static_cast<std::uint32_t>(hg.net_degree(e));
      }
      arcs_.push_back(arc);
    }
    arc_offset_.push_back(static_cast<std::uint32_t>(arcs_.size()));
  }
}

}  // namespace htp
