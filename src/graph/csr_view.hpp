// CsrView: an immutable CSR lowering of the hypergraph star expansion for
// the Dijkstra hot path.
//
// Hypergraph already stores both incidence directions in CSR form, but the
// growth loop of DijkstraWorkspace::Grow pays three indirections per relaxed
// net — node -> incident-net list, net -> pin offset, offset -> pins — plus
// a bounds-checked span construction (HTP_CHECK is active in Release) for
// every one of them. Profiling (PR 3's phase timers) puts that loop at
// 60-70% of FLOW CPU, so Algorithm 2 runs it millions of times per metric.
//
// CsrView flattens the walk once per metric computation into two arrays the
// loop streams through with raw pointers:
//
//   arc_offset_[v] .. arc_offset_[v+1]   the arcs of node v
//   arcs_[a] = {net, pin_begin, pin_end} one incident net of v, with the
//                                        pins it reaches as a range of
//   pins_[...]                           node ids
//
// Two layouts share that contract (the growth loop cannot tell them apart):
//
//   * kDuplicated — each arc owns a private copy of its net's pins with the
//     arc's own node removed, so a full relaxation is one forward stream
//     over memory. Costs sum_e |e|*(|e|-1) entries — the star/clique
//     expansion — which is ~2x the pin count for short-net netlists.
//   * kShared — each net's pin list is stored once and every arc points at
//     it (the owning node stays in the list; the settled-node test skips it
//     exactly as the legacy walk does). Costs |pins| entries.
//
// kAuto picks kDuplicated unless a hub net blows the expansion past
// kDuplicationLimit times the pin count. Results are bit-identical across
// layouts and with the legacy Hypergraph walk: arcs preserve the node ->
// nets order and pins preserve the per-net pin order, so relaxations happen
// in the same sequence with the same tie-breaks.
//
// Scale limit: pin offsets are 32-bit, so the chosen layout's pin-entry
// count (sum_e |e|*(|e|-1) duplicated, |pins| shared) must fit in uint32 —
// the constructor throws "hypergraph too large for 32-bit CSR pin offsets"
// otherwise. kAuto stays comfortably inside that for the 100k-node circuits
// the multilevel driver targets (docs/scaling.md); generators.cpp itself
// indexes with std::size_t and has no sub-32-bit assumptions.
//
// Thread safety: immutable after construction; shared read-only by all
// DijkstraWorkspace instances of a ViolationScanner.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// One (node, net) incidence of the lowered star expansion.
struct CsrArc {
  NetId net = kInvalidNet;       ///< index into net_length / relax marks
  std::uint32_t pin_begin = 0;   ///< range of reachable pins in pins()
  std::uint32_t pin_end = 0;
};

/// Pin-storage strategy (see the header comment).
enum class CsrLayout { kAuto, kDuplicated, kShared };

class CsrView {
 public:
  /// Expansion cap for kAuto: fall back to kShared when the duplicated
  /// layout would exceed this many entries per original pin.
  static constexpr std::size_t kDuplicationLimit = 8;

  explicit CsrView(const Hypergraph& hg, CsrLayout layout = CsrLayout::kAuto);

  NodeId num_nodes() const { return static_cast<NodeId>(num_nodes_); }
  NetId num_nets() const { return static_cast<NetId>(num_nets_); }
  /// Process-wide unique, nonzero identity of this view. DijkstraWorkspace
  /// keys its per-view caches (node sizes staged inside the scratch records)
  /// on it, so the tag must never repeat even after a view is destroyed and
  /// another is allocated at the same address.
  std::uint64_t id() const { return id_; }
  /// True when the duplicated (fully streamed) layout was materialized.
  bool duplicated() const { return duplicated_; }
  /// Pin entries materialized (the layout's memory footprint).
  std::size_t pin_entries() const { return pins_.size(); }

  /// Checked convenience accessor (tests, non-hot callers).
  std::span<const CsrArc> arcs_of(NodeId v) const {
    HTP_CHECK(v < num_nodes());
    return {arcs_.data() + arc_offset_[v], arc_offset_[v + 1] - arc_offset_[v]};
  }

  // Raw accessors for the growth loop: no bounds checks, no span objects.
  const std::uint32_t* arc_offsets() const { return arc_offset_.data(); }
  const CsrArc* arcs() const { return arcs_.data(); }
  const NodeId* pins() const { return pins_.data(); }
  const double* node_sizes() const { return node_size_.data(); }

 private:
  std::size_t num_nodes_ = 0;
  std::size_t num_nets_ = 0;
  std::uint64_t id_ = 0;
  bool duplicated_ = false;
  std::vector<std::uint32_t> arc_offset_;  // size n+1
  std::vector<CsrArc> arcs_;               // size = total incidences
  std::vector<NodeId> pins_;
  std::vector<double> node_size_;          // size n
};

}  // namespace htp
