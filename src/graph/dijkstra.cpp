#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

#include "obs/obs.hpp"

namespace htp {
namespace {

obs::Counter c_calls("dijkstra.calls");
obs::Counter c_settled("dijkstra.settled");
obs::Counter c_pops("dijkstra.pops");
obs::Counter c_relaxations("dijkstra.relaxations");

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    return dist > other.dist || (dist == other.dist && node > other.node);
  }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

ShortestPathTree GrowShortestPathTree(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor) {
  HTP_CHECK(source < hg.num_nodes());
  HTP_CHECK(net_length.size() == hg.num_nets());

  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(hg.num_nodes(), kInfDist);
  tree.parent_net.assign(hg.num_nodes(), kInvalidNet);
  tree.parent_node.assign(hg.num_nodes(), kInvalidNode);

  // Tentative distances live separately: tree.dist is set only on settle so
  // `settled()` stays meaningful for truncated runs.
  std::vector<double> tentative(hg.num_nodes(), kInfDist);
  std::vector<char> net_relaxed(hg.num_nets(), 0);
  MinQueue queue;
  tentative[source] = 0.0;
  queue.push({0.0, source});

  double tree_size = 0.0;
  double weighted_dist = 0.0;
  // Batched per call: one shard add each at exit instead of one per pop.
  std::uint64_t pops = 0, relaxations = 0;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    ++pops;
    const NodeId u = top.node;
    if (tree.settled(u) || top.dist > tentative[u]) continue;  // stale entry

    tree.dist[u] = top.dist;
    tree.order.push_back(u);
    tree_size += hg.node_size(u);
    weighted_dist += hg.node_size(u) * top.dist;

    const GrowState state{u, top.dist, tree_size, weighted_dist,
                          tree.order.size()};
    if (visitor(state) == GrowAction::kStop) break;

    for (NetId e : hg.nets(u)) {
      if (net_relaxed[e]) continue;
      net_relaxed[e] = 1;
      const double cand = top.dist + net_length[e];
      for (NodeId x : hg.pins(e)) {
        if (tree.settled(x) || cand >= tentative[x]) continue;
        tentative[x] = cand;
        tree.parent_net[x] = e;
        tree.parent_node[x] = u;
        queue.push({cand, x});
        ++relaxations;
      }
    }
  }
  c_calls.Add();
  c_settled.Add(tree.order.size());
  c_pops.Add(pops);
  c_relaxations.Add(relaxations);
  return tree;
}

ShortestPathTree Dijkstra(const Hypergraph& hg, NodeId source,
                          std::span<const double> net_length) {
  return GrowShortestPathTree(hg, source, net_length,
                              [](const GrowState&) { return GrowAction::kContinue; });
}

std::vector<NetId> TreeNets(const ShortestPathTree& tree) {
  std::vector<NetId> nets;
  for (NodeId u : tree.order)
    if (tree.parent_net[u] != kInvalidNet) nets.push_back(tree.parent_net[u]);
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

std::vector<std::pair<NetId, double>> TreeSubtreeSizes(
    const Hypergraph& hg, const ShortestPathTree& tree) {
  // Subtree weight of each settled node: its own size plus all descendants
  // in the shortest-path tree. Settling order is topological (parents settle
  // before children), so one reverse sweep accumulates weights bottom-up.
  std::vector<double> subtree(hg.num_nodes(), 0.0);
  for (NodeId u : tree.order) subtree[u] = hg.node_size(u);
  for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
    const NodeId u = *it;
    if (tree.parent_node[u] != kInvalidNode)
      subtree[tree.parent_node[u]] += subtree[u];
  }
  // delta(S, e): removing net e disconnects every tree child attached
  // through e, so sum the subtree weights over nodes whose parent net is e.
  std::vector<std::pair<NetId, double>> result;
  std::vector<NetId> nets = TreeNets(tree);
  result.reserve(nets.size());
  for (NetId e : nets) result.emplace_back(e, 0.0);
  // Binary-search position per parent net (nets is sorted).
  for (NodeId u : tree.order) {
    const NetId e = tree.parent_net[u];
    if (e == kInvalidNet) continue;
    const auto it =
        std::lower_bound(nets.begin(), nets.end(), e);
    result[static_cast<std::size_t>(it - nets.begin())].second += subtree[u];
  }
  return result;
}

}  // namespace htp
