#include "graph/dijkstra.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace htp {
namespace {

obs::Counter c_calls("dijkstra.calls");
obs::Counter c_settled("dijkstra.settled");
obs::Counter c_pops("dijkstra.pops");
obs::Counter c_relaxations("dijkstra.relaxations");

// Scratch for the convenience entry points: per-thread, sized once for the
// largest graph the thread has seen. The re-entrant scan path owns explicit
// workspaces instead (core/spreading_metric.hpp).
DijkstraWorkspace& ThreadWorkspace() {
  thread_local DijkstraWorkspace workspace;
  return workspace;
}

}  // namespace

void RecordDijkstraCounters(const DijkstraStats& stats, std::uint64_t calls) {
  c_calls.Add(calls);
  c_settled.Add(stats.settled);
  c_pops.Add(stats.pops);
  c_relaxations.Add(stats.relaxations);
}

ShortestPathTree GrowShortestPathTree(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor) {
  ShortestPathTree tree;
  DijkstraStats stats;
  ThreadWorkspace().Grow(hg, source, net_length, visitor, tree, &stats);
  RecordDijkstraCounters(stats, 1);
  return tree;
}

ShortestPathTree Dijkstra(const Hypergraph& hg, NodeId source,
                          std::span<const double> net_length) {
  return GrowShortestPathTree(hg, source, net_length,
                              [](const GrowState&) { return GrowAction::kContinue; });
}

ShortestPathTree GrowShortestPathTree(
    const CsrView& view, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor) {
  ShortestPathTree tree;
  DijkstraStats stats;
  ThreadWorkspace().Grow(view, source, net_length, visitor, tree, &stats);
  RecordDijkstraCounters(stats, 1);
  return tree;
}

ShortestPathTree Dijkstra(const CsrView& view, NodeId source,
                          std::span<const double> net_length) {
  return GrowShortestPathTree(view, source, net_length,
                              [](const GrowState&) { return GrowAction::kContinue; });
}

std::vector<NetId> TreeNets(const ShortestPathTree& tree) {
  std::vector<NetId> nets;
  TreeNetsInto(tree, nets);
  return nets;
}

void TreeNetsInto(const ShortestPathTree& tree, std::vector<NetId>& nets) {
  nets.clear();
  for (NodeId u : tree.order)
    if (tree.parent[u].net != kInvalidNet) nets.push_back(tree.parent[u].net);
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
}

std::vector<std::pair<NetId, double>> TreeSubtreeSizes(
    const Hypergraph& hg, const ShortestPathTree& tree) {
  // Subtree weight of each settled node: its own size plus all descendants
  // in the shortest-path tree. Settling order is topological (parents settle
  // before children), so one reverse sweep accumulates weights bottom-up.
  std::vector<double> subtree(hg.num_nodes(), 0.0);
  for (NodeId u : tree.order) subtree[u] = hg.node_size(u);
  for (auto it = tree.order.rbegin(); it != tree.order.rend(); ++it) {
    const NodeId u = *it;
    if (tree.parent[u].node != kInvalidNode)
      subtree[tree.parent[u].node] += subtree[u];
  }
  // delta(S, e): removing net e disconnects every tree child attached
  // through e, so sum the subtree weights over nodes whose parent net is e.
  std::vector<std::pair<NetId, double>> result;
  std::vector<NetId> nets = TreeNets(tree);
  result.reserve(nets.size());
  for (NetId e : nets) result.emplace_back(e, 0.0);
  // Binary-search position per parent net (nets is sorted).
  for (NodeId u : tree.order) {
    const NetId e = tree.parent[u].net;
    if (e == kInvalidNet) continue;
    const auto it =
        std::lower_bound(nets.begin(), nets.end(), e);
    result[static_cast<std::size_t>(it - nets.begin())].second += subtree[u];
  }
  return result;
}

}  // namespace htp
