// Dijkstra shortest paths over a hypergraph with net length functions.
//
// Both the flow-injection heuristic (Algorithm 2) and the LP separation
// oracle need single-source shortest paths where the "edges" are nets of
// length d(e) >= 0: a path may enter a net at any pin and leave at any other
// pin, paying d(e) once. Settling proceeds in nondecreasing distance, and
// each net needs to be relaxed only from its first settled pin (any later
// settled pin offers a distance at least as large), giving O((n+p) log n).
//
// GrowShortestPathTree additionally exposes the incremental S(v,k) trees of
// constraint family (5): after the k-th node is settled the visitor sees the
// prefix sums needed to evaluate the spreading constraint and may stop the
// growth early, which is what makes Algorithm 2 affordable.
//
// Two entry styles share the growth logic (DijkstraWorkspace::Grow):
//   * the free functions below — allocation-friendly convenience API; they
//     run on a thread-local workspace and record the dijkstra.* counters;
//   * an explicit DijkstraWorkspace — the re-entrant form for parallel
//     candidate scans (core/spreading_metric.hpp): the caller owns one
//     workspace per worker, scratch state is reused across calls with
//     epoch-stamped validity (no per-call allocation, no O(nets) clearing),
//     and telemetry is *returned* via DijkstraStats instead of recorded, so
//     speculative work can be discarded without perturbing the
//     deterministic counter totals (see docs/observability.md).
//
// Each style exists in two adjacency flavors: the legacy walk over the
// Hypergraph itself, and the hot-path engine over a prebuilt CsrView
// (graph/csr_view.hpp) with a cache-friendly 4-ary heap. The two are
// bit-identical — same distances, parents, settling (pop) order, and work
// counts — which tests/graph/csr_dijkstra_diff_test.cpp asserts; the CSR
// flavor amortizes its one-time lowering across the many growths of an
// Algorithm-2 metric computation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr_view.hpp"
#include "netlist/hypergraph.hpp"

namespace htp {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Parent edge of one settled node: the net through which it was first
/// reached and the settled pin the relaxation came from. Stored as one
/// 8-byte record so settling writes a single output slot for both.
struct TreeParent {
  NetId net = kInvalidNet;
  NodeId node = kInvalidNode;

  friend bool operator==(const TreeParent&, const TreeParent&) = default;
};

/// Result of a (possibly truncated) Dijkstra run.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  /// Per node: shortest distance from the source (kInfDist if not settled).
  std::vector<double> dist;
  /// Per node: parent edge ({kInvalidNet, kInvalidNode} for the source and
  /// unsettled nodes).
  std::vector<TreeParent> parent;
  /// Settled nodes in settling (nondecreasing distance) order; order[0] is
  /// the source.
  std::vector<NodeId> order;

  bool settled(NodeId v) const { return dist[v] != kInfDist; }
};

/// Visitor outcome after each settled node.
enum class GrowAction { kContinue, kStop };

/// State handed to the visitor after settling the k-th node (k = order.size()).
struct GrowState {
  NodeId node;             ///< the node just settled
  double distance;         ///< its distance from the source
  double tree_size;        ///< s(S(v,k)): total node size of settled nodes
  double weighted_dist;    ///< sum over settled u of s(u) * dist(v,u)
  std::size_t tree_nodes;  ///< k
};

/// Work done by one growth, batched for a single counter flush. The scan
/// engine commits stats only for candidates the serial order would have
/// visited, keeping dijkstra.* totals schedule-independent.
struct DijkstraStats {
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t settled = 0;

  DijkstraStats& operator+=(const DijkstraStats& other) {
    pops += other.pops;
    relaxations += other.relaxations;
    settled += other.settled;
    return *this;
  }
};

/// Reusable scratch state for Dijkstra growths: tentative distances, the
/// per-net relaxed marks, and the binary-heap storage. Validity of the
/// tentative/relaxed cells is tracked by an epoch stamp, so starting a new
/// growth costs O(1) besides sizing the arrays on first use (or after the
/// graph grows). Not thread-safe: use one workspace per worker thread.
class DijkstraWorkspace {
 public:
  /// Runs Dijkstra from `source` with lengths `net_length` (size = num_nets,
  /// entries >= 0), writing the (possibly truncated) tree into `out` — the
  /// caller owns and may reuse it; its previous contents are discarded. The
  /// visitor is called after every settled node (including the source) and
  /// may stop the growth. When `stats` is non-null the growth's work counts
  /// are *added* to it; nothing is recorded into the obs counters (that is
  /// the caller's decision — see RecordDijkstraCounters).
  template <typename Visitor>
  void Grow(const Hypergraph& hg, NodeId source,
            std::span<const double> net_length, Visitor&& visitor,
            ShortestPathTree& out, DijkstraStats* stats = nullptr) {
    HTP_CHECK(source < hg.num_nodes());
    HTP_CHECK(net_length.size() == hg.num_nets());
    BeginEpoch(hg.num_nodes(), hg.num_nets());

    out.source = source;
    out.dist.assign(hg.num_nodes(), kInfDist);
    out.parent.assign(hg.num_nodes(), TreeParent{});
    out.order.clear();

    // Tentative distances live separately: out.dist is set only on settle so
    // `settled()` stays meaningful for truncated runs.
    SetTentative(source, 0.0);
    heap_.push_back({0.0, source});

    double tree_size = 0.0;
    double weighted_dist = 0.0;
    std::uint64_t pops = 0, relaxations = 0;

    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
      heap_.pop_back();
      ++pops;
      const NodeId u = top.node;
      if (out.settled(u) || top.dist > Tentative(u)) continue;  // stale entry

      out.dist[u] = top.dist;
      // Parents are published only on settle (from the staged scratch) so
      // unsettled nodes keep the invalid parent the struct documents, even
      // when a visitor truncates the growth mid-frontier.
      out.parent[u] = {node_scratch_[u].parent_net,
                       node_scratch_[u].parent_node};
      out.order.push_back(u);
      tree_size += hg.node_size(u);
      weighted_dist += hg.node_size(u) * top.dist;

      const GrowState state{u, top.dist, tree_size, weighted_dist,
                            out.order.size()};
      if (visitor(state) == GrowAction::kStop) break;

      for (NetId e : hg.nets(u)) {
        if (net_scratch_[e].epoch == epoch_) continue;  // already relaxed
        net_scratch_[e].epoch = epoch_;
        const double cand = top.dist + net_length[e];
        for (NodeId x : hg.pins(e)) {
          if (out.settled(x) || cand >= Tentative(x)) continue;
          SetTentativeAndParent(x, cand, e, u);
          heap_.push_back({cand, x});
          std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
          ++relaxations;
        }
      }
    }
    heap_.clear();
    if (stats) {
      stats->pops += pops;
      stats->relaxations += relaxations;
      stats->settled += out.order.size();
    }
  }

  /// The CSR fast path: the same growth with the same results, run over a
  /// prebuilt CsrView instead of the Hypergraph (one pointer-chase per arc
  /// instead of three bounds-checked span constructions) and a three-level
  /// frontier instead of the std binary heap: a one-entry hot register, an
  /// ascending sorted run popped from a drifting head, and a 4-ary heap
  /// that absorbs deep inserts (see the loop comments). Bit-identical to
  /// the Hypergraph overload above — distances, parents, settling order,
  /// and work counts — because all frontier keys (dist, node) are distinct
  /// (a node is re-pushed only with a strictly smaller distance), so ANY
  /// exact min-priority structure pops them in the one sorted order; each
  /// pop takes the minimum of the three levels' minima, which is the
  /// global frontier minimum. Asserted by
  /// tests/graph/csr_dijkstra_diff_test.cpp.
  template <typename Visitor>
  void Grow(const CsrView& view, NodeId source,
            std::span<const double> net_length, Visitor&& visitor,
            ShortestPathTree& out, DijkstraStats* stats = nullptr) {
    HTP_CHECK(source < view.num_nodes());
    HTP_CHECK(net_length.size() == view.num_nets());
    const std::size_t num_nodes = view.num_nodes();
    const std::size_t num_nets = view.num_nets();
    BeginEpoch(num_nodes, num_nets);

    // Stage the per-view node sizes inside the scratch records: the settle
    // step then reads the record the stale test already loaded instead of a
    // second random array. Keyed by the view's unique id, so the O(n) fill
    // is paid once per (workspace, view) pairing, not per growth.
    if (sizes_view_id_ != view.id()) {
      const double* sizes = view.node_sizes();
      for (std::size_t v = 0; v < num_nodes; ++v)
        node_scratch_[v].size = sizes[v];
      sizes_view_id_ = view.id();
    }
    // Stage the net lengths next to the per-net relaxed marks: the
    // first-relaxation step then touches one record instead of two random
    // arrays. Lengths are caller-owned and may change between calls, so
    // this fill is per growth — a sequential stream over m entries, cheaper
    // than the ~m random reads it replaces.
    {
      const double* len = net_length.data();
      for (std::size_t e = 0; e < num_nets; ++e)
        net_scratch_[e].length = len[e];
    }

    out.source = source;
    out.dist.assign(num_nodes, kInfDist);
    out.parent.assign(num_nodes, TreeParent{});
    out.order.clear();

    // The sorted run's tail only ever advances (the head drifts after it),
    // and every frontier insert advances it by at most one. Inserts happen
    // only on improving relaxations, of which there is at most one per pin
    // entry scanned, so pin_entries() + 1 slots can never overflow.
    if (run_.size() < view.pin_entries() + 1)
      run_.resize(view.pin_entries() + 1);

    const std::uint32_t* arc_offset = view.arc_offsets();
    const CsrArc* arcs = view.arcs();
    const NodeId* pins = view.pins();
    double* dist = out.dist.data();
    TreeParent* parent = out.parent.data();
    // Scratch as locals: member accesses inside the loop would have to be
    // re-loaded around every store through `dist`/`scratch` (the compiler
    // must assume the arrays alias).
    NodeScratch* scratch = node_scratch_.data();
    NetScratch* nets = net_scratch_.data();
    HeapEntry* run = run_.data();
    const std::uint32_t epoch = epoch_;

    scratch[source].tentative = 0.0;
    scratch[source].epoch = epoch;
    scratch[source].parent_net = kInvalidNet;
    scratch[source].parent_node = kInvalidNode;

    // Three-level frontier, cheapest level first:
    //
    //  * `hot` — a one-entry register holding the smallest entry inserted
    //    since the last pop that found it smallest. Dijkstra often settles
    //    the best child of the node it just settled ("chain following"),
    //    and those entries never touch memory at all.
    //  * run_[run_head, run_tail) — ascending (dist, node) sorted run.
    //    Pops read the head and advance it; inserts sift linearly from the
    //    tail, where almost all of them land within a few slots (the new
    //    candidate's key exceeds the settled radius by one net length).
    //    The shift loop's compare predicts perfectly until the final
    //    iteration, unlike heap sift-downs that mispredict at every level.
    //  * heap_ — a 4-ary min-heap absorbing the rare deep inserts. One
    //    probe at depth kRunSiftDepth decides run-vs-heap BEFORE any
    //    shifting, bounding the linear sift and keeping the worst-case
    //    insert at O(kRunSiftDepth + log frontier) instead of the pure
    //    sorted run's O(frontier).
    //
    // Every pop takes the minimum of the three levels' minima (the run is
    // ascending, so its head is its minimum) — the global frontier minimum.
    // All keys are distinct, so the pop sequence is the one sorted order
    // any exact priority queue would produce: results and work counts are
    // bit-identical to the legacy binary heap.
    HeapEntry hot{0.0, source};
    bool has_hot = true;
    std::size_t run_head = 0, run_tail = 0;

    double tree_size = 0.0;
    double weighted_dist = 0.0;
    std::uint64_t pops = 0, relaxations = 0;

    while (has_hot || run_head != run_tail || !heap_.empty()) {
      HeapEntry top;
      int source_level = -1;
      if (has_hot) {
        top = hot;
        source_level = 0;
      }
      if (run_head != run_tail &&
          (source_level < 0 || HeapBefore(run[run_head], top))) {
        top = run[run_head];
        source_level = 1;
      }
      if (!heap_.empty() &&
          (source_level < 0 || HeapBefore(heap_.front(), top))) {
        top = heap_.front();
        source_level = 2;
      }
      if (source_level == 0) {
        has_hot = false;
      } else if (source_level == 1) {
        // Reset the drift whenever the run empties so the tail stays far
        // from the buffer's end.
        if (++run_head == run_tail) run_head = run_tail = 0;
      } else {
        HeapPop4();
      }
      ++pops;
      const NodeId u = top.node;
      const NodeScratch su = scratch[u];
      // Stale test against the best-known distance alone: lengths are
      // nonnegative, so once u settles every remaining frontier entry for
      // it is strictly larger (a node is re-pushed only with a strictly
      // smaller tentative) — no separate settled check needed here.
      if (top.dist > su.tentative) continue;

      dist[u] = top.dist;
      parent[u] = {su.parent_net, su.parent_node};
      out.order.push_back(u);
      tree_size += su.size;
      weighted_dist += su.size * top.dist;

      const GrowState state{u, top.dist, tree_size, weighted_dist,
                            out.order.size()};
      if (visitor(state) == GrowAction::kStop) break;

      const std::uint32_t arc_end = arc_offset[u + 1];
      for (std::uint32_t a = arc_offset[u]; a != arc_end; ++a) {
        const CsrArc arc = arcs[a];
        const NetScratch net = nets[arc.net];
        if (net.epoch == epoch) continue;  // already relaxed
        nets[arc.net].epoch = epoch;
        const double cand = top.dist + net.length;
        for (std::uint32_t p = arc.pin_begin; p != arc.pin_end; ++p) {
          const NodeId x = pins[p];
          // One comparison folds the settled and the no-improvement tests:
          // cand >= dist(u) >= dist(x) for every settled x (lengths >= 0),
          // so settled pins can never pass. Epoch-stale cells read as +inf,
          // and the packed scratch record costs one cache line per probe.
          if (scratch[x].epoch == epoch ? cand >= scratch[x].tentative : false)
            continue;
          scratch[x].tentative = cand;
          scratch[x].epoch = epoch;
          scratch[x].parent_net = arc.net;
          scratch[x].parent_node = u;
          ++relaxations;
          HeapEntry entry{cand, x};
          if (!has_hot) {
            hot = entry;
            has_hot = true;
            continue;
          }
          if (HeapBefore(entry, hot)) std::swap(entry, hot);
          if (run_tail == run_head || !HeapBefore(entry, run[run_tail - 1])) {
            run[run_tail++] = entry;  // at or above the run max: append
          } else if (run_tail - run_head > kRunSiftDepth &&
                     HeapBefore(entry, run[run_tail - 1 - kRunSiftDepth])) {
            HeapPush4(entry);  // deep insert: spill to the heap unshifted
          } else {
            std::size_t i = run_tail;
            while (i > run_head && HeapBefore(entry, run[i - 1])) {
              run[i] = run[i - 1];
              --i;
            }
            run[i] = entry;
            ++run_tail;
          }
        }
      }
    }
    heap_.clear();
    if (stats) {
      stats->pops += pops;
      stats->relaxations += relaxations;
      stats->settled += out.order.size();
    }
  }

 private:
  struct HeapEntry {
    double dist;
    NodeId node;
  };
  /// Min-heap order on (dist, node): `a` comes after `b`. The node tie-break
  /// pins the settling order of equidistant nodes, part of the library-wide
  /// determinism contract.
  static bool HeapAfter(const HeapEntry& a, const HeapEntry& b) {
    return a.dist > b.dist || (a.dist == b.dist && a.node > b.node);
  }
  /// Strict (dist, node) min order — the same total order as HeapAfter seen
  /// from the other side, shared by the 4-ary heap below. Written with
  /// non-short-circuit operators on purpose: both sides compile to setcc and
  /// the result feeds conditional moves in the sift-down, where a
  /// short-circuit branch on effectively random doubles would mispredict
  /// half the time.
  static bool HeapBefore(const HeapEntry& a, const HeapEntry& b) {
    return (a.dist < b.dist) |
           ((a.dist == b.dist) & (a.node < b.node));
  }

  // 4-ary implicit heap over heap_ (children of i at 4i+1 .. 4i+4): half
  // the tree height of a binary heap, and the four siblings compared on the
  // way down share a cache line (HeapEntry is 16 bytes). Both sifts move
  // the hole instead of swapping.
  void HeapPush4(HeapEntry entry) {
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!HeapBefore(entry, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = entry;
  }
  HeapEntry HeapPop4() {
    const HeapEntry top = heap_.front();
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        const std::size_t limit = std::min(first + 4, n);
        // Branchless min-of-siblings: the keys are effectively random, so a
        // compare-and-branch scan would mispredict ~half the time; tracking
        // (best index, best entry) through ternaries compiles to cmovs.
        std::size_t best = first;
        HeapEntry best_entry = heap_[first];
        for (std::size_t c = first + 1; c < limit; ++c) {
          const HeapEntry entry = heap_[c];
          const bool before = HeapBefore(entry, best_entry);
          best = before ? c : best;
          best_entry.dist = before ? entry.dist : best_entry.dist;
          best_entry.node = before ? entry.node : best_entry.node;
        }
        if (!HeapBefore(best_entry, tail)) break;
        heap_[i] = best_entry;
        i = best;
      }
      heap_[i] = tail;
    }
    return top;
  }

  /// Tentative distance + validity stamp + staged parent pointers of one
  /// node, packed so the hot relaxation probe-and-update touches a single
  /// record per pin instead of scattering across separate arrays; the
  /// winning parents reach the output once per SETTLED node, at settle time
  /// (settled <= relaxations, and losers never reach the output at all).
  /// The trailing `size` is the per-view node-size cache (see the CSR Grow);
  /// updates must write the other fields individually to preserve it.
  struct NodeScratch {
    double tentative;
    std::uint32_t epoch;
    NetId parent_net;
    NodeId parent_node;
    double size;
  };

  /// Per-net relaxed mark + the growth's staged net length, packed for the
  /// same one-record-per-probe reason as NodeScratch.
  struct NetScratch {
    std::uint32_t epoch;
    double length;
  };

  double Tentative(NodeId v) const {
    return node_scratch_[v].epoch == epoch_ ? node_scratch_[v].tentative
                                            : kInfDist;
  }
  void SetTentative(NodeId v, double d) {
    SetTentativeAndParent(v, d, kInvalidNet, kInvalidNode);
  }
  void SetTentativeAndParent(NodeId v, double d, NetId net, NodeId node) {
    NodeScratch& s = node_scratch_[v];
    s.tentative = d;
    s.epoch = epoch_;
    s.parent_net = net;
    s.parent_node = node;
  }

  /// Sizes the arrays for (num_nodes, num_nets) and invalidates every cell
  /// by bumping the epoch (O(1) except on first use, growth, or the ~4e9th
  /// call when the stamp wraps and the arrays are re-zeroed).
  void BeginEpoch(std::size_t num_nodes, std::size_t num_nets) {
    if (node_scratch_.size() < num_nodes) {
      node_scratch_.resize(num_nodes,
                           NodeScratch{0.0, 0, kInvalidNet, kInvalidNode, 0.0});
      sizes_view_id_ = 0;  // the staged sizes no longer cover every node
    }
    if (net_scratch_.size() < num_nets)
      net_scratch_.resize(num_nets, NetScratch{0, 0.0});
    if (++epoch_ == 0) {
      for (NodeScratch& s : node_scratch_) s.epoch = 0;
      for (NetScratch& s : net_scratch_) s.epoch = 0;
      epoch_ = 1;
    }
    heap_.clear();
  }

  /// Bound on the sorted run's linear insert sift. Deeper inserts go to the
  /// 4-ary heap instead: one probe at this depth decides before anything is
  /// shifted. Tuned on the micro-benchmarks — past ~32, longer shifts cost
  /// more than a push into the (small) spill heap.
  static constexpr std::size_t kRunSiftDepth = 32;

  std::vector<NodeScratch> node_scratch_;
  std::vector<NetScratch> net_scratch_;
  std::vector<HeapEntry> heap_;
  std::vector<HeapEntry> run_;  ///< sorted-run storage of the CSR frontier
  std::uint32_t epoch_ = 0;
  /// CsrView::id() whose node sizes are currently staged in node_scratch_
  /// (0 = none; view ids are never 0).
  std::uint64_t sizes_view_id_ = 0;
};

/// Runs Dijkstra from `source` with lengths `net_length` on a thread-local
/// workspace (no scratch allocation after the first call per thread) and
/// records the dijkstra.* counters. The visitor is called after every
/// settled node (including the source) and may stop the growth; the
/// returned tree then contains exactly the settled prefix — the
/// shortest-path tree S(v,k) of the paper.
ShortestPathTree GrowShortestPathTree(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor);

/// Full single-source shortest paths (no early stop).
ShortestPathTree Dijkstra(const Hypergraph& hg, NodeId source,
                          std::span<const double> net_length);

/// CSR flavors of the two convenience entry points: identical results, run
/// on the CsrView fast path (the caller amortizes the lowering across many
/// sources). Counters are recorded exactly like the Hypergraph flavors.
ShortestPathTree GrowShortestPathTree(
    const CsrView& view, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor);
ShortestPathTree Dijkstra(const CsrView& view, NodeId source,
                          std::span<const double> net_length);

/// Credits `calls` growths worth `stats` to the dijkstra.* counters. The
/// free functions above call this themselves; explicit-workspace callers
/// use it to commit exactly the deterministic (serial-order) portion of a
/// speculative scan.
void RecordDijkstraCounters(const DijkstraStats& stats, std::uint64_t calls);

/// Distinct nets used as parent edges by the settled nodes of `tree` —
/// the edge set of S(v,k) that Algorithm 2 injects flow on.
std::vector<NetId> TreeNets(const ShortestPathTree& tree);

/// In-place TreeNets: fills `nets` (cleared first, capacity reused) with the
/// sorted distinct parent nets of `tree`.
void TreeNetsInto(const ShortestPathTree& tree, std::vector<NetId>& nets);

/// delta(S(v,k), e) of Equation (6): for every net e in the tree, the total
/// node size of the subtree hanging below e (the side not containing the
/// source). Returned as (net, delta) pairs aligned with TreeNets(tree).
/// Identity checked in tests: sum_e d(e)*delta(e) == sum_u s(u)*dist(v,u).
std::vector<std::pair<NetId, double>> TreeSubtreeSizes(
    const Hypergraph& hg, const ShortestPathTree& tree);

}  // namespace htp
