// Dijkstra shortest paths over a hypergraph with net length functions.
//
// Both the flow-injection heuristic (Algorithm 2) and the LP separation
// oracle need single-source shortest paths where the "edges" are nets of
// length d(e) >= 0: a path may enter a net at any pin and leave at any other
// pin, paying d(e) once. Settling proceeds in nondecreasing distance, and
// each net needs to be relaxed only from its first settled pin (any later
// settled pin offers a distance at least as large), giving O((n+p) log n).
//
// GrowShortestPathTree additionally exposes the incremental S(v,k) trees of
// constraint family (5): after the k-th node is settled the visitor sees the
// prefix sums needed to evaluate the spreading constraint and may stop the
// growth early, which is what makes Algorithm 2 affordable.
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Result of a (possibly truncated) Dijkstra run.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  /// Per node: shortest distance from the source (kInfDist if not settled).
  std::vector<double> dist;
  /// Per node: net through which the node was first reached (kInvalidNet for
  /// the source and unsettled nodes).
  std::vector<NetId> parent_net;
  /// Per node: the settled pin from which the parent net was relaxed.
  std::vector<NodeId> parent_node;
  /// Settled nodes in settling (nondecreasing distance) order; order[0] is
  /// the source.
  std::vector<NodeId> order;

  bool settled(NodeId v) const { return dist[v] != kInfDist; }
};

/// Visitor outcome after each settled node.
enum class GrowAction { kContinue, kStop };

/// State handed to the visitor after settling the k-th node (k = order.size()).
struct GrowState {
  NodeId node;             ///< the node just settled
  double distance;         ///< its distance from the source
  double tree_size;        ///< s(S(v,k)): total node size of settled nodes
  double weighted_dist;    ///< sum over settled u of s(u) * dist(v,u)
  std::size_t tree_nodes;  ///< k
};

/// Runs Dijkstra from `source` with lengths `net_length` (size = num_nets,
/// entries >= 0). The visitor is called after every settled node (including
/// the source) and may stop the growth; the returned tree then contains
/// exactly the settled prefix — the shortest-path tree S(v,k) of the paper.
ShortestPathTree GrowShortestPathTree(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor);

/// Full single-source shortest paths (no early stop).
ShortestPathTree Dijkstra(const Hypergraph& hg, NodeId source,
                          std::span<const double> net_length);

/// Distinct nets used as parent edges by the settled nodes of `tree` —
/// the edge set of S(v,k) that Algorithm 2 injects flow on.
std::vector<NetId> TreeNets(const ShortestPathTree& tree);

/// delta(S(v,k), e) of Equation (6): for every net e in the tree, the total
/// node size of the subtree hanging below e (the side not containing the
/// source). Returned as (net, delta) pairs aligned with TreeNets(tree).
/// Identity checked in tests: sum_e d(e)*delta(e) == sum_u s(u)*dist(v,u).
std::vector<std::pair<NetId, double>> TreeSubtreeSizes(
    const Hypergraph& hg, const ShortestPathTree& tree);

}  // namespace htp
