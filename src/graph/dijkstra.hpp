// Dijkstra shortest paths over a hypergraph with net length functions.
//
// Both the flow-injection heuristic (Algorithm 2) and the LP separation
// oracle need single-source shortest paths where the "edges" are nets of
// length d(e) >= 0: a path may enter a net at any pin and leave at any other
// pin, paying d(e) once. Settling proceeds in nondecreasing distance, and
// each net needs to be relaxed only from its first settled pin (any later
// settled pin offers a distance at least as large), giving O((n+p) log n).
//
// GrowShortestPathTree additionally exposes the incremental S(v,k) trees of
// constraint family (5): after the k-th node is settled the visitor sees the
// prefix sums needed to evaluate the spreading constraint and may stop the
// growth early, which is what makes Algorithm 2 affordable.
//
// Two entry styles share one growth loop (DijkstraWorkspace::Grow):
//   * the free functions below — allocation-friendly convenience API; they
//     run on a thread-local workspace and record the dijkstra.* counters;
//   * an explicit DijkstraWorkspace — the re-entrant form for parallel
//     candidate scans (core/spreading_metric.hpp): the caller owns one
//     workspace per worker, scratch state is reused across calls with
//     epoch-stamped validity (no per-call allocation, no O(nets) clearing),
//     and telemetry is *returned* via DijkstraStats instead of recorded, so
//     speculative work can be discarded without perturbing the
//     deterministic counter totals (see docs/observability.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Result of a (possibly truncated) Dijkstra run.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  /// Per node: shortest distance from the source (kInfDist if not settled).
  std::vector<double> dist;
  /// Per node: net through which the node was first reached (kInvalidNet for
  /// the source and unsettled nodes).
  std::vector<NetId> parent_net;
  /// Per node: the settled pin from which the parent net was relaxed.
  std::vector<NodeId> parent_node;
  /// Settled nodes in settling (nondecreasing distance) order; order[0] is
  /// the source.
  std::vector<NodeId> order;

  bool settled(NodeId v) const { return dist[v] != kInfDist; }
};

/// Visitor outcome after each settled node.
enum class GrowAction { kContinue, kStop };

/// State handed to the visitor after settling the k-th node (k = order.size()).
struct GrowState {
  NodeId node;             ///< the node just settled
  double distance;         ///< its distance from the source
  double tree_size;        ///< s(S(v,k)): total node size of settled nodes
  double weighted_dist;    ///< sum over settled u of s(u) * dist(v,u)
  std::size_t tree_nodes;  ///< k
};

/// Work done by one growth, batched for a single counter flush. The scan
/// engine commits stats only for candidates the serial order would have
/// visited, keeping dijkstra.* totals schedule-independent.
struct DijkstraStats {
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t settled = 0;

  DijkstraStats& operator+=(const DijkstraStats& other) {
    pops += other.pops;
    relaxations += other.relaxations;
    settled += other.settled;
    return *this;
  }
};

/// Reusable scratch state for Dijkstra growths: tentative distances, the
/// per-net relaxed marks, and the binary-heap storage. Validity of the
/// tentative/relaxed cells is tracked by an epoch stamp, so starting a new
/// growth costs O(1) besides sizing the arrays on first use (or after the
/// graph grows). Not thread-safe: use one workspace per worker thread.
class DijkstraWorkspace {
 public:
  /// Runs Dijkstra from `source` with lengths `net_length` (size = num_nets,
  /// entries >= 0), writing the (possibly truncated) tree into `out` — the
  /// caller owns and may reuse it; its previous contents are discarded. The
  /// visitor is called after every settled node (including the source) and
  /// may stop the growth. When `stats` is non-null the growth's work counts
  /// are *added* to it; nothing is recorded into the obs counters (that is
  /// the caller's decision — see RecordDijkstraCounters).
  template <typename Visitor>
  void Grow(const Hypergraph& hg, NodeId source,
            std::span<const double> net_length, Visitor&& visitor,
            ShortestPathTree& out, DijkstraStats* stats = nullptr) {
    HTP_CHECK(source < hg.num_nodes());
    HTP_CHECK(net_length.size() == hg.num_nets());
    BeginEpoch(hg.num_nodes(), hg.num_nets());

    out.source = source;
    out.dist.assign(hg.num_nodes(), kInfDist);
    out.parent_net.assign(hg.num_nodes(), kInvalidNet);
    out.parent_node.assign(hg.num_nodes(), kInvalidNode);
    out.order.clear();

    // Tentative distances live separately: out.dist is set only on settle so
    // `settled()` stays meaningful for truncated runs.
    SetTentative(source, 0.0);
    heap_.push_back({0.0, source});

    double tree_size = 0.0;
    double weighted_dist = 0.0;
    std::uint64_t pops = 0, relaxations = 0;

    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
      heap_.pop_back();
      ++pops;
      const NodeId u = top.node;
      if (out.settled(u) || top.dist > Tentative(u)) continue;  // stale entry

      out.dist[u] = top.dist;
      out.order.push_back(u);
      tree_size += hg.node_size(u);
      weighted_dist += hg.node_size(u) * top.dist;

      const GrowState state{u, top.dist, tree_size, weighted_dist,
                            out.order.size()};
      if (visitor(state) == GrowAction::kStop) break;

      for (NetId e : hg.nets(u)) {
        if (net_epoch_[e] == epoch_) continue;  // already relaxed
        net_epoch_[e] = epoch_;
        const double cand = top.dist + net_length[e];
        for (NodeId x : hg.pins(e)) {
          if (out.settled(x) || cand >= Tentative(x)) continue;
          SetTentative(x, cand);
          out.parent_net[x] = e;
          out.parent_node[x] = u;
          heap_.push_back({cand, x});
          std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
          ++relaxations;
        }
      }
    }
    heap_.clear();
    if (stats) {
      stats->pops += pops;
      stats->relaxations += relaxations;
      stats->settled += out.order.size();
    }
  }

 private:
  struct HeapEntry {
    double dist;
    NodeId node;
  };
  /// Min-heap order on (dist, node): `a` comes after `b`. The node tie-break
  /// pins the settling order of equidistant nodes, part of the library-wide
  /// determinism contract.
  static bool HeapAfter(const HeapEntry& a, const HeapEntry& b) {
    return a.dist > b.dist || (a.dist == b.dist && a.node > b.node);
  }

  double Tentative(NodeId v) const {
    return node_epoch_[v] == epoch_ ? tentative_[v] : kInfDist;
  }
  void SetTentative(NodeId v, double d) {
    tentative_[v] = d;
    node_epoch_[v] = epoch_;
  }

  /// Sizes the arrays for (num_nodes, num_nets) and invalidates every cell
  /// by bumping the epoch (O(1) except on first use, growth, or the ~4e9th
  /// call when the stamp wraps and the arrays are re-zeroed).
  void BeginEpoch(std::size_t num_nodes, std::size_t num_nets) {
    if (tentative_.size() < num_nodes) {
      tentative_.resize(num_nodes, 0.0);
      node_epoch_.resize(num_nodes, 0);
    }
    if (net_epoch_.size() < num_nets) net_epoch_.resize(num_nets, 0);
    if (++epoch_ == 0) {
      std::fill(node_epoch_.begin(), node_epoch_.end(), 0u);
      std::fill(net_epoch_.begin(), net_epoch_.end(), 0u);
      epoch_ = 1;
    }
    heap_.clear();
  }

  std::vector<double> tentative_;
  std::vector<std::uint32_t> node_epoch_;
  std::vector<std::uint32_t> net_epoch_;
  std::vector<HeapEntry> heap_;
  std::uint32_t epoch_ = 0;
};

/// Runs Dijkstra from `source` with lengths `net_length` on a thread-local
/// workspace (no scratch allocation after the first call per thread) and
/// records the dijkstra.* counters. The visitor is called after every
/// settled node (including the source) and may stop the growth; the
/// returned tree then contains exactly the settled prefix — the
/// shortest-path tree S(v,k) of the paper.
ShortestPathTree GrowShortestPathTree(
    const Hypergraph& hg, NodeId source, std::span<const double> net_length,
    const std::function<GrowAction(const GrowState&)>& visitor);

/// Full single-source shortest paths (no early stop).
ShortestPathTree Dijkstra(const Hypergraph& hg, NodeId source,
                          std::span<const double> net_length);

/// Credits `calls` growths worth `stats` to the dijkstra.* counters. The
/// free functions above call this themselves; explicit-workspace callers
/// use it to commit exactly the deterministic (serial-order) portion of a
/// speculative scan.
void RecordDijkstraCounters(const DijkstraStats& stats, std::uint64_t calls);

/// Distinct nets used as parent edges by the settled nodes of `tree` —
/// the edge set of S(v,k) that Algorithm 2 injects flow on.
std::vector<NetId> TreeNets(const ShortestPathTree& tree);

/// In-place TreeNets: fills `nets` (cleared first, capacity reused) with the
/// sorted distinct parent nets of `tree`.
void TreeNetsInto(const ShortestPathTree& tree, std::vector<NetId>& nets);

/// delta(S(v,k), e) of Equation (6): for every net e in the tree, the total
/// node size of the subtree hanging below e (the side not containing the
/// source). Returned as (net, delta) pairs aligned with TreeNets(tree).
/// Identity checked in tests: sum_e d(e)*delta(e) == sum_u s(u)*dist(v,u).
std::vector<std::pair<NetId, double>> TreeSubtreeSizes(
    const Hypergraph& hg, const ShortestPathTree& tree);

}  // namespace htp
