#include "graph/karger.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"
#include "netlist/rng.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {
namespace {

GlobalCut EvaluateSplit(const Hypergraph& hg, const std::vector<char>& side) {
  GlobalCut cut;
  cut.side = side;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    bool zero = false, one = false;
    for (NodeId v : hg.pins(e)) (side[v] ? one : zero) = true;
    if (zero && one) {
      cut.value += hg.net_capacity(e);
      cut.cut_nets.push_back(e);
    }
  }
  return cut;
}

}  // namespace

GlobalCut KargerGlobalMinCut(const Hypergraph& hg, std::size_t trials,
                             std::uint64_t seed) {
  HTP_CHECK(hg.num_nodes() >= 2);
  HTP_CHECK(trials >= 1);

  // Disconnected inputs have a free cut along any component boundary.
  const Components comps = ConnectedComponents(hg);
  if (comps.count > 1) {
    std::vector<char> side(hg.num_nodes(), 0);
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      side[v] = comps.component_of[v] == comps.component_of[0] ? 0 : 1;
    return EvaluateSplit(hg, side);
  }

  Rng rng(seed);
  // Capacity prefix sums for proportional net sampling (rejection on nets
  // that have become internal to one supernode).
  std::vector<double> prefix(hg.num_nets() + 1, 0.0);
  for (NetId e = 0; e < hg.num_nets(); ++e)
    prefix[e + 1] = prefix[e] + hg.net_capacity(e);
  const double total_capacity = prefix.back();
  HTP_CHECK_MSG(total_capacity > 0.0, "hypergraph has no nets");

  GlobalCut best;
  bool have = false;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    UnionFind uf(hg.num_nodes());
    std::size_t supernodes = hg.num_nodes();
    std::size_t stale_draws = 0;
    // Contracting a whole hyperedge merges span-1 supernodes at once, so a
    // net is only *contractible* when that leaves at least two.
    const auto contraction_span = [&](NetId net) {
      const auto pins = hg.pins(net);
      std::size_t merges = 0;
      UnionFind probe = uf;  // cheap at these sizes; keeps uf untouched
      for (std::size_t i = 1; i < pins.size(); ++i)
        if (probe.Union(pins[0], pins[i])) ++merges;
      return merges;
    };
    while (supernodes > 2) {
      // Sample a net proportional to capacity; reject internal or
      // too-large nets. When rejections pile up, fall back to a scan.
      const double target = rng.next_double() * total_capacity;
      const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
      NetId e = static_cast<NetId>(
          std::min<std::size_t>(it - prefix.begin() - 1, hg.num_nets() - 1));
      std::size_t merges = contraction_span(e);
      if (merges == 0 || supernodes - merges < 2) {
        if (++stale_draws < 32) continue;
        stale_draws = 0;
        NetId found = kInvalidNet;
        for (NetId cand = 0; cand < hg.num_nets(); ++cand) {
          const std::size_t m = contraction_span(cand);
          if (m > 0 && supernodes - m >= 2) {
            found = cand;
            break;
          }
        }
        if (found == kInvalidNet) break;  // every crossing net is too big
        e = found;
        merges = contraction_span(e);
      }
      const auto pins = hg.pins(e);
      for (std::size_t i = 1; i < pins.size(); ++i)
        if (uf.Union(pins[0], pins[i])) --supernodes;
      stale_draws = 0;
    }
    // Two supernodes give the split directly; if giant hyperedges stalled
    // the contraction earlier, try each remaining supernode against the
    // rest.
    std::vector<std::size_t> roots;
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      if (uf.Find(v) == v) roots.push_back(v);
    for (std::size_t r = 0; r + 1 < std::max<std::size_t>(roots.size(), 2);
         ++r) {
      std::vector<char> side(hg.num_nodes(), 0);
      for (NodeId v = 0; v < hg.num_nodes(); ++v)
        side[v] = uf.Find(v) == roots[r] ? 1 : 0;
      GlobalCut cut = EvaluateSplit(hg, side);
      if (!have || cut.value < best.value) {
        best = std::move(cut);
        have = true;
      }
    }
  }
  return best;
}

}  // namespace htp
