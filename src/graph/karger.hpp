// Karger-style randomized global minimum cut for hypergraphs.
//
// The paper's conclusion points at Karger's contraction framework as a
// better cut-extraction primitive. This is the substrate: repeated random
// net contractions (selection probability proportional to capacity) until
// two supernodes remain; the best of `trials` repetitions is returned.
// With enough trials this finds the global min cut with high probability
// on graphs; on hypergraphs it is the standard contraction heuristic.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// A global two-sided cut.
struct GlobalCut {
  double value = 0.0;             ///< total capacity of crossing nets
  std::vector<char> side;         ///< per node: side 0 / 1
  std::vector<NetId> cut_nets;    ///< nets with pins on both sides
};

/// Best cut over `trials` random contraction runs. The hypergraph must
/// have >= 2 nodes; a disconnected input returns a zero cut along a
/// component boundary immediately.
GlobalCut KargerGlobalMinCut(const Hypergraph& hg, std::size_t trials,
                             std::uint64_t seed);

}  // namespace htp
