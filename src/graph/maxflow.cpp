#include "graph/maxflow.hpp"

#include <algorithm>
#include <queue>

namespace htp {

FlowNetwork::FlowNetwork(std::size_t num_vertices) : head_(num_vertices) {}

std::size_t FlowNetwork::AddEdge(std::size_t u, std::size_t v, double cap) {
  HTP_CHECK(u < head_.size() && v < head_.size());
  HTP_CHECK(cap >= 0.0);
  const auto u32 = static_cast<std::uint32_t>(u);
  const auto v32 = static_cast<std::uint32_t>(v);
  head_[u].push_back({v32, static_cast<std::uint32_t>(head_[v].size()), cap});
  head_[v].push_back({u32, static_cast<std::uint32_t>(head_[u].size() - 1), 0.0});
  edge_ref_.emplace_back(u32, static_cast<std::uint32_t>(head_[u].size() - 1));
  orig_cap_.push_back(cap);
  return edge_ref_.size() - 1;
}

bool FlowNetwork::Bfs(std::size_t s, std::size_t t) {
  level_.assign(head_.size(), -1);
  std::queue<std::size_t> frontier;
  level_[s] = 0;
  frontier.push(s);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (const Edge& e : head_[v]) {
      if (e.cap > 0.0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double FlowNetwork::Dfs(std::size_t v, std::size_t t, double limit) {
  if (v == t) return limit;
  for (std::uint32_t& i = iter_[v]; i < head_[v].size(); ++i) {
    Edge& e = head_[v][i];
    if (e.cap <= 0.0 || level_[v] + 1 != level_[e.to]) continue;
    const double pushed = Dfs(e.to, t, std::min(limit, e.cap));
    if (pushed > 0.0) {
      e.cap -= pushed;
      head_[e.to][e.rev].cap += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double FlowNetwork::MaxFlow(std::size_t s, std::size_t t) {
  HTP_CHECK(s < head_.size() && t < head_.size() && s != t);
  double total = 0.0;
  while (Bfs(s, t)) {
    iter_.assign(head_.size(), 0);
    for (;;) {
      const double pushed = Dfs(s, t, kInfCapacity);
      if (pushed <= 0.0) break;
      total += pushed;
    }
  }
  return total;
}

double FlowNetwork::flow(std::size_t id) const {
  HTP_CHECK(id < edge_ref_.size());
  const auto [v, idx] = edge_ref_[id];
  return orig_cap_[id] - head_[v][idx].cap;
}

std::vector<char> FlowNetwork::SourceSide(std::size_t s) const {
  std::vector<char> side(head_.size(), 0);
  std::queue<std::size_t> frontier;
  side[s] = 1;
  frontier.push(s);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (const Edge& e : head_[v]) {
      if (e.cap > 0.0 && !side[e.to]) {
        side[e.to] = 1;
        frontier.push(e.to);
      }
    }
  }
  return side;
}

HyperMinCut HypergraphMinCut(const Hypergraph& hg,
                             std::span<const NodeId> sources,
                             std::span<const NodeId> sinks) {
  HTP_CHECK(!sources.empty() && !sinks.empty());
  // Vertex layout: [0, n) nodes, then per net e two vertices e_in / e_out,
  // then super-source S and super-sink T.
  const std::size_t n = hg.num_nodes();
  const std::size_t m = hg.num_nets();
  const std::size_t e_in0 = n;
  const std::size_t e_out0 = n + m;
  const std::size_t super_s = n + 2 * m;
  const std::size_t super_t = super_s + 1;
  FlowNetwork net(n + 2 * m + 2);

  // Net-splitting model: v -> e_in (inf), e_in -> e_out (c(e)),
  // e_out -> v (inf) for every pin v — cutting e_in->e_out severs the net.
  std::vector<std::size_t> bridge(m);
  for (NetId e = 0; e < m; ++e) {
    bridge[e] = net.AddEdge(e_in0 + e, e_out0 + e, hg.net_capacity(e));
    for (NodeId v : hg.pins(e)) {
      net.AddEdge(v, e_in0 + e, FlowNetwork::kInfCapacity);
      net.AddEdge(e_out0 + e, v, FlowNetwork::kInfCapacity);
    }
  }
  std::vector<char> is_terminal(n, 0);
  for (NodeId v : sources) {
    HTP_CHECK(v < n && !is_terminal[v]);
    is_terminal[v] = 1;
    net.AddEdge(super_s, v, FlowNetwork::kInfCapacity);
  }
  for (NodeId v : sinks) {
    HTP_CHECK_MSG(v < n && !is_terminal[v], "source/sink sets must be disjoint");
    is_terminal[v] = 1;
    net.AddEdge(v, super_t, FlowNetwork::kInfCapacity);
  }

  HyperMinCut result;
  result.cut_value = net.MaxFlow(super_s, super_t);
  const std::vector<char> side = net.SourceSide(super_s);
  result.source_side.assign(side.begin(), side.begin() + static_cast<long>(n));
  for (NetId e = 0; e < m; ++e) {
    bool has_src = false;
    bool has_snk = false;
    for (NodeId v : hg.pins(e)) (result.source_side[v] ? has_src : has_snk) = true;
    if (has_src && has_snk) result.cut_nets.push_back(e);
  }
  return result;
}

}  // namespace htp
