// Dinic maximum flow and hypergraph s-t minimum cuts.
//
// The paper's method is *motivated* by max-flow/min-cut duality (Section 1);
// the RFM baseline "calls a min-cut algorithm directly on hypergraph H".
// This module provides the substrate: a Dinic max-flow solver on directed
// networks, plus the standard net-splitting construction (Yang & Wong's
// flow model) that reduces hypergraph s-t min-cut to max-flow — each net e
// becomes a bridge of capacity c(e) between two auxiliary vertices, so
// cutting the bridge once severs the net regardless of its degree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Directed flow network with residual edges; solves max-flow via Dinic.
class FlowNetwork {
 public:
  /// Capacity treated as unbounded.
  static constexpr double kInfCapacity = 1e30;

  explicit FlowNetwork(std::size_t num_vertices);

  std::size_t num_vertices() const { return head_.size(); }

  /// Adds a directed edge u -> v with capacity `cap` (and a 0-capacity
  /// reverse residual edge). Returns the edge id; flow(id) reads its flow.
  std::size_t AddEdge(std::size_t u, std::size_t v, double cap);

  /// Computes the maximum s-t flow (Dinic: level BFS + blocking DFS).
  /// May be called once per network instance.
  double MaxFlow(std::size_t s, std::size_t t);

  /// Flow on edge `id` after MaxFlow.
  double flow(std::size_t id) const;

  /// After MaxFlow: vertices reachable from s in the residual network — the
  /// source side of a minimum cut.
  std::vector<char> SourceSide(std::size_t s) const;

 private:
  struct Edge {
    std::uint32_t to;
    std::uint32_t rev;  // index of the reverse edge in edges_[to]
    double cap;
  };
  bool Bfs(std::size_t s, std::size_t t);
  double Dfs(std::size_t v, std::size_t t, double limit);

  std::vector<std::vector<Edge>> head_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_ref_;  // id -> (v, idx)
  std::vector<double> orig_cap_;
  std::vector<int> level_;
  std::vector<std::uint32_t> iter_;
};

/// Result of a hypergraph s-t min-cut.
struct HyperMinCut {
  double cut_value = 0.0;             ///< sum of capacities of cut nets
  std::vector<char> source_side;      ///< per node: on the source side?
  std::vector<NetId> cut_nets;        ///< nets with pins on both sides
};

/// Minimum-capacity set of nets whose removal separates `sources` from
/// `sinks` in `hg`, via the net-splitting max-flow construction. Node sets
/// must be disjoint and non-empty.
HyperMinCut HypergraphMinCut(const Hypergraph& hg,
                             std::span<const NodeId> sources,
                             std::span<const NodeId> sinks);

}  // namespace htp
