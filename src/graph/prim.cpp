#include "graph/prim.hpp"

#include <limits>
#include <queue>

namespace htp {
namespace {

struct QueueEntry {
  double key;
  NodeId node;
  NetId via;
  bool operator>(const QueueEntry& other) const {
    return key > other.key || (key == other.key && node > other.node);
  }
};

}  // namespace

PrimTree GrowPrimTree(const Hypergraph& hg, NodeId start,
                      std::span<const double> net_length) {
  HTP_CHECK(start < hg.num_nodes());
  HTP_CHECK(net_length.size() == hg.num_nets());

  PrimTree tree;
  tree.attach_net.assign(hg.num_nodes(), kInvalidNet);
  std::vector<char> in_tree(hg.num_nodes(), 0);
  std::vector<double> best(hg.num_nodes(), std::numeric_limits<double>::infinity());
  std::vector<char> net_scanned(hg.num_nets(), 0);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;

  best[start] = 0.0;
  queue.push({0.0, start, kInvalidNet});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const NodeId u = top.node;
    if (in_tree[u] || top.key > best[u]) continue;
    in_tree[u] = 1;
    tree.order.push_back(u);
    tree.attach_net[u] = top.via;
    if (top.via != kInvalidNet) tree.total_weight += net_length[top.via];

    // A net's offer to all its pins is d(e), independent of which pin joined
    // first, so each net needs to be scanned once.
    for (NetId e : hg.nets(u)) {
      if (net_scanned[e]) continue;
      net_scanned[e] = 1;
      const double key = net_length[e];
      for (NodeId x : hg.pins(e)) {
        if (in_tree[x] || key >= best[x]) continue;
        best[x] = key;
        queue.push({key, x, e});
      }
    }
  }
  return tree;
}

}  // namespace htp
