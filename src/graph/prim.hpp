// Prim minimum spanning tree over a hypergraph with net lengths.
//
// Procedure find_cut of the paper grows a node set "following Prim's
// minimum spanning tree algorithm" under the spreading metric d(e). This
// module provides the generic Prim growth (attachment order + parent nets +
// total weight); the cut bookkeeping specific to find_cut lives in
// core/find_cut.*, which reuses the same attachment rule.
#pragma once

#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Result of a Prim growth from a start node.
struct PrimTree {
  /// Nodes in attachment order; order[0] is the start node. Covers the whole
  /// connected component of the start (and only it).
  std::vector<NodeId> order;
  /// Per node: the net through which it was attached (kInvalidNet for the
  /// start node and nodes outside the component).
  std::vector<NetId> attach_net;
  /// Sum of attach-net lengths over attached nodes (each attachment pays its
  /// net's length, i.e. the clique-expansion MST weight).
  double total_weight = 0.0;
};

/// Grows a Prim tree from `start`: repeatedly attaches the node whose
/// cheapest connection (minimum d(e) over nets linking it to the grown set)
/// is smallest. Ties break toward the smaller node id for determinism.
PrimTree GrowPrimTree(const Hypergraph& hg, NodeId start,
                      std::span<const double> net_length);

}  // namespace htp
