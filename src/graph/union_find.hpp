// Disjoint-set union with path halving and union by size.
//
// Used by tests (MST verification against Kruskal) and by partition
// validation (block connectivity checks).
#pragma once

#include <numeric>
#include <vector>

#include "netlist/common.hpp"

namespace htp {

/// Classic union-find over dense ids [0, n).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), count_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of x's set (path halving).
  std::size_t Find(std::size_t x) {
    HTP_CHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false when already joined.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --count_;
    return true;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }
  /// Number of elements in x's set.
  std::size_t SetSize(std::size_t x) { return size_[Find(x)]; }
  /// Number of disjoint sets.
  std::size_t NumSets() const { return count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t count_;
};

}  // namespace htp
