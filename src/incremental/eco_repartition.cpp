#include "incremental/eco_repartition.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/cost.hpp"
#include "core/mst_carver.hpp"
#include "obs/obs.hpp"
#include "partition/htp_fm.hpp"

namespace htp {
namespace {

// ECO telemetry (docs/incremental.md has the counter table). Every total is
// a pure function of (state, delta, knobs), so the whole family shares the
// thread-invariance guarantee — including across build_threads, which the
// ECO path deliberately ignores.
obs::Counter c_runs("eco.runs");
obs::Counter c_reused("eco.blocks_reused");
obs::Counter c_recarved("eco.blocks_recarved");
obs::Counter c_rebuilds("eco.full_rebuilds");
obs::Counter c_warm_rounds("eco.warm_rounds");
obs::Counter c_warm_injections("eco.warm_injections");
obs::Counter c_touched_nodes("eco.touched_nodes");
obs::Counter c_touched_nets("eco.touched_nets");
obs::Timer t_repartition("eco.repartition");
obs::Timer t_stitch("eco.stitch");
// One journal record per root subtree cloned verbatim from the prior
// partition; `block` is the subtree's root id in the PRIOR partition.
obs::Event e_reused("eco.block_reused");

// Best-of-`attempts` carve restarts — the serial-path behaviour of the
// FLOW driver's BestOfCarves (htp_flow.cpp keeps its copy file-local), so
// a re-carved subtree is built exactly as a cold construction would.
CarveResult BestOf(const Hypergraph& hg, std::span<const double> metric,
                   double lb, double ub, Rng& rng, std::size_t attempts,
                   CarverKind carver, const CancellationToken& cancel) {
  CarveResult best;
  bool have = false;
  for (std::size_t t = 0; t < attempts; ++t) {
    CarveResult cut = carver == CarverKind::kMstSplit
                          ? MstSplitCarve(hg, metric, lb, ub, rng)
                          : MetricFindCut(hg, metric, lb, ub, rng);
    const bool better =
        !have ||
        (cut.in_window && !best.in_window) ||
        (cut.in_window == best.in_window && cut.cut_value < best.cut_value);
    if (better) {
      best = std::move(cut);
      have = true;
    }
    if (cancel.Cancelled()) break;
  }
  return best;
}

// Mirrors the old subtree rooted at `q_old` into the new partition under
// `q_new`: children are recreated in stored (id) order — the depth-first
// order the original construction issued them in — so a whole-tree clone
// reproduces the prior partition's block numbering exactly.
void CloneSubtree(const TreePartition& old_tp, BlockId q_old,
                  TreePartition& tp, BlockId q_new,
                  const std::vector<std::vector<NodeId>>& leaf_members,
                  const std::vector<NodeId>& node_to_new) {
  if (old_tp.level(q_old) == 0) {
    for (const NodeId v : leaf_members[q_old])
      tp.AssignNode(node_to_new[v], q_new);
    return;
  }
  for (const BlockId child : old_tp.children(q_old))
    CloneSubtree(old_tp, child, tp, tp.AddChild(q_new), leaf_members,
                 node_to_new);
}

}  // namespace

EcoResult RunEcoRepartition(const DeltaApplication& app,
                            const HierarchySpec& spec,
                            const TreePartition& old_tp,
                            const SpreadingMetric& warm,
                            const EcoParams& params) {
  HTP_CHECK(app.hg != nullptr);
  const Hypergraph& hg = *app.hg;
  const Hypergraph& old_hg = old_tp.hypergraph();
  HTP_CHECK_MSG(warm.size() == hg.num_nets(),
                "warm metric must span the edited netlist's nets");
  HTP_CHECK_MSG(app.node_to_new.size() == old_hg.num_nodes(),
                "delta application does not match the prior partition");
  HTP_CHECK_MSG(old_tp.fully_assigned(),
                "prior partition must be fully assigned");
  obs::PhaseScope run_span(t_repartition);
  c_runs.Add();
  c_touched_nodes.Add(static_cast<std::uint64_t>(
      std::count(app.node_touched.begin(), app.node_touched.end(), 1)));
  c_touched_nets.Add(static_cast<std::uint64_t>(
      std::count(app.net_touched.begin(), app.net_touched.end(), 1)));

  const CancellationToken cancel =
      StartBudget(params.flow.budget, params.flow.cancel);

  // RNG streams mirror RunHtpFlow's iteration 0 draw for draw, so an
  // empty-delta ECO run resumes exactly where the converged run left off.
  // Construction replica r draws fork(1000 + r): replica 0 is the exact
  // cold iteration-0 construct stream.
  Rng master(params.flow.seed);
  const std::uint64_t injection_seed = master.fork(0).next_u64();
  Rng metric_rng = master.fork(2000);
  const std::size_t replicas =
      std::max<std::size_t>(1, params.construction_replicas);

  const auto compute = [&params](const Hypergraph& g, const HierarchySpec& s,
                                 const FlowInjectionParams& p) {
    return params.flow.metric_compute ? params.flow.metric_compute(g, s, p)
                                      : ComputeSpreadingMetric(g, s, p);
  };

  // --- 1. Warm metric re-convergence (the only budget-scoped stage). ---
  FlowInjectionParams inj = params.flow.injection;
  if (params.flow.budget.max_rounds > 0)
    inj.max_rounds = std::min(inj.max_rounds, params.flow.budget.max_rounds);
  inj.cancel = cancel;
  inj.seed = injection_seed;
  inj.threads = params.flow.metric_threads;
  inj.warm_metric = std::make_shared<const SpreadingMetric>(warm);
  const FlowInjectionResult converged = compute(hg, spec, inj);

  // The carver, identical to the FLOW driver's: per-subproblem local
  // metrics inject cold (a warm seed never fits a subgraph's net set).
  const auto local_injection = [&]() {
    FlowInjectionParams local = params.flow.injection;
    if (params.flow.budget.max_rounds > 0)
      local.max_rounds =
          std::min(local.max_rounds, params.flow.budget.max_rounds);
    local.cancel = cancel;
    local.threads = params.flow.metric_threads;
    local.warm_metric.reset();
    return local;
  };
  const CarveFn carve = [&](const Hypergraph& sub,
                            std::span<const double> sub_metric, double lb,
                            double ub, Rng& rng) {
    if (params.flow.metric_scope == MetricScope::kPerSubproblem &&
        sub.num_nodes() < hg.num_nodes() &&
        sub.total_size() > spec.capacity(0)) {
      FlowInjectionParams local = local_injection();
      local.seed = metric_rng.next_u64();
      const FlowInjectionResult local_metric = compute(sub, spec, local);
      return BestOf(sub, local_metric.metric, lb, ub, rng,
                    params.flow.carve_attempts, params.flow.carver, cancel);
    }
    return BestOf(sub, sub_metric, lb, ub, rng, params.flow.carve_attempts,
                  params.flow.carver, cancel);
  };

  // Boundary-seeded FM polish for anything the carver touched (EcoParams::
  // refine); each replica is polished before the cost comparison, so the
  // best-of pick sees post-refinement basins, not raw carves.
  const auto polish = [&](TreePartition& candidate) {
    if (!params.refine) return;
    HtpFmParams fm;
    fm.boundary_only = true;
    fm.seed = params.flow.seed;
    fm.cancel = cancel;
    RefineHtpFm(candidate, spec, fm);
  };

  // --- 2. Classify the prior partition's root subtrees. ---
  const Level l_new = spec.LevelForSize(hg.total_size());
  const Level l_old = old_tp.root_level();
  bool rebuild = l_new != l_old || l_old == 0;

  const std::span<const BlockId> old_children_span =
      old_tp.children(TreePartition::kRoot);
  const std::vector<BlockId> old_children(old_children_span.begin(),
                                          old_children_span.end());
  if (old_children.empty()) rebuild = true;

  std::size_t reused = 0;
  std::size_t recarved = 0;
  std::optional<TreePartition> stitched;
  std::vector<BlockId> cloned_blocks;
  if (!rebuild) {
    std::vector<std::size_t> child_slot(old_tp.num_blocks(), SIZE_MAX);
    for (std::size_t i = 0; i < old_children.size(); ++i)
      child_slot[old_children[i]] = i;

    std::vector<char> touched(old_children.size(), 0);
    std::vector<std::size_t> slot_of_old(old_hg.num_nodes());
    for (NodeId v = 0; v < old_hg.num_nodes(); ++v) {
      const std::size_t slot = child_slot[old_tp.block_at(v, l_old - 1)];
      slot_of_old[v] = slot;
      const NodeId mapped = app.node_to_new[v];
      if (mapped == kInvalidNode || app.node_touched[mapped])
        touched[slot] = 1;
    }

    // Added nodes anchor to the touched subtree of their first surviving
    // neighbor (every net of an added node is an added net, so every
    // neighbor's subtree is already touched); isolated additions fall back
    // to the lowest touched — or lowest — slot.
    std::vector<NodeId> old_of_new(hg.num_nodes(), kInvalidNode);
    for (NodeId v = 0; v < old_hg.num_nodes(); ++v)
      if (app.node_to_new[v] != kInvalidNode)
        old_of_new[app.node_to_new[v]] = v;
    std::vector<std::size_t> anchor(app.added_node_ids.size(), SIZE_MAX);
    for (std::size_t i = 0; i < app.added_node_ids.size(); ++i) {
      const NodeId w = app.added_node_ids[i];
      for (const NetId e : hg.nets(w)) {
        for (const NodeId p : hg.pins(e)) {
          if (old_of_new[p] == kInvalidNode) continue;
          anchor[i] = slot_of_old[old_of_new[p]];
          break;
        }
        if (anchor[i] != SIZE_MAX) break;
      }
      if (anchor[i] != SIZE_MAX) touched[anchor[i]] = 1;
    }
    if (!app.added_node_ids.empty()) {
      std::size_t fallback = SIZE_MAX;
      for (std::size_t s = 0; s < touched.size(); ++s)
        if (touched[s]) {
          fallback = s;
          break;
        }
      if (fallback == SIZE_MAX) {
        fallback = 0;
        touched[0] = 1;
      }
      for (std::size_t& a : anchor)
        if (a == SIZE_MAX) a = fallback;
    }

    const std::size_t touched_count = static_cast<std::size_t>(
        std::count(touched.begin(), touched.end(), 1));
    if (touched_count == old_children.size()) rebuild = true;

    // Touched regions: surviving members in id order, then anchored
    // additions. Every region must still fit one root-child subtree.
    std::vector<std::vector<NodeId>> regions(old_children.size());
    double granularity = 1e-12;
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      granularity = std::max(granularity, hg.node_size(v));
    if (!rebuild) {
      for (NodeId v = 0; v < old_hg.num_nodes(); ++v) {
        const NodeId mapped = app.node_to_new[v];
        if (mapped != kInvalidNode && touched[slot_of_old[v]])
          regions[slot_of_old[v]].push_back(mapped);
      }
      for (std::size_t i = 0; i < app.added_node_ids.size(); ++i)
        regions[anchor[i]].push_back(app.added_node_ids[i]);
      const double subtree_cap =
          spec.AchievableCapacity(l_new - 1, hg.unit_sizes(), granularity);
      for (std::size_t s = 0; s < regions.size() && !rebuild; ++s) {
        double size = 0.0;
        for (const NodeId v : regions[s]) size += hg.node_size(v);
        if (size > subtree_cap) rebuild = true;
      }
    }

    // --- 3. Stitch: clone untouched subtrees, re-carve touched ones. ---
    if (!rebuild) {
      std::vector<std::vector<NodeId>> leaf_members(old_tp.num_blocks());
      for (NodeId v = 0; v < old_hg.num_nodes(); ++v)
        leaf_members[old_tp.leaf_of(v)].push_back(v);
      obs::PhaseScope stitch_span(t_stitch);
      std::size_t planned_recarves = 0;
      for (std::size_t s = 0; s < old_children.size(); ++s)
        if (touched[s] && !regions[s].empty()) ++planned_recarves;
      // A pure clone run has nothing the carve RNG can vary: one replica,
      // bit-identical to the prior partition.
      const std::size_t stitch_replicas = planned_recarves == 0 ? 1 : replicas;
      double best_cost = 0.0;
      for (std::size_t r = 0; r < stitch_replicas; ++r) {
        Rng construct_rng = master.fork(1000 + r);
        TreePartition tp(hg, l_new);
        try {
          for (std::size_t s = 0; s < old_children.size(); ++s) {
            const BlockId q_old = old_children[s];
            if (!touched[s]) {
              CloneSubtree(old_tp, q_old, tp,
                           tp.AddChild(TreePartition::kRoot), leaf_members,
                           app.node_to_new);
            } else if (!regions[s].empty()) {
              // Construction is the anytime floor: an inert token, like the
              // FLOW driver's guaranteed first construction.
              std::vector<NodeId> region = regions[s];
              BuildPartitionSubtree(tp, tp.AddChild(TreePartition::kRoot),
                                    std::move(region), spec, converged.metric,
                                    carve, construct_rng, CancellationToken{});
            }
          }
          RequireValidPartition(tp, spec);
          if (planned_recarves > 0) polish(tp);
          const double c = PartitionCost(tp, spec);
          if (!stitched || c < best_cost) {
            best_cost = c;
            stitched.emplace(std::move(tp));
          }
        } catch (const Error&) {
          // This replica's stitch misjudged feasibility (e.g. a region
          // needed more branches than one subtree offers); the others may
          // still land, otherwise the full rebuild below is always feasible
          // when the instance is.
        }
        if (cancel.Cancelled() && stitched) break;
      }
      if (stitched) {
        reused = static_cast<std::size_t>(
            std::count(touched.begin(), touched.end(), 0));
        recarved = planned_recarves;
        for (std::size_t s = 0; s < old_children.size(); ++s)
          if (!touched[s]) cloned_blocks.push_back(old_children[s]);
      } else {
        rebuild = true;
      }
    }
  }

  // The prior partition itself, carried onto the edited netlist (removed
  // nodes skipped) and polished, competes in every rebuild: for deltas that
  // keep the node set this is the classic incremental answer — keep the
  // placement, refine locally — and it is the one candidate that inherits
  // the prior root split when the stitcher could not.
  const auto carry_over = [&]() -> std::optional<TreePartition> {
    if (l_new != l_old || old_children.empty() ||
        !app.added_node_ids.empty())
      return std::nullopt;
    std::vector<std::vector<NodeId>> leaf_members(old_tp.num_blocks());
    for (NodeId v = 0; v < old_hg.num_nodes(); ++v)
      if (app.node_to_new[v] != kInvalidNode)
        leaf_members[old_tp.leaf_of(v)].push_back(v);
    TreePartition tp(hg, l_new);
    for (const BlockId child : old_children)
      CloneSubtree(old_tp, child, tp, tp.AddChild(TreePartition::kRoot),
                   leaf_members, app.node_to_new);
    try {
      RequireValidPartition(tp, spec);
    } catch (const Error&) {
      return std::nullopt;  // e.g. a resize-up overflowed a block
    }
    polish(tp);
    return tp;
  };

  const auto rebuild_best = [&] {
    std::optional<TreePartition> best;
    double best_cost = 0.0;
    if (std::optional<TreePartition> kept = carry_over()) {
      best_cost = PartitionCost(*kept, spec);
      best = std::move(kept);
    }
    for (std::size_t r = 0; r < replicas; ++r) {
      Rng construct_rng = master.fork(1000 + r);
      TreePartition cand = BuildPartitionTopDown(
          hg, spec, converged.metric, carve, construct_rng,
          CancellationToken{});
      polish(cand);
      const double c = PartitionCost(cand, spec);
      if (!best || c < best_cost) {
        best_cost = c;
        best.emplace(std::move(cand));
      }
      if (cancel.Cancelled()) break;
    }
    return std::move(*best);
  };

  TreePartition tp = [&]() -> TreePartition {
    if (stitched && !rebuild) {
      // The stitch is pinned to the prior root split; race it against full
      // warm-metric rebuilds and keep the cheaper result (stitch wins
      // ties). Pure clone runs (recarved == 0) never reach here with a
      // race: bit-identity first.
      if (params.race_rebuild && recarved > 0 && !cancel.Cancelled()) {
        TreePartition contender = rebuild_best();
        if (PartitionCost(contender, spec) < PartitionCost(*stitched, spec)) {
          rebuild = true;
          reused = 0;
          recarved = 0;
          cloned_blocks.clear();
          return contender;
        }
      }
      return std::move(*stitched);
    }
    return rebuild_best();
  }();
  if (rebuild) c_rebuilds.Add();
  for (const BlockId q_old : cloned_blocks)
    e_reused.Record({{"block", static_cast<double>(q_old)},
                     {"size", old_tp.block_size(q_old)}});
  c_reused.Add(reused);
  c_recarved.Add(recarved);
  c_warm_rounds.Add(converged.rounds);
  c_warm_injections.Add(converged.injections);

  const double cost = PartitionCost(tp, spec);
  EcoResult result{std::move(tp),
                   cost,
                   converged.metric,
                   converged.rounds,
                   converged.injections,
                   converged.converged,
                   reused,
                   recarved,
                   rebuild,
                   converged.cancelled};
  return result;
}

}  // namespace htp
