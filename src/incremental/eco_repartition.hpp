// Delta-scoped incremental repartitioning (the ECO scenario, ROADMAP item
// 4; docs/incremental.md).
//
// Given a prior run's converged state (warm_start.hpp) and a netlist delta
// (netlist_delta.hpp), RunEcoRepartition:
//
//   1. re-converges the spreading metric on the edited netlist with the
//      remapped prior metric as the warm seed (Algorithm 2 resumes instead
//      of starting cold — the bench gates <= 0.5x cold rounds on
//      single-net deltas);
//   2. marks the prior partition's root-child subtrees whose node sets the
//      delta touched, clones every untouched subtree verbatim into the new
//      partition (journal record `eco.block_reused`), and re-runs the
//      Algorithm-3 recursion (BuildPartitionSubtree) only inside the
//      touched ones — added nodes anchor to the touched subtree of their
//      first edited-net neighbor;
//   3. falls back to a full warm-metric rebuild when stitching cannot work
//      (root level changed, a touched region outgrew its subtree, every
//      subtree touched, or the stitched result fails validation) — and,
//      with EcoParams::race_rebuild, races every stitched result against
//      rebuild replicas (including the carry-over candidate: the prior
//      partition cloned onto the edited netlist and polished), returning
//      whichever costs less.
//
// Determinism: unlike the cold pipeline, ECO results are bit-identical
// across the FULL threads x metric_threads x build_threads matrix —
// `threads` has no outer iterations to parallelize, `metric_threads` is
// bit-transparent by the ViolationScanner contract, and construction always
// uses the serial builder (`build_threads` is deliberately ignored; a
// re-carve region is far below the scale where the tasked engine pays).
// The warm-start property battery enforces this invariance.
#pragma once

#include "core/htp_flow.hpp"
#include "incremental/netlist_delta.hpp"
#include "incremental/warm_start.hpp"

namespace htp {

/// Knobs for one incremental repartition. Reuses HtpFlowParams so drivers
/// configure warm and cold runs identically; fields without an ECO meaning
/// are ignored (`iterations` — ECO is one warm pass — plus `threads`,
/// `build_threads`, `keep_best_metric`, and `collect_report`; the caller
/// owns report assembly).
struct EcoParams {
  HtpFlowParams flow;
  /// Construction replicas (>= 1). A warm metric re-converges to a feasible
  /// point anchored at the pre-delta solution, which can trail a cold metric
  /// by a few percent of construction quality; ECO reinvests a sliver of the
  /// injection rounds it saved into best-of-R constructions (cost-compared,
  /// lowest replica wins ties). Replica 0 draws the exact cold iteration-0
  /// construct stream; pure clone runs (nothing re-carved, no rebuild) skip
  /// the extras, so empty-delta resumes stay bit-identical to the prior run
  /// regardless of this knob. The warm-vs-cold battery pins the default:
  /// warm cost <= cold x 1.05 across 200 seeded (netlist, delta) pairs.
  std::size_t construction_replicas = 6;
  /// Polish every re-carved or rebuilt result with a boundary-seeded
  /// hierarchical FM pass (RefineHtpFm — the paper's Table-3 "+" treatment),
  /// closing the quality gap a delta-anchored metric leaves versus a cold
  /// run. Never worsens cost, never violates a capacity the input
  /// respected. Pure clone runs (empty delta) skip it unconditionally, so
  /// the bit-identity resume contract is independent of this knob.
  bool refine = true;
  /// Race every stitched result against full warm-metric rebuild replicas
  /// and return whichever costs less. A stitch is pinned to the prior run's
  /// root split; when the delta shifts where the congestion lives, that
  /// split can be the binding constraint no amount of in-subtree re-carving
  /// escapes. Counters and the result flags report what actually won (a
  /// rebuild win is a full rebuild: no blocks reused). Pure clone runs
  /// never race — the empty-delta resume stays bit-identical. Turn off to
  /// pin the pure delta-scoped path (the counter-semantics tests do).
  bool race_rebuild = true;
};

/// Outcome of one incremental repartition.
struct EcoResult {
  TreePartition partition;  ///< valid partition of the edited netlist
  double cost = 0.0;        ///< its Equation-(1) cost
  /// The re-converged metric on the edited netlist — persist it (with the
  /// partition) as the next warm-start state, so ECO runs chain.
  SpreadingMetric metric;
  std::size_t warm_rounds = 0;      ///< injection rounds the warm metric took
  std::size_t warm_injections = 0;  ///< injections the warm metric took
  bool metric_converged = false;
  std::size_t blocks_reused = 0;    ///< root subtrees cloned from the prior run
  std::size_t blocks_recarved = 0;  ///< root subtrees rebuilt
  /// True when stitching was impossible and the whole tree was rebuilt
  /// (still seeded with the warm metric, so convergence savings remain).
  bool full_rebuild = false;
  /// True when the budget/cancel token stopped the metric re-convergence
  /// early (the partition is still valid — construction is the floor).
  bool metric_cancelled = false;
};

/// Repartitions `*app.hg` (the edited netlist) against `spec`, reusing
/// `old_tp` (the prior partition, over the PRE-delta netlist) and `warm`
/// (the prior metric remapped via RemapWarmMetric — one value per edited
/// net). The returned partition references `*app.hg`; keep the shared_ptr
/// alive. The budget in `params.flow` scopes the metric re-convergence
/// only: construction is the anytime floor and always runs to completion,
/// so every call returns a valid partition.
EcoResult RunEcoRepartition(const DeltaApplication& app,
                            const HierarchySpec& spec,
                            const TreePartition& old_tp,
                            const SpreadingMetric& warm,
                            const EcoParams& params);

}  // namespace htp
