#include "incremental/netlist_delta.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace htp {
namespace {

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  throw DeltaError("delta line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

double ParsePositive(const std::string& tok, std::size_t line,
                     const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size())
    Fail(line, std::string("unparsable ") + what + " '" + tok + "'");
  if (!std::isfinite(v) || v <= 0.0)
    Fail(line, std::string(what) + " must be positive and finite, got '" +
                   tok + "'");
  return v;
}

std::uint32_t ParseId(const std::string& tok, std::size_t line,
                      const char* what) {
  if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0])))
    Fail(line, std::string("unparsable ") + what + " '" + tok + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size())
    Fail(line, std::string("unparsable ") + what + " '" + tok + "'");
  if (v >= kInvalidNode)
    Fail(line, std::string(what) + " out of range: '" + tok + "'");
  return static_cast<std::uint32_t>(v);
}

void RequireArity(const std::vector<std::string>& tokens, std::size_t want,
                  std::size_t line) {
  if (tokens.size() != want)
    Fail(line, "'" + tokens[0] + "' expects " + std::to_string(want - 1) +
                   " field(s), got " + std::to_string(tokens.size() - 1));
}

}  // namespace

NetlistDelta ParseDeltaText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  NetlistDelta delta;
  while (std::getline(in, line)) {
    ++lineno;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (!have_header) {
      if (tokens.size() != 2 || tokens[0] != "htp-delta" || tokens[1] != "v1")
        Fail(lineno, "expected header 'htp-delta v1'");
      have_header = true;
      continue;
    }
    const std::string& directive = tokens[0];
    if (directive == "add-node") {
      RequireArity(tokens, 2, lineno);
      delta.added_nodes.push_back(
          {ParsePositive(tokens[1], lineno, "node size")});
    } else if (directive == "remove-node") {
      RequireArity(tokens, 2, lineno);
      delta.removed_nodes.push_back(ParseId(tokens[1], lineno, "node id"));
    } else if (directive == "set-node-size") {
      RequireArity(tokens, 3, lineno);
      const NodeId v = ParseId(tokens[1], lineno, "node id");
      delta.node_size_changes.emplace_back(
          v, ParsePositive(tokens[2], lineno, "node size"));
    } else if (directive == "add-net") {
      if (tokens.size() < 4)
        Fail(lineno, "'add-net' expects a capacity and >= 2 pins");
      NetlistDelta::AddedNet net;
      net.capacity = ParsePositive(tokens[1], lineno, "net capacity");
      for (std::size_t i = 2; i < tokens.size(); ++i)
        net.pins.push_back(ParseId(tokens[i], lineno, "pin node id"));
      delta.added_nets.push_back(std::move(net));
    } else if (directive == "remove-net") {
      RequireArity(tokens, 2, lineno);
      delta.removed_nets.push_back(ParseId(tokens[1], lineno, "net id"));
    } else if (directive == "set-net-capacity") {
      RequireArity(tokens, 3, lineno);
      const NetId e = ParseId(tokens[1], lineno, "net id");
      delta.net_capacity_changes.emplace_back(
          e, ParsePositive(tokens[2], lineno, "net capacity"));
    } else {
      Fail(lineno, "unknown directive '" + directive + "'");
    }
  }
  if (!have_header) throw DeltaError("delta: missing 'htp-delta v1' header");
  return delta;
}

std::string WriteDeltaText(const NetlistDelta& delta) {
  std::ostringstream out;
  out.precision(17);
  out << "htp-delta v1\n";
  for (const NetlistDelta::AddedNode& a : delta.added_nodes)
    out << "add-node " << a.size << "\n";
  for (const NodeId v : delta.removed_nodes) out << "remove-node " << v << "\n";
  for (const auto& [v, size] : delta.node_size_changes)
    out << "set-node-size " << v << " " << size << "\n";
  for (const NetlistDelta::AddedNet& net : delta.added_nets) {
    out << "add-net " << net.capacity;
    for (const NodeId pin : net.pins) out << " " << pin;
    out << "\n";
  }
  for (const NetId e : delta.removed_nets) out << "remove-net " << e << "\n";
  for (const auto& [e, capacity] : delta.net_capacity_changes)
    out << "set-net-capacity " << e << " " << capacity << "\n";
  return std::move(out).str();
}

NetlistDelta ReadDeltaFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DeltaError("cannot open delta file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseDeltaText(std::move(text).str());
}

DeltaApplication ApplyDelta(const Hypergraph& base, const NetlistDelta& delta) {
  const NodeId n = base.num_nodes();
  const NetId m = base.num_nets();

  // --- Validate node edits against the base. ---
  std::vector<char> node_removed(n, 0);
  for (const NodeId v : delta.removed_nodes) {
    if (v >= n)
      throw DeltaError("remove-node: unknown node id " + std::to_string(v));
    if (node_removed[v])
      throw DeltaError("remove-node: duplicate remove of node " +
                       std::to_string(v));
    node_removed[v] = 1;
  }
  std::vector<double> node_size(n);
  for (NodeId v = 0; v < n; ++v) node_size[v] = base.node_size(v);
  std::vector<char> node_resized(n, 0);
  for (const auto& [v, size] : delta.node_size_changes) {
    if (v >= n)
      throw DeltaError("set-node-size: unknown node id " + std::to_string(v));
    if (node_removed[v])
      throw DeltaError("set-node-size: node " + std::to_string(v) +
                       " was removed by this delta");
    if (node_resized[v])
      throw DeltaError("set-node-size: node " + std::to_string(v) +
                       " resized twice");
    node_resized[v] = 1;
    node_size[v] = size;
  }

  // --- Validate net edits. ---
  std::vector<char> net_removed(m, 0);
  for (const NetId e : delta.removed_nets) {
    if (e >= m)
      throw DeltaError("remove-net: unknown net id " + std::to_string(e));
    if (net_removed[e])
      throw DeltaError("remove-net: duplicate remove of net " +
                       std::to_string(e));
    net_removed[e] = 1;
  }
  std::vector<double> net_cap(m);
  for (NetId e = 0; e < m; ++e) net_cap[e] = base.net_capacity(e);
  std::vector<char> net_recapped(m, 0);
  for (const auto& [e, capacity] : delta.net_capacity_changes) {
    if (e >= m)
      throw DeltaError("set-net-capacity: unknown net id " +
                       std::to_string(e));
    if (net_removed[e])
      throw DeltaError("set-net-capacity: net " + std::to_string(e) +
                       " was removed by this delta");
    if (net_recapped[e])
      throw DeltaError("set-net-capacity: net " + std::to_string(e) +
                       " changed twice");
    net_recapped[e] = 1;
    net_cap[e] = capacity;
  }

  // --- Nodes: survivors in base order, then additions. ---
  DeltaApplication app;
  app.node_to_new.assign(n, kInvalidNode);
  HypergraphBuilder builder;
  for (NodeId v = 0; v < n; ++v)
    if (!node_removed[v])
      app.node_to_new[v] = builder.add_node(node_size[v], base.node_name(v));
  for (const NetlistDelta::AddedNode& added : delta.added_nodes)
    app.added_node_ids.push_back(builder.add_node(added.size));
  if (builder.num_nodes() == 0)
    throw DeltaError("delta removes every node of the netlist");
  app.node_touched.assign(builder.num_nodes(), 0);

  // Resolves a delta pin reference — a base id or an added-node id in
  // [n, n + added) — to its edited id, rejecting delete-then-reference.
  const auto resolve = [&](NodeId pin) -> NodeId {
    if (pin < n) {
      if (node_removed[pin])
        throw DeltaError("add-net: pin references node " +
                         std::to_string(pin) + " removed by this delta");
      return app.node_to_new[pin];
    }
    const NodeId idx = pin - n;
    if (idx >= app.added_node_ids.size())
      throw DeltaError("add-net: unknown pin node id " + std::to_string(pin));
    return app.added_node_ids[idx];
  };

  // --- Nets: surviving base nets in base order, then additions. Restricted
  // pin lists keep base order, so an empty delta reproduces the base CSR
  // (and its structural hash) exactly. ---
  app.net_to_new.assign(m, kInvalidNet);
  NetId next_net = 0;
  std::vector<NodeId> pins;
  for (NetId e = 0; e < m; ++e) {
    if (net_removed[e]) {
      // The survivors lose an adjacency — their blocks must re-carve.
      for (const NodeId p : base.pins(e))
        if (!node_removed[p]) app.node_touched[app.node_to_new[p]] = 1;
      continue;
    }
    pins.clear();
    bool lost_pin = false;
    for (const NodeId p : base.pins(e)) {
      if (node_removed[p])
        lost_pin = true;
      else
        pins.push_back(app.node_to_new[p]);
    }
    if (pins.size() < 2) {
      // Fewer than two survivors: the net degenerates and is dropped (the
      // HypergraphBuilder contract); its orphaned pins stay as degree-0
      // nodes per the subhypergraph.hpp contract, marked touched.
      ++app.dropped_nets;
      for (const NodeId q : pins) app.node_touched[q] = 1;
      continue;
    }
    builder.add_net(pins, net_cap[e], base.net_name(e));
    app.net_to_new[e] = next_net++;
    const bool touched = lost_pin || net_recapped[e];
    app.net_touched.push_back(touched ? 1 : 0);
    if (touched)
      for (const NodeId q : pins) app.node_touched[q] = 1;
  }
  for (const NetlistDelta::AddedNet& added : delta.added_nets) {
    pins.clear();
    for (const NodeId p : added.pins) pins.push_back(resolve(p));
    std::vector<NodeId> distinct = pins;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() < 2)
      throw DeltaError("add-net: a net needs >= 2 distinct pins");
    builder.add_net(pins, added.capacity);
    ++next_net;
    app.net_touched.push_back(1);
    for (const NodeId q : distinct) app.node_touched[q] = 1;
  }

  for (const auto& [v, size] : delta.node_size_changes)
    app.node_touched[app.node_to_new[v]] = 1;
  for (const NodeId id : app.added_node_ids) app.node_touched[id] = 1;

  Hypergraph hg = builder.build();
  HTP_CHECK(hg.num_nets() == next_net);
  HTP_CHECK(app.net_touched.size() == next_net);
  app.hg = std::make_shared<const Hypergraph>(std::move(hg));
  return app;
}

}  // namespace htp
