// NetlistDelta: a small, diff-friendly edit script over a Hypergraph.
//
// Real design flows re-partition after small netlist edits (ECO). A delta
// names the edits against a *base* netlist — add/remove nodes and nets,
// size and capacity changes — in a text format stable enough to store next
// to the partition it amends (docs/incremental.md):
//
//   htp-delta v1
//   add-node <size>                      # new nodes number n, n+1, ... in
//                                        # file order (n = base node count)
//   remove-node <id>                     # base node id
//   set-node-size <id> <size>
//   add-net <capacity> <pin> <pin> ...   # >= 2 distinct pins; pins may name
//                                        # base ids or just-added node ids
//   remove-net <id>                      # base net id
//   set-net-capacity <id> <capacity>
//
// '#' starts a comment; blank lines are ignored. Applying a delta produces
// the *edited* netlist plus stable old->new id mappings and touched-set
// marks, which is everything the warm-start machinery needs to remap a
// converged metric and re-carve only the affected subtrees.
//
// The hypergraph stays immutable: ApplyDelta rebuilds through
// HypergraphBuilder with surviving nodes/nets first (in base order, so an
// empty delta reproduces the base graph bit for bit) and additions
// appended. A base net that loses pins below two survivors is dropped —
// and, per the documented `subhypergraph` contract, a node whose last net
// was removed is KEPT at degree 0 (its size still consumes capacity).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Thrown on malformed delta text (parse) and on edits that do not apply
/// to the base netlist (unknown ids, duplicate removes, references to
/// removed ids). Derives from htp::Error; drivers map it to exit code 2
/// (usage) because the input file, not the run, is at fault.
class DeltaError : public Error {
 public:
  explicit DeltaError(const std::string& what) : Error(what) {}
};

/// A parsed edit script. Ids refer to the base netlist; added nodes are
/// addressed as base_count + index into `added_nodes`.
struct NetlistDelta {
  struct AddedNode {
    double size = 1.0;
  };
  struct AddedNet {
    double capacity = 1.0;
    std::vector<NodeId> pins;  ///< base ids or added-node ids
  };

  std::vector<AddedNode> added_nodes;
  std::vector<NodeId> removed_nodes;
  std::vector<std::pair<NodeId, double>> node_size_changes;
  std::vector<AddedNet> added_nets;
  std::vector<NetId> removed_nets;
  std::vector<std::pair<NetId, double>> net_capacity_changes;

  bool empty() const {
    return added_nodes.empty() && removed_nodes.empty() &&
           node_size_changes.empty() && added_nets.empty() &&
           removed_nets.empty() && net_capacity_changes.empty();
  }
};

/// Parses the text format. Throws DeltaError (with a line number) on a
/// missing/wrong header, unknown directives, truncated lines, unparsable
/// or non-positive numbers, or an added net with fewer than two distinct
/// pins. Id validity against a base netlist is checked by ApplyDelta.
NetlistDelta ParseDeltaText(const std::string& text);

/// Renders a delta back to the text format (round-trips through
/// ParseDeltaText).
std::string WriteDeltaText(const NetlistDelta& delta);

/// File helpers (throw DeltaError when the file cannot be read).
NetlistDelta ReadDeltaFile(const std::string& path);

/// The edited netlist plus everything needed to carry state across the
/// edit.
struct DeltaApplication {
  /// The edited hypergraph (shared so TreePartitions can outlive the
  /// application object).
  std::shared_ptr<const Hypergraph> hg;
  /// base node id -> edited node id; kInvalidNode for removed nodes.
  std::vector<NodeId> node_to_new;
  /// base net id -> edited net id; kInvalidNet for removed nets and for
  /// base nets dropped because fewer than two pins survived.
  std::vector<NetId> net_to_new;
  /// Edited ids of the delta's added nodes, in delta order.
  std::vector<NodeId> added_node_ids;
  /// Per *edited* net: 1 iff the delta touched it — added by the delta,
  /// capacity changed, or at least one pin removed. Untouched nets keep
  /// their converged metric values across the edit (warm_start.hpp).
  std::vector<char> net_touched;
  /// Per *edited* node: 1 iff the delta touched it — added, resized, or a
  /// pin of any added/removed/dropped/touched net. Touched nodes mark the
  /// hierarchy blocks the re-carver must rebuild (eco_repartition.hpp).
  std::vector<char> node_touched;
  /// Base nets dropped because the delta removed all but <= 1 of their
  /// pins (distinct from explicit remove-net lines).
  std::size_t dropped_nets = 0;
};

/// Applies `delta` to `base`. Throws DeltaError on out-of-range ids,
/// duplicate removes, edits referencing removed ids (delete-then-
/// reference), added nets whose pins collapse below two distinct survivors,
/// or a delta that removes every node.
DeltaApplication ApplyDelta(const Hypergraph& base, const NetlistDelta& delta);

}  // namespace htp
