#include "incremental/warm_start.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/partition_io.hpp"

namespace htp {
namespace {

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  throw WarmStartError("warm-start line " + std::to_string(line) + ": " + msg);
}

// Strict full-token parses; the format is machine-written, so anything
// unparsable means truncation or corruption, never style.
std::uint64_t ParseU64(const std::string& tok, std::size_t line,
                       const char* what) {
  if (tok.empty() || tok[0] == '-')
    Fail(line, std::string("unparsable ") + what + " '" + tok + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size())
    Fail(line, std::string("unparsable ") + what + " '" + tok + "'");
  return v;
}

double ParseMetricValue(const std::string& tok, std::size_t line) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size())
    Fail(line, "unparsable metric value '" + tok + "'");
  if (!std::isfinite(v) || v < 0.0)
    Fail(line, "metric values must be finite and >= 0, got '" + tok + "'");
  return v;
}

}  // namespace

WarmStartState MakeWarmStartState(const Hypergraph& hg,
                                  const SpreadingMetric& metric,
                                  const TreePartition& tp,
                                  std::uint64_t seed) {
  HTP_CHECK_MSG(metric.size() == hg.num_nets(),
                "warm-start metric must carry one value per net");
  HTP_CHECK(&tp.hypergraph() == &hg);
  WarmStartState state;
  state.nodes = hg.num_nodes();
  state.nets = hg.num_nets();
  state.pins = hg.num_pins();
  state.seed = seed;
  state.metric = metric;
  state.partition_text = WritePartitionText(tp);
  return state;
}

std::string WriteWarmStartText(const WarmStartState& state) {
  std::ostringstream out;
  out << "htp-warm-start v1\n";
  out << "netlist " << state.nodes << " " << state.nets << " " << state.pins
      << "\n";
  out << "seed " << state.seed << "\n";
  out << "metric " << state.metric.size() << "\n";
  out << std::hexfloat;
  for (const double d : state.metric) out << d << "\n";
  out << std::defaultfloat;
  std::size_t partition_lines = 0;
  for (const char c : state.partition_text)
    if (c == '\n') ++partition_lines;
  if (!state.partition_text.empty() && state.partition_text.back() != '\n')
    ++partition_lines;
  out << "partition " << partition_lines << "\n";
  out << state.partition_text;
  if (!state.partition_text.empty() && state.partition_text.back() != '\n')
    out << "\n";
  return std::move(out).str();
}

WarmStartState ParseWarmStartText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  const auto next_line = [&](const char* what) {
    if (!std::getline(in, line))
      Fail(lineno, std::string("unexpected end of file, expected ") + what);
    ++lineno;
  };

  next_line("header");
  if (line != "htp-warm-start v1")
    Fail(lineno, "expected header 'htp-warm-start v1'");

  WarmStartState state;
  {
    next_line("'netlist <nodes> <nets> <pins>'");
    std::istringstream fields(line);
    std::string kw, a, b, c, extra;
    fields >> kw >> a >> b >> c;
    if (kw != "netlist" || c.empty() || (fields >> extra))
      Fail(lineno, "expected 'netlist <nodes> <nets> <pins>'");
    state.nodes = ParseU64(a, lineno, "node count");
    state.nets = ParseU64(b, lineno, "net count");
    state.pins = ParseU64(c, lineno, "pin count");
  }
  {
    next_line("'seed <seed>'");
    std::istringstream fields(line);
    std::string kw, a, extra;
    fields >> kw >> a;
    if (kw != "seed" || a.empty() || (fields >> extra))
      Fail(lineno, "expected 'seed <seed>'");
    state.seed = ParseU64(a, lineno, "seed");
  }
  {
    next_line("'metric <count>'");
    std::istringstream fields(line);
    std::string kw, a, extra;
    fields >> kw >> a;
    if (kw != "metric" || a.empty() || (fields >> extra))
      Fail(lineno, "expected 'metric <count>'");
    const std::uint64_t count = ParseU64(a, lineno, "metric count");
    if (count != state.nets)
      Fail(lineno, "metric count " + std::to_string(count) +
                       " != net count " + std::to_string(state.nets));
    state.metric.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      next_line("a metric value");
      std::string tok;
      std::string extra_tok;
      std::istringstream value(line);
      value >> tok;
      if (tok.empty() || (value >> extra_tok))
        Fail(lineno, "expected exactly one metric value");
      state.metric.push_back(ParseMetricValue(tok, lineno));
    }
  }
  {
    next_line("'partition <line-count>'");
    std::istringstream fields(line);
    std::string kw, a, extra;
    fields >> kw >> a;
    if (kw != "partition" || a.empty() || (fields >> extra))
      Fail(lineno, "expected 'partition <line-count>'");
    const std::uint64_t count = ParseU64(a, lineno, "partition line count");
    std::ostringstream partition;
    for (std::uint64_t i = 0; i < count; ++i) {
      next_line("a partition line");
      partition << line << "\n";
    }
    state.partition_text = std::move(partition).str();
    if (state.partition_text.empty())
      Fail(lineno, "warm-start state must embed a partition");
  }
  std::string trailing;
  while (std::getline(in, trailing)) {
    ++lineno;
    if (!trailing.empty()) Fail(lineno, "trailing content after partition");
  }
  return state;
}

void WriteWarmStartFile(const WarmStartState& state, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw WarmStartError("cannot open warm-start file: " + path);
  out << WriteWarmStartText(state);
  if (!out) throw WarmStartError("failed writing warm-start file: " + path);
}

WarmStartState ReadWarmStartFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw WarmStartError("cannot open warm-start file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWarmStartText(std::move(text).str());
}

void CheckWarmStartMatches(const WarmStartState& state, const Hypergraph& hg) {
  if (state.nodes != hg.num_nodes() || state.nets != hg.num_nets() ||
      state.pins != hg.num_pins())
    throw WarmStartError(
        "warm-start state was captured for a different netlist (fingerprint " +
        std::to_string(state.nodes) + "/" + std::to_string(state.nets) + "/" +
        std::to_string(state.pins) + " vs " +
        std::to_string(hg.num_nodes()) + "/" + std::to_string(hg.num_nets()) +
        "/" + std::to_string(hg.num_pins()) + ")");
}

SpreadingMetric RemapWarmMetric(const WarmStartState& state,
                                const DeltaApplication& app) {
  return RemapWarmMetric(state.metric, app);
}

SpreadingMetric RemapWarmMetric(const SpreadingMetric& metric,
                                const DeltaApplication& app) {
  if (metric.size() != app.net_to_new.size())
    throw WarmStartError(
        "warm-start metric does not span the pre-delta netlist's nets");
  SpreadingMetric warm(app.net_touched.size(), 0.0);
  for (NetId e = 0; e < app.net_to_new.size(); ++e) {
    const NetId mapped = app.net_to_new[e];
    if (mapped == kInvalidNet) continue;  // removed or dropped
    if (!app.net_touched[mapped]) warm[mapped] = metric[e];
  }
  return warm;
}

}  // namespace htp
