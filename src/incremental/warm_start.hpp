// WarmStartState: the persisted outcome of a converged FLOW run — the
// spreading metric d(e) plus the final partition — so a later run on an
// edited netlist can resume instead of starting cold (docs/incremental.md).
//
// Text format (one file, embeds the htp-partition document):
//
//   htp-warm-start v1
//   netlist <nodes> <nets> <pins>     # fingerprint of the run's netlist
//   seed <seed>                       # the run seed that produced it
//   metric <count>                    # then one hexfloat d(e) per line,
//   <hexfloat>                        # in net id order
//   ...
//   partition <line-count>            # then the embedded htp-partition v1
//   <partition text>                  # document, exactly <line-count> lines
//
// Metric values are written as C hexfloats ("0x1.8p+1"-style), which
// round-trip IEEE-754 doubles exactly — so resuming from a file is
// bit-identical to resuming from the in-memory state, the property the
// empty-delta equivalence battery (tests/incremental/) enforces.
#pragma once

#include <cstdint>
#include <string>

#include "core/spreading_metric.hpp"
#include "core/tree_partition.hpp"
#include "incremental/netlist_delta.hpp"

namespace htp {

/// Thrown on malformed warm-start text or a state that does not match the
/// netlist it is applied to. Derives from htp::Error; drivers map it to
/// exit code 2 (usage) like DeltaError.
class WarmStartError : public Error {
 public:
  explicit WarmStartError(const std::string& what) : Error(what) {}
};

/// A converged run's reusable state, tied to its netlist by fingerprint.
struct WarmStartState {
  std::size_t nodes = 0;  ///< fingerprint: node count of the run's netlist
  std::size_t nets = 0;   ///< fingerprint: net count
  std::size_t pins = 0;   ///< fingerprint: pin count
  std::uint64_t seed = 0;  ///< the run seed (informational)
  SpreadingMetric metric;  ///< converged d(e), one value per net
  std::string partition_text;  ///< embedded htp-partition v1 document
};

/// Captures the state of a finished run: `metric` must span `hg`'s nets
/// and `tp` must be a valid partition of `hg`.
WarmStartState MakeWarmStartState(const Hypergraph& hg,
                                  const SpreadingMetric& metric,
                                  const TreePartition& tp, std::uint64_t seed);

/// Renders the text format (exact: metric values as hexfloats).
std::string WriteWarmStartText(const WarmStartState& state);

/// Parses the text format. Throws WarmStartError (with a line number) on
/// structural problems; fingerprint matching is CheckWarmStartMatches.
WarmStartState ParseWarmStartText(const std::string& text);

/// File helpers (throw WarmStartError when the file cannot be opened).
void WriteWarmStartFile(const WarmStartState& state, const std::string& path);
WarmStartState ReadWarmStartFile(const std::string& path);

/// Throws WarmStartError unless `state`'s fingerprint matches `hg` (the
/// *pre-delta* netlist: warm state is always captured before the edit).
void CheckWarmStartMatches(const WarmStartState& state, const Hypergraph& hg);

/// Remaps a pre-delta metric through a delta application: the returned
/// vector spans the *edited* netlist's nets; every net the delta did not
/// touch keeps its converged d(e), every touched or added net restarts at
/// 0 (the cold initial length). This is the `warm_metric` seed
/// FlowInjectionParams consumes.
SpreadingMetric RemapWarmMetric(const WarmStartState& state,
                                const DeltaApplication& app);

/// Same remap for a bare metric (the cache-interop path, where the seed
/// comes from a recomputed pre-delta metric instead of a state file).
/// `metric` must span the pre-delta netlist's nets.
SpreadingMetric RemapWarmMetric(const SpreadingMetric& metric,
                                const DeltaApplication& app);

}  // namespace htp
