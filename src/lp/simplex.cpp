#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace htp {
namespace {

constexpr double kTol = 1e-9;

// Dense tableau with an explicit priced-out objective row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1), 0.0),
        obj_(cols + 1, 0.0), basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  double rhs(std::size_t r) const { return at(r, cols_); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::vector<double>& obj() { return obj_; }
  std::vector<std::size_t>& basis() { return basis_; }

  void Pivot(std::size_t pr, std::size_t pc) {
    const double pivot = at(pr, pc);
    HTP_CHECK(std::abs(pivot) > kTol);
    const double inv = 1.0 / pivot;
    for (std::size_t c = 0; c <= cols_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) <= kTol) {
        at(r, pc) = 0.0;
        continue;
      }
      for (std::size_t c = 0; c <= cols_; ++c) at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;
    }
    const double ofactor = obj_[pc];
    if (std::abs(ofactor) > kTol) {
      for (std::size_t c = 0; c <= cols_; ++c) obj_[c] -= ofactor * at(pr, c);
    }
    obj_[pc] = 0.0;
    basis_[pr] = pc;
  }

  // Prices out the given cost vector against the current basis, writing the
  // reduced-cost row. Banned columns get +infinity so they never enter.
  void SetObjective(const std::vector<double>& cost,
                    const std::vector<char>& banned) {
    std::fill(obj_.begin(), obj_.end(), 0.0);
    for (std::size_t c = 0; c < cost.size(); ++c) obj_[c] = cost[c];
    for (std::size_t r = 0; r < rows_; ++r) {
      const double cb = basis_[r] < cost.size() ? cost[basis_[r]] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) obj_[c] -= cb * at(r, c);
    }
    for (std::size_t c = 0; c < cols_; ++c)
      if (banned[c]) obj_[c] = std::numeric_limits<double>::infinity();
  }

  // Runs primal simplex. Dantzig pricing with a stability-biased ratio test
  // keeps pivot counts and roundoff low; after a generous iteration budget
  // it falls back to Bland's rule, which cannot cycle. Returns false on
  // unboundedness.
  bool Optimize() {
    const std::size_t bland_after = 50 * (rows_ + cols_) + 1000;
    for (std::size_t iter = 0;; ++iter) {
      const bool bland = iter >= bland_after;
      HTP_CHECK_MSG(iter < 4 * bland_after, "simplex failed to converge");
      // Entering column: most negative reduced cost (Dantzig), or smallest
      // index with a negative one (Bland).
      std::size_t enter = cols_;
      double most_negative = -kTol;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (obj_[c] < most_negative) {
          enter = c;
          most_negative = obj_[c];
          if (bland) break;
        }
      }
      if (enter == cols_) return true;  // optimal
      // Ratio test: minimum ratio; among near-ties prefer the largest pivot
      // magnitude (numerical stability) or the smallest basis index (Bland).
      std::size_t leave = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_pivot = 0.0;
      constexpr double kPivTol = 1e-8;
      for (std::size_t r = 0; r < rows_; ++r) {
        const double a = at(r, enter);
        if (a <= kPivTol) continue;
        const double ratio = std::max(rhs(r), 0.0) / a;
        const bool tie = leave != rows_ && ratio <= best_ratio + kTol &&
                         ratio >= best_ratio - kTol;
        const bool better = ratio < best_ratio - kTol;
        const bool tie_wins =
            tie && (bland ? basis_[r] < basis_[leave] : a > best_pivot);
        if (leave == rows_ || better || tie_wins) {
          best_ratio = ratio;
          best_pivot = a;
          leave = r;
        }
      }
      if (leave == rows_) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

  // Current objective value of the priced-out cost (z = -obj[rhs]).
  double ObjectiveValue() const { return -obj_[cols_]; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
  std::vector<double> obj_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem) {
  HTP_CHECK(problem.objective.size() == problem.num_vars);
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.rows.size();
  for (const LpRow& row : problem.rows)
    HTP_CHECK(row.coeffs.size() == n);

  // Column layout: [0, n) structural; then one slack/surplus per inequality
  // row; then one artificial per row that needs it.
  std::size_t num_slack = 0;
  for (const LpRow& row : problem.rows)
    if (row.rel != Relation::kEqual) ++num_slack;

  // First pass to normalize rhs >= 0 and decide artificials.
  struct RowPlan {
    double sign;      // multiply coefficients by this
    Relation rel;     // relation after normalization
    bool artificial;  // needs an artificial basic variable
  };
  std::vector<RowPlan> plan(m);
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const LpRow& row = problem.rows[i];
    double sign = row.rhs < 0.0 ? -1.0 : 1.0;
    Relation rel = row.rel;
    if (sign < 0.0) {
      if (rel == Relation::kLessEqual)
        rel = Relation::kGreaterEqual;
      else if (rel == Relation::kGreaterEqual)
        rel = Relation::kLessEqual;
    }
    const bool art = rel != Relation::kLessEqual;
    plan[i] = {sign, rel, art};
    if (art) ++num_art;
  }

  const std::size_t total_cols = n + num_slack + num_art;
  Tableau tab(m, total_cols);
  std::vector<char> is_artificial(total_cols, 0);

  std::size_t slack_cursor = n;
  std::size_t art_cursor = n + num_slack;
  for (std::size_t i = 0; i < m; ++i) {
    const LpRow& row = problem.rows[i];
    const RowPlan& p = plan[i];
    for (std::size_t j = 0; j < n; ++j) tab.at(i, j) = p.sign * row.coeffs[j];
    tab.rhs(i) = p.sign * row.rhs;
    if (p.rel == Relation::kLessEqual) {
      tab.at(i, slack_cursor) = 1.0;
      tab.basis()[i] = slack_cursor++;
    } else if (p.rel == Relation::kGreaterEqual) {
      tab.at(i, slack_cursor) = -1.0;  // surplus
      ++slack_cursor;
    }
    if (p.artificial) {
      tab.at(i, art_cursor) = 1.0;
      is_artificial[art_cursor] = 1;
      tab.basis()[i] = art_cursor++;
    }
  }

  LpSolution solution;

  // Phase 1: minimize the sum of artificials.
  if (num_art > 0) {
    std::vector<double> phase1_cost(total_cols, 0.0);
    for (std::size_t c = 0; c < total_cols; ++c)
      if (is_artificial[c]) phase1_cost[c] = 1.0;
    tab.SetObjective(phase1_cost, std::vector<char>(total_cols, 0));
    const bool bounded = tab.Optimize();
    HTP_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    if (tab.ObjectiveValue() > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive artificials out of the basis (or neutralize redundant rows) so
    // phase 2 cannot re-grow them.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[tab.basis()[r]]) continue;
      std::size_t pivot_col = total_cols;
      for (std::size_t c = 0; c < total_cols; ++c) {
        if (!is_artificial[c] && std::abs(tab.at(r, c)) > 1e-7) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < total_cols) {
        tab.Pivot(r, pivot_col);
      } else {
        // Redundant row: zero it so it never constrains anything again.
        for (std::size_t c = 0; c <= total_cols; ++c) tab.at(r, c) = 0.0;
      }
    }
  }

  // Phase 2: the true objective; artificial columns are banned from entry.
  std::vector<double> cost(total_cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost[j] = problem.objective[j];
  tab.SetObjective(cost, is_artificial);
  if (!tab.Optimize()) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (tab.basis()[r] < n) solution.x[tab.basis()[r]] = tab.rhs(r);
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    solution.objective += problem.objective[j] * solution.x[j];
  return solution;
}

}  // namespace htp
