// Dense two-phase primal simplex.
//
// Solves  min c^T x  subject to  a_i^T x {<=, >=, ==} b_i,  x >= 0.
//
// Purpose-built for the exact spreading-metric LP (P1) on small instances
// (tens of variables, hundreds of generated cuts): Phase 1 drives artificial
// variables out with Bland's rule (no cycling), Phase 2 optimizes the true
// objective. Not a production-scale LP code — the paper never solves (P1)
// exactly either; we use this to *audit* the heuristics (Lemma 2 bounds).
#pragma once

#include <vector>

#include "netlist/common.hpp"

namespace htp {

/// Constraint sense.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint a^T x (rel) rhs.
struct LpRow {
  std::vector<double> coeffs;  ///< size = num_vars (dense)
  Relation rel = Relation::kGreaterEqual;
  double rhs = 0.0;
};

/// min objective^T x subject to rows, x >= 0.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  ///< size = num_vars
  std::vector<LpRow> rows;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// Solution of an LpProblem.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< primal values (valid when kOptimal)
};

/// Solves the LP with dense tableau simplex (Bland's rule, 1e-9 tolerance).
LpSolution SolveLp(const LpProblem& problem);

}  // namespace htp
