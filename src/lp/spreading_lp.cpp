#include "lp/spreading_lp.hpp"

namespace htp {

SpreadingLpResult SolveSpreadingLp(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const SpreadingLpOptions& options) {
  SpreadingLpResult result;
  const NetId m = hg.num_nets();

  LpProblem lp;
  lp.num_vars = m;
  lp.objective.resize(m);
  for (NetId e = 0; e < m; ++e) lp.objective[e] = hg.net_capacity(e);

  SpreadingMetric metric(m, 0.0);
  for (std::size_t round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;

    // Separation sweep: one violated tree-prefix row per violated source.
    std::size_t added = 0;
    bool pool_capped = false;
    for (NodeId v = 0; v < hg.num_nodes(); ++v) {
      if (lp.rows.size() >= options.max_cuts) {
        pool_capped = true;
        break;
      }
      auto violation =
          FindViolationFrom(hg, spec, metric, v, options.tolerance);
      if (!violation) continue;
      LpRow row;
      row.coeffs.assign(m, 0.0);
      for (const auto& [e, delta] : TreeSubtreeSizes(hg, violation->tree))
        row.coeffs[e] = delta;
      row.rel = Relation::kGreaterEqual;
      row.rhs = violation->rhs;
      lp.rows.push_back(std::move(row));
      ++added;
    }
    if (added == 0) {
      // Converged only when a FULL sweep found nothing to separate; a sweep
      // cut short by the pool cap proves nothing about feasibility.
      result.converged = !pool_capped;
      break;
    }

    const LpSolution sol = SolveLp(lp);
    if (sol.status != LpStatus::kOptimal) {
      // (P1) is always feasible (large enough d satisfies everything) and
      // bounded below by 0; any other status signals numeric trouble.
      result.status = sol.status;
      return result;
    }
    metric = sol.x;
    result.lower_bound = sol.objective;
  }

  result.status = LpStatus::kOptimal;
  result.metric = std::move(metric);
  result.cuts = lp.rows.size();
  return result;
}

}  // namespace htp
