// Exact solution of the spreading-metric LP (P1) by cutting planes.
//
// (P1) has exponentially many constraints (3), but family (5) — evaluated
// on the shortest-path trees of the *current* metric — is an exact
// separation oracle: by Claim 4 of Even et al., a metric violating some
// constraint in (3) also violates one over a tree prefix S(v,k), and for a
// fixed tree structure T the constraint linearizes through Equation (6):
//
//   sum_e d(e) * delta(T, e)  >=  g(s(S))
//
// (delta(T, e) = node size hanging below e in T). Such a row is valid for
// every feasible metric because tree-path distances dominate shortest-path
// distances. Kelley's algorithm — solve the relaxation, separate, add the
// violated rows, repeat — therefore converges to the optimum of (P1),
// giving the exact Lemma-2 lower bound on small instances.
#pragma once

#include "core/spreading_metric.hpp"
#include "lp/simplex.hpp"

namespace htp {

/// Options of the cutting-plane driver.
struct SpreadingLpOptions {
  std::size_t max_rounds = 200;   ///< separation rounds before giving up
  std::size_t max_cuts = 5000;    ///< total generated rows cap
  double tolerance = 1e-6;        ///< separation violation tolerance
};

/// Result of SolveSpreadingLp.
struct SpreadingLpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal (P1) objective sum_e c(e) d(e): a lower bound on the cost of
  /// EVERY hierarchical tree partition of the instance (Lemma 2).
  double lower_bound = 0.0;
  /// The optimal fractional spreading metric.
  SpreadingMetric metric;
  std::size_t rounds = 0;
  std::size_t cuts = 0;
  /// True when the final metric passed a full separation sweep (the bound
  /// is then exact up to the tolerance).
  bool converged = false;
};

/// Solves (P1) for `hg` under `spec`. Intended for small instances (tens of
/// nets); complexity grows quickly with the cut pool.
SpreadingLpResult SolveSpreadingLp(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const SpreadingLpOptions& options = {});

}  // namespace htp
