#include "multilevel/coarsen.hpp"

#include <algorithm>

#include "netlist/subhypergraph.hpp"
#include "obs/obs.hpp"

namespace htp {
namespace {

// Coarsening telemetry (docs/observability.md). The coarsener is serial and
// RNG-free, so totals are invariant across every thread knob by
// construction.
obs::Counter c_passes("coarsen.passes");
obs::Counter c_nodes_merged("coarsen.nodes_merged");
obs::Counter c_stalled("coarsen.stalled_passes");
obs::Timer t_pass("coarsen.pass");

// Accumulates the connection weight between `v` and each eligible neighbor
// (matching) or neighbor cluster (label propagation) into `conn`, recording
// the touched keys in `touched`. `key_of(u)` maps a pin to its scoring key
// or kInvalidNode for "skip". Weights are c(e)/(|e|-1), the standard
// hypergraph-to-graph expansion.
template <typename KeyOf>
void AccumulateConnections(const Hypergraph& hg, NodeId v,
                           std::size_t max_degree, const KeyOf& key_of,
                           std::vector<double>& conn,
                           std::vector<NodeId>& touched) {
  touched.clear();
  for (NetId e : hg.nets(v)) {
    const auto pins = hg.pins(e);
    if (pins.size() > max_degree) continue;
    const double w =
        hg.net_capacity(e) / static_cast<double>(pins.size() - 1);
    for (NodeId u : pins) {
      if (u == v) continue;
      const NodeId key = key_of(u);
      if (key == kInvalidNode) continue;
      if (conn[key] == 0.0) touched.push_back(key);  // capacities are > 0
      conn[key] += w;
    }
  }
  // First-touch order depends only on CSR layout, but sort anyway so the
  // tie-break ("smallest key wins") is explicit rather than incidental.
  std::sort(touched.begin(), touched.end());
}

std::vector<BlockId> HeavyEdgeMatchingPass(const Hypergraph& hg,
                                           const CoarsenParams& params,
                                           const RatingFn& rating,
                                           BlockId& num_clusters) {
  const NodeId n = hg.num_nodes();
  std::vector<BlockId> cluster_of(n, kInvalidBlock);
  std::vector<double> conn(n, 0.0);
  std::vector<NodeId> touched;
  BlockId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (cluster_of[v] != kInvalidBlock) continue;
    const double sv = hg.node_size(v);
    AccumulateConnections(
        hg, v, params.max_rating_net_degree,
        [&](NodeId u) {
          return cluster_of[u] == kInvalidBlock ? u : kInvalidNode;
        },
        conn, touched);
    NodeId best = kInvalidNode;
    double best_rating = 0.0;
    for (NodeId u : touched) {
      if (params.max_cluster_size > 0.0 &&
          sv + hg.node_size(u) > params.max_cluster_size)
        continue;
      const double r = rating(conn[u], sv, hg.node_size(u));
      if (r > best_rating) {  // strict: ties keep the smallest id
        best = u;
        best_rating = r;
      }
    }
    for (NodeId u : touched) conn[u] = 0.0;
    cluster_of[v] = next;
    if (best != kInvalidNode) cluster_of[best] = next;
    ++next;
  }
  num_clusters = next;
  return cluster_of;
}

std::vector<BlockId> LabelPropagationPass(const Hypergraph& hg,
                                          const CoarsenParams& params,
                                          const RatingFn& rating,
                                          BlockId& num_clusters) {
  const NodeId n = hg.num_nodes();
  std::vector<BlockId> cluster_of(n, kInvalidBlock);
  std::vector<double> cluster_size;
  std::vector<double> conn;  // indexed by cluster id
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < n; ++v) {
    const double sv = hg.node_size(v);
    conn.resize(cluster_size.size(), 0.0);
    AccumulateConnections(
        hg, v, params.max_rating_net_degree,
        [&](NodeId u) {
          return cluster_of[u];  // kInvalidBlock == kInvalidNode: skip
        },
        conn, touched);
    BlockId best = kInvalidBlock;
    double best_rating = 0.0;
    for (BlockId c : touched) {
      if (params.max_cluster_size > 0.0 &&
          cluster_size[c] + sv > params.max_cluster_size)
        continue;
      const double r = rating(conn[c], sv, cluster_size[c]);
      if (r > best_rating) {  // strict: ties keep the smallest cluster id
        best = c;
        best_rating = r;
      }
    }
    for (BlockId c : touched) conn[c] = 0.0;
    if (best == kInvalidBlock) {
      cluster_of[v] = static_cast<BlockId>(cluster_size.size());
      cluster_size.push_back(sv);
    } else {
      cluster_of[v] = best;
      cluster_size[best] += sv;
    }
  }
  num_clusters = static_cast<BlockId>(cluster_size.size());
  return cluster_of;
}

}  // namespace

double HeavyEdgeRating(double connection, double node_size,
                       double candidate_size) {
  return connection / (node_size * candidate_size);
}

CoarsenLevel CoarsenOnce(const Hypergraph& fine, const CoarsenParams& params) {
  HTP_CHECK_MSG(fine.num_nodes() > 0, "cannot coarsen an empty hypergraph");
  obs::PhaseScope obs_span(t_pass);
  c_passes.Add();
  const RatingFn& rating =
      params.rating ? params.rating : RatingFn(HeavyEdgeRating);
  CoarsenLevel level;
  switch (params.scheme) {
    case CoarsenScheme::kHeavyEdgeMatching:
      level.cluster_of =
          HeavyEdgeMatchingPass(fine, params, rating, level.num_clusters);
      break;
    case CoarsenScheme::kLabelPropagation:
      level.cluster_of =
          LabelPropagationPass(fine, params, rating, level.num_clusters);
      break;
  }
  level.coarse =
      ContractClustersMerged(fine, level.cluster_of, level.num_clusters);
  c_nodes_merged.Add(fine.num_nodes() - level.num_clusters);
  if (level.num_clusters == fine.num_nodes()) c_stalled.Add();
  return level;
}

std::vector<CoarsenLevel> CoarsenToThreshold(const Hypergraph& hg,
                                             NodeId threshold,
                                             const CoarsenParams& params,
                                             std::size_t max_levels) {
  std::vector<CoarsenLevel> stack;
  stack.reserve(max_levels);
  const Hypergraph* cur = &hg;
  while (cur->num_nodes() > threshold && stack.size() < max_levels) {
    CoarsenLevel level = CoarsenOnce(*cur, params);
    // Stall guard: a pass that shrinks by < 5% is not worth stacking —
    // whatever blocked it (isolated nodes, the size cap) will block the
    // next pass too.
    if (std::uint64_t{level.num_clusters} * 20 >=
        std::uint64_t{cur->num_nodes()} * 19)
      break;
    stack.push_back(std::move(level));
    cur = &stack.back().coarse;
  }
  return stack;
}

}  // namespace htp
