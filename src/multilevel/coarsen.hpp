// Deterministic coarsening for the multilevel FLOW engine (docs/scaling.md).
//
// A coarsening pass clusters the nodes of a hypergraph and contracts each
// cluster into one supernode via ContractClustersMerged, which *merges*
// parallel nets by summing their capacities. Because the hierarchical cost
// of Equation (1) is additive in net capacity, the merge is cost-exact: any
// partition of the coarse graph, projected back through the cluster map,
// has exactly the same cost on the fine graph (the round-trip invariant
// tests/multilevel/coarsen_test.cpp asserts).
//
// Determinism contract: both schemes are pure functions of the hypergraph
// and the parameters. Nodes are visited in index order, candidate scores
// are compared with a strict ">" so ties fall to the smallest candidate id,
// and no RNG is consulted anywhere — so every level of the multilevel
// pipeline is bit-identical across seeds, threads, and runs.
#pragma once

#include <functional>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// How one coarsening pass forms clusters.
enum class CoarsenScheme {
  /// Greedy heavy-edge matching: nodes pair up with the unmatched neighbor
  /// of the highest rating; clusters have at most two fine nodes, so each
  /// pass shrinks the graph by at most 2x. The classic multilevel choice
  /// (hMETIS-style); conservative and high quality.
  kHeavyEdgeMatching,
  /// Greedy cluster growing (label-propagation style): each node, in index
  /// order, joins the already-formed cluster with the highest rating among
  /// its neighbors, or opens a new one. Clusters grow up to
  /// `max_cluster_size`, so a single pass can shrink aggressively; the
  /// right choice for 100k+-node inputs.
  kLabelPropagation,
};

/// Pluggable cluster rating: given the accumulated connection weight
/// between a node and a candidate (sum over shared nets of c(e)/(|e|-1)),
/// the node's size, and the candidate's size, returns a score. Higher wins;
/// ties fall to the smaller candidate id. Must be pure (called in a
/// deterministic order, its results are baked into the level structure).
using RatingFn =
    std::function<double(double connection, double node_size,
                         double candidate_size)>;

/// The default rating: connection / (size * size) — KaHyPar's heavy-edge
/// rating, which prefers tightly connected *small* partners and so keeps
/// supernode sizes balanced.
double HeavyEdgeRating(double connection, double node_size,
                       double candidate_size);

/// Parameters of one coarsening pass.
struct CoarsenParams {
  CoarsenScheme scheme = CoarsenScheme::kLabelPropagation;
  /// Rating function; HeavyEdgeRating when empty.
  RatingFn rating;
  /// Upper bound on the total fine size of a cluster (0 = unlimited). The
  /// multilevel driver derives this from the hierarchy spec so supernodes
  /// never exceed what the coarse-level construction can pack
  /// (multilevel_flow.cpp, FeasibleClusterCap).
  double max_cluster_size = 0.0;
  /// Nets with more pins than this contribute no rating signal (a k-pin net
  /// ties everything to everything; scoring it costs O(k) per pin for
  /// nothing). They still appear, contracted, in the coarse graph.
  std::size_t max_rating_net_degree = 500;
};

/// One level of the coarsening stack: the cluster memento plus the
/// contracted hypergraph. `cluster_of[v]` is the supernode (coarse node id)
/// holding fine node v; ids are dense in first-touch order, so the mapping
/// doubles as the exact uncoarsening recipe (ProjectPartition).
struct CoarsenLevel {
  std::vector<BlockId> cluster_of;
  BlockId num_clusters = 0;
  Hypergraph coarse;
};

/// Runs one coarsening pass over `fine`. Always returns a valid level; when
/// nothing can be merged (every node isolated or the size cap blocks every
/// pair) the coarse graph has the same node count as the fine one — callers
/// detect the stall by comparing node counts (CoarsenToThreshold does).
CoarsenLevel CoarsenOnce(const Hypergraph& fine, const CoarsenParams& params);

/// Repeats CoarsenOnce until the coarsest graph has at most `threshold`
/// nodes, a pass shrinks by less than ~5% (stall guard), or `max_levels`
/// passes ran. Returns the stack finest-first; entry i maps level-i nodes
/// to level-(i+1) supernodes. An empty result means the input was already
/// at or below the threshold.
std::vector<CoarsenLevel> CoarsenToThreshold(const Hypergraph& hg,
                                             NodeId threshold,
                                             const CoarsenParams& params,
                                             std::size_t max_levels = 64);

}  // namespace htp
