#include "multilevel/multilevel_flow.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "partition/parallel_refine.hpp"

namespace htp {
namespace {

// Multilevel telemetry (docs/observability.md). The pipeline is serial
// outside RunHtpFlow — whose totals are thread-invariant already — so every
// counter here shares that guarantee.
obs::Counter c_runs("multilevel.runs");
obs::Counter c_levels("multilevel.levels");
obs::Counter c_flat_runs("multilevel.flat_runs");
obs::Counter c_fallbacks("multilevel.feasibility_fallbacks");
obs::Counter c_projections("uncoarsen.projections");
obs::Counter c_refine_gain_milli("uncoarsen.refine_gain_milli");
obs::Timer t_run("multilevel.run");
obs::Timer t_level("multilevel.level");
obs::Timer t_project("uncoarsen.project");
// One journal record per uncoarsening level; `level` leads the payload so
// the drained journal walks the uncoarsening coarsest-first (highest level
// index first in execution, but sorted ascending in the journal).
obs::Event e_level("multilevel.level");
// Refinement gain per projection, in milli-cost units (Equation (1) costs
// are capacity sums, integral on integer-capacity inputs).
obs::Histogram h_refine_gain_milli("uncoarsen.refine_gain_milli_per_level");

double MaxNodeSize(const Hypergraph& hg) {
  double m = 0.0;
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    m = std::max(m, hg.node_size(v));
  return m;
}

// Conservative feasibility probe: with node granularity `granularity`, can
// the root's children absorb the whole graph? AchievableCapacity already
// recurses the per-level bin-packing margins; the root-level slots formula
// (K * ub - (K-1) * g >= total) is the same window argument one level up.
bool CapFeasible(const HierarchySpec& spec, double total, double granularity) {
  try {
    const Level root = spec.LevelForSize(total);
    if (root == 0) return true;
    const double ub =
        spec.AchievableCapacity(root - 1, /*integral=*/false, granularity);
    const double k = static_cast<double>(spec.max_branches(root));
    return k * ub - (k - 1.0) * granularity >= total;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

double FeasibleClusterCap(const Hypergraph& hg, const HierarchySpec& spec) {
  const double total = hg.total_size();
  const double fine = MaxNodeSize(hg);
  double cap = std::max(total / 64.0, 2.0 * fine);
  while (cap > fine && !CapFeasible(spec, total, cap)) cap /= 2.0;
  return std::max(cap, fine);
}

TreePartition ProjectPartition(const TreePartition& coarse_tp,
                               const Hypergraph& fine_hg,
                               std::span<const BlockId> cluster_of) {
  HTP_CHECK(cluster_of.size() == fine_hg.num_nodes());
  HTP_CHECK_MSG(coarse_tp.fully_assigned(),
                "projection needs a complete coarse partition");
  obs::PhaseScope obs_span(t_project);
  c_projections.Add();
  TreePartition fine_tp(fine_hg, coarse_tp.root_level());
  // Blocks are created parent-before-child, so replaying AddChild in id
  // order reproduces the tree with identical ids (including single-child
  // chains).
  for (BlockId q = 1; q < coarse_tp.num_blocks(); ++q) {
    const BlockId replica = fine_tp.AddChild(coarse_tp.parent(q));
    HTP_CHECK(replica == q);
  }
  for (NodeId v = 0; v < fine_hg.num_nodes(); ++v)
    fine_tp.AssignNode(v, coarse_tp.leaf_of(cluster_of[v]));
  return fine_tp;
}

MultilevelResult RunMultilevelFlow(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const MultilevelParams& params) {
  obs::PhaseScope obs_span(t_run);
  c_runs.Add();

  // Arm the wall-clock budget ONCE; every stage below shares the token (a
  // second StartBudget on the same Budget would restart the deadline).
  HtpFlowParams flow = params.flow;
  const CancellationToken token = StartBudget(flow.budget, flow.cancel);
  flow.cancel = token;
  flow.budget.time_budget_seconds = Budget::kNoTimeLimit;
  // The pipeline owns the RunReport: the inner flow must not drain the
  // journal, or the coarse run's records would vanish from this report.
  flow.collect_report = false;

  CoarsenParams coarsen = params.coarsen;
  if (coarsen.max_cluster_size <= 0.0)
    coarsen.max_cluster_size = FeasibleClusterCap(hg, spec);

  std::vector<CoarsenLevel> stack = CoarsenToThreshold(
      hg, params.coarsen_threshold, coarsen, params.max_levels);

  // Solve the coarsest level. Supernodes raise the node granularity, and a
  // spec can be too tight for it (AchievableCapacity throws); retry one
  // level finer each time — the flat graph reproduces whatever the flat
  // pipeline would do, including a genuine infeasibility error.
  std::size_t fallbacks = 0;
  std::optional<HtpFlowResult> coarse;
  while (true) {
    const Hypergraph& g = stack.empty() ? hg : stack.back().coarse;
    try {
      coarse = RunHtpFlow(g, spec, flow);
      break;
    } catch (const Error&) {
      if (stack.empty()) throw;
      stack.pop_back();
      ++fallbacks;
      c_fallbacks.Add();
    }
  }
  c_levels.Add(stack.size());
  if (stack.empty()) c_flat_runs.Add();

  const NodeId coarsest_nodes =
      (stack.empty() ? hg : stack.back().coarse).num_nodes();
  bool completed = coarse->completed;
  StopReason stop_reason = coarse->stop_reason;

  // Uncoarsen: project level by level, refining the projected boundary at
  // each stop. The projection is cost-exact, so `stats.initial_cost` at
  // level i equals the previous level's final cost.
  HtpFmParams refine = params.refine;
  refine.cancel = token;
  TreePartition tp = std::move(coarse->partition);
  double cost = coarse->cost;
  std::vector<MultilevelLevelStats> level_stats;
  for (std::size_t i = stack.size(); i-- > 0;) {
    obs::PhaseScope level_span(t_level, "level", i);
    const Hypergraph& fine = (i == 0) ? hg : stack[i - 1].coarse;
    TreePartition projected = ProjectPartition(tp, fine, stack[i].cluster_of);
    // build_threads is a mode knob (htp_flow.hpp): != 1 opts every level's
    // refinement into the per-block parallel refiner, which the coarse flow
    // construction below the stack already used for its carves.
    const HtpFmStats stats =
        flow.build_threads != 1
            ? RefineHtpFmBlocks(projected, spec, refine, flow.build_threads)
            : RefineHtpFm(projected, spec, refine);
    const std::uint64_t gain_milli = static_cast<std::uint64_t>(
        std::llround((stats.initial_cost - stats.final_cost) * 1000.0));
    c_refine_gain_milli.Add(gain_milli);
    h_refine_gain_milli.Record(gain_milli);
    e_level.Record({{"level", static_cast<double>(i)},
                    {"nodes", static_cast<double>(fine.num_nodes())},
                    {"projected_cost", stats.initial_cost},
                    {"refined_cost", stats.final_cost},
                    {"fm_passes", static_cast<double>(stats.passes)},
                    {"gain", stats.initial_cost - stats.final_cost}});
    level_stats.push_back({fine.num_nodes(), stats.initial_cost,
                           stats.final_cost, stats.passes});
    if (!stats.completed) completed = false;
    cost = stats.final_cost;
    tp = std::move(projected);
  }
  if (!completed && stop_reason == StopReason::kCompleted)
    stop_reason = token.FiredReason();

  MultilevelResult result{std::move(tp)};
  result.cost = cost;
  result.coarsen_levels = stack.size();
  result.feasibility_fallbacks = fallbacks;
  result.coarsest_nodes = coarsest_nodes;
  result.coarse_cost = coarse->cost;
  result.level_stats = std::move(level_stats);
  result.completed = completed;
  result.stop_reason = stop_reason;
  if (params.collect_report) {
    obs::RunReportBuilder rb("multilevel_flow");
    rb.MetaString("algorithm", "multilevel_flow");
    rb.MetaNumber("nodes", static_cast<double>(hg.num_nodes()));
    rb.MetaNumber("nets", static_cast<double>(hg.num_nets()));
    rb.MetaNumber("levels", static_cast<double>(spec.num_levels()));
    rb.MetaNumber("seed", static_cast<double>(params.flow.seed));
    rb.MetaNumber("coarsen_threshold",
                  static_cast<double>(params.coarsen_threshold));
    rb.MetaNumber("max_levels", static_cast<double>(params.max_levels));
    rb.ResultNumber("cost", result.cost);
    rb.ResultNumber("coarse_cost", result.coarse_cost);
    rb.ResultNumber("coarsen_levels",
                    static_cast<double>(result.coarsen_levels));
    rb.ResultNumber("coarsest_nodes",
                    static_cast<double>(result.coarsest_nodes));
    rb.ResultNumber("feasibility_fallbacks",
                    static_cast<double>(result.feasibility_fallbacks));
    rb.ResultBool("completed", result.completed);
    rb.ResultString("stop_reason", StopReasonName(result.stop_reason));
    rb.WallNumber("threads", static_cast<double>(params.flow.threads));
    rb.WallNumber("metric_threads",
                  static_cast<double>(params.flow.metric_threads));
    rb.WallNumber("build_threads",
                  static_cast<double>(params.flow.build_threads));
    result.report = rb.Render(obs::TakeSnapshot(), obs::DrainEvents());
  }
  return result;
}

}  // namespace htp
