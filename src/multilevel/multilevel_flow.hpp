// Multilevel FLOW: coarsen -> partition -> uncoarsen (docs/scaling.md).
//
// The flat FLOW pipeline's separation oracle checks constraint family (5)
// from every source, so one injection round costs O(n^2 log n) — the
// scaling wall of ROADMAP item 1. This driver takes the classic multilevel
// route around it (hMETIS / KaHyPar lineage): contract the hypergraph to a
// few hundred supernodes with a deterministic coarsener, run the *existing*
// RunHtpFlow on the coarsest level where n is small enough for the exact
// oracle, then project the partition back up level by level, fixing the
// local damage with the existing FM refiner seeded only on projected
// boundary nodes.
//
// Because ContractClustersMerged sums the capacities of merged parallel
// nets and Equation (1) is additive in capacity, projection is cost-exact:
// the projected partition costs exactly what the coarse one did, before
// refinement makes it strictly cheaper. Every stage is deterministic and
// the coarse FLOW run keeps its bit-identity across `threads` x
// `metric_threads`, so the whole pipeline does too
// (tests/multilevel/multilevel_flow_test.cpp asserts the cross product).
#pragma once

#include "core/htp_flow.hpp"
#include "multilevel/coarsen.hpp"
#include "partition/htp_fm.hpp"

namespace htp {

/// Parameters of the multilevel driver.
struct MultilevelParams {
  /// Algorithm-1 parameters for the coarsest-level run. `budget` and
  /// `cancel` are armed ONCE by RunMultilevelFlow and shared by every
  /// stage (coarse flow + each refinement), so a deadline bounds the whole
  /// pipeline, not just the coarse solve. The thread knobs inherit their
  /// RunHtpFlow semantics wholesale: `threads`/`metric_threads` apply to
  /// the coarse solve, and `build_threads != 1` additionally switches
  /// every per-level refinement to the per-block parallel refiner
  /// (partition/parallel_refine.hpp) — the same mode caveat applies
  /// (engine results are worker-count invariant but differ from the
  /// serial mode; see docs/parallelism.md).
  HtpFlowParams flow;
  /// Coarsening pass parameters. `max_cluster_size` 0 (auto) derives the
  /// largest supernode the hierarchy spec can still pack — see
  /// FeasibleClusterCap.
  CoarsenParams coarsen;
  /// Stop coarsening once the graph has at most this many supernodes; the
  /// exact O(n^2 log n) oracle is affordable below it. Inputs already at or
  /// below the threshold run flat (identical to RunHtpFlow).
  NodeId coarsen_threshold = 800;
  /// Safety cap on coarsening passes.
  std::size_t max_levels = 64;
  /// Per-level FM refinement after each projection. `boundary_only`
  /// defaults to true here (unlike HtpFmParams): on a projected partition
  /// almost every node is interior, so full seeding would cost O(n) per
  /// pass for nothing. `cancel` is overwritten with the shared token.
  HtpFmParams refine = DefaultRefine();

  static HtpFmParams DefaultRefine() {
    HtpFmParams p;
    p.max_passes = 4;
    p.boundary_only = true;
    return p;
  }

  /// When true, RunMultilevelFlow assembles a RunReport into
  /// `MultilevelResult::report` covering the whole pipeline (coarse flow
  /// journal + per-level records). The inner RunHtpFlow always runs with
  /// `collect_report` off so its events accumulate into this pipeline-wide
  /// journal; assembly drains it (see HtpFlowParams::collect_report).
  bool collect_report = false;
};

/// What happened at one uncoarsening level (coarsest first).
struct MultilevelLevelStats {
  NodeId nodes = 0;           ///< fine-side node count of the projection
  double projected_cost = 0.0;  ///< == the coarser level's final cost
  double refined_cost = 0.0;
  std::size_t fm_passes = 0;
};

/// Outcome of the multilevel pipeline. The partition lives on the *input*
/// hypergraph and always passes ValidatePartition.
struct MultilevelResult {
  TreePartition partition;
  double cost = 0.0;                 ///< Equation (1) on the input graph
  std::size_t coarsen_levels = 0;    ///< levels actually used
  /// Levels discarded because the coarse instance was infeasible for the
  /// spec (AchievableCapacity too tight for the supernode granularity);
  /// the driver retries one level finer, down to the flat graph.
  std::size_t feasibility_fallbacks = 0;
  NodeId coarsest_nodes = 0;         ///< node count RunHtpFlow actually saw
  double coarse_cost = 0.0;          ///< best coarse-level cost
  std::vector<MultilevelLevelStats> level_stats;  ///< coarsest-first
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
  /// RunReport JSON (schema "htp-run-report"), populated iff
  /// `params.collect_report` was set; same determinism contract as
  /// HtpFlowResult::report.
  std::string report;
};

/// Largest cluster size for which a coarse graph with that node granularity
/// still admits a top-down construction under `spec` (conservative slots
/// check at the root over AchievableCapacity). Starts from
/// max(total/64, 2 * max fine node size) and halves until feasible, never
/// below the fine granularity (existing nodes cannot be split). Exposed for
/// tests; the driver calls it when CoarsenParams::max_cluster_size == 0.
double FeasibleClusterCap(const Hypergraph& hg, const HierarchySpec& spec);

/// Replicates `coarse_tp`'s block tree over `fine_hg` and assigns every
/// fine node to the leaf of its supernode. Exact: block ids, levels, and
/// sizes all transfer unchanged, and the projected partition's cost equals
/// the coarse one's (the merged-net invariant). Exposed for tests.
TreePartition ProjectPartition(const TreePartition& coarse_tp,
                               const Hypergraph& fine_hg,
                               std::span<const BlockId> cluster_of);

/// Runs the multilevel pipeline. Throws htp::Error only when the *flat*
/// instance is infeasible (an infeasible coarse level silently falls back
/// one level finer).
MultilevelResult RunMultilevelFlow(const Hypergraph& hg,
                                   const HierarchySpec& spec,
                                   const MultilevelParams& params = {});

}  // namespace htp
