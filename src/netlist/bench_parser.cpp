#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace htp {
namespace {

struct GateDef {
  std::string output;
  std::string type;
  std::vector<std::string> inputs;
};

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void ParseFail(std::size_t line_no, const std::string& msg) {
  throw Error("bench parse error at line " + std::to_string(line_no) + ": " +
              msg);
}

// Extracts the argument list between the first '(' and the last ')'.
std::vector<std::string> SplitArgs(std::string_view inside, std::size_t line_no) {
  std::vector<std::string> args;
  std::size_t start = 0;
  while (start <= inside.size()) {
    std::size_t comma = inside.find(',', start);
    std::string_view piece = comma == std::string_view::npos
                                 ? inside.substr(start)
                                 : inside.substr(start, comma - start);
    piece = Trim(piece);
    if (piece.empty()) {
      if (comma == std::string_view::npos && args.empty()) break;
      ParseFail(line_no, "empty signal name in argument list");
    }
    args.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return args;
}

}  // namespace

BenchCircuit ParseBench(std::string_view text, const BenchParseOptions& options) {
  std::vector<std::string> primary_inputs;
  std::vector<std::string> primary_outputs;
  std::vector<GateDef> gates;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      std::size_t lp = line.find('(');
      std::size_t rp = line.rfind(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos ||
          rp < lp)
        ParseFail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment");
      std::string kw(Trim(line.substr(0, lp)));
      std::transform(kw.begin(), kw.end(), kw.begin(),
                     [](unsigned char c) { return std::toupper(c); });
      std::string sig(Trim(line.substr(lp + 1, rp - lp - 1)));
      if (sig.empty()) ParseFail(line_no, "empty signal name");
      if (kw == "INPUT")
        primary_inputs.push_back(sig);
      else if (kw == "OUTPUT")
        primary_outputs.push_back(sig);
      else
        ParseFail(line_no, "unknown directive '" + kw + "'");
      continue;
    }

    GateDef g;
    g.output = std::string(Trim(line.substr(0, eq)));
    if (g.output.empty()) ParseFail(line_no, "empty gate output name");
    std::string_view rhs = Trim(line.substr(eq + 1));
    std::size_t lp = rhs.find('(');
    std::size_t rp = rhs.rfind(')');
    if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
      ParseFail(line_no, "expected GATE(args)");
    g.type = std::string(Trim(rhs.substr(0, lp)));
    std::transform(g.type.begin(), g.type.end(), g.type.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (g.type.empty()) ParseFail(line_no, "missing gate type");
    g.inputs = SplitArgs(rhs.substr(lp + 1, rp - lp - 1), line_no);
    if (g.inputs.empty()) ParseFail(line_no, "gate with no inputs");
    gates.push_back(std::move(g));
  }

  // Signal table: driver (gate index, PI marker) per signal.
  constexpr std::size_t kDriverPi = static_cast<std::size_t>(-2);
  std::unordered_map<std::string, std::size_t> driver;  // signal -> gate idx
  for (const std::string& pi : primary_inputs) {
    if (!driver.emplace(pi, kDriverPi).second)
      throw Error("bench: duplicate INPUT '" + pi + "'");
  }
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!driver.emplace(gates[i].output, i).second)
      throw Error("bench: signal '" + gates[i].output + "' defined twice");
  }
  for (const GateDef& g : gates)
    for (const std::string& in : g.inputs)
      if (!driver.count(in))
        throw Error("bench: undefined signal '" + in + "' used by gate '" +
                    g.output + "'");
  for (const std::string& po : primary_outputs)
    if (!driver.count(po))
      throw Error("bench: undefined OUTPUT signal '" + po + "'");

  // Build the hypergraph: one node per gate (and per pad when requested);
  // one net per signal = {driver} U {sinks}.
  BenchCircuit out;
  out.num_gates = gates.size();
  out.num_primary_inputs = primary_inputs.size();
  out.num_primary_outputs = primary_outputs.size();

  HypergraphBuilder builder;
  std::vector<NodeId> gate_node(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i)
    gate_node[i] = builder.add_node(1.0, gates[i].output);
  std::unordered_map<std::string, NodeId> pad_node;
  if (options.include_pads) {
    for (const std::string& pi : primary_inputs)
      pad_node.emplace(pi, builder.add_node(1.0, "pad:" + pi));
  }

  // Sinks per signal.
  std::unordered_map<std::string, std::vector<NodeId>> net_pins;
  for (std::size_t i = 0; i < gates.size(); ++i)
    for (const std::string& in : gates[i].inputs)
      net_pins[in].push_back(gate_node[i]);

  for (auto& [signal, sinks] : net_pins) {
    std::size_t drv = driver.at(signal);
    if (drv == kDriverPi) {
      if (options.include_pads) sinks.push_back(pad_node.at(signal));
    } else {
      sinks.push_back(gate_node[drv]);
    }
    builder.add_net(sinks, 1.0, signal);  // < 2 distinct pins auto-dropped
  }
  out.hg = builder.build();
  return out;
}

BenchCircuit ParseBenchFile(const std::string& path,
                            const BenchParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseBench(ss.str(), options);
}

std::string_view C17BenchText() {
  return R"(# c17 — smallest ISCAS85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

}  // namespace htp
