// ISCAS85/ISCAS89 `.bench` netlist parser.
//
// The MCNC/ISCAS85 benchmark circuits the paper evaluates (c1355..c7552)
// are distributed in this textual format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G11 = DFF(G10)           # ISCAS89 sequential cells also accepted
//
// Conversion to a partitioning hypergraph follows the usual convention of
// the netlist-partitioning literature: each *gate* becomes a node of size 1;
// each signal with at least two connected gates becomes a net whose pins are
// the driver gate and all fan-out gates. Primary inputs/outputs become pad
// nodes only when `options.include_pads` is set; otherwise a PI signal with
// fan-out >= 2 still yields a net over its sink gates.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Conversion options for .bench parsing.
struct BenchParseOptions {
  /// Model primary inputs and outputs as zero-fanin pad nodes (size 1).
  bool include_pads = false;
};

/// Parse result: the hypergraph plus raw element counts.
struct BenchCircuit {
  Hypergraph hg;
  std::size_t num_gates = 0;
  std::size_t num_primary_inputs = 0;
  std::size_t num_primary_outputs = 0;
};

/// Parses .bench text. Throws htp::Error with a line number on bad syntax,
/// undefined signals, or duplicate definitions.
BenchCircuit ParseBench(std::string_view text,
                        const BenchParseOptions& options = {});

/// Parses a .bench file from disk. Throws htp::Error when unreadable.
BenchCircuit ParseBenchFile(const std::string& path,
                            const BenchParseOptions& options = {});

/// The 6-gate ISCAS85 "c17" circuit, embedded for tests and examples.
std::string_view C17BenchText();

}  // namespace htp
