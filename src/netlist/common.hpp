// Common identifiers and checking utilities shared by every htp module.
//
// The library follows an index-based (CSR) style common in EDA tools: nodes
// and nets are dense 32-bit indices into flat arrays, never pointers. All
// invariant violations raise htp::Error so tests can assert on them and so a
// Release build never silently corrupts a partition.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace htp {

/// Dense index of a node (cell/gate) in a Hypergraph.
using NodeId = std::uint32_t;
/// Dense index of a net (hyperedge) in a Hypergraph.
using NetId = std::uint32_t;
/// Dense index of a block (tree vertex) in a TreePartition.
using BlockId = std::uint32_t;
/// Hierarchy level; leaves live at level 0.
using Level = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// Exception thrown on any violated precondition or invariant.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void RaiseCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::string full = std::string("HTP_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

/// Always-on invariant check (active in Release); throws htp::Error.
#define HTP_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::htp::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Always-on invariant check with an explanatory message.
#define HTP_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::htp::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

}  // namespace htp
