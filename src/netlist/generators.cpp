#include "netlist/generators.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/rng.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {
namespace {

// ---------------------------------------------------------------------------
// Rent-style generator
// ---------------------------------------------------------------------------

// The implicit placement hierarchy over gate indices [0, n): a balanced
// binary recursion; the region of gate g at depth d above the leaves is the
// aligned index range containing g. Regions are contiguous, so "earlier
// gates in region R" is a prefix query.
struct RegionTree {
  std::size_t num_gates;
  std::size_t leaf_gates;
  int depth;  // leaf regions at depth `depth`; root at depth 0

  RegionTree(std::size_t n, std::size_t leaf) : num_gates(n), leaf_gates(leaf) {
    depth = 0;
    std::size_t span = n;
    while (span > leaf) {
      span = (span + 1) / 2;
      ++depth;
    }
  }

  // [lo, hi) of the region containing `g` at `levels_up` above the leaf.
  std::pair<std::size_t, std::size_t> Region(std::size_t g,
                                             int levels_up) const {
    const int d = std::max(0, depth - levels_up);
    // Split [0, n) recursively d times, following g.
    std::size_t lo = 0, hi = num_gates;
    for (int i = 0; i < d; ++i) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (g < mid)
        hi = mid;
      else
        lo = mid;
    }
    return {lo, hi};
  }
};

}  // namespace

Hypergraph RentCircuit(const RentCircuitParams& params) {
  HTP_CHECK_MSG(params.num_gates >= 2, "need at least 2 gates");
  HTP_CHECK_MSG(params.num_primary_inputs >= 1, "need at least 1 input");
  HTP_CHECK(params.escape_probability >= 0.0 &&
            params.escape_probability <= 1.0);
  Rng rng(params.seed);

  const std::size_t n = params.num_gates;
  const std::size_t npi = params.num_primary_inputs;
  RegionTree regions(n, std::max<std::size_t>(2, params.leaf_region_gates));

  // Home leaf region index of each primary input: spread uniformly over the
  // gate index space so early regions also have sources.
  std::vector<std::size_t> pi_home(npi);
  for (std::size_t i = 0; i < npi; ++i)
    pi_home[i] = static_cast<std::size_t>(rng.next_below(n));
  // pi ids sorted by home position for range queries.
  std::vector<std::size_t> pi_order(npi);
  for (std::size_t i = 0; i < npi; ++i) pi_order[i] = i;
  std::sort(pi_order.begin(), pi_order.end(),
            [&](std::size_t a, std::size_t b) { return pi_home[a] < pi_home[b]; });
  std::vector<std::size_t> pi_home_sorted(npi);
  for (std::size_t i = 0; i < npi; ++i) pi_home_sorted[i] = pi_home[pi_order[i]];

  // Signal numbering: 0..npi-1 are primary inputs, npi+g is gate g's output.
  std::vector<std::vector<NodeId>> sinks(npi + n);

  auto pis_in = [&](std::size_t lo, std::size_t hi) {
    auto first = std::lower_bound(pi_home_sorted.begin(), pi_home_sorted.end(), lo);
    auto last = std::lower_bound(pi_home_sorted.begin(), pi_home_sorted.end(), hi);
    return std::pair<std::size_t, std::size_t>(
        static_cast<std::size_t>(first - pi_home_sorted.begin()),
        static_cast<std::size_t>(last - pi_home_sorted.begin()));
  };

  for (std::size_t g = 0; g < n; ++g) {
    // Fan-in: 2 plus a geometric tail.
    std::size_t fanin = 2;
    while (fanin < 5 && rng.next_bool(params.fanin_tail)) ++fanin;

    std::vector<std::size_t> chosen;  // signal ids, distinct
    for (std::size_t k = 0; k < fanin; ++k) {
      // Walk up from the leaf region with the escape probability; also keep
      // escalating while the region offers no source at all.
      int levels_up = 0;
      while (levels_up < regions.depth &&
             rng.next_bool(params.escape_probability))
        ++levels_up;
      std::size_t signal = static_cast<std::size_t>(-1);
      for (; levels_up <= regions.depth; ++levels_up) {
        auto [lo, hi] = regions.Region(g, levels_up);
        const std::size_t gates_avail = g > lo ? g - lo : 0;  // earlier gates
        auto [pi_lo, pi_hi] = pis_in(lo, hi);
        const std::size_t pis_avail = pi_hi - pi_lo;
        const std::size_t total = gates_avail + pis_avail;
        if (total == 0) continue;  // escalate further
        const std::size_t pick = static_cast<std::size_t>(rng.next_below(total));
        signal = pick < gates_avail
                     ? npi + lo + pick
                     : pi_order[pi_lo + (pick - gates_avail)];
        break;
      }
      if (signal == static_cast<std::size_t>(-1))
        signal = static_cast<std::size_t>(rng.next_below(npi));  // g == 0 case
      if (std::find(chosen.begin(), chosen.end(), signal) == chosen.end())
        chosen.push_back(signal);
    }
    for (std::size_t s : chosen) sinks[s].push_back(static_cast<NodeId>(g));
  }

  HypergraphBuilder builder;
  for (std::size_t g = 0; g < n; ++g)
    builder.add_node(1.0, "g" + std::to_string(g));
  // Nets: PI signals connect only their sinks; gate signals connect the
  // driver and its sinks. Nets with < 2 distinct pins are dropped by the
  // builder, mirroring the .bench conversion.
  for (std::size_t s = 0; s < npi; ++s)
    builder.add_net(sinks[s], 1.0, "pi" + std::to_string(s));
  for (std::size_t g = 0; g < n; ++g) {
    std::vector<NodeId> pins = sinks[npi + g];
    pins.push_back(static_cast<NodeId>(g));
    builder.add_net(pins, 1.0, "n" + std::to_string(g));
  }
  Hypergraph hg = builder.build();

  // Dropped single-pin nets (e.g. a PI feeding one gate whose output is
  // unused) can isolate gates; stitch the components together with local
  // 2-pin nets so the netlist is one connected circuit, as a real design is.
  const Components comps = ConnectedComponents(hg);
  if (comps.count <= 1) return hg;
  HypergraphBuilder stitched;
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    stitched.add_node(hg.node_size(v), hg.node_name(v));
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const auto pins = hg.pins(e);
    stitched.add_net(std::vector<NodeId>(pins.begin(), pins.end()),
                     hg.net_capacity(e), hg.net_name(e));
  }
  std::vector<NodeId> representative(comps.count, kInvalidNode);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (representative[comps.component_of[v]] == kInvalidNode)
      representative[comps.component_of[v]] = v;
  // Link each component's lowest-index node to its index predecessor, which
  // necessarily belongs to a component with a lower representative; by
  // induction every component reaches node 0's. Adjacent indices share a
  // leaf region, so stitches stay local.
  for (NodeId c = 0; c < comps.count; ++c) {
    const NodeId v = representative[c];
    if (v == 0) continue;
    stitched.add_net({v - 1, v}, 1.0, "stitch" + std::to_string(c));
  }
  return stitched.build();
}

// ---------------------------------------------------------------------------
// Array multiplier (c6288-like)
// ---------------------------------------------------------------------------

namespace {

// Builds NOR-cell netlists. Signals are integer ids; id -1 means "none".
class MultBuilder {
 public:
  using Sig = int;

  Sig new_input(const std::string& name) {
    sig_driver_.push_back(-1);
    sig_name_.push_back(name);
    return static_cast<Sig>(sig_driver_.size() - 1);
  }

  // 2-input NOR gate; returns its output signal.
  Sig nor2(Sig a, Sig b) {
    const NodeId gate = next_gate_++;
    gate_inputs_.push_back({a, b});
    sig_driver_.push_back(static_cast<int>(gate));
    sig_name_.push_back("w" + std::to_string(sig_driver_.size()));
    return static_cast<Sig>(sig_driver_.size() - 1);
  }

  // Full adder as 9 NOR gates (c6288-style cell, connectivity-accurate).
  std::pair<Sig, Sig> full_adder(Sig a, Sig b, Sig cin) {
    const Sig n1 = nor2(a, b);
    const Sig n2 = nor2(a, n1);
    const Sig n3 = nor2(b, n1);
    const Sig n4 = nor2(n2, n3);
    const Sig n5 = nor2(n4, cin);
    const Sig n6 = nor2(n4, n5);
    const Sig n7 = nor2(cin, n5);
    const Sig sum = nor2(n6, n7);
    const Sig carry = nor2(n1, n5);
    return {sum, carry};
  }

  // Half adder as 4 NOR gates.
  std::pair<Sig, Sig> half_adder(Sig a, Sig b) {
    const Sig n1 = nor2(a, b);
    const Sig n2 = nor2(a, n1);
    const Sig n3 = nor2(b, n1);
    const Sig sum = nor2(n2, n3);
    return {sum, n1};  // n1 reused as the (inverted) carry rail
  }

  // AND as a single 2-input gate (partial-product cell).
  Sig and2(Sig a, Sig b) { return nor2(a, b); }

  Hypergraph build() {
    HypergraphBuilder builder;
    for (NodeId g = 0; g < next_gate_; ++g)
      builder.add_node(1.0, "m" + std::to_string(g));
    // Nets: one per signal = driver gate (if any) + sink gates.
    std::vector<std::vector<NodeId>> pins(sig_driver_.size());
    for (NodeId g = 0; g < next_gate_; ++g)
      for (Sig in : gate_inputs_[g])
        pins[static_cast<std::size_t>(in)].push_back(g);
    for (std::size_t s = 0; s < sig_driver_.size(); ++s) {
      if (sig_driver_[s] >= 0)
        pins[s].push_back(static_cast<NodeId>(sig_driver_[s]));
      builder.add_net(pins[s], 1.0, sig_name_[s]);
    }
    return builder.build();
  }

  NodeId num_gates() const { return next_gate_; }

 private:
  NodeId next_gate_ = 0;
  std::vector<std::array<Sig, 2>> gate_inputs_;
  std::vector<int> sig_driver_;  // -1 for primary inputs
  std::vector<std::string> sig_name_;
};

}  // namespace

Hypergraph ArrayMultiplier(std::size_t bits) {
  HTP_CHECK_MSG(bits >= 2, "multiplier needs >= 2 bits");
  const std::size_t B = bits;
  MultBuilder mb;
  std::vector<MultBuilder::Sig> a(B), b(B);
  for (std::size_t i = 0; i < B; ++i) a[i] = mb.new_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < B; ++i) b[i] = mb.new_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[j] AND b[i].
  std::vector<std::vector<MultBuilder::Sig>> pp(B, std::vector<MultBuilder::Sig>(B));
  for (std::size_t i = 0; i < B; ++i)
    for (std::size_t j = 0; j < B; ++j) pp[i][j] = mb.and2(a[j], b[i]);

  // Carry-save array: row 0 passes pp[0][*] down; each later row i adds
  // pp[i][*] to the incoming sums with the carries of row i-1.
  std::vector<MultBuilder::Sig> sum(B), carry(B, -1);
  for (std::size_t j = 0; j < B; ++j) sum[j] = pp[0][j];
  for (std::size_t i = 1; i < B; ++i) {
    std::vector<MultBuilder::Sig> nsum(B), ncarry(B);
    for (std::size_t j = 0; j < B; ++j) {
      const MultBuilder::Sig shifted_sum = (j + 1 < B) ? sum[j + 1] : pp[i][j];
      const MultBuilder::Sig addend = (j + 1 < B) ? pp[i][j] : -1;
      if (carry[j] < 0) {
        auto [s, c] = mb.half_adder(shifted_sum, addend < 0 ? sum[j] : addend);
        nsum[j] = s;
        ncarry[j] = c;
      } else if (addend < 0) {
        auto [s, c] = mb.half_adder(shifted_sum, carry[j]);
        nsum[j] = s;
        ncarry[j] = c;
      } else {
        auto [s, c] = mb.full_adder(shifted_sum, addend, carry[j]);
        nsum[j] = s;
        ncarry[j] = c;
      }
    }
    sum = std::move(nsum);
    carry = std::move(ncarry);
  }
  // Final carry-propagate (ripple) row.
  MultBuilder::Sig ripple = -1;
  for (std::size_t j = 1; j < B; ++j) {
    if (ripple < 0) {
      auto [s, c] = mb.half_adder(sum[j], carry[j - 1]);
      (void)s;
      ripple = c;
    } else {
      auto [s, c] = mb.full_adder(sum[j], carry[j - 1], ripple);
      (void)s;
      ripple = c;
    }
  }
  return mb.build();
}

// ---------------------------------------------------------------------------
// Calibrated suite
// ---------------------------------------------------------------------------

const std::vector<SuiteEntry>& Iscas85Suite() {
  // Published ISCAS85 gate and primary-input counts.
  static const std::vector<SuiteEntry> kSuite = {
      {"c1355", 546, 41},  {"c2670", 1193, 233}, {"c3540", 1669, 50},
      {"c6288", 2416, 32}, {"c7552", 3512, 207},
  };
  return kSuite;
}

Hypergraph MakeIscas85Like(const std::string& name, std::uint64_t seed) {
  if (name == "c6288") return ArrayMultiplier(16);
  for (const SuiteEntry& entry : Iscas85Suite()) {
    if (entry.name != name) continue;
    RentCircuitParams params;
    params.num_gates = entry.target_gates;
    params.num_primary_inputs = entry.target_inputs;
    params.seed = seed ^ std::hash<std::string>{}(name);
    return RentCircuit(params);
  }
  throw Error("unknown ISCAS85-like circuit: " + name);
}

}  // namespace htp
