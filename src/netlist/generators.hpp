// Synthetic circuit generators.
//
// The paper evaluates on five MCNC/ISCAS85 circuits (c1355, c2670, c3540,
// c6288, c7552) that are not shipped with this repository. Two generators
// stand in for them (see DESIGN.md, substitution record):
//
//  * RentCircuit — a levelized random combinational circuit with an explicit
//    placement hierarchy and per-level escape probability. Nets are mostly
//    local to a region and escape upward with geometric probability, which
//    reproduces the Rent-rule locality real circuits exhibit and that
//    spreading-metric/flow methods exploit.
//  * ArrayMultiplier — a structural B x B carry-save array multiplier built
//    from NOR-decomposed half/full-adder cells, reproducing the regular 2-D
//    grid connectivity of c6288 (the one circuit on which the paper reports
//    FLOW losing to the FM baselines).
//
// Both are deterministic given their seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Parameters of the Rent-style random circuit generator.
struct RentCircuitParams {
  std::size_t num_gates = 1000;
  std::size_t num_primary_inputs = 50;
  /// Probability that an input connection escapes one more level of the
  /// placement hierarchy (smaller = more local nets, stronger clustering).
  double escape_probability = 0.25;
  /// Average gate fan-in is drawn from {2,3,4,5} with geometrically
  /// decreasing weights controlled by this tail probability.
  double fanin_tail = 0.15;
  /// Gates per leaf region of the implicit placement hierarchy.
  std::size_t leaf_region_gates = 16;
  std::uint64_t seed = 1;
};

/// Generates a Rent-style random combinational circuit. Gates are nodes of
/// size 1; nets connect each driving signal (gate output or primary input)
/// to its fan-out gates; signals with fewer than two connected gates are
/// dropped, as in the .bench conversion.
Hypergraph RentCircuit(const RentCircuitParams& params);

/// Generates a B x B carry-save array multiplier from NOR-decomposed adder
/// cells (connectivity-accurate stand-in for c6288's structure; the cell
/// internals are not logic-verified). `bits` must be >= 2.
Hypergraph ArrayMultiplier(std::size_t bits);

/// Metadata of one circuit in the calibrated ISCAS85-like suite.
struct SuiteEntry {
  std::string name;           // e.g. "c2670"
  std::size_t target_gates;   // published ISCAS85 gate count
  std::size_t target_inputs;  // published primary-input count
};

/// The five-circuit suite of the paper's Tables 1-3, in paper order.
const std::vector<SuiteEntry>& Iscas85Suite();

/// Builds the ISCAS85-like stand-in for `name` ("c1355".."c7552").
/// c6288 maps to ArrayMultiplier(16); the others to RentCircuit with the
/// published gate/input counts. Throws htp::Error for unknown names.
Hypergraph MakeIscas85Like(const std::string& name, std::uint64_t seed = 1997);

}  // namespace htp
