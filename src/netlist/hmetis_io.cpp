#include "netlist/hmetis_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace htp {
namespace {

[[noreturn]] void Fail(std::size_t line_no, const std::string& msg) {
  throw Error("hgr parse error at line " + std::to_string(line_no) + ": " +
              msg);
}

// Reads the next non-comment, non-empty line; returns false at EOF.
bool NextLine(std::istream& in, std::string& line, std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%') continue;
    return true;
  }
  return false;
}

void EmitWeight(std::ostringstream& os, double w) {
  if (w == std::floor(w) && std::abs(w) < 1e15)
    os << static_cast<long long>(w);
  else
    os << w;
}

}  // namespace

Hypergraph ParseHmetis(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;

  if (!NextLine(in, line, line_no)) Fail(line_no, "empty input");
  std::istringstream header(line);
  long long num_nets = 0, num_nodes = 0;
  int fmt = 0;
  if (!(header >> num_nets >> num_nodes)) Fail(line_no, "bad header");
  header >> fmt;  // optional
  if (num_nets < 0 || num_nodes < 0) Fail(line_no, "negative counts");
  // Sanity-cap the header before it drives any allocation: every declared
  // net costs at least one input character (its line), and every node at
  // least one character somewhere (a pin reference or a weight line), so a
  // count beyond the input length is a malformed — possibly hostile —
  // header, not a big circuit.
  if (static_cast<unsigned long long>(num_nets) > text.size() ||
      static_cast<unsigned long long>(num_nodes) > text.size())
    Fail(line_no, "header counts exceed input size");
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11)
    Fail(line_no, "unsupported fmt " + std::to_string(fmt));
  const bool net_weights = fmt == 1 || fmt == 11;
  const bool node_weights = fmt == 10 || fmt == 11;

  struct NetLine {
    double capacity;
    std::vector<NodeId> pins;
  };
  std::vector<NetLine> nets;
  nets.reserve(static_cast<std::size_t>(num_nets));
  for (long long e = 0; e < num_nets; ++e) {
    if (!NextLine(in, line, line_no)) Fail(line_no, "missing net line");
    std::istringstream ls(line);
    NetLine net;
    net.capacity = 1.0;
    if (net_weights && !(ls >> net.capacity))
      Fail(line_no, "missing net weight");
    long long pin = 0;
    while (ls >> pin) {
      if (pin < 1 || pin > num_nodes)
        Fail(line_no, "pin " + std::to_string(pin) + " out of range");
      net.pins.push_back(static_cast<NodeId>(pin - 1));
    }
    if (!ls.eof()) Fail(line_no, "trailing junk on net line");
    if (net.capacity <= 0.0) Fail(line_no, "net weight must be positive");
    if (net.pins.empty()) Fail(line_no, "net with no pins");
    nets.push_back(std::move(net));
  }

  std::vector<double> sizes(static_cast<std::size_t>(num_nodes), 1.0);
  if (node_weights) {
    for (long long v = 0; v < num_nodes; ++v) {
      if (!NextLine(in, line, line_no)) Fail(line_no, "missing node weight");
      std::istringstream ls(line);
      if (!(ls >> sizes[static_cast<std::size_t>(v)]))
        Fail(line_no, "bad node weight");
      if (sizes[static_cast<std::size_t>(v)] <= 0.0)
        Fail(line_no, "node weight must be positive");
    }
  }
  if (NextLine(in, line, line_no)) Fail(line_no, "trailing content");

  HypergraphBuilder builder;
  for (double s : sizes) builder.add_node(s);
  for (const NetLine& net : nets) builder.add_net(net.pins, net.capacity);
  return builder.build();
}

Hypergraph ParseHmetisFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open hgr file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseHmetis(ss.str());
}

std::string WriteHmetis(const Hypergraph& hg) {
  bool net_weights = false;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    net_weights |= hg.net_capacity(e) != 1.0;
  const bool node_weights = !hg.unit_sizes();

  std::ostringstream os;
  os << "% written by htp\n";
  os << hg.num_nets() << " " << hg.num_nodes();
  if (net_weights && node_weights)
    os << " 11";
  else if (node_weights)
    os << " 10";
  else if (net_weights)
    os << " 1";
  os << "\n";
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    if (net_weights) {
      EmitWeight(os, hg.net_capacity(e));
      os << " ";
    }
    bool first = true;
    for (NodeId v : hg.pins(e)) {
      if (!first) os << " ";
      os << (v + 1);
      first = false;
    }
    os << "\n";
  }
  if (node_weights) {
    for (NodeId v = 0; v < hg.num_nodes(); ++v) {
      EmitWeight(os, hg.node_size(v));
      os << "\n";
    }
  }
  return os.str();
}

void WriteHmetisFile(const Hypergraph& hg, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << WriteHmetis(hg);
  if (!out) throw Error("failed writing: " + path);
}

}  // namespace htp
