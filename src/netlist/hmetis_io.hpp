// hMETIS `.hgr` hypergraph format reader/writer.
//
// The de-facto exchange format of the partitioning literature (hMETIS,
// KaHyPar, MtKaHyPar all consume it), so netlists can move between this
// library and standard tools:
//
//   % comment
//   <num_nets> <num_nodes> [fmt]
//   [<capacity>] <pin> <pin> ...        one line per net, pins are 1-based
//   [<node size>]                       one line per node when fmt has 10
//
// fmt: 0/omitted = unweighted, 1 = net weights, 10 = node weights,
// 11 = both. Weights are written as integers when integral (the common
// convention), otherwise as decimals.
#pragma once

#include <string>
#include <string_view>

#include "netlist/hypergraph.hpp"

namespace htp {

/// Parses .hgr text. Throws htp::Error with a line number on bad input
/// (pin out of range, wrong line counts, nets with < 2 distinct pins are
/// dropped like everywhere else in the library).
Hypergraph ParseHmetis(std::string_view text);

/// Reads a .hgr file from disk.
Hypergraph ParseHmetisFile(const std::string& path);

/// Serializes `hg` to .hgr text, emitting the smallest fmt that preserves
/// its weights.
std::string WriteHmetis(const Hypergraph& hg);

/// Writes a .hgr file to disk.
void WriteHmetisFile(const Hypergraph& hg, const std::string& path);

}  // namespace htp
