#include "netlist/hypergraph.hpp"

#include <algorithm>
#include <numeric>

namespace htp {

NodeId HypergraphBuilder::add_node(double size, std::string name) {
  HTP_CHECK_MSG(size > 0.0, "node size must be positive");
  node_size_.push_back(size);
  if (!name.empty()) any_name_ = true;
  node_name_.push_back(std::move(name));
  return static_cast<NodeId>(node_size_.size() - 1);
}

void HypergraphBuilder::add_net(std::span<const NodeId> pin_nodes,
                                double capacity, std::string name) {
  HTP_CHECK_MSG(capacity > 0.0, "net capacity must be positive");
  // Merge duplicate pins while preserving first-seen order.
  std::vector<NodeId> pins(pin_nodes.begin(), pin_nodes.end());
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  for (NodeId v : pins)
    HTP_CHECK_MSG(v < node_size_.size(), "net references unknown node");
  if (pins.size() < 2) {
    ++dropped_nets_;
    return;
  }
  net_pins_.insert(net_pins_.end(), pins.begin(), pins.end());
  net_offset_.push_back(net_pins_.size());
  net_capacity_.push_back(capacity);
  if (!name.empty()) any_name_ = true;
  net_name_.push_back(std::move(name));
}

Hypergraph HypergraphBuilder::build() {
  Hypergraph hg;
  hg.node_size_ = std::move(node_size_);
  hg.net_capacity_ = std::move(net_capacity_);
  hg.net_offset_ = std::move(net_offset_);
  hg.net_pins_ = std::move(net_pins_);
  if (any_name_) {
    hg.node_name_ = std::move(node_name_);
    hg.net_name_ = std::move(net_name_);
  }
  hg.total_size_ =
      std::accumulate(hg.node_size_.begin(), hg.node_size_.end(), 0.0);
  hg.unit_sizes_ = std::all_of(hg.node_size_.begin(), hg.node_size_.end(),
                               [](double s) { return s == 1.0; });

  // Build the node -> nets CSR by counting then filling.
  const NodeId n = hg.num_nodes();
  hg.node_offset_.assign(n + 1, 0);
  for (NodeId v : hg.net_pins_) ++hg.node_offset_[v + 1];
  for (NodeId v = 0; v < n; ++v) hg.node_offset_[v + 1] += hg.node_offset_[v];
  hg.node_nets_.resize(hg.net_pins_.size());
  std::vector<std::size_t> cursor(hg.node_offset_.begin(),
                                  hg.node_offset_.end() - 1);
  for (NetId e = 0; e < hg.num_nets(); ++e)
    for (NodeId v : hg.pins(e)) hg.node_nets_[cursor[v]++] = e;

  *this = HypergraphBuilder();
  return hg;
}

HypergraphStats ComputeStats(const Hypergraph& hg) {
  HypergraphStats st;
  st.nodes = hg.num_nodes();
  st.nets = hg.num_nets();
  st.pins = hg.num_pins();
  st.total_size = hg.total_size();
  for (NetId e = 0; e < hg.num_nets(); ++e)
    st.max_net_degree = std::max(st.max_net_degree, hg.net_degree(e));
  st.avg_net_degree =
      st.nets == 0 ? 0.0
                   : static_cast<double>(st.pins) / static_cast<double>(st.nets);
  return st;
}

}  // namespace htp
