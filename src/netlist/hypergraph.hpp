// Hypergraph: the netlist representation used by every algorithm in htp.
//
// A hypergraph H = (V, E) models a circuit netlist: nodes are cells/gates
// with a size s(v) > 0, nets are hyperedges with |e| >= 2 distinct pins and a
// capacity c(e) > 0 (Section 2.1 of the paper). Storage is CSR in both
// directions (net -> pins and node -> incident nets), immutable after build.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "netlist/common.hpp"

namespace htp {

/// Immutable hypergraph / netlist. Construct via HypergraphBuilder.
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Number of nodes n = |V|.
  NodeId num_nodes() const { return static_cast<NodeId>(node_size_.size()); }
  /// Number of nets m = |E|.
  NetId num_nets() const { return static_cast<NetId>(net_capacity_.size()); }
  /// Total number of pins p = sum over nets of |e|.
  std::size_t num_pins() const { return net_pins_.size(); }

  /// Pins (distinct node ids) of net `e`.
  std::span<const NodeId> pins(NetId e) const {
    HTP_CHECK(e < num_nets());
    return {net_pins_.data() + net_offset_[e],
            net_offset_[e + 1] - net_offset_[e]};
  }
  /// Nets incident to node `v`.
  std::span<const NetId> nets(NodeId v) const {
    HTP_CHECK(v < num_nodes());
    return {node_nets_.data() + node_offset_[v],
            node_offset_[v + 1] - node_offset_[v]};
  }

  /// Node size s(v) > 0.
  double node_size(NodeId v) const {
    HTP_CHECK(v < num_nodes());
    return node_size_[v];
  }
  /// Net capacity c(e) > 0.
  double net_capacity(NetId e) const {
    HTP_CHECK(e < num_nets());
    return net_capacity_[e];
  }
  /// s(V): total size of all nodes.
  double total_size() const { return total_size_; }
  /// Degree |e| of a net.
  std::size_t net_degree(NetId e) const { return pins(e).size(); }
  /// Number of nets incident to a node.
  std::size_t node_degree(NodeId v) const { return nets(v).size(); }

  /// Optional node name ("" when unnamed).
  const std::string& node_name(NodeId v) const {
    static const std::string kEmpty;
    return node_name_.empty() ? kEmpty : node_name_[v];
  }
  /// Optional net name ("" when unnamed).
  const std::string& net_name(NetId e) const {
    static const std::string kEmpty;
    return net_name_.empty() ? kEmpty : net_name_[e];
  }

  /// True when every node size is exactly 1 (the ISCAS85 experiments).
  bool unit_sizes() const { return unit_sizes_; }

 private:
  friend class HypergraphBuilder;

  std::vector<double> node_size_;
  std::vector<double> net_capacity_;
  std::vector<std::size_t> net_offset_;   // size m+1
  std::vector<NodeId> net_pins_;          // size p
  std::vector<std::size_t> node_offset_;  // size n+1
  std::vector<NetId> node_nets_;          // size p
  std::vector<std::string> node_name_;    // empty or size n
  std::vector<std::string> net_name_;     // empty or size m
  double total_size_ = 0.0;
  bool unit_sizes_ = true;
};

/// Incremental builder for Hypergraph.
///
/// Duplicate pins within one net are merged; nets that end up with fewer than
/// two distinct pins are dropped (their count is reported). Node sizes and
/// net capacities must be positive.
class HypergraphBuilder {
 public:
  /// Adds a node and returns its id. `size` must be > 0.
  NodeId add_node(double size = 1.0, std::string name = {});
  /// Adds a net over `pin_nodes`. Capacity must be > 0. Returns the id the
  /// net will have *if kept*; nets with < 2 distinct pins are dropped at
  /// build() and later ids shift down accordingly, so callers that need
  /// stable ids should pass only valid nets.
  void add_net(std::span<const NodeId> pin_nodes, double capacity = 1.0,
               std::string name = {});
  void add_net(std::initializer_list<NodeId> pin_nodes, double capacity = 1.0,
               std::string name = {}) {
    add_net(std::span<const NodeId>(pin_nodes.begin(), pin_nodes.size()),
            capacity, std::move(name));
  }

  NodeId num_nodes() const { return static_cast<NodeId>(node_size_.size()); }

  /// Number of nets dropped so far for having < 2 distinct pins.
  std::size_t dropped_nets() const { return dropped_nets_; }

  /// Finalizes into an immutable Hypergraph. The builder is left empty.
  Hypergraph build();

 private:
  std::vector<double> node_size_;
  std::vector<std::string> node_name_;
  std::vector<double> net_capacity_;
  std::vector<std::string> net_name_;
  std::vector<std::size_t> net_offset_{0};
  std::vector<NodeId> net_pins_;
  std::size_t dropped_nets_ = 0;
  bool any_name_ = false;
};

/// Summary statistics of a netlist (the quantities of Table 1).
struct HypergraphStats {
  std::size_t nodes = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  double total_size = 0.0;
  std::size_t max_net_degree = 0;
  double avg_net_degree = 0.0;
};

/// Computes Table-1 style statistics for `hg`.
HypergraphStats ComputeStats(const Hypergraph& hg);

}  // namespace htp
