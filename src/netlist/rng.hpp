// Deterministic pseudo-random number generation.
//
// Every stochastic component in htp (flow injection start orders, find_cut
// seeds, circuit generators, FM tie-breaking) takes an explicit 64-bit seed
// and derives its stream from this Xoshiro256** generator, so runs are
// reproducible across platforms and standard-library versions (std::mt19937
// distributions are not portable across implementations).
#pragma once

#include <array>
#include <cstdint>

#include "netlist/common.hpp"

namespace htp {

/// SplitMix64: used to seed Xoshiro and to derive independent substreams.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** by Blackman & Vigna — fast, high-quality, portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    HTP_CHECK(bound > 0);
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent generator for a labelled substream.
  Rng fork(std::uint64_t label) {
    std::uint64_t sm = next_u64() ^ (label * 0xD1B54A32D192ED03ULL);
    return Rng(SplitMix64(sm));
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

}  // namespace htp
