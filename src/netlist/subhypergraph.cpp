#include "netlist/subhypergraph.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace htp {

SubHypergraph InducedSubHypergraph(const Hypergraph& parent,
                                   std::span<const NodeId> nodes) {
  SubHypergraph sub;
  std::vector<NodeId> parent_to_sub(parent.num_nodes(), kInvalidNode);
  HypergraphBuilder builder;
  for (NodeId pv : nodes) {
    HTP_CHECK(pv < parent.num_nodes());
    HTP_CHECK_MSG(parent_to_sub[pv] == kInvalidNode,
                  "duplicate node in induced set");
    parent_to_sub[pv] =
        builder.add_node(parent.node_size(pv), parent.node_name(pv));
    sub.node_to_parent.push_back(pv);
  }

  // Visit each candidate net once: a net is a candidate iff one of its pins
  // is in the set; dedupe by marking.
  std::vector<char> net_seen(parent.num_nets(), 0);
  std::vector<NodeId> restricted;
  for (NodeId pv : nodes) {
    for (NetId pe : parent.nets(pv)) {
      if (net_seen[pe]) continue;
      net_seen[pe] = 1;
      restricted.clear();
      for (NodeId pin : parent.pins(pe))
        if (parent_to_sub[pin] != kInvalidNode)
          restricted.push_back(parent_to_sub[pin]);
      if (restricted.size() < 2) continue;
      builder.add_net(restricted, parent.net_capacity(pe),
                      parent.net_name(pe));
      sub.net_to_parent.push_back(pe);
    }
  }
  sub.hg = builder.build();
  HTP_CHECK(sub.hg.num_nets() == sub.net_to_parent.size());
  return sub;
}

SubHypergraph ContractClusters(const Hypergraph& parent,
                               std::span<const BlockId> cluster_of,
                               BlockId num_clusters) {
  HTP_CHECK(cluster_of.size() == parent.num_nodes());
  SubHypergraph sub;
  HypergraphBuilder builder;
  std::vector<double> sizes(num_clusters, 0.0);
  for (NodeId v = 0; v < parent.num_nodes(); ++v) {
    HTP_CHECK_MSG(cluster_of[v] < num_clusters, "cluster id out of range");
    sizes[cluster_of[v]] += parent.node_size(v);
  }
  for (BlockId c = 0; c < num_clusters; ++c) {
    HTP_CHECK_MSG(sizes[c] > 0.0, "empty cluster in contraction");
    builder.add_node(sizes[c]);
    sub.node_to_parent.push_back(c);  // supernode id == cluster id
  }

  std::vector<NodeId> touched;
  for (NetId pe = 0; pe < parent.num_nets(); ++pe) {
    touched.clear();
    for (NodeId pin : parent.pins(pe))
      touched.push_back(cluster_of[pin]);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    if (touched.size() < 2) continue;
    builder.add_net(touched, parent.net_capacity(pe), parent.net_name(pe));
    sub.net_to_parent.push_back(pe);
  }
  sub.hg = builder.build();
  HTP_CHECK(sub.hg.num_nets() == sub.net_to_parent.size());
  return sub;
}

Hypergraph ContractClustersMerged(const Hypergraph& parent,
                                  std::span<const BlockId> cluster_of,
                                  BlockId num_clusters) {
  HTP_CHECK(cluster_of.size() == parent.num_nodes());
  HypergraphBuilder builder;
  std::vector<double> sizes(num_clusters, 0.0);
  for (NodeId v = 0; v < parent.num_nodes(); ++v) {
    HTP_CHECK_MSG(cluster_of[v] < num_clusters, "cluster id out of range");
    sizes[cluster_of[v]] += parent.node_size(v);
  }
  for (BlockId c = 0; c < num_clusters; ++c) {
    HTP_CHECK_MSG(sizes[c] > 0.0, "empty cluster in contraction");
    builder.add_node(sizes[c]);
  }

  // Dedupe by contracted pin set: the map only looks up, so the coarse net
  // order (and therefore the built hypergraph) is hash-independent.
  struct SpanHash {
    std::size_t operator()(const std::vector<NodeId>& pins) const {
      std::size_t h = pins.size();
      for (NodeId p : pins) h = h * 1000003u + p;
      return h;
    }
  };
  std::unordered_map<std::vector<NodeId>, std::size_t, SpanHash> seen;
  std::vector<std::vector<NodeId>> pin_sets;
  std::vector<double> capacities;
  std::vector<NodeId> touched;
  for (NetId pe = 0; pe < parent.num_nets(); ++pe) {
    touched.clear();
    for (NodeId pin : parent.pins(pe)) touched.push_back(cluster_of[pin]);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    if (touched.size() < 2) continue;
    auto [it, inserted] = seen.try_emplace(touched, pin_sets.size());
    if (inserted) {
      pin_sets.push_back(touched);
      capacities.push_back(parent.net_capacity(pe));
    } else {
      capacities[it->second] += parent.net_capacity(pe);
    }
  }
  for (std::size_t i = 0; i < pin_sets.size(); ++i)
    builder.add_net(pin_sets[i], capacities[i]);
  return builder.build();
}

Components ConnectedComponents(const Hypergraph& hg) {
  Components comps;
  comps.component_of.assign(hg.num_nodes(), kInvalidNode);
  std::vector<char> net_done(hg.num_nets(), 0);
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < hg.num_nodes(); ++start) {
    if (comps.component_of[start] != kInvalidNode) continue;
    const NodeId id = comps.count++;
    comps.component_of[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NetId e : hg.nets(v)) {
        if (net_done[e]) continue;
        net_done[e] = 1;
        for (NodeId u : hg.pins(e)) {
          if (comps.component_of[u] != kInvalidNode) continue;
          comps.component_of[u] = id;
          frontier.push(u);
        }
      }
    }
  }
  return comps;
}

}  // namespace htp
