// Induced sub-hypergraphs and cluster contraction.
//
// Algorithm 3 recurses on the subgraph H' = (V', E') cut off by find_cut;
// GFM contracts level-l blocks into supernodes before partitioning level
// l+1. Both operations keep a mapping back to the parent hypergraph so nets
// retain their identity for cost accounting.
#pragma once

#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"

namespace htp {

/// A hypergraph derived from a parent, with id mappings back to it.
struct SubHypergraph {
  Hypergraph hg;
  /// node id in `hg` -> node id in the parent.
  std::vector<NodeId> node_to_parent;
  /// net id in `hg` -> net id in the parent.
  std::vector<NetId> net_to_parent;
};

/// Extracts the sub-hypergraph induced by `nodes` (distinct parent node ids).
///
/// A parent net survives iff at least two of its pins lie in `nodes`; its
/// pins are restricted to `nodes`. Node sizes, capacities, and names carry
/// over. Order of `nodes` defines the new node numbering.
///
/// Degree-0 contract: every node in `nodes` is KEPT, even when restriction
/// (or a netlist delta that removed its last net — src/incremental/) leaves
/// it with no incident nets. A node's positive size still consumes block
/// capacity whether or not any net references it, so dropping it would
/// silently under-count s(V') and let carves overfill blocks. Callers that
/// want connectivity-pruned sets must filter before inducing. Regression:
/// tests/netlist/subhypergraph_test.cpp ("DegreeZeroNodesAreKept").
SubHypergraph InducedSubHypergraph(const Hypergraph& parent,
                                   std::span<const NodeId> nodes);

/// Contracts nodes into supernodes according to `cluster_of` (one cluster id
/// in [0, num_clusters) per parent node). Supernode sizes are the summed
/// member sizes. A parent net survives iff it touches >= 2 distinct clusters;
/// its pins become the touched clusters. Parallel nets are NOT merged, so
/// `net_to_parent` stays one-to-one.
SubHypergraph ContractClusters(const Hypergraph& parent,
                               std::span<const BlockId> cluster_of,
                               BlockId num_clusters);

/// Contraction for multilevel coarsening: like ContractClusters, but nets
/// whose contracted pin sets coincide are merged into one coarse net whose
/// capacity is the sum of the merged capacities. Equation-(1) costs are
/// additive in capacity, so a partition of the merged coarse hypergraph has
/// exactly the cost of the same partition of the unmerged one — merging
/// only shrinks the instance (no net-id mapping survives, which is why the
/// coarsener keeps node mementos only). Coarse net order is the first-
/// occurrence order of each distinct pin set, so the result is a pure
/// function of the input (no hashing order leaks out).
Hypergraph ContractClustersMerged(const Hypergraph& parent,
                                  std::span<const BlockId> cluster_of,
                                  BlockId num_clusters);

/// Connected components over the hypergraph (two nodes are adjacent when
/// they share a net). Returns per-node component id in [0, count).
struct Components {
  std::vector<NodeId> component_of;
  NodeId count = 0;
};
Components ConnectedComponents(const Hypergraph& hg);

}  // namespace htp
