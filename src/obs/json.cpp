#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace htp::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    // The comma (if any) was written with the key.
    pending_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
  out_ += '"';
  out_ += EscapeJson(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  Separate();
  if (!std::isfinite(value)) {  // NaN/inf are not JSON
    out_ += "null";
    return;
  }
  // Exactly representable integers print without an exponent or fraction so
  // indices and counters stay grep-able; everything else round-trips via
  // %.17g (shortest form a double is guaranteed to survive).
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && value > -kExact && value < kExact) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out_ += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out_ += buf;
}

void JsonWriter::Number(std::uint64_t value) {
  Separate();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Number(std::int64_t value) {
  Separate();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  Separate();
  out_ += json;
}

}  // namespace htp::obs
