// Minimal JSON emission shared by every obs sink (sinks.cpp, report.cpp).
//
// Two pieces:
//   * `EscapeJson` — escapes a string for interpolation between JSON
//     quotes. Every sink that writes a caller-provided name (bench names,
//     scope labels, timer arg keys, report meta values) must route it
//     through here: a stray quote or backslash in a name must never be
//     able to produce an invalid artifact.
//   * `JsonWriter` — a tiny streaming writer (objects, arrays, scalars)
//     with automatic comma placement. It is an *emitter*, not a DOM: the
//     run-report builder walks its inputs once and appends. Numbers are
//     rendered so that `json.loads` round-trips them: integral doubles
//     within the exact-integer range print as integers, everything else
//     as shortest-round-trip decimal; non-finite values (which would be
//     invalid JSON) degrade to null.
//
// Header-only-independent of the obs on/off mode: emission operates on
// plain data, so it compiles identically under -DHTP_OBS_ENABLED=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace htp::obs {

/// Returns `s` with JSON string metacharacters escaped ("\\", quotes,
/// control characters as \uXXXX). The result is safe to splice between
/// double quotes in a JSON document.
std::string EscapeJson(std::string_view s);

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("c1355");
///   w.Key("list"); w.BeginArray(); w.Number(1); w.EndArray();
///   w.EndObject();
///   std::string doc = std::move(w).Take();
/// The writer inserts commas between siblings automatically; mismatched
/// Begin/End pairs are the caller's bug (asserted in debug builds only —
/// this is an internal tool, not a parser).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Key of the next value inside the enclosing object (escaped here).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);
  void Number(std::uint64_t value);
  void Number(std::int64_t value);
  void Number(int value) { Number(static_cast<std::int64_t>(value)); }
  void Number(unsigned value) { Number(static_cast<std::uint64_t>(value)); }
  void Bool(bool value);
  void Null();

  /// A raw pre-rendered JSON fragment (must itself be valid JSON).
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  /// One frame per open container: true while the next emission at this
  /// depth needs a leading comma.
  std::vector<bool> need_comma_{false};
  bool pending_key_ = false;
};

}  // namespace htp::obs
