#include "obs/obs.hpp"

#if HTP_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <mutex>

namespace htp::obs {
namespace {

std::uint64_t NowNs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::atomic<bool> g_tracing{false};

struct TimerCell {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;

  void Record(std::uint64_t dur_ns) {
    ++count;
    total_ns += dur_ns;
    min_ns = std::min(min_ns, dur_ns);
    max_ns = std::max(max_ns, dur_ns);
  }
  void MergeFrom(const TimerCell& other) {
    count += other.count;
    total_ns += other.total_ns;
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
  }
};

// bit_width(v) in [0, 64] indexes the log2 bucket: 0 for v == 0, i for
// v in [2^(i-1), 2^i).
constexpr std::size_t kHistogramBuckets = 65;

struct HistogramCell {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void Record(std::uint64_t value) {
    ++count;
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
    ++buckets[std::bit_width(value)];
  }
  void MergeFrom(const HistogramCell& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      buckets[i] += other.buckets[i];
  }
};

// A span as recorded on the hot path: timer id + literal arg key, resolved
// to strings only when drained.
struct RawEvent {
  std::uint32_t timer_id;
  std::uint32_t tid;
  const char* arg_key;
  std::uint64_t arg_value;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
};

// A journal record as buffered on the hot path: event id, timestamp, and
// the literal-key payload pairs. Fixed capacity — excess fields at the
// recording site are dropped (the sites are ours; kMaxEventFields is an
// API promise, not a runtime surprise).
struct RawJournal {
  std::uint32_t event_id;
  std::uint32_t num_fields;
  std::uint64_t ts_ns;
  std::array<EventField, kMaxEventFields> fields;
};

struct ThreadShard;

// Process-wide registry: interned names (written only during static
// initialization of the instrumentation sites, i.e. single-threaded) plus
// the merged totals of every exited thread. All mutation of the merged
// state is serialized by `mutex_`; live shards are touched only by their
// owning thread.
class Registry {
 public:
  static Registry& Get() {
    static Registry registry;
    return registry;
  }

  std::uint32_t InternCounter(const char* name, CounterKind kind) {
    std::lock_guard<std::mutex> lock(mutex_);
    counter_names_.emplace_back(name);
    counter_kinds_.push_back(kind);
    counter_totals_.push_back(0);
    return static_cast<std::uint32_t>(counter_names_.size() - 1);
  }

  std::uint32_t InternTimer(const char* name) {
    std::lock_guard<std::mutex> lock(mutex_);
    timer_names_.emplace_back(name);
    timer_totals_.emplace_back();
    return static_cast<std::uint32_t>(timer_names_.size() - 1);
  }

  std::uint32_t InternHistogram(const char* name, HistogramKind kind) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_names_.emplace_back(name);
    histogram_kinds_.push_back(kind);
    histogram_totals_.emplace_back();
    return static_cast<std::uint32_t>(histogram_names_.size() - 1);
  }

  std::uint32_t InternEvent(const char* name) {
    std::lock_guard<std::mutex> lock(mutex_);
    event_names_.emplace_back(name);
    return static_cast<std::uint32_t>(event_names_.size() - 1);
  }

  std::uint32_t AssignTid() {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_tid_++;
  }

  void NameLane(std::uint32_t tid, const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (lane_names_.size() <= tid) lane_names_.resize(tid + 1);
    lane_names_[tid] = name;
  }

  std::vector<std::string> LaneNames() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lane_names_;
  }

  void Merge(ThreadShard& shard);
  Snapshot TakeSnapshot(const ThreadShard& local);
  std::vector<TraceEvent> DrainTrace(ThreadShard& local);
  std::vector<EventRecord> DrainEvents(ThreadShard& local);
  void Reset(ThreadShard& local);

 private:
  void MergeCountersLocked(const std::vector<std::uint64_t>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (counter_kinds_[i] == CounterKind::kSum)
        counter_totals_[i] += cells[i];
      else
        counter_totals_[i] = std::max(counter_totals_[i], cells[i]);
    }
  }
  void MergeTimersLocked(const std::vector<TimerCell>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].count > 0) timer_totals_[i].MergeFrom(cells[i]);
  }
  void MergeHistogramsLocked(const std::vector<HistogramCell>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].count > 0) histogram_totals_[i].MergeFrom(cells[i]);
  }
  TraceEvent Resolve(const RawEvent& raw) const {
    return TraceEvent{timer_names_[raw.timer_id],
                      raw.arg_key ? raw.arg_key : "",
                      raw.arg_value,
                      raw.ts_ns,
                      raw.dur_ns,
                      raw.tid};
  }
  EventRecord ResolveJournal(const RawJournal& raw) const {
    EventRecord record;
    record.name = event_names_[raw.event_id];
    record.ts_ns = raw.ts_ns;
    record.fields.reserve(raw.num_fields);
    for (std::uint32_t i = 0; i < raw.num_fields; ++i)
      record.fields.emplace_back(raw.fields[i].key, raw.fields[i].value);
    return record;
  }

  std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<CounterKind> counter_kinds_;
  std::vector<std::uint64_t> counter_totals_;
  std::vector<std::string> timer_names_;
  std::vector<TimerCell> timer_totals_;
  std::vector<std::string> histogram_names_;
  std::vector<HistogramKind> histogram_kinds_;
  std::vector<HistogramCell> histogram_totals_;
  std::vector<std::string> event_names_;
  std::vector<RawEvent> events_;
  std::vector<RawJournal> journal_;
  std::vector<std::string> lane_names_;
  std::uint32_t next_tid_ = 0;
};

// Per-thread cells, indexed by interned id and grown on demand. Touched
// without synchronization by the owning thread only; merged into the
// registry exactly once, when the thread exits (thread_local destruction).
// ParallelFor joins its transient workers before returning, so fork-join
// boundaries imply merged shards.
struct ThreadShard {
  std::vector<std::uint64_t> counters;
  std::vector<TimerCell> timers;
  std::vector<HistogramCell> histograms;
  std::vector<RawEvent> events;
  std::vector<RawJournal> journal;
  std::uint32_t tid;

  ThreadShard() : tid(Registry::Get().AssignTid()) {}
  ~ThreadShard() { Registry::Get().Merge(*this); }
};

ThreadShard& Shard() {
  thread_local ThreadShard shard;
  return shard;
}

void Registry::Merge(ThreadShard& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  MergeCountersLocked(shard.counters);
  MergeTimersLocked(shard.timers);
  MergeHistogramsLocked(shard.histograms);
  events_.insert(events_.end(), shard.events.begin(), shard.events.end());
  journal_.insert(journal_.end(), shard.journal.begin(), shard.journal.end());
  shard.counters.clear();
  shard.timers.clear();
  shard.histograms.clear();
  shard.events.clear();
  shard.journal.clear();
}

Snapshot Registry::TakeSnapshot(const ThreadShard& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Merged totals overlaid with the calling thread's live cells.
  std::vector<std::uint64_t> counters = counter_totals_;
  for (std::size_t i = 0; i < local.counters.size(); ++i) {
    if (counter_kinds_[i] == CounterKind::kSum)
      counters[i] += local.counters[i];
    else
      counters[i] = std::max(counters[i], local.counters[i]);
  }
  std::vector<TimerCell> timers = timer_totals_;
  for (std::size_t i = 0; i < local.timers.size(); ++i)
    if (local.timers[i].count > 0) timers[i].MergeFrom(local.timers[i]);
  std::vector<HistogramCell> histograms = histogram_totals_;
  for (std::size_t i = 0; i < local.histograms.size(); ++i)
    if (local.histograms[i].count > 0)
      histograms[i].MergeFrom(local.histograms[i]);

  Snapshot snap;
  snap.counters.reserve(counters.size());
  for (std::size_t i = 0; i < counters.size(); ++i)
    snap.counters.push_back(
        CounterValue{counter_names_[i], counter_kinds_[i], counters[i]});
  snap.timers.reserve(timers.size());
  for (std::size_t i = 0; i < timers.size(); ++i) {
    const TimerCell& cell = timers[i];
    snap.timers.push_back(TimerValue{timer_names_[i], cell.count,
                                     cell.total_ns,
                                     cell.count ? cell.min_ns : 0,
                                     cell.max_ns});
  }
  snap.histograms.reserve(histograms.size());
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramCell& cell = histograms[i];
    HistogramValue value{histogram_names_[i], histogram_kinds_[i],
                         cell.count,          cell.sum,
                         cell.count ? cell.min : 0,
                         cell.max,            {}};
    std::size_t used = kHistogramBuckets;
    while (used > 0 && cell.buckets[used - 1] == 0) --used;
    value.buckets.assign(cell.buckets.begin(), cell.buckets.begin() + used);
    snap.histograms.push_back(std::move(value));
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  std::sort(snap.timers.begin(), snap.timers.end(),
            [](const TimerValue& a, const TimerValue& b) {
              return a.name < b.name;
            });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramValue& a, const HistogramValue& b) {
              return a.name < b.name;
            });
  return snap;
}

std::vector<TraceEvent> Registry::DrainTrace(ThreadShard& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size() + local.events.size());
  for (const RawEvent& raw : events_) out.push_back(Resolve(raw));
  for (const RawEvent& raw : local.events) out.push_back(Resolve(raw));
  events_.clear();
  local.events.clear();
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.ts_ns < b.ts_ns;
            });
  return out;
}

std::vector<EventRecord> Registry::DrainEvents(ThreadShard& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EventRecord> out;
  out.reserve(journal_.size() + local.journal.size());
  for (const RawJournal& raw : journal_) out.push_back(ResolveJournal(raw));
  for (const RawJournal& raw : local.journal)
    out.push_back(ResolveJournal(raw));
  journal_.clear();
  local.journal.clear();
  // Order by (name, fields) only — never by timestamp or by shard merge
  // order — so the drained journal is bit-identical across thread counts
  // whenever the payloads are. Recording sites make the payload tuples
  // unique (leading iteration/round/level indices), so ties can only occur
  // between records that are identical up to their timestamps.
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.fields < b.fields;
            });
  return out;
}

void Registry::Reset(ThreadShard& local) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counter_totals_.begin(), counter_totals_.end(), 0);
  std::fill(timer_totals_.begin(), timer_totals_.end(), TimerCell{});
  std::fill(histogram_totals_.begin(), histogram_totals_.end(),
            HistogramCell{});
  events_.clear();
  journal_.clear();
  local.counters.clear();
  local.timers.clear();
  local.histograms.clear();
  local.events.clear();
  local.journal.clear();
  // lane_names_ survives: the threads that claimed them are still alive.
}

void RecordTimer(std::uint32_t id, std::uint64_t dur_ns) {
  ThreadShard& shard = Shard();
  if (shard.timers.size() <= id) shard.timers.resize(id + 1);
  shard.timers[id].Record(dur_ns);
}

}  // namespace

Counter::Counter(const char* name, CounterKind kind)
    : id_(Registry::Get().InternCounter(name, kind)), kind_(kind) {}

void Counter::Add(std::uint64_t n) {
  ThreadShard& shard = Shard();
  if (shard.counters.size() <= id_) shard.counters.resize(id_ + 1, 0);
  if (kind_ == CounterKind::kSum)
    shard.counters[id_] += n;
  else
    shard.counters[id_] = std::max(shard.counters[id_], n);
}

Timer::Timer(const char* name) : id_(Registry::Get().InternTimer(name)) {}

Histogram::Histogram(const char* name, HistogramKind kind)
    : id_(Registry::Get().InternHistogram(name, kind)) {}

void Histogram::Record(std::uint64_t value) {
  ThreadShard& shard = Shard();
  if (shard.histograms.size() <= id_) shard.histograms.resize(id_ + 1);
  shard.histograms[id_].Record(value);
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(NowNs()) {}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  histogram_.Record(NowNs() - start_ns_);
}

Event::Event(const char* name) : id_(Registry::Get().InternEvent(name)) {}

void Event::Record(std::initializer_list<EventField> fields) {
  ThreadShard& shard = Shard();
  RawJournal raw;
  raw.event_id = id_;
  raw.ts_ns = NowNs();
  raw.num_fields = 0;
  for (const EventField& field : fields) {
    if (raw.num_fields == kMaxEventFields) break;
    raw.fields[raw.num_fields++] = field;
  }
  shard.journal.push_back(raw);
}

ScopedTimer::ScopedTimer(const Timer& timer)
    : id_(timer.id()), start_ns_(NowNs()) {}

ScopedTimer::~ScopedTimer() { RecordTimer(id_, NowNs() - start_ns_); }

PhaseScope::PhaseScope(const Timer& timer, const char* arg_key,
                       std::uint64_t arg_value)
    : id_(timer.id()), start_ns_(NowNs()), arg_key_(arg_key),
      arg_value_(arg_value) {}

PhaseScope::~PhaseScope() {
  const std::uint64_t end_ns = NowNs();
  RecordTimer(id_, end_ns - start_ns_);
  if (!g_tracing.load(std::memory_order_relaxed)) return;
  ThreadShard& shard = Shard();
  shard.events.push_back(RawEvent{id_, shard.tid, arg_key_, arg_value_,
                                  start_ns_, end_ns - start_ns_});
}

void SetTracing(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void NameThisThread(const std::string& name) {
  Registry::Get().NameLane(Shard().tid, name);
}

std::vector<std::string> TakeLaneNames() {
  return Registry::Get().LaneNames();
}

Snapshot TakeSnapshot() { return Registry::Get().TakeSnapshot(Shard()); }

std::vector<TraceEvent> DrainTrace() {
  return Registry::Get().DrainTrace(Shard());
}

std::vector<EventRecord> DrainEvents() {
  return Registry::Get().DrainEvents(Shard());
}

void ResetAll() { Registry::Get().Reset(Shard()); }

}  // namespace htp::obs

#endif  // HTP_OBS_ENABLED
