// htp-obs: zero-overhead-when-off telemetry (counters, timers, histograms,
// journal events, trace spans).
//
// The paper's evaluation is all per-phase numbers — injections per metric,
// worklist rounds, carve attempts, FM pass gains — so the pipeline records
// them through this layer instead of every bench re-deriving wall clocks.
//
// Model:
//   * `Counter` — a named monotonic value. Kind kSum accumulates, kind kMax
//     keeps the maximum recorded value (e.g. recursion depth). Counter
//     handles intern their name once (at static initialization) and then
//     increment a plain cell in a thread-local shard: no locks, no atomics
//     on the hot path.
//   * `Timer` + RAII `ScopedTimer` / `PhaseScope` — duration summaries
//     (count / total / min / max, in ns). `PhaseScope` additionally emits a
//     Chrome trace_event span (one lane per thread) while tracing is on.
//   * `Histogram` — log2-bucketed distribution of recorded values (count /
//     sum / min / max plus one bucket per power of two). Kind kValue for
//     algorithm quantities (rounds per metric, injections per metric) —
//     these join the determinism contract; kind kTimeNs for durations —
//     excluded, like timers. `ScopedHistogramTimer` is the RAII recorder
//     for the latter.
//   * `Event` — one journal record: interned name + up to kMaxEventFields
//     (key, double) payload pairs, buffered on the thread-local shards and
//     drained via `DrainEvents`. Events are the run journal the RunReport
//     (obs/report.hpp) serializes: per-injection-round records, per-
//     iteration records, per-uncoarsening-level records. Each record also
//     carries a timestamp for diagnostics; the timestamp is carved out of
//     the determinism contract exactly like timers, and DrainEvents orders
//     records by (name, payload) — never by time — so the drained journal
//     is a deterministic function of the recorded payloads.
//   * Thread-local shards merge into the global registry when their thread
//     exits. The runtime's `ParallelFor` uses transient pools whose workers
//     join at the fork-join boundary, so by the time a caller of
//     `RunHtpFlow` can observe anything, every worker shard has merged.
//     Integer sums and maxes are order-independent, which extends the
//     `threads`-invariance guarantee to counter and value-histogram totals;
//     timers measure real durations and are excluded from that guarantee
//     (like `HtpFlowIteration::wall_seconds`).
//
// Naming scheme (see docs/observability.md): dotted `subsystem.metric`
// paths — `flow.*` (Algorithm 2), `dijkstra.*`, `carve.*` (find_cut / MST
// split), `build.*` (Algorithm 3), `fm.*` (refiner), `driver.*`
// (Algorithm 1 phase spans), `multilevel.*` / `uncoarsen.*`.
//
// Compiled with HTP_OBS_ENABLED=0 (CMake -DHTP_OBS_ENABLED=OFF) every type
// here is an empty inline no-op and the instrumentation vanishes entirely.
#pragma once

#ifndef HTP_OBS_ENABLED
#error "obs/obs.hpp requires the HTP_OBS_ENABLED define; link against htp_obs"
#endif

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace htp::obs {

/// How a counter merges: accumulate or keep the maximum.
enum class CounterKind : std::uint8_t { kSum, kMax };

/// What a histogram's values mean. kValue distributions are deterministic
/// functions of the inputs (they join the bit-identity contract); kTimeNs
/// distributions measure wall time and are excluded, like timers. The
/// RunReport uses the kind to route a histogram into its deterministic or
/// wall section.
enum class HistogramKind : std::uint8_t { kValue, kTimeNs };

/// One counter in a snapshot.
struct CounterValue {
  std::string name;
  CounterKind kind = CounterKind::kSum;
  std::uint64_t value = 0;
};

/// One timer in a snapshot. All durations in nanoseconds.
struct TimerValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One histogram in a snapshot. `buckets[i]` counts recorded values v with
/// bit_width(v) == i: bucket 0 holds v == 0, bucket i >= 1 holds
/// v in [2^(i-1), 2^i). Trailing zero buckets are trimmed.
struct HistogramValue {
  std::string name;
  HistogramKind kind = HistogramKind::kValue;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;
};

/// Deterministic totals (counters, value histograms) + duration summaries
/// (timers, time histograms), all sorted by name. Interned-but-never-
/// recorded entries appear with zeros, so a report always covers every
/// instrumented subsystem.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<TimerValue> timers;
  std::vector<HistogramValue> histograms;
};

/// One completed phase span, resolved for the sinks. Timestamps are ns
/// since the process-wide epoch; `tid` is a small stable per-thread lane id
/// (assignment order is scheduling-dependent — traces are diagnostics, not
/// part of the determinism guarantee). Lane *names* are assigned by role
/// via NameThisThread (the thread pool names its workers `worker-<i>`), so
/// traces from repeated runs line up even though tids may not.
struct TraceEvent {
  std::string name;
  std::string arg_key;  ///< empty when the span carries no argument
  std::uint64_t arg_value = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

/// Maximum payload pairs one journal event can carry.
inline constexpr std::size_t kMaxEventFields = 8;

/// One drained journal record. `fields` preserves the order the recording
/// site passed them in — the site's order is the record's sort key, so put
/// the discriminating indices (iteration, round, level) first. `ts_ns` is
/// diagnostics only (see TraceEvent) and must not feed deterministic
/// artifacts; the RunReport drops it.
struct EventRecord {
  std::string name;
  std::uint64_t ts_ns = 0;
  std::vector<std::pair<std::string, double>> fields;
};

/// One payload pair at a recording site; `key` must be a string literal
/// (the hot path stores the pointer, resolution happens at drain time).
struct EventField {
  const char* key;
  double value;
};

#if HTP_OBS_ENABLED

/// Named monotonic counter. Construct once (namespace-scope static at the
/// instrumentation site); `Add` is cheap enough for per-call use — batch
/// per-element quantities in a local and add once per call.
class Counter {
 public:
  explicit Counter(const char* name, CounterKind kind = CounterKind::kSum);
  void Add(std::uint64_t n = 1);

 private:
  std::uint32_t id_;
  CounterKind kind_;
};

/// Named duration summary; recorded through ScopedTimer / PhaseScope.
class Timer {
 public:
  explicit Timer(const char* name);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Named log2-bucketed distribution. Like Counter, construct once at
/// namespace scope; `Record` is a shard write plus a bit_width — cheap
/// enough for per-call use at phase granularity (per metric, per pass),
/// not meant for per-element loops.
class Histogram {
 public:
  explicit Histogram(const char* name,
                     HistogramKind kind = HistogramKind::kValue);
  void Record(std::uint64_t value);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Records the wall-clock lifetime of the scope into a kTimeNs histogram.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram);
  ~ScopedHistogramTimer();
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Named journal record type. `Record` buffers one EventRecord-to-be on the
/// calling thread's shard: name id, timestamp, and up to kMaxEventFields
/// (literal key, double) pairs — excess fields are dropped. Use at decision
/// granularity (once per injection round / iteration / level), not in hot
/// loops.
class Event {
 public:
  explicit Event(const char* name);
  void Record(std::initializer_list<EventField> fields);

 private:
  std::uint32_t id_;
};

/// Records the lifetime of the scope into `timer`. No trace event.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint32_t id_;
  std::uint64_t start_ns_;
};

/// ScopedTimer that additionally emits a trace span (named after the timer,
/// on this thread's lane) while tracing is enabled. The optional argument
/// tags the span, e.g. {"iter": 3}; `arg_key` must be a string literal.
class PhaseScope {
 public:
  explicit PhaseScope(const Timer& timer, const char* arg_key = nullptr,
                      std::uint64_t arg_value = 0);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  std::uint32_t id_;
  std::uint64_t start_ns_;
  const char* arg_key_;
  std::uint64_t arg_value_;
};

/// Turns trace-span collection on/off (off by default; counters, timers,
/// histograms, and events are always recorded when obs is compiled in).
void SetTracing(bool enabled);
bool TracingEnabled();

/// Names the calling thread's trace lane (e.g. "main", "worker-0"). The
/// thread pool names its workers by pool index, which makes lane naming a
/// deterministic function of the code path rather than of first-touch
/// scheduling order. Survives ResetAll (the threads are still alive).
void NameThisThread(const std::string& name);

/// Lane names indexed by tid; unnamed lanes are empty strings (sinks fall
/// back to `htp-thread-<tid>`).
std::vector<std::string> TakeLaneNames();

/// Merged totals from every exited thread plus the calling thread's own
/// live shard. Call from a quiescent point (no instrumented worker threads
/// running) for complete numbers; RunHtpFlow joins its workers before
/// returning, so "after it returns" is always quiescent.
Snapshot TakeSnapshot();

/// Moves out every collected trace span (merged shards + calling thread).
std::vector<TraceEvent> DrainTrace();

/// Moves out every buffered journal record (merged shards + calling
/// thread), ordered by (name, fields) — field pairs compare in recorded
/// order, (key, value) lexicographically — never by timestamp, so the
/// order is bit-identical across thread counts whenever the payloads are.
/// Same quiescence caveat as TakeSnapshot.
std::vector<EventRecord> DrainEvents();

/// Zeroes all counters/timers/histograms and discards pending trace spans
/// and journal records, including the calling thread's shard. Quiescent
/// points only (benches use this to scope totals per circuit).
void ResetAll();

#else  // HTP_OBS_ENABLED == 0: the whole layer compiles to nothing.

class Counter {
 public:
  explicit Counter(const char*, CounterKind = CounterKind::kSum) {}
  void Add(std::uint64_t = 1) {}
};

class Timer {
 public:
  explicit Timer(const char*) {}
};

class Histogram {
 public:
  explicit Histogram(const char*, HistogramKind = HistogramKind::kValue) {}
  void Record(std::uint64_t) {}
};

class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram&) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
};

class Event {
 public:
  explicit Event(const char*) {}
  void Record(std::initializer_list<EventField>) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class PhaseScope {
 public:
  explicit PhaseScope(const Timer&, const char* = nullptr,
                      std::uint64_t = 0) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

inline void SetTracing(bool) {}
inline bool TracingEnabled() { return false; }
inline void NameThisThread(const std::string&) {}
inline std::vector<std::string> TakeLaneNames() { return {}; }
inline Snapshot TakeSnapshot() { return {}; }
inline std::vector<TraceEvent> DrainTrace() { return {}; }
inline std::vector<EventRecord> DrainEvents() { return {}; }
inline void ResetAll() {}

#endif  // HTP_OBS_ENABLED

}  // namespace htp::obs
