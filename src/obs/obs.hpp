// htp-obs: zero-overhead-when-off telemetry (counters, timers, trace spans).
//
// The paper's evaluation is all per-phase numbers — injections per metric,
// worklist rounds, carve attempts, FM pass gains — so the pipeline records
// them through this layer instead of every bench re-deriving wall clocks.
//
// Model:
//   * `Counter` — a named monotonic value. Kind kSum accumulates, kind kMax
//     keeps the maximum recorded value (e.g. recursion depth). Counter
//     handles intern their name once (at static initialization) and then
//     increment a plain cell in a thread-local shard: no locks, no atomics
//     on the hot path.
//   * `Timer` + RAII `ScopedTimer` / `PhaseScope` — duration histograms
//     (count / total / min / max, in ns). `PhaseScope` additionally emits a
//     Chrome trace_event span (one lane per thread) while tracing is on.
//   * Thread-local shards merge into the global registry when their thread
//     exits. The runtime's `ParallelFor` uses transient pools whose workers
//     join at the fork-join boundary, so by the time a caller of
//     `RunHtpFlow` can observe anything, every worker shard has merged.
//     Integer sums and maxes are order-independent, which extends the
//     `threads`-invariance guarantee to counter totals; timers measure real
//     durations and are excluded from that guarantee (like
//     `HtpFlowIteration::wall_seconds`).
//
// Naming scheme (see docs/observability.md): dotted `subsystem.metric`
// paths — `flow.*` (Algorithm 2), `dijkstra.*`, `carve.*` (find_cut / MST
// split), `build.*` (Algorithm 3), `fm.*` (refiner), `driver.*`
// (Algorithm 1 phase spans).
//
// Compiled with HTP_OBS_ENABLED=0 (CMake -DHTP_OBS_ENABLED=OFF) every type
// here is an empty inline no-op and the instrumentation vanishes entirely.
#pragma once

#ifndef HTP_OBS_ENABLED
#error "obs/obs.hpp requires the HTP_OBS_ENABLED define; link against htp_obs"
#endif

#include <cstdint>
#include <string>
#include <vector>

namespace htp::obs {

/// How a counter merges: accumulate or keep the maximum.
enum class CounterKind : std::uint8_t { kSum, kMax };

/// One counter in a snapshot.
struct CounterValue {
  std::string name;
  CounterKind kind = CounterKind::kSum;
  std::uint64_t value = 0;
};

/// One timer in a snapshot. All durations in nanoseconds.
struct TimerValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Deterministic totals (counters) + duration histograms (timers), both
/// sorted by name. Interned-but-never-recorded entries appear with zeros,
/// so a report always covers every instrumented subsystem.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<TimerValue> timers;
};

/// One completed phase span, resolved for the sinks. Timestamps are ns
/// since the process-wide epoch; `tid` is a small stable per-thread lane id
/// (assignment order is scheduling-dependent — traces are diagnostics, not
/// part of the determinism guarantee).
struct TraceEvent {
  std::string name;
  std::string arg_key;  ///< empty when the span carries no argument
  std::uint64_t arg_value = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

#if HTP_OBS_ENABLED

/// Named monotonic counter. Construct once (namespace-scope static at the
/// instrumentation site); `Add` is cheap enough for per-call use — batch
/// per-element quantities in a local and add once per call.
class Counter {
 public:
  explicit Counter(const char* name, CounterKind kind = CounterKind::kSum);
  void Add(std::uint64_t n = 1);

 private:
  std::uint32_t id_;
  CounterKind kind_;
};

/// Named duration histogram; recorded through ScopedTimer / PhaseScope.
class Timer {
 public:
  explicit Timer(const char* name);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

/// Records the lifetime of the scope into `timer`. No trace event.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint32_t id_;
  std::uint64_t start_ns_;
};

/// ScopedTimer that additionally emits a trace span (named after the timer,
/// on this thread's lane) while tracing is enabled. The optional argument
/// tags the span, e.g. {"iter": 3}; `arg_key` must be a string literal.
class PhaseScope {
 public:
  explicit PhaseScope(const Timer& timer, const char* arg_key = nullptr,
                      std::uint64_t arg_value = 0);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  std::uint32_t id_;
  std::uint64_t start_ns_;
  const char* arg_key_;
  std::uint64_t arg_value_;
};

/// Turns trace-span collection on/off (off by default; counters and timers
/// are always recorded when obs is compiled in).
void SetTracing(bool enabled);
bool TracingEnabled();

/// Merged totals from every exited thread plus the calling thread's own
/// live shard. Call from a quiescent point (no instrumented worker threads
/// running) for complete numbers; RunHtpFlow joins its workers before
/// returning, so "after it returns" is always quiescent.
Snapshot TakeSnapshot();

/// Moves out every collected trace span (merged shards + calling thread).
std::vector<TraceEvent> DrainTrace();

/// Zeroes all counters/timers and discards pending trace spans, including
/// the calling thread's shard. Quiescent points only (benches use this to
/// scope totals per circuit).
void ResetAll();

#else  // HTP_OBS_ENABLED == 0: the whole layer compiles to nothing.

class Counter {
 public:
  explicit Counter(const char*, CounterKind = CounterKind::kSum) {}
  void Add(std::uint64_t = 1) {}
};

class Timer {
 public:
  explicit Timer(const char*) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class PhaseScope {
 public:
  explicit PhaseScope(const Timer&, const char* = nullptr,
                      std::uint64_t = 0) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

inline void SetTracing(bool) {}
inline bool TracingEnabled() { return false; }
inline Snapshot TakeSnapshot() { return {}; }
inline std::vector<TraceEvent> DrainTrace() { return {}; }
inline void ResetAll() {}

#endif  // HTP_OBS_ENABLED

}  // namespace htp::obs
