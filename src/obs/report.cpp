#include "obs/report.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/json.hpp"

namespace htp::obs {
namespace {

// Counters whose values are derived from the wall clock even though they
// live in the counter registry (docs/observability.md "Determinism
// contract"). Routed into the wall section so the deterministic section
// stays diffable across thread counts even on deadline-budgeted runs.
constexpr const char* kWallCounters[] = {"driver.budget_remaining_ms"};

bool IsWallCounter(const std::string& name) {
  for (const char* wall : kWallCounters)
    if (name == wall) return true;
  return false;
}

void WriteHistogram(JsonWriter& w, const HistogramValue& h) {
  w.BeginObject();
  w.Key("count");
  w.Number(h.count);
  w.Key("sum");
  w.Number(h.sum);
  w.Key("min");
  w.Number(h.min);
  w.Key("max");
  w.Number(h.max);
  // buckets[i] counts values v with bit_width(v) == i, i.e. bucket 0 is
  // v == 0 and bucket i >= 1 is v in [2^(i-1), 2^i). Emitted sparse as
  // [bucket_index, count] pairs.
  w.Key("buckets");
  w.BeginArray();
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    w.BeginArray();
    w.Number(static_cast<std::uint64_t>(i));
    w.Number(h.buckets[i]);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

RunReportBuilder::RunReportBuilder(std::string tool)
    : tool_(std::move(tool)) {}

void RunReportBuilder::MetaString(std::string_view key,
                                  std::string_view value) {
  meta_.push_back({Entry::Kind::kString, std::string(key),
                   std::string(value), 0.0, false});
}

void RunReportBuilder::MetaNumber(std::string_view key, double value) {
  meta_.push_back({Entry::Kind::kNumber, std::string(key), "", value, false});
}

void RunReportBuilder::MetaBool(std::string_view key, bool value) {
  meta_.push_back({Entry::Kind::kBool, std::string(key), "", 0.0, value});
}

void RunReportBuilder::ResultString(std::string_view key,
                                    std::string_view value) {
  result_.push_back({Entry::Kind::kString, std::string(key),
                     std::string(value), 0.0, false});
}

void RunReportBuilder::ResultNumber(std::string_view key, double value) {
  result_.push_back(
      {Entry::Kind::kNumber, std::string(key), "", value, false});
}

void RunReportBuilder::ResultBool(std::string_view key, bool value) {
  result_.push_back({Entry::Kind::kBool, std::string(key), "", 0.0, value});
}

void RunReportBuilder::WallString(std::string_view key,
                                  std::string_view value) {
  wall_.push_back({Entry::Kind::kString, std::string(key),
                   std::string(value), 0.0, false});
}

void RunReportBuilder::WallNumber(std::string_view key, double value) {
  wall_.push_back({Entry::Kind::kNumber, std::string(key), "", value, false});
}

std::string RunReportBuilder::Render(
    const Snapshot& snapshot, const std::vector<EventRecord>& journal) const {
  JsonWriter w;
  auto write_entries = [&w](const std::vector<Entry>& entries) {
    w.BeginObject();
    for (const Entry& e : entries) {
      w.Key(e.key);
      switch (e.kind) {
        case Entry::Kind::kString: w.String(e.string_value); break;
        case Entry::Kind::kNumber: w.Number(e.number_value); break;
        case Entry::Kind::kBool: w.Bool(e.bool_value); break;
      }
    }
    w.EndObject();
  };

  w.BeginObject();
  w.Key("schema");
  w.String(kRunReportSchema);
  w.Key("schema_version");
  w.Number(static_cast<std::int64_t>(kRunReportSchemaVersion));
  w.Key("tool");
  w.String(tool_);

  w.Key("deterministic");
  w.BeginObject();
  w.Key("meta");
  write_entries(meta_);
  w.Key("result");
  write_entries(result_);
  w.Key("counters");
  w.BeginObject();
  for (const CounterValue& c : snapshot.counters) {
    if (IsWallCounter(c.name)) continue;
    w.Key(c.name);
    w.Number(c.value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const HistogramValue& h : snapshot.histograms) {
    if (h.kind != HistogramKind::kValue) continue;
    w.Key(h.name);
    WriteHistogram(w, h);
  }
  w.EndObject();
  // The decision journal: drained obs::Events in their deterministic
  // (name, fields) order, timestamps stripped (the Chrome trace is the
  // timing view; this is the trajectory view).
  w.Key("journal");
  w.BeginArray();
  for (const EventRecord& record : journal) {
    w.BeginObject();
    w.Key("event");
    w.String(record.name);
    for (const auto& [key, value] : record.fields) {
      w.Key(key);
      w.Number(value);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // deterministic

  w.Key("wall");
  w.BeginObject();
  w.Key("meta");
  write_entries(wall_);
  w.Key("counters");
  w.BeginObject();
  for (const CounterValue& c : snapshot.counters) {
    if (!IsWallCounter(c.name)) continue;
    w.Key(c.name);
    w.Number(c.value);
  }
  w.EndObject();
  w.Key("timers");
  w.BeginObject();
  for (const TimerValue& t : snapshot.timers) {
    if (t.count == 0) continue;
    w.Key(t.name);
    w.BeginObject();
    w.Key("count");
    w.Number(t.count);
    w.Key("total_ns");
    w.Number(t.total_ns);
    w.Key("min_ns");
    w.Number(t.min_ns);
    w.Key("max_ns");
    w.Number(t.max_ns);
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const HistogramValue& h : snapshot.histograms) {
    if (h.kind != HistogramKind::kTimeNs || h.count == 0) continue;
    w.Key(h.name);
    WriteHistogram(w, h);
  }
  w.EndObject();
  w.EndObject();  // wall

  w.EndObject();
  return std::move(w).Take();
}

std::string_view DeterministicSection(std::string_view report_json) {
  constexpr std::string_view kKey = "\"deterministic\":";
  const std::size_t key_pos = report_json.find(kKey);
  if (key_pos == std::string_view::npos) return {};
  std::size_t pos = key_pos + kKey.size();
  if (pos >= report_json.size() || report_json[pos] != '{') return {};
  // Brace-match, skipping string literals (a journal field could contain
  // braces in a name).
  int depth = 0;
  bool in_string = false, escaped = false;
  for (std::size_t i = pos; i < report_json.size(); ++i) {
    const char c = report_json[i];
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return report_json.substr(pos, i - pos + 1);
    }
  }
  return {};
}

}  // namespace htp::obs
