// RunReport: the schema-versioned, machine-readable account of one
// pipeline run — the artifact `htp_cli --report` writes, `HtpFlowResult::
// report` carries, and a future `htp_serve` would return per request.
//
// A report has two top-level sections with opposite contracts:
//
//   * `deterministic` — run facts (meta), outcome (result), counter totals,
//     value-histogram distributions, and the decision journal (drained
//     obs::Events, timestamps stripped). For unbudgeted (or deterministic-
//     cap-only) runs this whole section is **bit-identical for every
//     `threads` × `metric_threads` combination** — the same contract the
//     partition itself carries, enforced by tests/obs/report_test.cpp and
//     the report-determinism CI gate via `scripts/obs_report.py diff`.
//   * `wall` — everything timing- or schedule-dependent: thread counts,
//     wall clocks, timers, kTimeNs histograms, and the wall-derived
//     counters (driver.budget_remaining_ms). Two bit-identical runs may
//     differ arbitrarily here; the diff tool compares these within a
//     tolerance, or not at all.
//
// The builder collects the run facts; Render() folds in the telemetry
// (a Snapshot plus the drained journal) and emits the JSON document.
// Everything operates on plain data, so reports build identically with
// HTP_OBS_ENABLED=OFF — the telemetry sections are just empty there.
//
// Schema versioning policy (docs/observability.md): `schema_version` bumps
// on any breaking change (renamed/removed fields, changed meaning);
// purely additive fields keep the version. Consumers must reject versions
// they do not know (`scripts/obs_report.py validate` does).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace htp::obs {

inline constexpr std::string_view kRunReportSchema = "htp-run-report";
inline constexpr int kRunReportSchemaVersion = 1;

/// Assembles one RunReport. `Meta*` and `Result*` feed the deterministic
/// section, `Wall*` the wall section; keys within a section must be unique
/// (the builder appends in call order and does not dedupe).
class RunReportBuilder {
 public:
  /// `tool` names the producer ("htp_cli", a bench name, "htp_serve").
  explicit RunReportBuilder(std::string tool);

  void MetaString(std::string_view key, std::string_view value);
  void MetaNumber(std::string_view key, double value);
  void MetaBool(std::string_view key, bool value);

  void ResultString(std::string_view key, std::string_view value);
  void ResultNumber(std::string_view key, double value);
  void ResultBool(std::string_view key, bool value);

  void WallString(std::string_view key, std::string_view value);
  void WallNumber(std::string_view key, double value);

  /// Renders the full report. Counters route to deterministic.counters
  /// except the wall-derived ones (driver.budget_remaining_ms); histograms
  /// route by their HistogramKind; timers are always wall; journal records
  /// land in deterministic.journal with their timestamps stripped.
  std::string Render(const Snapshot& snapshot,
                     const std::vector<EventRecord>& journal) const;

 private:
  struct Entry {
    enum class Kind { kString, kNumber, kBool } kind;
    std::string key;
    std::string string_value;
    double number_value = 0.0;
    bool bool_value = false;
  };

  std::string tool_;
  std::vector<Entry> meta_;
  std::vector<Entry> result_;
  std::vector<Entry> wall_;
};

/// The exact byte range of the report's `"deterministic":{...}` value —
/// the slice two runs must agree on bit for bit. Returns an empty view if
/// the section cannot be located (not a report). String-aware brace
/// matching, no JSON parser needed; used by the C++ cross-thread-count
/// determinism tests (Python consumers parse the JSON instead).
std::string_view DeterministicSection(std::string_view report_json);

}  // namespace htp::obs
