#include "obs/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

#include "obs/json.hpp"

namespace htp::obs {
namespace {

std::string FormatMs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

const char* HistogramKindName(HistogramKind kind) {
  return kind == HistogramKind::kValue ? "value" : "time_ns";
}

}  // namespace

std::string RenderStatsReport(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  out += "=== htp-obs stats ===\n";
  std::snprintf(line, sizeof line, "%-36s %6s %14s\n", "counter", "kind",
                "value");
  out += line;
  for (const CounterValue& c : snapshot.counters) {
    std::snprintf(line, sizeof line, "%-36s %6s %14llu\n", c.name.c_str(),
                  c.kind == CounterKind::kSum ? "sum" : "max",
                  static_cast<unsigned long long>(c.value));
    out += line;
  }
  std::snprintf(line, sizeof line, "%-36s %10s %12s %12s %12s %12s\n",
                "timer", "count", "total(ms)", "mean(ms)", "min(ms)",
                "max(ms)");
  out += line;
  for (const TimerValue& t : snapshot.timers) {
    const double mean_ns =
        t.count ? static_cast<double>(t.total_ns) / static_cast<double>(t.count)
                : 0.0;
    std::snprintf(line, sizeof line, "%-36s %10llu %12s %12s %12s %12s\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.count),
                  FormatMs(t.total_ns).c_str(),
                  FormatMs(static_cast<std::uint64_t>(mean_ns)).c_str(),
                  FormatMs(t.min_ns).c_str(), FormatMs(t.max_ns).c_str());
    out += line;
  }
  if (!snapshot.histograms.empty()) {
    std::snprintf(line, sizeof line, "%-36s %8s %10s %14s %12s %12s\n",
                  "histogram", "kind", "count", "sum", "min", "max");
    out += line;
    for (const HistogramValue& h : snapshot.histograms) {
      std::snprintf(line, sizeof line, "%-36s %8s %10llu %14llu %12llu %12llu\n",
                    h.name.c_str(), HistogramKindName(h.kind),
                    static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.sum),
                    static_cast<unsigned long long>(h.min),
                    static_cast<unsigned long long>(h.max));
      out += line;
    }
  }
  return out;
}

void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      const std::vector<std::string>& lane_names) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // One metadata event per lane so chrome://tracing / Perfetto label the
  // rows. Lanes claimed via NameThisThread carry their role name ("main",
  // "worker-<i>" — deterministic across runs); unnamed lanes fall back to
  // the first-touch tid.
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  for (std::uint32_t tid : tids) {
    std::string name;
    if (tid < lane_names.size() && !lane_names[tid].empty())
      name = lane_names[tid];
    else
      name = "htp-thread-" + std::to_string(tid);
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << EscapeJson(name) << "\"}}";
  }
  char num[32];
  for (const TraceEvent& e : events) {
    sep();
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << num;
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    os << ",\"dur\":" << num << ",\"cat\":\"htp\",\"name\":\""
       << EscapeJson(e.name) << "\"";
    if (!e.arg_key.empty())
      os << ",\"args\":{\"" << EscapeJson(e.arg_key)
         << "\":" << e.arg_value << "}";
    os << "}";
  }
  os << "\n]}\n";
}

void WriteJsonlSnapshot(std::ostream& os, const Snapshot& snapshot,
                        std::string_view bench, std::string_view scope) {
  const std::string prefix = "{\"bench\":\"" + EscapeJson(bench) +
                             "\",\"scope\":\"" + EscapeJson(scope) + "\"";
  for (const CounterValue& c : snapshot.counters) {
    os << prefix << ",\"type\":\"counter\",\"name\":\"" << EscapeJson(c.name)
       << "\",\"kind\":\""
       << (c.kind == CounterKind::kSum ? "sum" : "max")
       << "\",\"value\":" << c.value << "}\n";
  }
  for (const TimerValue& t : snapshot.timers) {
    if (t.count == 0) continue;  // unrecorded timers carry no information
    os << prefix << ",\"type\":\"timer\",\"name\":\"" << EscapeJson(t.name)
       << "\",\"count\":" << t.count << ",\"total_ns\":" << t.total_ns
       << ",\"min_ns\":" << t.min_ns << ",\"max_ns\":" << t.max_ns << "}\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    if (h.count == 0) continue;  // same rule as timers
    os << prefix << ",\"type\":\"histogram\",\"name\":\""
       << EscapeJson(h.name) << "\",\"kind\":\"" << HistogramKindName(h.kind)
       << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      os << (i ? "," : "") << h.buckets[i];
    os << "]}\n";
  }
}

}  // namespace htp::obs
