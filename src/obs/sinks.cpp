#include "obs/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

namespace htp::obs {
namespace {

// Counter/timer names and arg keys are C++ identifiers-with-dots chosen by
// the instrumentation sites; escaping still guards against a stray quote or
// backslash ever reaching a sink.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string RenderStatsReport(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  out += "=== htp-obs stats ===\n";
  std::snprintf(line, sizeof line, "%-36s %6s %14s\n", "counter", "kind",
                "value");
  out += line;
  for (const CounterValue& c : snapshot.counters) {
    std::snprintf(line, sizeof line, "%-36s %6s %14llu\n", c.name.c_str(),
                  c.kind == CounterKind::kSum ? "sum" : "max",
                  static_cast<unsigned long long>(c.value));
    out += line;
  }
  std::snprintf(line, sizeof line, "%-36s %10s %12s %12s %12s %12s\n",
                "timer", "count", "total(ms)", "mean(ms)", "min(ms)",
                "max(ms)");
  out += line;
  for (const TimerValue& t : snapshot.timers) {
    const double mean_ns =
        t.count ? static_cast<double>(t.total_ns) / static_cast<double>(t.count)
                : 0.0;
    std::snprintf(line, sizeof line, "%-36s %10llu %12s %12s %12s %12s\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.count),
                  FormatMs(t.total_ns).c_str(),
                  FormatMs(static_cast<std::uint64_t>(mean_ns)).c_str(),
                  FormatMs(t.min_ns).c_str(), FormatMs(t.max_ns).c_str());
    out += line;
  }
  return out;
}

void WriteChromeTrace(std::ostream& os,
                      const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // One metadata event per lane so chrome://tracing / Perfetto label the
  // rows; lane ids are assigned in first-touch order, so they are stable
  // within a run but not across runs.
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  for (std::uint32_t tid : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"htp-thread-" << tid
       << "\"}}";
  }
  char num[32];
  for (const TraceEvent& e : events) {
    sep();
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << num;
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    os << ",\"dur\":" << num << ",\"cat\":\"htp\",\"name\":\""
       << JsonEscape(e.name) << "\"";
    if (!e.arg_key.empty())
      os << ",\"args\":{\"" << JsonEscape(e.arg_key)
         << "\":" << e.arg_value << "}";
    os << "}";
  }
  os << "\n]}\n";
}

void WriteJsonlSnapshot(std::ostream& os, const Snapshot& snapshot,
                        std::string_view bench, std::string_view scope) {
  const std::string prefix = "{\"bench\":\"" + JsonEscape(bench) +
                             "\",\"scope\":\"" + JsonEscape(scope) + "\"";
  for (const CounterValue& c : snapshot.counters) {
    os << prefix << ",\"type\":\"counter\",\"name\":\"" << JsonEscape(c.name)
       << "\",\"kind\":\""
       << (c.kind == CounterKind::kSum ? "sum" : "max")
       << "\",\"value\":" << c.value << "}\n";
  }
  for (const TimerValue& t : snapshot.timers) {
    if (t.count == 0) continue;  // unrecorded timers carry no information
    os << prefix << ",\"type\":\"timer\",\"name\":\"" << JsonEscape(t.name)
       << "\",\"count\":" << t.count << ",\"total_ns\":" << t.total_ns
       << ",\"min_ns\":" << t.min_ns << ",\"max_ns\":" << t.max_ns << "}\n";
  }
}

}  // namespace htp::obs
