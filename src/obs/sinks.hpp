// Output sinks for the telemetry layer (obs/obs.hpp):
//   * RenderStatsReport  — human-readable aligned table of a Snapshot,
//   * WriteChromeTrace   — Chrome trace_event JSON ("X" complete events,
//                          one lane per thread) for chrome://tracing /
//                          Perfetto,
//   * WriteJsonlSnapshot — one JSON object per line per metric, the
//                          machine-readable stream the benches emit.
// The schema-versioned RunReport artifact has its own assembler
// (obs/report.hpp).
//
// All caller-provided strings (bench names, scopes, timer names, arg keys,
// lane names) are routed through EscapeJson (obs/json.hpp) before being
// interpolated into JSON, so hostile names cannot produce an invalid
// artifact. The sinks operate on plain Snapshot / TraceEvent data, so they
// compile identically with HTP_OBS_ENABLED=OFF (where every snapshot is
// empty).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace htp::obs {

/// Aligned text report: all counters, then all timers (ms), then all
/// histograms. Zero-valued entries are kept so the report always names
/// every instrumented subsystem.
std::string RenderStatsReport(const Snapshot& snapshot);

/// Chrome trace_event JSON: {"traceEvents":[...]} with one "X" (complete)
/// event per span plus thread_name metadata naming each lane. Timestamps
/// are microseconds since the obs epoch. Lanes take their names from
/// `lane_names` (indexed by tid; obs::TakeLaneNames()) — the runtime names
/// pool workers `worker-<i>` by pool index, so traces from repeated runs
/// line up — and fall back to `htp-thread-<tid>` for unnamed lanes. Loads
/// in chrome://tracing and https://ui.perfetto.dev.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      const std::vector<std::string>& lane_names = {});

/// JSONL: one line per counter
///   {"bench":B,"scope":S,"type":"counter","name":N,"kind":"sum","value":V}
/// per recorded timer
///   {"bench":B,"scope":S,"type":"timer","name":N,"count":C,
///    "total_ns":T,"min_ns":m,"max_ns":M}
/// and per recorded histogram
///   {"bench":B,"scope":S,"type":"histogram","name":N,"kind":"value",
///    "count":C,"sum":S,"min":m,"max":M,"buckets":[...]}
/// `bench` and `scope` let concatenated streams from several runs stay
/// self-describing (e.g. bench name / circuit name).
void WriteJsonlSnapshot(std::ostream& os, const Snapshot& snapshot,
                        std::string_view bench, std::string_view scope);

}  // namespace htp::obs
