#include "partition/annealing.hpp"

#include <cmath>

#include "netlist/rng.hpp"
#include "partition/move_oracle.hpp"

namespace htp {

AnnealingStats AnnealHtp(TreePartition& tp, const HierarchySpec& spec,
                         const AnnealingParams& params) {
  HTP_CHECK(params.cooling > 0.0 && params.cooling < 1.0);
  HTP_CHECK(params.moves_per_node > 0.0);
  const Hypergraph& hg = tp.hypergraph();
  Rng rng(params.seed);

  AnnealingStats stats;
  stats.initial_cost = PartitionCost(tp, spec);
  HtpMoveOracle oracle(tp, spec);
  const std::vector<BlockId> leaves = tp.Leaves();
  if (leaves.size() < 2 || hg.num_nodes() == 0) {
    stats.final_cost = stats.initial_cost;
    return stats;
  }

  double cost = stats.initial_cost;
  double best_cost = cost;
  // Remember the best visited assignment so the result is monotone.
  std::vector<BlockId> best_leaf(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) best_leaf[v] = tp.leaf_of(v);

  double temperature =
      std::max(1e-6, params.initial_temperature_factor * stats.initial_cost /
                         static_cast<double>(hg.num_nodes()));
  const std::size_t proposals_per_sweep = static_cast<std::size_t>(
      params.moves_per_node * static_cast<double>(hg.num_nodes()));

  std::size_t stagnant = 0;
  for (std::size_t sweep = 0;
       sweep < params.max_sweeps && stagnant < params.patience; ++sweep) {
    ++stats.sweeps;
    bool improved = false;
    for (std::size_t p = 0; p < proposals_per_sweep; ++p) {
      const NodeId v = static_cast<NodeId>(rng.next_below(hg.num_nodes()));
      const BlockId target =
          leaves[static_cast<std::size_t>(rng.next_below(leaves.size()))];
      if (target == tp.leaf_of(v) || !oracle.Feasible(v, target)) continue;
      const double delta = oracle.Delta(v, target);
      // Metropolis acceptance.
      if (delta > 0.0 && !rng.next_bool(std::exp(-delta / temperature)))
        continue;
      oracle.Apply(v, target);
      cost += delta;
      ++stats.accepted;
      if (cost < best_cost - 1e-12) {
        best_cost = cost;
        for (NodeId u = 0; u < hg.num_nodes(); ++u)
          best_leaf[u] = tp.leaf_of(u);
        improved = true;
      }
    }
    stagnant = improved ? 0 : stagnant + 1;
    temperature *= params.cooling;
  }

  // Restore the best visited state.
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (tp.leaf_of(v) != best_leaf[v]) oracle.Apply(v, best_leaf[v]);
  stats.final_cost = best_cost;
  return stats;
}

}  // namespace htp
