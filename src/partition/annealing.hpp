// Simulated-annealing refinement for HTP — a second iterative improver
// alongside the generalized FM, used to sanity-check that Table 3's
// improvements are not an artifact of one local-search design (see
// bench/ablation_refiner). Moves are single-node leaf reassignments with
// the exact Equation-(1) delta; the acceptance rule is Metropolis with a
// geometric cooling schedule; capacity feasibility is enforced per move.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/tree_partition.hpp"

namespace htp {

/// Annealing schedule parameters.
struct AnnealingParams {
  /// Initial temperature as a fraction of the initial cost per node.
  double initial_temperature_factor = 0.05;
  /// Multiplicative cooling per sweep.
  double cooling = 0.92;
  /// Node-move proposals per sweep = this factor times the node count.
  double moves_per_node = 4.0;
  /// Sweeps with no accepted improving move before stopping.
  std::size_t patience = 6;
  std::size_t max_sweeps = 120;
  std::uint64_t seed = 1;
};

/// Refinement statistics.
struct AnnealingStats {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::size_t sweeps = 0;
  std::size_t accepted = 0;
};

/// Anneals `tp` in place. The result never costs more than the input (the
/// best visited state is restored at the end) and respects every capacity
/// the input respected.
AnnealingStats AnnealHtp(TreePartition& tp, const HierarchySpec& spec,
                         const AnnealingParams& params = {});

}  // namespace htp
