#include "partition/exhaustive.hpp"

#include <algorithm>
#include <limits>

namespace htp {
namespace {

class Enumerator {
 public:
  Enumerator(const Hypergraph& hg, const HierarchySpec& spec,
             std::size_t max_evaluations)
      : hg_(hg), spec_(spec), max_eval_(max_evaluations),
        root_level_(spec.LevelForSize(hg.total_size())) {
    assign_.resize(root_level_ + 1);
  }

  std::optional<ExhaustiveResult> Run() {
    std::vector<double> node_sizes(hg_.num_nodes());
    for (NodeId v = 0; v < hg_.num_nodes(); ++v)
      node_sizes[v] = hg_.node_size(v);
    EnumStep(0, node_sizes);
    if (aborted_ || best_cost_ == std::numeric_limits<double>::infinity())
      return std::nullopt;
    return BuildResult();
  }

 private:
  // Number of groups realizable at step `l` (product of branch bounds of
  // the levels above, capped at the item count).
  std::size_t GroupBudget(Level l, std::size_t items) const {
    std::size_t budget = 1;
    for (Level i = l + 1; i <= root_level_; ++i) {
      budget *= spec_.max_branches(i);
      if (budget >= items) return items;
    }
    return std::min(budget, items);
  }

  // Groups the items of step `l` (level-(l-1) blocks, or nodes at l = 0)
  // into level-l blocks by canonical set-partition enumeration.
  void EnumStep(Level l, const std::vector<double>& item_sizes) {
    if (aborted_) return;
    std::vector<double> group_sizes;
    std::vector<std::size_t> group_items;
    assign_[l].assign(item_sizes.size(), 0);
    const std::size_t budget = GroupBudget(l, item_sizes.size());
    const std::size_t max_items_per_group =
        l == 0 ? item_sizes.size() : spec_.max_branches(l);
    AssignItem(l, 0, item_sizes, group_sizes, group_items, budget,
               max_items_per_group);
  }

  void AssignItem(Level l, std::size_t item,
                  const std::vector<double>& item_sizes,
                  std::vector<double>& group_sizes,
                  std::vector<std::size_t>& group_items, std::size_t budget,
                  std::size_t max_items_per_group) {
    if (aborted_) return;
    if (item == item_sizes.size()) {
      if (l == root_level_) {
        if (group_sizes.size() == 1) Evaluate();
        return;
      }
      EnumStep(l + 1, group_sizes);
      return;
    }
    const double s = item_sizes[item];
    // Join an existing group.
    for (std::size_t g = 0; g < group_sizes.size(); ++g) {
      if (group_items[g] + 1 > max_items_per_group) continue;
      if (group_sizes[g] + s > spec_.capacity(l) + 1e-9) continue;
      assign_[l][item] = g;
      group_sizes[g] += s;
      ++group_items[g];
      AssignItem(l, item + 1, item_sizes, group_sizes, group_items, budget,
                 max_items_per_group);
      group_sizes[g] -= s;
      --group_items[g];
    }
    // Open a new group (canonical: groups appear in first-item order).
    if (group_sizes.size() < budget && s <= spec_.capacity(l) + 1e-9) {
      assign_[l][item] = group_sizes.size();
      group_sizes.push_back(s);
      group_items.push_back(1);
      AssignItem(l, item + 1, item_sizes, group_sizes, group_items, budget,
                 max_items_per_group);
      group_sizes.pop_back();
      group_items.pop_back();
    }
  }

  void Evaluate() {
    if (++evaluated_ > max_eval_) {
      aborted_ = true;
      return;
    }
    // Compose per-level block ids per node.
    const NodeId n = hg_.num_nodes();
    std::vector<std::size_t> block(assign_[0]);
    double cost = 0.0;
    std::vector<std::vector<std::size_t>> block_at(root_level_);
    for (Level l = 0; l < root_level_; ++l) {
      if (l > 0)
        for (NodeId v = 0; v < n; ++v) block[v] = assign_[l][block[v]];
      block_at[l] = block;
    }
    std::vector<std::size_t> scratch;
    for (NetId e = 0; e < hg_.num_nets(); ++e) {
      for (Level l = 0; l < root_level_; ++l) {
        scratch.clear();
        for (NodeId v : hg_.pins(e)) scratch.push_back(block_at[l][v]);
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        if (scratch.size() <= 1) break;
        cost += spec_.weight(l) * static_cast<double>(scratch.size()) *
                hg_.net_capacity(e);
      }
      if (cost >= best_cost_) return;  // prune: cost only grows
    }
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_assign_ = assign_;
    }
  }

  ExhaustiveResult BuildResult() const {
    // Materialize the best assignment as a TreePartition: create blocks per
    // level top-down following the grouping maps.
    TreePartition tp(hg_, root_level_);
    // blocks[l][g] = BlockId of group g at level l.
    std::vector<std::vector<BlockId>> blocks(root_level_ + 1);
    blocks[root_level_] = {TreePartition::kRoot};
    for (Level l = root_level_; l >= 1; --l) {
      const std::vector<std::size_t>& parent_of = best_assign_[l];
      blocks[l - 1].resize(parent_of.size());
      for (std::size_t child = 0; child < parent_of.size(); ++child)
        blocks[l - 1][child] = tp.AddChild(blocks[l][parent_of[child]]);
    }
    for (NodeId v = 0; v < hg_.num_nodes(); ++v)
      tp.AssignNode(v, blocks[0][best_assign_[0][v]]);

    ExhaustiveResult result{std::move(tp), best_cost_, evaluated_};
    return result;
  }

  const Hypergraph& hg_;
  const HierarchySpec& spec_;
  std::size_t max_eval_;
  Level root_level_;
  std::vector<std::vector<std::size_t>> assign_;
  std::vector<std::vector<std::size_t>> best_assign_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::size_t evaluated_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<ExhaustiveResult> ExhaustiveHtp(const Hypergraph& hg,
                                              const HierarchySpec& spec,
                                              std::size_t max_evaluations) {
  HTP_CHECK(hg.num_nodes() > 0);
  Enumerator enumerator(hg, spec, max_evaluations);
  return enumerator.Run();
}

}  // namespace htp
