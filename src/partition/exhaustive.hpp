// Exhaustive (exact) HTP solver for tiny instances.
//
// Enumerates every hierarchical tree partition of the full skeleton implied
// by the spec — canonical set partitions at each level (smallest-index
// element anchors each group) so symmetric relabelings are counted once —
// and returns the minimum-cost one. Exponential: intended for instances of
// up to ~16 unit-size nodes. Used to certify the Figure-2 optimum, to
// measure the Lemma-2 LP gap, and as the ground truth in property tests.
#pragma once

#include <optional>

#include "core/cost.hpp"
#include "core/tree_partition.hpp"

namespace htp {

/// Result of the exhaustive search.
struct ExhaustiveResult {
  TreePartition best;
  double cost = 0.0;
  std::size_t evaluated = 0;  ///< complete partitions scored
};

/// Exact minimum-cost hierarchical tree partition, or nullopt when the
/// enumeration would exceed `max_evaluations` complete partitions (the
/// search aborts as soon as the cap is hit).
std::optional<ExhaustiveResult> ExhaustiveHtp(
    const Hypergraph& hg, const HierarchySpec& spec,
    std::size_t max_evaluations = 50'000'000);

}  // namespace htp
