#include "partition/fm_bipartition.hpp"

#include <algorithm>
#include <queue>

#include "core/find_cut.hpp"

namespace htp {
namespace {

struct HeapEntry {
  double gain;
  NodeId node;
  std::uint32_t stamp;
  bool operator<(const HeapEntry& other) const {
    return gain < other.gain || (gain == other.gain && node < other.node);
  }
};

// FM pass machinery shared across passes.
class FmState {
 public:
  FmState(const Hypergraph& hg, Bipartition& part)
      : hg_(hg), part_(part), pins0_(hg.num_nets(), 0),
        stamp_(hg.num_nodes(), 0), locked_(hg.num_nodes(), 0) {
    for (NetId e = 0; e < hg.num_nets(); ++e)
      for (NodeId v : hg.pins(e))
        if (part.side[v] == 0) ++pins0_[e];
  }

  double Gain(NodeId v) const {
    double gain = 0.0;
    const bool from0 = part_.side[v] == 0;
    for (NetId e : hg_.nets(v)) {
      const std::size_t deg = hg_.net_degree(e);
      const std::size_t cnt_from = from0 ? pins0_[e] : deg - pins0_[e];
      if (cnt_from == 1) gain += hg_.net_capacity(e);       // uncuts the net
      if (deg - cnt_from == 0) gain -= hg_.net_capacity(e); // newly cuts it
    }
    return gain;
  }

  // Applies the move of v to the other side, updating cut/size/pin counts.
  void Apply(NodeId v) {
    const bool from0 = part_.side[v] == 0;
    part_.cut -= Gain(v);
    part_.size0 += from0 ? -hg_.node_size(v) : hg_.node_size(v);
    part_.side[v] = from0 ? 1 : 0;
    for (NetId e : hg_.nets(v)) pins0_[e] += from0 ? -1 : 1;
  }

  // One FM pass; returns the realized (best-prefix) gain.
  double Pass(double min_size0, double max_size0) {
    std::fill(locked_.begin(), locked_.end(), 0);
    std::priority_queue<HeapEntry> heap[2];
    for (NodeId v = 0; v < hg_.num_nodes(); ++v) {
      ++stamp_[v];
      heap[part_.side[v]].push({Gain(v), v, stamp_[v]});
    }

    std::vector<NodeId> log;
    double cum = 0.0, best_cum = 0.0;
    std::size_t best_len = 0;

    auto valid_top = [&](int s) -> bool {
      auto& h = heap[s];
      while (!h.empty()) {
        const HeapEntry top = h.top();
        if (locked_[top.node] || top.stamp != stamp_[top.node] ||
            part_.side[top.node] != s) {
          h.pop();
          continue;
        }
        return true;
      }
      return false;
    };

    auto deviation = [&](double sz) {
      if (sz < min_size0) return min_size0 - sz;
      if (sz > max_size0) return sz - max_size0;
      return 0.0;
    };

    for (;;) {
      const bool has0 = valid_top(0);
      const bool has1 = valid_top(1);
      // A move may step outside the window by at most its own node's size
      // (so exact windows still admit swap sequences); once outside, only
      // strictly restoring moves are allowed. Best prefixes are recorded
      // only at window-respecting states, so the pass result stays feasible.
      auto feasible = [&](int s) {
        if (!(s == 0 ? has0 : has1)) return false;
        const NodeId v = heap[s].top().node;
        const double sz = hg_.node_size(v);
        const double ns = part_.size0 + (s == 0 ? -sz : sz);
        const double dev_now = deviation(part_.size0);
        const double dev_next = deviation(ns);
        if (dev_next <= 1e-9) return true;
        if (dev_now <= 1e-9) return dev_next <= sz + 1e-9;
        return dev_next < dev_now - 1e-12;
      };
      const bool f0 = feasible(0);
      const bool f1 = feasible(1);
      int pick = -1;
      if (f0 && f1)
        pick = heap[0].top().gain >= heap[1].top().gain ? 0 : 1;
      else if (f0)
        pick = 0;
      else if (f1)
        pick = 1;
      if (pick < 0) break;

      const HeapEntry entry = heap[pick].top();
      heap[pick].pop();
      const NodeId v = entry.node;
      const double gain = Gain(v);  // authoritative (entry may round-trip)
      Apply(v);
      locked_[v] = 1;
      log.push_back(v);
      cum += gain;
      if (cum > best_cum + 1e-12 && deviation(part_.size0) <= 1e-9) {
        best_cum = cum;
        best_len = log.size();
      }
      // Refresh neighbors whose gains changed.
      for (NetId e : hg_.nets(v)) {
        for (NodeId u : hg_.pins(e)) {
          if (locked_[u]) continue;
          ++stamp_[u];
          heap[part_.side[u]].push({Gain(u), u, stamp_[u]});
        }
      }
    }

    // Roll back the tail after the best prefix.
    for (std::size_t i = log.size(); i > best_len; --i) Apply(log[i - 1]);
    return best_cum;
  }

 private:
  const Hypergraph& hg_;
  Bipartition& part_;
  std::vector<std::size_t> pins0_;
  std::vector<std::uint32_t> stamp_;
  std::vector<char> locked_;
};

}  // namespace

Bipartition EvaluateBipartition(const Hypergraph& hg, std::vector<char> side) {
  HTP_CHECK(side.size() == hg.num_nodes());
  Bipartition part;
  part.side = std::move(side);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (part.side[v] == 0) part.size0 += hg.node_size(v);
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    std::size_t zero = 0;
    for (NodeId v : hg.pins(e)) zero += part.side[v] == 0;
    if (zero > 0 && zero < hg.net_degree(e)) part.cut += hg.net_capacity(e);
  }
  return part;
}

Bipartition FmRefineBipartition(const Hypergraph& hg, Bipartition initial,
                                const FmBipartitionParams& params) {
  HTP_CHECK(initial.side.size() == hg.num_nodes());
  Bipartition part = EvaluateBipartition(hg, std::move(initial.side));
  HTP_CHECK_MSG(part.size0 >= params.min_size0 - 1e-9 &&
                    part.size0 <= params.max_size0 + 1e-9,
                "initial bipartition violates the size window");
  FmState state(hg, part);
  for (std::size_t pass = 0; pass < params.max_passes; ++pass) {
    if (state.Pass(params.min_size0, params.max_size0) <= 1e-12) break;
  }
  return part;
}

Bipartition FmBipartition(const Hypergraph& hg,
                          const FmBipartitionParams& params, Rng& rng) {
  HTP_CHECK(hg.num_nodes() >= 2);
  HTP_CHECK(params.min_size0 <= params.max_size0);
  HTP_CHECK(params.max_size0 > 0.0);

  // Initial side 0: breadth-first growth under unit lengths with min-cut
  // prefix selection (the same engine as find_cut with a flat metric).
  const std::vector<double> unit(hg.num_nets(), 1.0);
  const CarveResult seed =
      MetricFindCut(hg, unit, params.min_size0, params.max_size0, rng);

  std::vector<char> side(hg.num_nodes(), 1);
  double size0 = 0.0;
  for (NodeId v : seed.nodes) {
    side[v] = 0;
    size0 += hg.node_size(v);
  }
  if (size0 < params.min_size0 - 1e-9 || size0 > params.max_size0 + 1e-9) {
    // Degenerate fallback: greedy fill in random order up to the window.
    std::fill(side.begin(), side.end(), 1);
    std::vector<NodeId> order(hg.num_nodes());
    for (NodeId v = 0; v < hg.num_nodes(); ++v) order[v] = v;
    rng.shuffle(order);
    size0 = 0.0;
    for (NodeId v : order) {
      if (size0 >= params.min_size0) break;
      if (size0 + hg.node_size(v) > params.max_size0 + 1e-9) continue;
      side[v] = 0;
      size0 += hg.node_size(v);
    }
    HTP_CHECK_MSG(size0 >= params.min_size0 - 1e-9,
                  "cannot satisfy the bipartition size window");
  }
  Bipartition initial;
  initial.side = std::move(side);
  return FmRefineBipartition(hg, std::move(initial), params);
}

}  // namespace htp
