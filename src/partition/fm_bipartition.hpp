// Fiduccia–Mattheyses two-way hypergraph partitioning with a size window.
//
// The workhorse behind the RFM baseline's find_cut and GFM's bottom-level
// multiway partition (via recursive bisection). Classic FM: passes of
// single-node moves in best-gain-first order with every node moved at most
// once per pass, tracking the best prefix and rolling the tail back.
// Selection uses two lazy max-heaps (one per source side) with per-node
// version stamps instead of gain buckets, which supports real-valued net
// capacities.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/hypergraph.hpp"
#include "netlist/rng.hpp"

namespace htp {

/// A two-way partition: side[v] in {0,1}.
struct Bipartition {
  std::vector<char> side;
  double cut = 0.0;    ///< total capacity of nets with pins on both sides
  double size0 = 0.0;  ///< total node size on side 0
};

/// Computes the cut and side-0 size of an assignment.
Bipartition EvaluateBipartition(const Hypergraph& hg, std::vector<char> side);

/// Parameters of the FM refinement.
struct FmBipartitionParams {
  double min_size0 = 0.0;  ///< hard lower bound on s(side 0)
  double max_size0 = 0.0;  ///< hard upper bound on s(side 0)
  std::size_t max_passes = 16;
  std::uint64_t seed = 1;
};

/// Refines an initial bipartition (which must respect the size window) by
/// FM passes until a pass yields no improvement. Returns the refined
/// partition; never worse than the input.
Bipartition FmRefineBipartition(const Hypergraph& hg, Bipartition initial,
                                const FmBipartitionParams& params);

/// Grows a random-seeded initial side 0 of size within [min_size0 ..
/// max_size0] (breadth-first over nets, min-cut prefix), then FM-refines it.
/// Falls back to whatever window-respecting split it can make on degenerate
/// inputs.
Bipartition FmBipartition(const Hypergraph& hg,
                          const FmBipartitionParams& params, Rng& rng);

}  // namespace htp
