#include "partition/gfm.hpp"

#include <algorithm>
#include <map>

#include "netlist/subhypergraph.hpp"
#include "partition/rfm.hpp"

namespace htp {
namespace {

// Greedy agglomerative grouping of `k` items (current blocks) into parents
// with at most `max_items` children and total size at most `capacity`.
// Heaviest feasible connectivity merge first; returns the parent index per
// item.
std::vector<std::size_t> AgglomerateGroups(
    const std::vector<double>& sizes,
    const std::map<std::pair<std::size_t, std::size_t>, double>& weights,
    std::size_t max_items, double capacity) {
  const std::size_t k = sizes.size();
  std::vector<std::size_t> group(k);
  std::vector<double> group_size = sizes;
  std::vector<std::size_t> group_items(k, 1);
  for (std::size_t i = 0; i < k; ++i) group[i] = i;

  // Group-to-group accumulated weights, updated on merge.
  std::map<std::pair<std::size_t, std::size_t>, double> w = weights;
  auto feasible = [&](std::size_t a, std::size_t b) {
    return group_items[a] + group_items[b] <= max_items &&
           group_size[a] + group_size[b] <= capacity + 1e-9;
  };

  for (;;) {
    double best_w = -1.0;
    std::pair<std::size_t, std::size_t> best{0, 0};
    for (const auto& [pair, weight] : w) {
      if (!feasible(pair.first, pair.second)) continue;
      if (weight > best_w) {
        best_w = weight;
        best = pair;
      }
    }
    if (best_w < 0.0) {
      // No connected feasible merge left; also merge disconnected groups
      // (smallest first) so the count keeps shrinking toward the root.
      std::vector<std::size_t> alive;
      for (std::size_t i = 0; i < k; ++i)
        if (group[i] == i) alive.push_back(i);
      std::sort(alive.begin(), alive.end(), [&](std::size_t a, std::size_t b) {
        return group_size[a] < group_size[b];
      });
      bool merged = false;
      for (std::size_t i = 0; i < alive.size() && !merged; ++i)
        for (std::size_t j = i + 1; j < alive.size() && !merged; ++j)
          if (feasible(alive[i], alive[j])) {
            best = {alive[i], alive[j]};
            merged = true;
          }
      if (!merged) break;
    }

    // Merge best.second into best.first.
    const auto [a, b] = best;
    for (std::size_t i = 0; i < k; ++i)
      if (group[i] == b) group[i] = a;
    group_size[a] += group_size[b];
    group_items[a] += group_items[b];
    std::map<std::pair<std::size_t, std::size_t>, double> nw;
    for (const auto& [pair, weight] : w) {
      std::size_t x = pair.first == b ? a : pair.first;
      std::size_t y = pair.second == b ? a : pair.second;
      if (x == y) continue;
      if (x > y) std::swap(x, y);
      nw[{x, y}] += weight;
    }
    w = std::move(nw);
  }

  // Compact parent ids to [0, #groups).
  std::vector<std::size_t> compact(k, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  std::vector<std::size_t> parents(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t rep = group[i];
    if (compact[rep] == static_cast<std::size_t>(-1)) compact[rep] = next++;
    parents[i] = compact[rep];
  }
  return parents;
}

}  // namespace

TreePartition RunGfm(const Hypergraph& hg, const HierarchySpec& spec,
                     const GfmParams& params) {
  HTP_CHECK(hg.num_nodes() > 0);
  Rng rng(params.seed);
  const Level root_level = spec.LevelForSize(hg.total_size());

  // Leaf-slot budget: the tree can host at most prod_l K_l leaves.
  double slots = 1.0;
  for (Level l = 1; l <= root_level; ++l)
    slots *= static_cast<double>(spec.max_branches(l));

  // Phase 1: carve the bottom-level multiway partition (capacity C_0 with
  // an FM min-cut carve per block), optimizing level-0 cuts only.
  std::vector<BlockId> leaf_of(hg.num_nodes(), kInvalidBlock);
  std::vector<NodeId> remaining(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) remaining[v] = v;
  BlockId num_leaves = 0;
  double granularity = 1e-12;
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    granularity = std::max(granularity, hg.node_size(v));
  const double c0 = spec.AchievableCapacity(0, hg.unit_sizes(), granularity);
  double slots_left = slots;
  while (!remaining.empty()) {
    double rem_size = 0.0;
    for (NodeId v : remaining) rem_size += hg.node_size(v);
    std::vector<NodeId> block_nodes;
    if (rem_size <= c0 || slots_left <= 1.0) {
      block_nodes = remaining;
      remaining.clear();
    } else {
      const double margin =
          hg.unit_sizes() ? 0.0
                          : std::max(0.0, slots_left - 2.0) * granularity;
      const double lb = std::min(
          c0, std::max(rem_size - ((slots_left - 1.0) * c0 - margin),
                       rem_size / slots_left));
      SubHypergraph sub = InducedSubHypergraph(hg, remaining);
      // Safepoint: before each phase-1 carve — degrade, never abort (see
      // GfmParams::cancel).
      const std::size_t passes =
          params.cancel.Cancelled() ? 1 : params.fm_passes;
      const CarveResult cut = FmCarve(sub.hg, lb, c0, rng, passes);
      std::vector<char> taken(sub.hg.num_nodes(), 0);
      for (NodeId local : cut.nodes) {
        taken[local] = 1;
        block_nodes.push_back(sub.node_to_parent[local]);
      }
      std::vector<NodeId> rest;
      for (NodeId local = 0; local < sub.hg.num_nodes(); ++local)
        if (!taken[local]) rest.push_back(sub.node_to_parent[local]);
      remaining = std::move(rest);
    }
    for (NodeId v : block_nodes) leaf_of[v] = num_leaves;
    ++num_leaves;
    slots_left -= 1.0;
  }

  // Phase 2: bottom-up grouping. childmap[l] = parent index of each
  // level-(l-1) block at level l.
  std::vector<std::vector<std::size_t>> parent_of_child(root_level + 1);
  std::vector<BlockId> cluster_of(leaf_of.begin(), leaf_of.end());
  std::size_t num_clusters = num_leaves;
  for (Level l = 1; l <= root_level; ++l) {
    // Sizes and pairwise connectivity of the current blocks.
    std::vector<double> sizes(num_clusters, 0.0);
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      sizes[cluster_of[v]] += hg.node_size(v);
    SubHypergraph contracted =
        ContractClusters(hg, cluster_of, static_cast<BlockId>(num_clusters));
    std::map<std::pair<std::size_t, std::size_t>, double> weights;
    for (NetId e = 0; e < contracted.hg.num_nets(); ++e) {
      const auto pins = contracted.hg.pins(e);
      for (std::size_t i = 0; i < pins.size(); ++i)
        for (std::size_t j = i + 1; j < pins.size(); ++j)
          weights[{std::min(pins[i], pins[j]), std::max(pins[i], pins[j])}] +=
              contracted.hg.net_capacity(e);
    }
    // At the root level the grouping must collapse to a single group so the
    // tree has one root; feasibility overruns there (more than K_L children)
    // are surfaced by ValidatePartition rather than breaking assembly.
    const std::size_t max_items =
        l == root_level ? hg.num_nodes() : spec.max_branches(l);
    const double cap = l == root_level ? hg.total_size() : spec.capacity(l);
    parent_of_child[l] = AgglomerateGroups(sizes, weights, max_items, cap);
    std::size_t next_count = 0;
    for (std::size_t p : parent_of_child[l])
      next_count = std::max(next_count, p + 1);
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      cluster_of[v] = static_cast<BlockId>(parent_of_child[l][cluster_of[v]]);
    num_clusters = next_count;
  }
  HTP_CHECK_MSG(num_clusters == 1, "bottom-up grouping did not reach a root");

  // Assemble the TreePartition top-down: walk the grouping levels downward,
  // creating one child block per group.
  TreePartition tp(hg, root_level);
  std::vector<BlockId> current{TreePartition::kRoot};
  for (Level l = root_level; l >= 1; --l) {
    // parent_of_child[l] maps level-(l-1) groups to level-l groups.
    const std::vector<std::size_t>& parents = parent_of_child[l];
    std::size_t child_count = parents.size();
    std::vector<BlockId> next(child_count);
    for (std::size_t c = 0; c < child_count; ++c) {
      BlockId parent_block = current[parents[c]];
      // Descend single-child chains when the parent block sits above l.
      while (tp.level(parent_block) > l) parent_block = tp.AddChild(parent_block);
      next[c] = tp.AddChild(parent_block);
    }
    current = std::move(next);
  }
  // `current` now holds the level-0 leaf block per bottom block index.
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    tp.AssignNode(v, current[leaf_of[v]]);
  return tp;
}

}  // namespace htp
