// The GFM baseline (Kuo–Liu–Cheng, DAC'96 [9]): bottom-up construction
// "from a multiway partition at the bottom level".
//
// Phase 1 carves the netlist into level-0 blocks (capacity C_0) with
// FM min-cut carving — optimizing only the bottom-level cut, which is
// exactly the myopia the paper attributes to GFM ("optimize the partition
// at one level ... without considering the global cost").
// Phase 2 groups blocks bottom-up: at each level the current blocks are
// contracted into supernodes and greedily agglomerated by connectivity
// weight under the K_l / C_l bounds, yielding the parents of the next
// level, until the root.
//
// [9]'s exact procedure is not available; this reconstruction follows the
// paper's description of its structure and failure mode (see DESIGN.md).
#pragma once

#include "core/tree_partition.hpp"
#include "netlist/rng.hpp"
#include "runtime/budget.hpp"

namespace htp {

/// Parameters of the GFM baseline.
struct GfmParams {
  std::size_t fm_passes = 16;
  std::uint64_t seed = 1;
  /// Cooperative cancellation. Like RFM, GFM cannot return a partial
  /// construction, so a fired token degrades the remaining phase-1 FM
  /// carves to a single pass; phase 2 (agglomeration) is cheap and always
  /// runs. The returned partition is always complete. Inert by default.
  CancellationToken cancel;
};

/// Runs the GFM baseline on `hg` with respect to `spec`.
TreePartition RunGfm(const Hypergraph& hg, const HierarchySpec& spec,
                     const GfmParams& params = {});

}  // namespace htp
