#include "partition/htp_fm.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "obs/obs.hpp"
#include "partition/move_oracle.hpp"

namespace htp {
namespace {

obs::Counter c_refines("fm.refines");
obs::Counter c_passes("fm.passes");
obs::Counter c_moves_applied("fm.moves_applied");
obs::Counter c_moves_kept("fm.moves_kept");
// Accepted (best-prefix) gain, in cost milli-units: gains are deterministic
// doubles, rounded once here so the counter stays an exact integer total.
obs::Counter c_gain_milli("fm.accepted_gain_milli");
// Nodes seeded into the heap by boundary-only passes; zero unless
// HtpFmParams::boundary_only is set, so full-pass totals are untouched.
obs::Counter c_boundary_seeds("fm.boundary_seeds");
obs::Timer t_refine("fm.refine");
obs::Timer t_pass("fm.pass");

struct HeapEntry {
  double gain;
  NodeId node;
  BlockId target;
  std::uint32_t stamp;
  bool operator<(const HeapEntry& other) const {
    return gain < other.gain || (gain == other.gain && node < other.node);
  }
};

class Refiner {
 public:
  Refiner(TreePartition& tp, const HierarchySpec& spec)
      : tp_(tp), hg_(tp.hypergraph()), oracle_(tp, spec),
        leaves_(tp.Leaves()), stamp_(hg_.num_nodes(), 0),
        locked_(hg_.num_nodes(), 0) {}

  struct Best {
    double gain;
    BlockId target;
  };
  std::optional<Best> BestMove(NodeId v) const {
    std::optional<Best> best;
    for (BlockId leaf : leaves_) {
      if (leaf == tp_.leaf_of(v) || !oracle_.Feasible(v, leaf)) continue;
      const double gain = -oracle_.Delta(v, leaf);
      if (!best || gain > best->gain) best = Best{gain, leaf};
    }
    return best;
  }

  // Marks every node incident to a net spanning >= 2 leaves. One O(pins)
  // sweep per pass; a pure function of the current partition, so the
  // boundary-seeded pass is exactly as deterministic as the full one.
  void MarkBoundary(std::vector<char>& boundary) const {
    std::fill(boundary.begin(), boundary.end(), 0);
    for (NetId e = 0; e < hg_.num_nets(); ++e) {
      const auto pins = hg_.pins(e);
      const BlockId first = tp_.leaf_of(pins.front());
      bool spans = false;
      for (NodeId u : pins)
        if (tp_.leaf_of(u) != first) {
          spans = true;
          break;
        }
      if (!spans) continue;
      for (NodeId u : pins) boundary[u] = 1;
    }
  }

  // One FM pass; returns the realized (best-prefix) gain.
  double Pass(std::size_t early_stop_window, bool boundary_only,
              std::size_t& moves_kept) {
    std::fill(locked_.begin(), locked_.end(), 0);
    std::priority_queue<HeapEntry> heap;
    auto push_best = [&](NodeId v) {
      if (auto best = BestMove(v))
        heap.push({best->gain, v, best->target, stamp_[v]});
    };
    std::vector<char> boundary;
    if (boundary_only) {
      boundary.resize(hg_.num_nodes());
      MarkBoundary(boundary);
      c_boundary_seeds.Add(static_cast<std::uint64_t>(
          std::count(boundary.begin(), boundary.end(), char{1})));
    }
    for (NodeId v = 0; v < hg_.num_nodes(); ++v) {
      ++stamp_[v];
      if (!boundary_only || boundary[v]) push_best(v);
    }

    std::vector<std::pair<NodeId, BlockId>> log;  // (node, previous leaf)
    double cum = 0.0, best_cum = 0.0;
    std::size_t best_len = 0, since_best = 0;
    std::vector<std::uint8_t> requeues(hg_.num_nodes(), 0);

    while (!heap.empty()) {
      const HeapEntry entry = heap.top();
      heap.pop();
      const NodeId v = entry.node;
      if (locked_[v]) continue;
      if (entry.stamp != stamp_[v]) {
        // Stale: neighbors changed since this entry was pushed.
        push_best(v);
        continue;
      }
      if (!oracle_.Feasible(v, entry.target)) {
        // Sizes shifted under us; retry with a fresh best (bounded).
        if (++requeues[v] < 32) {
          ++stamp_[v];
          push_best(v);
        }
        continue;
      }
      const double gain = -oracle_.Delta(v, entry.target);  // authoritative
      const BlockId from = tp_.leaf_of(v);
      oracle_.Apply(v, entry.target);
      locked_[v] = 1;
      log.emplace_back(v, from);
      cum += gain;
      if (cum > best_cum + 1e-12) {
        best_cum = cum;
        best_len = log.size();
        since_best = 0;
      } else if (early_stop_window > 0 && ++since_best >= early_stop_window) {
        break;
      }
      // Refresh the neighborhood.
      for (NetId e : hg_.nets(v)) {
        for (NodeId u : hg_.pins(e)) {
          if (locked_[u]) continue;
          ++stamp_[u];
          push_best(u);
        }
      }
    }

    // Roll back the tail beyond the best prefix.
    for (std::size_t i = log.size(); i > best_len; --i)
      oracle_.Apply(log[i - 1].first, log[i - 1].second);
    moves_kept += best_len;
    c_moves_applied.Add(log.size());
    c_moves_kept.Add(best_len);
    c_gain_milli.Add(
        static_cast<std::uint64_t>(std::llround(best_cum * 1000.0)));
    return best_cum;
  }

 private:
  TreePartition& tp_;
  const Hypergraph& hg_;
  HtpMoveOracle oracle_;
  std::vector<BlockId> leaves_;
  std::vector<std::uint32_t> stamp_;
  std::vector<char> locked_;
};

}  // namespace

HtpFmStats RefineHtpFm(TreePartition& tp, const HierarchySpec& spec,
                       const HtpFmParams& params) {
  HTP_CHECK_MSG(tp.fully_assigned(), "refiner needs a complete partition");
  obs::PhaseScope obs_span(t_refine);
  c_refines.Add();
  HtpFmStats stats;
  stats.initial_cost = PartitionCost(tp, spec);
  Refiner refiner(tp, spec);
  double cost = stats.initial_cost;
  for (std::size_t pass = 0; pass < params.max_passes; ++pass) {
    // Safepoint: between passes. The best-prefix rollback has run, so the
    // partition is valid and no worse than the input here.
    if (params.cancel.Cancelled()) {
      stats.completed = false;
      break;
    }
    ++stats.passes;
    c_passes.Add();
    obs::PhaseScope pass_span(t_pass, "pass", pass);
    const double gain = refiner.Pass(params.early_stop_window,
                                     params.boundary_only, stats.moves_kept);
    cost -= gain;
    if (gain <= 1e-12) break;
  }
  stats.final_cost = cost;
  return stats;
}

}  // namespace htp
