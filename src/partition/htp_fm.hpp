// Generalized Fiduccia–Mattheyses iterative improvement for HTP.
//
// [9] proposes "an iterative improvement algorithm based on the
// Fiduccia-Mattheyses method ... to improve an existing initial partition
// with a fixed tree hierarchy"; Table 3 applies it to the GFM/RFM/FLOW
// partitions (the "+" variants). This implementation generalizes classic FM
// to the hierarchical cost of Equation (1):
//
//  * a move relocates one node from its leaf to any other leaf whose whole
//    ancestor chain (up to the LCA) has capacity for it;
//  * the gain is the exact change of the total cost, computed from
//    per-net-per-level span tables maintained incrementally;
//  * passes follow FM discipline: each node moves at most once per pass,
//    moves are applied best-gain-first (lazy max-heap with version stamps),
//    and the pass rolls back to its best prefix;
//  * passes repeat until one yields no improvement.
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/tree_partition.hpp"
#include "runtime/budget.hpp"

namespace htp {

/// Parameters of the hierarchical FM refiner.
struct HtpFmParams {
  std::size_t max_passes = 12;
  /// When nonzero, a pass gives up after this many consecutive applied
  /// moves without improving on the pass's best prefix (classic FM runs the
  /// pass to exhaustion; a window trades a little quality for speed).
  std::size_t early_stop_window = 0;
  /// When true, a pass seeds its move heap with boundary nodes only (nodes
  /// touching a net that spans >= 2 leaves) instead of every node. Interior
  /// nodes still enter the heap as soon as a neighbor's move makes them
  /// relevant (the neighborhood refresh is unchanged), so the usual FM
  /// hill-climb is preserved where the action is — but a pass over a mostly
  /// settled partition costs O(boundary) instead of O(n). This is the
  /// localization the multilevel uncoarsening uses on projected partitions,
  /// where almost every node is interior (docs/scaling.md). Deterministic:
  /// the boundary set is a pure function of the current partition.
  bool boundary_only = false;
  std::uint64_t seed = 1;
  /// Cooperative cancellation, polled between passes (a pass always
  /// finishes its best-prefix rollback, so the partition stays valid and
  /// never worse than the input). Inert by default.
  CancellationToken cancel;
};

/// Statistics of a refinement run.
struct HtpFmStats {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::size_t passes = 0;
  std::size_t moves_kept = 0;  ///< moves surviving the best-prefix rollbacks
  /// False iff params.cancel fired and cut the pass loop short.
  bool completed = true;
};

/// Refines `tp` in place; the result never costs more than the input and
/// respects every capacity bound the input respected. The partition must be
/// fully assigned.
HtpFmStats RefineHtpFm(TreePartition& tp, const HierarchySpec& spec,
                       const HtpFmParams& params = {});

}  // namespace htp
