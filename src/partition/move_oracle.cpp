#include "partition/move_oracle.hpp"

namespace htp {
namespace {

double SpanValue(std::size_t f) {
  return f >= 2 ? static_cast<double>(f) : 0.0;
}

}  // namespace

HtpMoveOracle::HtpMoveOracle(TreePartition& tp, const HierarchySpec& spec)
    : tp_(&tp), spec_(&spec), hg_(&tp.hypergraph()),
      levels_(tp.root_level()) {
  HTP_CHECK_MSG(tp.fully_assigned(), "oracle needs a complete partition");
  counts_.resize(static_cast<std::size_t>(hg_->num_nets()) * levels_);
  for (NetId e = 0; e < hg_->num_nets(); ++e)
    for (NodeId v : hg_->pins(e))
      for (Level l = 0; l < levels_; ++l) Inc(e, l, tp.block_at(v, l));
}

std::size_t HtpMoveOracle::Distinct(NetId e, Level l) const {
  return counts_[Slot(e, l)].size();
}

std::size_t HtpMoveOracle::Count(NetId e, Level l, BlockId q) const {
  for (const auto& [block, count] : counts_[Slot(e, l)])
    if (block == q) return count;
  return 0;
}

void HtpMoveOracle::Inc(NetId e, Level l, BlockId q) {
  SlotVec& vec = counts_[Slot(e, l)];
  for (auto& [block, count] : vec) {
    if (block == q) {
      ++count;
      return;
    }
  }
  vec.emplace_back(q, 1);
}

void HtpMoveOracle::Dec(NetId e, Level l, BlockId q) {
  SlotVec& vec = counts_[Slot(e, l)];
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (vec[i].first == q) {
      if (--vec[i].second == 0) {
        vec[i] = vec.back();
        vec.pop_back();
      }
      return;
    }
  }
  HTP_CHECK_MSG(false, "span table underflow");
}

double HtpMoveOracle::Delta(NodeId v, BlockId target) const {
  const BlockId from = tp_->leaf_of(v);
  if (from == target) return 0.0;
  const Level lca = tp_->LcaLevel(from, target);
  double delta = 0.0;
  for (NetId e : hg_->nets(v)) {
    for (Level l = 0; l < lca; ++l) {
      const BlockId oldb = tp_->ancestor(from, l);
      const BlockId newb = tp_->ancestor(target, l);
      const std::size_t f = Distinct(e, l);
      const std::size_t cnt_old = Count(e, l, oldb);
      const std::size_t cnt_new = Count(e, l, newb);
      const std::size_t f_after =
          f - (cnt_old == 1 ? 1 : 0) + (cnt_new == 0 ? 1 : 0);
      delta += spec_->weight(l) * hg_->net_capacity(e) *
               (SpanValue(f_after) - SpanValue(f));
    }
  }
  return delta;
}

bool HtpMoveOracle::Feasible(NodeId v, BlockId target) const {
  const BlockId from = tp_->leaf_of(v);
  if (from == target) return false;
  const Level lca = tp_->LcaLevel(from, target);
  const double s = hg_->node_size(v);
  for (Level l = 0; l < lca; ++l) {
    const BlockId q = tp_->ancestor(target, l);
    if (tp_->block_size(q) + s > spec_->capacity(l) + 1e-9) return false;
  }
  return true;
}

void HtpMoveOracle::Apply(NodeId v, BlockId target) {
  const BlockId from = tp_->leaf_of(v);
  if (from == target) return;
  const Level lca = tp_->LcaLevel(from, target);
  for (NetId e : hg_->nets(v)) {
    for (Level l = 0; l < lca; ++l) {
      Dec(e, l, tp_->ancestor(from, l));
      Inc(e, l, tp_->ancestor(target, l));
    }
  }
  tp_->MoveNode(v, target);
}

}  // namespace htp
