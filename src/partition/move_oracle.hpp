// Shared incremental move evaluation for HTP refiners.
//
// Both the generalized FM improver and the simulated-annealing refiner
// need the same three primitives over a TreePartition:
//   * Delta(v, leaf)    — exact Equation-(1) cost change of moving v,
//   * Feasible(v, leaf) — capacity feasibility along the target's chain,
//   * Apply(v, leaf)    — perform the move keeping span tables in sync.
// The oracle maintains per-net-per-level pin counts per block (tiny flat
// maps bounded by net degree), so Delta costs O(deg(v) * LCA-level).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/tree_partition.hpp"

namespace htp {

/// Incremental span bookkeeping + move evaluation over one partition.
/// The partition must be fully assigned at construction and may be mutated
/// ONLY through Apply() while the oracle is alive.
class HtpMoveOracle {
 public:
  HtpMoveOracle(TreePartition& tp, const HierarchySpec& spec);

  /// Exact change of cost(P) if `v` moved to `target` (0 when target is
  /// v's current leaf).
  double Delta(NodeId v, BlockId target) const;

  /// True when every ancestor of `target` below the LCA has room for v.
  bool Feasible(NodeId v, BlockId target) const;

  /// Moves v to `target`, updating the partition and the span tables.
  void Apply(NodeId v, BlockId target);

  const TreePartition& partition() const { return *tp_; }

 private:
  std::size_t Slot(NetId e, Level l) const { return e * levels_ + l; }
  std::size_t Distinct(NetId e, Level l) const;
  std::size_t Count(NetId e, Level l, BlockId q) const;
  void Inc(NetId e, Level l, BlockId q);
  void Dec(NetId e, Level l, BlockId q);

  TreePartition* tp_;
  const HierarchySpec* spec_;
  const Hypergraph* hg_;
  std::size_t levels_;
  using SlotVec = std::vector<std::pair<BlockId, std::uint32_t>>;
  std::vector<SlotVec> counts_;
};

}  // namespace htp
