#include "partition/multilevel.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/build_partition.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {
namespace {

// One randomized heavy-edge matching pass: returns the cluster id per node
// (matched pairs share an id; singletons keep their own) and the cluster
// count. Connectivity between u and v is sum over shared nets of
// c(e)/(|e|-1), the standard hyperedge weight split.
std::vector<BlockId> HeavyEdgeMatching(const Hypergraph& hg,
                                       double max_cluster_size, Rng& rng,
                                       BlockId& num_clusters) {
  const NodeId n = hg.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);

  std::vector<NodeId> match(n, kInvalidNode);
  std::unordered_map<NodeId, double> connectivity;
  for (NodeId v : order) {
    if (match[v] != kInvalidNode) continue;
    connectivity.clear();
    for (NetId e : hg.nets(v)) {
      const double w =
          hg.net_capacity(e) / static_cast<double>(hg.net_degree(e) - 1);
      for (NodeId u : hg.pins(e)) {
        if (u == v || match[u] != kInvalidNode) continue;
        if (hg.node_size(v) + hg.node_size(u) > max_cluster_size) continue;
        connectivity[u] += w;
      }
    }
    NodeId best = kInvalidNode;
    double best_w = 0.0;
    for (const auto& [u, w] : connectivity) {
      if (w > best_w || (w == best_w && (best == kInvalidNode || u < best))) {
        best = u;
        best_w = w;
      }
    }
    if (best != kInvalidNode) {
      match[v] = best;
      match[best] = v;
    }
  }

  std::vector<BlockId> cluster(n, kInvalidBlock);
  num_clusters = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (cluster[v] != kInvalidBlock) continue;
    cluster[v] = num_clusters;
    if (match[v] != kInvalidNode) cluster[match[v]] = num_clusters;
    ++num_clusters;
  }
  return cluster;
}

}  // namespace

Bipartition MultilevelBipartition(const Hypergraph& hg,
                                  const FmBipartitionParams& window, Rng& rng,
                                  const MultilevelParams& params) {
  HTP_CHECK(hg.num_nodes() >= 2);
  HTP_CHECK(params.min_shrink > 0.0 && params.min_shrink < 1.0);

  // Coarsening phase: keep the contraction maps for projection.
  std::vector<Hypergraph> levels;  // levels[0] = input
  std::vector<std::vector<BlockId>> cluster_maps;  // node@i -> node@i+1
  levels.push_back(hg);  // copy; levels are owned here
  const double max_cluster =
      std::max(params.max_cluster_fraction * hg.total_size(),
               2.0 * hg.total_size() / static_cast<double>(hg.num_nodes()));
  while (levels.back().num_nodes() > params.coarsest_nodes) {
    const Hypergraph& current = levels.back();
    BlockId num_clusters = 0;
    std::vector<BlockId> cluster =
        HeavyEdgeMatching(current, max_cluster, rng, num_clusters);
    if (static_cast<double>(num_clusters) >
        (1.0 - params.min_shrink) * static_cast<double>(current.num_nodes()))
      break;  // matching stalled
    SubHypergraph coarse = ContractClusters(current, cluster, num_clusters);
    cluster_maps.push_back(std::move(cluster));
    levels.push_back(std::move(coarse.hg));
  }

  // Initial solution at the coarsest level, then project-and-refine up.
  FmBipartitionParams fm = window;
  fm.max_passes = params.fm_passes;
  Bipartition part = FmBipartition(levels.back(), fm, rng);
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    std::vector<char> side(levels[level].num_nodes());
    for (NodeId v = 0; v < levels[level].num_nodes(); ++v)
      side[v] = part.side[cluster_maps[level][v]];
    Bipartition projected;
    projected.side = std::move(side);
    part = FmRefineBipartition(levels[level], std::move(projected), fm);
  }
  return part;
}

CarveFn MultilevelCarver(MultilevelParams params) {
  return [params](const Hypergraph& hg, std::span<const double>, double lb,
                  double ub, Rng& rng) {
    CarveResult result;
    if (hg.total_size() <= ub) {
      for (NodeId v = 0; v < hg.num_nodes(); ++v) result.nodes.push_back(v);
      result.size = hg.total_size();
      result.in_window = hg.total_size() >= lb;
      return result;
    }
    FmBipartitionParams window;
    window.min_size0 = lb;
    window.max_size0 = ub;
    window.max_passes = params.fm_passes;
    Bipartition part;
    try {
      part = MultilevelBipartition(hg, window, rng, params);
    } catch (const Error&) {
      // Coarse supernodes can be too chunky for a narrow window; fall back
      // to the flat FM bipartitioner on the original hypergraph.
      part = FmBipartition(hg, window, rng);
    }
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      if (part.side[v] == 0) result.nodes.push_back(v);
    result.cut_value = part.cut;
    result.size = part.size0;
    result.in_window =
        part.size0 >= lb - 1e-9 && part.size0 <= ub + 1e-9;
    return result;
  };
}

TreePartition RunMlfm(const Hypergraph& hg, const HierarchySpec& spec,
                      const MlfmParams& params) {
  Rng rng(params.seed);
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  return BuildPartitionTopDown(hg, spec, zero,
                               MultilevelCarver(params.multilevel), rng);
}

}  // namespace htp
