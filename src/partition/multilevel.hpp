// Multilevel hypergraph bipartitioning (hMETIS/KaHyPar-style), as a
// modern-baseline substrate.
//
// The reproduction context notes that multilevel tools made flat
// partitioners obsolete; this module provides the canonical V-cycle so the
// paper's 1997 algorithms can be compared against it on equal footing:
//
//   1. coarsen by randomized heavy-edge matching (contracting matched
//      pairs via ContractClusters) until the graph is small,
//   2. bipartition the coarsest hypergraph with the FM engine,
//   3. uncoarsen, projecting the side assignment and FM-refining at every
//      level under the same absolute size window (contraction preserves
//      total size, so windows transfer unchanged).
//
// Exposed both as a standalone bipartitioner and as a CarveFn, so the
// Algorithm-3 skeleton can run with a multilevel find_cut ("MLFM" in the
// benches).
#pragma once

#include "core/find_cut.hpp"
#include "partition/fm_bipartition.hpp"

namespace htp {

/// V-cycle parameters.
struct MultilevelParams {
  /// Stop coarsening at or below this node count.
  std::size_t coarsest_nodes = 64;
  /// Give up when a matching pass shrinks the graph by less than 10%.
  double min_shrink = 0.10;
  /// Matched-pair size cap as a fraction of total size (keeps the coarsest
  /// instance balance-feasible).
  double max_cluster_fraction = 0.08;
  /// FM passes per refinement level.
  std::size_t fm_passes = 8;
};

/// Multilevel bipartition with side-0 size in
/// [window.min_size0, window.max_size0].
Bipartition MultilevelBipartition(const Hypergraph& hg,
                                  const FmBipartitionParams& window, Rng& rng,
                                  const MultilevelParams& params = {});

/// CarveFn adapter: carve a [lb..ub] min-cut block via the V-cycle
/// (ignores the metric argument, like the flat FM carver).
CarveFn MultilevelCarver(MultilevelParams params = {});

/// The Algorithm-3 skeleton driven by the multilevel carver — the modern
/// top-down baseline ("MLFM") compared in bench/modern_baseline.
struct MlfmParams {
  MultilevelParams multilevel;
  std::uint64_t seed = 1;
};
TreePartition RunMlfm(const Hypergraph& hg, const HierarchySpec& spec,
                      const MlfmParams& params = {});

}  // namespace htp
