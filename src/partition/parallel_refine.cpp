#include "partition/parallel_refine.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "netlist/subhypergraph.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace htp {

namespace {

obs::Timer t_parallel("fm.parallel_refine");
obs::Counter c_parallel_runs("fm.parallel_runs");
obs::Counter c_parallel_blocks("fm.parallel_blocks");
obs::Counter c_parallel_block_moves("fm.parallel_block_moves");
obs::Counter c_parallel_gain_milli("fm.parallel_gain_milli");

/// Result slot of one root-child subtree, filled by its worker.
struct BlockOutcome {
  /// Moves that survived the block-local rollbacks, in sub-node id order:
  /// (parent node, parent leaf to move it to).
  std::vector<std::pair<NodeId, BlockId>> moves;
  HtpFmStats stats;
};

// Refines the subtree under root child `b` in isolation: mirrors it into a
// standalone TreePartition over the induced sub-hypergraph, runs the plain
// refiner, and translates the surviving moves back to parent ids. Pure
// function of (tp, spec, params, b) — safe to run concurrently with other
// blocks because it only reads `tp`.
BlockOutcome RefineOneBlock(const TreePartition& tp, const HierarchySpec& spec,
                            const HtpFmParams& params, BlockId b,
                            const std::vector<NodeId>& nodes) {
  const Level sub_root = tp.level(b);
  SubHypergraph sub = InducedSubHypergraph(tp.hypergraph(), nodes);

  // Levels 0..L-1 of the parent spec, root at the block's own level. The
  // sub-root's capacity/branch bounds are the parent's for that level, so
  // any sub-partition validity implies validity of the committed moves; the
  // sub-root weight is ignored by the cost (as every root weight is), which
  // is exactly right — intra-block moves cannot change spans at or above
  // the block's level.
  const HierarchySpec sub_spec(std::vector<LevelSpec>(
      spec.levels().begin(), spec.levels().begin() + sub_root + 1));

  // Mirror the block's subtree. Parents always have smaller ids than their
  // children (AddChild appends), so one ascending scan reaches every
  // descendant after its parent; the id order also fixes the mirror's
  // child order, keeping the construction schedule-independent.
  TreePartition sub_tp(sub.hg, sub_root);
  std::vector<BlockId> sub_of(tp.num_blocks(), kInvalidBlock);
  std::vector<BlockId> to_parent{b};
  sub_of[b] = TreePartition::kRoot;
  for (BlockId q = b + 1; q < tp.num_blocks(); ++q) {
    if (sub_of[tp.parent(q)] == kInvalidBlock) continue;
    sub_of[q] = sub_tp.AddChild(sub_of[tp.parent(q)]);
    to_parent.push_back(q);
  }
  std::vector<BlockId> initial_leaf(sub.hg.num_nodes());
  for (NodeId i = 0; i < sub.hg.num_nodes(); ++i) {
    initial_leaf[i] = sub_of[tp.leaf_of(sub.node_to_parent[i])];
    sub_tp.AssignNode(i, initial_leaf[i]);
  }

  BlockOutcome out;
  out.stats = RefineHtpFm(sub_tp, sub_spec, params);
  for (NodeId i = 0; i < sub.hg.num_nodes(); ++i) {
    const BlockId leaf = sub_tp.leaf_of(i);
    if (leaf != initial_leaf[i])
      out.moves.emplace_back(sub.node_to_parent[i], to_parent[leaf]);
  }
  return out;
}

}  // namespace

HtpFmStats RefineHtpFmBlocks(TreePartition& tp, const HierarchySpec& spec,
                             const HtpFmParams& params,
                             std::size_t build_threads) {
  const std::span<const BlockId> roots = tp.children(TreePartition::kRoot);
  if (tp.root_level() < 2 || roots.size() < 2) {
    // Degenerate shapes leave nothing to fan out: single root child (a
    // chain) or a two-level tree whose "blocks" are the leaves themselves.
    return RefineHtpFm(tp, spec, params);
  }
  obs::PhaseScope obs_span(t_parallel);
  c_parallel_runs.Add();
  c_parallel_blocks.Add(roots.size());

  // Gather each block's nodes in node-id order (determinism: the induced
  // subgraph numbering follows this order).
  const Level block_level = tp.root_level() - 1;
  std::vector<BlockId> slot_of(tp.num_blocks(), kInvalidBlock);
  for (std::size_t s = 0; s < roots.size(); ++s) slot_of[roots[s]] = s;
  std::vector<std::vector<NodeId>> block_nodes(roots.size());
  for (NodeId v = 0; v < tp.hypergraph().num_nodes(); ++v)
    block_nodes[slot_of[tp.block_at(v, block_level)]].push_back(v);

  std::vector<BlockOutcome> outcomes(roots.size());
  ParallelFor(build_threads, roots.size(), [&](std::size_t s) {
    outcomes[s] = RefineOneBlock(tp, spec, params, roots[s], block_nodes[s]);
  });

  // Serial commit in block order. Every move keeps its node inside its
  // root-child subtree, so block sizes at the fan-out level and above are
  // unchanged and validity follows from the sub-partitions' validity.
  HtpFmStats total;
  total.initial_cost = PartitionCost(tp, spec);
  double block_gain = 0.0;
  std::size_t block_moves = 0;
  for (const BlockOutcome& out : outcomes) {
    for (const auto& [v, leaf] : out.moves) tp.MoveNode(v, leaf);
    total.passes += out.stats.passes;
    total.moves_kept += out.stats.moves_kept;
    total.completed = total.completed && out.stats.completed;
    block_gain += out.stats.initial_cost - out.stats.final_cost;
    block_moves += out.moves.size();
  }
  c_parallel_block_moves.Add(block_moves);

  // One global boundary-seeded pass catches the cross-block gains the
  // block-local view cannot express (moving a node between root children).
  HtpFmParams global = params;
  global.boundary_only = true;
  const HtpFmStats cleanup = RefineHtpFm(tp, spec, global);
  total.final_cost = cleanup.final_cost;
  total.passes += cleanup.passes;
  total.moves_kept += cleanup.moves_kept;
  total.completed = total.completed && cleanup.completed;
  c_parallel_gain_milli.Add(static_cast<std::uint64_t>(
      std::llround((total.initial_cost - total.final_cost) * 1000.0)));
  return total;
}

}  // namespace htp
