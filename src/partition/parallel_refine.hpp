// Per-block parallel hierarchical FM (docs/parallelism.md).
//
// The root's children partition the node set into disjoint subtrees, and
// Equation (1) is additive over them below the root: for every net, its
// level-l span (l < L-1) is the sum over root children of the distinct
// level-l blocks it touches inside each child, and intra-block moves leave
// every span at level >= L-1 untouched. So the exact gain of a move
// confined to one root-child subtree is computable from that subtree alone
// — which makes per-block refinement embarrassingly parallel: mirror each
// root child into a standalone sub-partition, run the (deterministic,
// RNG-free) RefineHtpFm on every mirror concurrently, then commit the
// surviving moves serially in block order and finish with one global
// boundary-seeded pass to catch cross-block gains the block-local view
// cannot see.
#pragma once

#include "partition/htp_fm.hpp"

namespace htp {

/// Refines `tp` in place like RefineHtpFm, but fans the work out across
/// the root's child subtrees on `build_threads` workers (ParallelFor
/// semantics: 0 = all hardware threads, <= 1 serial; the nested guard
/// degrades to serial inside pool workers). The result never costs more
/// than the input and stays valid.
///
/// Bit-identical for every `build_threads` value, including 1: the
/// algorithm — block-local refinement in block id order, serial commit,
/// one global boundary pass — is fixed; only the schedule varies. NOT
/// bit-identical to plain RefineHtpFm (a different pass structure), except
/// in the degenerate cases (root_level < 2, or fewer than two root
/// children) where it falls back to RefineHtpFm exactly.
///
/// `params.seed` is unused (the refiner is deterministic); `params.cancel`
/// is polled by every block's pass loop and by the final global pass.
/// Stats: initial/final costs are whole-partition costs; passes and
/// moves_kept sum over the block runs plus the global pass; `completed` is
/// the conjunction.
HtpFmStats RefineHtpFmBlocks(TreePartition& tp, const HierarchySpec& spec,
                             const HtpFmParams& params,
                             std::size_t build_threads);

}  // namespace htp
