#include "partition/random_partition.hpp"

namespace htp {

TreePartition RandomPartition(const Hypergraph& hg, const HierarchySpec& spec,
                              Rng& rng) {
  const Level root_level = spec.LevelForSize(hg.total_size());
  TreePartition tp(hg, root_level);

  // Build the complete K-ary skeleton.
  std::vector<BlockId> frontier{TreePartition::kRoot};
  for (Level l = root_level; l > 0; --l) {
    std::vector<BlockId> next;
    for (BlockId q : frontier)
      for (std::size_t b = 0; b < spec.max_branches(l); ++b)
        next.push_back(tp.AddChild(q));
    frontier = std::move(next);
  }
  const std::vector<BlockId> leaves = std::move(frontier);

  std::vector<NodeId> order(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) order[v] = v;
  rng.shuffle(order);

  for (NodeId v : order) {
    const double s = hg.node_size(v);
    // First fit in a random rotation of the leaves.
    const std::size_t offset = rng.next_below(leaves.size());
    bool placed = false;
    for (std::size_t i = 0; i < leaves.size() && !placed; ++i) {
      const BlockId leaf = leaves[(i + offset) % leaves.size()];
      bool fits = true;
      for (BlockId q = leaf;; q = tp.parent(q)) {
        if (tp.block_size(q) + s > spec.capacity(tp.level(q)) + 1e-9) {
          fits = false;
          break;
        }
        if (q == TreePartition::kRoot) break;
      }
      if (fits) {
        tp.AssignNode(v, leaf);
        placed = true;
      }
    }
    if (!placed)
      throw Error("RandomPartition: node does not fit any leaf; "
                  "capacities too tight for a random order");
  }
  return tp;
}

}  // namespace htp
