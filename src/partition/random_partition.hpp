// Random feasible hierarchical tree partitions.
//
// Used as a control baseline in tests and ablations (the paper notes random
// initial partitions are not applicable when the hierarchy is flexible; here
// the hierarchy shape is fixed to the spec's full K-ary skeleton).
#pragma once

#include "core/tree_partition.hpp"
#include "netlist/rng.hpp"

namespace htp {

/// Builds the full K-ary skeleton implied by `spec` (root at
/// LevelForSize(total)) and assigns shuffled nodes to leaves first-fit under
/// the capacity chain. Throws htp::Error when a node cannot be placed
/// (capacities too tight for a random order).
TreePartition RandomPartition(const Hypergraph& hg, const HierarchySpec& spec,
                              Rng& rng);

}  // namespace htp
