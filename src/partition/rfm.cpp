#include "partition/rfm.hpp"

namespace htp {

CarveResult FmCarve(const Hypergraph& hg, double lb, double ub, Rng& rng,
                    std::size_t fm_passes) {
  CarveResult result;
  if (hg.total_size() <= ub) {  // everything fits: no cut needed
    for (NodeId v = 0; v < hg.num_nodes(); ++v) result.nodes.push_back(v);
    result.size = hg.total_size();
    result.in_window = hg.total_size() >= lb;
    return result;
  }
  FmBipartitionParams params;
  params.min_size0 = lb;
  params.max_size0 = ub;
  params.max_passes = fm_passes;
  const Bipartition part = FmBipartition(hg, params, rng);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    if (part.side[v] == 0) result.nodes.push_back(v);
  result.cut_value = part.cut;
  result.size = part.size0;
  result.in_window = part.size0 >= lb - 1e-9 && part.size0 <= ub + 1e-9;
  return result;
}

CarveFn FmCarver(std::size_t fm_passes) {
  return [fm_passes](const Hypergraph& hg, std::span<const double>, double lb,
                     double ub, Rng& rng) {
    return FmCarve(hg, lb, ub, rng, fm_passes);
  };
}

TreePartition RunRfm(const Hypergraph& hg, const HierarchySpec& spec,
                     const RfmParams& params) {
  Rng rng(params.seed);
  // RFM uses no spreading metric; Algorithm 3 receives a zero metric that
  // the FM carver ignores.
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  // Safepoint: before each carve. RFM has no best-so-far to fall back on,
  // so a fired token degrades the remaining carves to one FM pass instead
  // of aborting — the fastest construction that is still valid.
  const CarveFn carve = [&params](const Hypergraph& sub,
                                  std::span<const double>, double lb,
                                  double ub, Rng& r) {
    const std::size_t passes =
        params.cancel.Cancelled() ? 1 : params.fm_passes;
    return FmCarve(sub, lb, ub, r, passes);
  };
  // The carve closure reads only immutable params plus the (thread-safe)
  // token, and draws exclusively from the Rng it is handed — so it is safe
  // under the task engine as-is.
  if (params.build_threads != 1) {
    return BuildPartitionTasked(hg, spec, zero, carve, rng,
                                params.build_threads);
  }
  return BuildPartitionTopDown(hg, spec, zero, carve, rng);
}

}  // namespace htp
