// The RFM baseline (Kuo–Liu–Cheng, DAC'96 [9]): top-down recursive
// partitioning with a direct min-cut find_cut.
//
// RFM shares Algorithm 3's skeleton with FLOW; the only difference
// (Section 4) is the carver: "RFM calls a min-cut algorithm directly on
// hypergraph H to find a subset V' with minimum cut(V', V - V')". Here the
// min-cut carve is an FM bipartition constrained to the [LB..UB] window.
#pragma once

#include "core/build_partition.hpp"
#include "partition/fm_bipartition.hpp"

namespace htp {

/// Carves a min-cut block of size within [lb..ub] using FM (ignores the
/// metric argument of the CarveFn interface).
CarveResult FmCarve(const Hypergraph& hg, double lb, double ub, Rng& rng,
                    std::size_t fm_passes = 16);

/// CarveFn adapter for FmCarve.
CarveFn FmCarver(std::size_t fm_passes = 16);

/// Parameters of the RFM baseline.
struct RfmParams {
  std::size_t fm_passes = 16;
  std::uint64_t seed = 1;
  /// Cooperative cancellation. A construction cannot be returned partially,
  /// so instead of aborting, a fired token degrades every remaining FM
  /// carve to a single pass — the fastest valid construction. The returned
  /// partition is always complete and valid. Inert by default.
  CancellationToken cancel;
  /// Construction-parallelism mode knob, same semantics as
  /// HtpFlowParams::build_threads: 1 (default) = the legacy serial
  /// recursion; anything else (0 = all hardware threads) = the disjoint
  /// subtree task engine, worker-count invariant among engine values but a
  /// different deterministic universe than serial (per-task RNG streams).
  std::size_t build_threads = 1;
};

/// Runs the RFM baseline: Algorithm 3 with the FM carver.
TreePartition RunRfm(const Hypergraph& hg, const HierarchySpec& spec,
                     const RfmParams& params = {});

}  // namespace htp
