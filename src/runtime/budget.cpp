#include "runtime/budget.hpp"

#include <algorithm>

namespace htp {
namespace {

using Clock = std::chrono::steady_clock;

// Deadlines beyond ~30 years would overflow steady_clock's nanosecond
// arithmetic; nobody means them literally, so clamp.
constexpr double kMaxDeadlineSeconds = 1e9;

}  // namespace

// `fired` holds 0 while live, else the StopReason that fired it. Stores
// race benignly (deadline vs. explicit cancel can both win; either reason
// is true), which is why relaxed atomics suffice.
struct CancellationToken::State {
  std::atomic<std::uint8_t> fired{0};
  bool has_deadline = false;
  Clock::time_point deadline{};
  std::shared_ptr<State> parent;

  bool CheckFired() {
    std::uint8_t f = fired.load(std::memory_order_relaxed);
    if (f != 0) return true;
    if (has_deadline && Clock::now() >= deadline) {
      fired.store(static_cast<std::uint8_t>(StopReason::kDeadline),
                  std::memory_order_relaxed);
      return true;
    }
    if (parent && parent->CheckFired()) {
      // Latch the parent's reason locally so FiredReason() stays O(1).
      fired.store(parent->fired.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kIterationCap: return "iteration-cap";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

CancellationToken CancellationToken::Manual() {
  CancellationToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

CancellationToken CancellationToken::WithDeadline(double seconds_from_now,
                                                  CancellationToken parent) {
  CancellationToken token;
  token.state_ = std::make_shared<State>();
  token.state_->has_deadline = true;
  const double clamped =
      std::clamp(seconds_from_now, 0.0, kMaxDeadlineSeconds);
  token.state_->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(clamped));
  token.state_->parent = parent.state_;
  return token;
}

bool CancellationToken::Cancelled() const {
  return state_ != nullptr && state_->CheckFired();
}

StopReason CancellationToken::FiredReason() const {
  if (!Cancelled()) return StopReason::kCompleted;
  return static_cast<StopReason>(
      state_->fired.load(std::memory_order_relaxed));
}

void CancellationToken::Cancel() const {
  if (!state_) return;
  std::uint8_t expected = 0;
  state_->fired.compare_exchange_strong(
      expected, static_cast<std::uint8_t>(StopReason::kCancelled),
      std::memory_order_relaxed);
}

double CancellationToken::RemainingSeconds() const {
  if (!state_ || !state_->has_deadline)
    return std::numeric_limits<double>::infinity();
  const double remaining =
      std::chrono::duration<double>(state_->deadline - Clock::now()).count();
  return std::max(remaining, 0.0);
}

CancellationToken StartBudget(const Budget& budget, CancellationToken parent) {
  if (!budget.HasDeadline()) return parent;
  return CancellationToken::WithDeadline(budget.time_budget_seconds, parent);
}

}  // namespace htp
