// Cooperative cancellation for anytime runs.
//
// The FLOW pipeline is best-of-N with monotone per-round improvement, so it
// is naturally *anytime*: stopping early still leaves a valid (best-so-far)
// partition. This header provides the two pieces every stage shares:
//
//  * `Budget` — what the caller is willing to spend: an optional wall-clock
//    deadline plus deterministic caps on Algorithm-2 rounds and Algorithm-1
//    iterations.
//  * `CancellationToken` — a cheap, thread-safe handle the pipeline polls at
//    deterministic *safepoints* only: between Algorithm-1 outer iterations,
//    between Algorithm-2 scan/commit steps (after a commit, never mid-scan),
//    and between Algorithm-3 carve steps. Because the polls sit at points
//    where the in-flight state is already consistent, a fired token can only
//    truncate work, never corrupt it.
//
// Determinism contract (docs/robustness.md): the round/iteration caps are
// pure functions of the inputs, so results under a cap are bit-identical for
// every thread count. The wall-clock deadline is inherently
// schedule-dependent; when it never fires, results are bit-identical to an
// unbudgeted run (the polls are read-only), and when it fires the result is
// still a valid partition with `stop_reason` reporting why it is partial.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>

namespace htp {

/// Why a budgeted run stopped. Ordered so that the zero value means "no
/// cancellation happened" and a token's fired state can store the reason.
enum class StopReason : std::uint8_t {
  kCompleted = 0,    ///< every requested iteration ran to the end
  kIterationCap = 1, ///< Budget::max_iterations truncated the outer loop
  kDeadline = 2,     ///< the wall-clock deadline fired
  kCancelled = 3,    ///< an external CancellationToken::Cancel() fired
};

/// Stable lowercase name for CLI / log output ("completed",
/// "iteration-cap", "deadline", "cancelled").
const char* StopReasonName(StopReason reason);

/// What a run may spend. Default-constructed = unlimited (the pre-anytime
/// behaviour, bit for bit).
struct Budget {
  /// Sentinel for "no wall-clock limit".
  static constexpr double kNoTimeLimit =
      std::numeric_limits<double>::infinity();
  /// Wall-clock budget in seconds, measured from StartBudget(). Zero (or
  /// negative) means "already expired": the pipeline still returns a valid
  /// partition via its floor guarantee, as fast as it can get one.
  double time_budget_seconds = kNoTimeLimit;
  /// Deterministic cap on Algorithm-2 worklist rounds per metric
  /// computation (0 = no extra cap; min'd into FlowInjectionParams::
  /// max_rounds). Results under a cap are a bit-identical function of the
  /// cap for every thread count.
  std::size_t max_rounds = 0;
  /// Deterministic cap on Algorithm-1 outer iterations (0 = no cap).
  /// Because per-iteration RNG streams are pre-forked in serial order, a
  /// capped run equals the first `max_iterations` iterations of the
  /// uncapped run, bit for bit.
  std::size_t max_iterations = 0;

  bool HasDeadline() const {
    return time_budget_seconds < kNoTimeLimit;
  }
  bool Unlimited() const {
    return !HasDeadline() && max_rounds == 0 && max_iterations == 0;
  }
};

/// Shared cancellation handle. Default-constructed tokens are *inert*:
/// Cancelled() is a null-pointer test, so unbudgeted runs pay nothing.
/// Copies share state; firing is one-way (a token never un-cancels).
/// Deadline checks latch: once observed expired, the token stays fired even
/// if the clock were to misbehave. Thread-safe (atomics only, no locks).
class CancellationToken {
 public:
  /// Inert token: never fires, RemainingSeconds() is infinite.
  CancellationToken() = default;

  /// A token that can only be fired explicitly via Cancel().
  static CancellationToken Manual();

  /// A token that fires once `seconds_from_now` elapses (<= 0 = already
  /// expired), and also whenever `parent` fires. Huge values are clamped
  /// so the internal clock arithmetic cannot overflow.
  static CancellationToken WithDeadline(double seconds_from_now,
                                        CancellationToken parent = {});

  /// True once the deadline elapsed, Cancel() was called, or the parent
  /// fired. Safe and cheap to call from any thread, at any rate.
  bool Cancelled() const;

  /// The reason the token fired, or kCompleted while it has not.
  StopReason FiredReason() const;

  /// Fires the token with reason kCancelled (idempotent).
  void Cancel() const;

  /// Seconds until the deadline (clamped at 0), or +infinity when the token
  /// has no deadline of its own. Parent deadlines are not consulted.
  double RemainingSeconds() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Arms `budget`'s wall-clock deadline (if any) starting now, linked to
/// `parent` so an outer cancellation propagates. With no deadline this just
/// returns `parent` — the deterministic caps are enforced by the stages
/// themselves, not by the token.
CancellationToken StartBudget(const Budget& budget,
                              CancellationToken parent = {});

/// Thrown at a safepoint to unwind out of a construction that cannot yield
/// a partial result (Algorithm 3 builds are all-or-nothing). Always caught
/// inside the library — it never escapes RunHtpFlow and friends.
class CancelledError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "htp: cancelled at a safepoint";
  }
};

}  // namespace htp
