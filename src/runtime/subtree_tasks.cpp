#include "runtime/subtree_tasks.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace htp {

namespace detail {

// Shared state of one Run() call. Lives on the caller's stack; valid
// because Run() blocks until pending == 0 and the pool joins before the
// frame unwinds.
struct SubtreeEngine {
  std::mutex mutex;
  std::condition_variable drained;
  std::size_t pending = 0;  // spawned but not yet finished tasks
  bool have_error = false;
  TaskPath error_path;  // lexicographically smallest failing path so far
  std::exception_ptr error;
  ThreadPool* pool = nullptr;  // null = serial drain on the calling thread
  std::deque<std::function<void()>> serial;  // queue of the serial drain

  // Executes one task body and retires it: records the error under the
  // lowest-path rule, then wakes the waiter when the tree is drained.
  void RunTask(TaskPath path, SubtreeTasks::TaskFn fn) {
    SubtreeTasks::Context ctx(this, std::move(path));
    std::exception_ptr thrown;
    try {
      fn(ctx);
    } catch (...) {
      thrown = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (thrown && (!have_error || ctx.path_ < error_path)) {
      have_error = true;
      error_path = ctx.path_;
      error = thrown;
    }
    if (--pending == 0) drained.notify_one();
  }

  void Enqueue(TaskPath path, SubtreeTasks::TaskFn fn) {
    auto task = [this, path = std::move(path), fn = std::move(fn)]() mutable {
      RunTask(std::move(path), std::move(fn));
    };
    if (pool != nullptr) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++pending;
      }
      pool->Submit(std::move(task));
    } else {
      // Serial drain: everything runs on the calling thread, so pending and
      // the queue are touched by one thread only.
      ++pending;
      serial.push_back(std::move(task));
    }
  }
};

}  // namespace detail

std::size_t SubtreeTasks::Context::Spawn(TaskFn fn) {
  const std::size_t index = next_child_++;
  TaskPath child = path_;
  child.push_back(static_cast<std::uint32_t>(index));
  engine_->Enqueue(std::move(child), std::move(fn));
  return index;
}

void SubtreeTasks::Run(std::size_t threads, TaskFn root) {
  detail::SubtreeEngine engine;
  const std::size_t workers = ResolveThreadCount(threads);
  if (workers > 1 && !InParallelWorker()) {
    ThreadPool pool(workers);
    engine.pool = &pool;
    engine.Enqueue(TaskPath{}, std::move(root));
    {
      std::unique_lock<std::mutex> lock(engine.mutex);
      engine.drained.wait(lock, [&engine] { return engine.pending == 0; });
    }
    // The pool joins here; workers are past their last decrement, so no
    // task can touch `engine` after the wait returned.
  } else {
    engine.Enqueue(TaskPath{}, std::move(root));
    while (!engine.serial.empty()) {
      auto task = std::move(engine.serial.front());
      engine.serial.pop_front();
      task();
    }
  }
  if (engine.have_error) std::rethrow_exception(engine.error);
}

}  // namespace htp
