// Deterministic disjoint-subtree task engine (docs/parallelism.md).
//
// Algorithm 3's recursion — and every per-block pass that rides on its
// output — decomposes into tasks over *disjoint* subtrees: once a cut
// commits, the children are fully independent subproblems (the same
// decomposition VTR's PartitionTree exploits to route non-overlapping
// regions concurrently). ParallelFor cannot express this shape: the task
// count is unknown up front and tasks are discovered by other tasks.
//
// This engine runs a dynamically growing tree of tasks on the existing
// ThreadPool while keeping every observable output schedule-independent:
//
//  * Task identity is the *path* in the spawn tree (root = [], its k-th
//    spawn = [k], ...), fixed by the enumeration order inside each parent —
//    never by queue position or completion order. Lexicographic path order
//    is the order a serial depth-first execution reaches the tasks.
//  * Tasks must write only into slots their parent allocated before the
//    spawn (the parent runs single-threaded, so no allocation races), and
//    any side effect that depends on global ordering — committing blocks,
//    journaling — must happen in a serial walk *after* Run() returns, in
//    path order. The engine enforces none of this; it is the contract that
//    makes results bit-identical for every worker count.
//  * Every spawned task runs to completion even when another throws; if any
//    threw, Run() rethrows the exception of the lexicographically smallest
//    failing path, mirroring ParallelFor's lowest-index rule.
//  * Nested use degrades gracefully: Run() called from inside a pool worker
//    (e.g. a carve task engine inside a parallel FLOW iteration) drains the
//    task tree serially on the calling thread instead of oversubscribing —
//    the same InParallelWorker() guard the metric scan applies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace htp {

namespace detail {
struct SubtreeEngine;
}

/// Position of a task in the spawn tree; lexicographic order is the serial
/// depth-first execution order.
using TaskPath = std::vector<std::uint32_t>;

/// The disjoint-subtree task engine. Stateless facade: each Run() call owns
/// its task tree, workers, and error slot.
class SubtreeTasks {
 public:
  class Context;
  using TaskFn = std::function<void(Context&)>;

  /// Handed to every running task; the only way to add work to the tree.
  class Context {
   public:
    /// This task's path in the spawn tree.
    const TaskPath& path() const { return path_; }

    /// Enqueues a child task. The child's path is this task's path plus the
    /// spawn index (0, 1, ... in call order), so identity is fixed by the
    /// parent's enumeration order alone. Allocate the child's output slot
    /// before calling. Returns the spawn index.
    std::size_t Spawn(TaskFn fn);

   private:
    friend struct detail::SubtreeEngine;
    Context(detail::SubtreeEngine* engine, TaskPath path)
        : engine_(engine), path_(std::move(path)) {}

    detail::SubtreeEngine* engine_;
    TaskPath path_;
    std::uint32_t next_child_ = 0;
  };

  /// Runs `root` and every task it transitively spawns on
  /// ResolveThreadCount(threads) workers, blocking until the tree drains.
  /// A resolved count <= 1 — or a calling thread that is itself a pool
  /// worker (the nested-parallelism guard) — drains the tree serially on
  /// the calling thread with no pool; results are identical either way
  /// when tasks honor the slot contract above. If tasks threw, the
  /// exception of the lexicographically smallest failing path is rethrown.
  static void Run(std::size_t threads, TaskFn root);
};

}  // namespace htp
