#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace htp {
namespace {

// Set for the whole lifetime of a pool worker thread (WorkerLoop); tasks it
// runs — and anything they call — observe InParallelWorker() == true.
thread_local bool tls_in_parallel_worker = false;

}  // namespace

std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

bool InParallelWorker() { return tls_in_parallel_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] {
      // Name the trace lane by pool index, not by scheduling order: traces
      // from repeated runs line up lane for lane (obs::NameThisThread).
      obs::NameThisThread("worker-" + std::to_string(i));
      WorkerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// Join state shared by the tasks of one ParallelFor round. Lives on the
// caller's stack; valid because the caller blocks until remaining == 0.
struct ForkJoin {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::size_t error_index = 0;  // lowest failing index; init to count
  std::exception_ptr error;
};

}  // namespace

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  ForkJoin join;
  join.remaining = count;
  join.error_index = count;
  for (std::size_t i = 0; i < count; ++i) {
    pool.Submit([&join, &body, i] {
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join.mutex);
      if (error && i < join.error_index) {
        join.error_index = i;
        join.error = error;
      }
      if (--join.remaining == 0) join.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(join.mutex);
  join.done.wait(lock, [&join] { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

void ParallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  const std::size_t workers = ResolveThreadCount(threads);
  if (workers <= 1 || count <= 1 || InParallelWorker()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(workers, count));
  ParallelFor(pool, count, body);
}

}  // namespace htp
