// A small reusable fork-join thread pool.
//
// Algorithm 1's outer loop — N independent (metric, construction)
// iterations, keep the best — is embarrassingly parallel, and the same
// shape recurs in the benches (independent seeds, independent circuits).
// This pool is the one concurrency primitive the library uses: a fixed set
// of workers draining a FIFO queue, plus a blocking ParallelFor helper.
//
// Determinism contract: the pool itself guarantees nothing about execution
// order. Callers that need bit-identical results regardless of thread count
// (RunHtpFlow does) must give every task its own pre-forked RNG stream and
// its own output slot, then reduce the slots in index order afterwards.
// ParallelFor supports this by propagating the exception of the *lowest*
// failing index, so even error behaviour is schedule-independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace htp {

/// Maps a user-facing thread-count knob to a worker count: 0 means "all
/// hardware threads" (std::thread::hardware_concurrency(), at least 1);
/// any other value is taken literally.
std::size_t ResolveThreadCount(std::size_t requested);

/// True while the calling thread is a ThreadPool worker. Nested parallelism
/// guard: code that may run both standalone and inside a pool task (e.g.
/// Algorithm 2's candidate scan inside a parallel FLOW iteration) checks
/// this to degrade its inner fan-out to serial instead of oversubscribing
/// the machine with pools-within-pools. The convenience ParallelFor
/// overload below applies the guard automatically.
bool InParallelWorker();

/// Fixed-size pool of worker threads draining a FIFO task queue. Workers
/// start in the constructor and are reused across any number of Submit /
/// ParallelFor rounds; the destructor drains the remaining queue, then
/// joins every worker.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not block waiting for other queued tasks
  /// (the pool has no work stealing, so that can deadlock).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

/// Fork-join: runs body(i) for every i in [0, count) on the pool and blocks
/// until all invocations finished. Every task runs to completion even when
/// another throws; if any threw, the exception of the lowest failing index
/// is rethrown here and the others are discarded.
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

/// Convenience wrapper. ResolveThreadCount(threads) <= 1, count <= 1, or a
/// calling thread that is itself a pool worker (InParallelWorker) runs
/// body(0), body(1), ... serially on the calling thread with no pool and no
/// synchronization — the exact pre-parallelism code path; otherwise a
/// transient pool of min(threads, count) workers is used.
void ParallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace htp
