#include "server/artifact_key.hpp"

#include <cstring>

namespace htp::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t FoldU64(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t FoldDouble(std::uint64_t h, double value) {
  // IEEE-754 bit pattern: exact, total, and platform-stable for the
  // finite values these structures carry.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return FoldU64(h, bits);
}

}  // namespace

std::uint64_t HashBytes(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t CombineHashes(std::span<const std::uint64_t> hashes) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t value : hashes) h = FoldU64(h, value);
  return h;
}

std::uint64_t HashNetlist(const Hypergraph& hg) {
  std::uint64_t h = HashBytes(kFnvOffset, "htp-netlist-hash-v1");
  h = FoldU64(h, hg.num_nodes());
  h = FoldU64(h, hg.num_nets());
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    h = FoldDouble(h, hg.node_size(v));
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const auto pins = hg.pins(e);
    h = FoldDouble(h, hg.net_capacity(e));
    h = FoldU64(h, pins.size());
    // Pin order as stored is part of the fingerprint: the builder
    // produces it deterministically from the input, and algorithms
    // iterate pins in this order, so order-differing lists are
    // legitimately distinct artifacts.
    for (const NodeId pin : pins) h = FoldU64(h, pin);
  }
  return h;
}

std::uint64_t HashSpec(const HierarchySpec& spec) {
  std::uint64_t h = HashBytes(kFnvOffset, "htp-spec-hash-v1");
  h = FoldU64(h, spec.num_levels());
  for (const LevelSpec& level : spec.levels()) {
    h = FoldDouble(h, level.capacity);
    h = FoldU64(h, level.max_branches);
    h = FoldDouble(h, level.weight);
  }
  return h;
}

std::uint64_t HashInjectionParams(const FlowInjectionParams& params) {
  std::uint64_t h = HashBytes(kFnvOffset, "htp-injection-hash-v2");
  h = FoldDouble(h, params.epsilon);
  h = FoldDouble(h, params.alpha);
  h = FoldDouble(h, params.delta);
  h = FoldDouble(h, params.tolerance);
  h = FoldU64(h, params.max_rounds);
  h = FoldU64(h, params.seed);
  h = FoldDouble(h, params.oracle_sample);
  // The full warm-start seed (ECO, docs/incremental.md): every value
  // shifts the computation it seeds, so a warm-seeded metric must never
  // alias the cold artifact for the same (netlist, spec, seed) — folding
  // the element count first also separates "no seed" from "all-zero seed".
  h = FoldU64(h, params.warm_metric ? params.warm_metric->size() : 0);
  if (params.warm_metric)
    for (const double d : *params.warm_metric) h = FoldDouble(h, d);
  return h;
}

std::string HexKey(std::uint64_t key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[key & 0xf];
    key >>= 4;
  }
  return out;
}

}  // namespace htp::serve
