// Artifact keys: stable 64-bit hashes of the immutable inputs the serve
// cache (src/server/cache.hpp) indexes by.
//
// Three hash domains, all FNV-1a 64 over a canonical byte serialization
// (version-tagged so a layout change can never silently alias old keys):
//
//   * netlist hash ("htp-netlist-hash-v1") — a structural fingerprint of a
//     Hypergraph: node count, net count, every node size, and every net's
//     capacity, degree, and pin list in stored order, doubles serialized
//     as their
//     IEEE-754 bit patterns. Two hypergraphs hash equal iff they are
//     structurally identical (names excluded — they never affect
//     partitioning). This is the hash serve responses report and
//     docs/file-formats.md specifies.
//   * hierarchy-spec hash — every level's (capacity, max_branches, weight).
//   * injection-params hash ("htp-injection-hash-v2") — the fields of
//     FlowInjectionParams that can change the computed metric: epsilon,
//     alpha, delta, tolerance, max_rounds, seed, oracle_sample, and the
//     full warm_metric seed when one is set (ECO warm starts must never
//     alias the cold artifact). Deliberately excluded: `threads` (results
//     are thread-invariant by contract), `cancel` (a fired token
//     truncates — truncated results are never cached), and `csr` (a pure
//     function of the hypergraph).
//
// Keys render as 16-hex-digit strings in JSON responses so 64-bit values
// survive consumers that parse numbers as doubles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/flow_injection.hpp"
#include "core/hierarchy.hpp"
#include "netlist/hypergraph.hpp"

namespace htp::serve {

/// FNV-1a 64 offset basis — the running-state seed for HashBytes.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Folds `bytes` into FNV-1a state `h` and returns the new state.
std::uint64_t HashBytes(std::uint64_t h, std::string_view bytes);

/// Order-dependent combination of already-computed hashes.
std::uint64_t CombineHashes(std::span<const std::uint64_t> hashes);

/// Structural fingerprint of a hypergraph (names excluded).
std::uint64_t HashNetlist(const Hypergraph& hg);

/// Fingerprint of a hierarchy spec: per-level (capacity, branches, weight).
std::uint64_t HashSpec(const HierarchySpec& spec);

/// Fingerprint of the result-affecting FlowInjectionParams fields.
std::uint64_t HashInjectionParams(const FlowInjectionParams& params);

/// The 16-lowercase-hex-digit rendering used in serve responses.
std::string HexKey(std::uint64_t key);

}  // namespace htp::serve
