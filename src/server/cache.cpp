#include "server/cache.hpp"

#include <condition_variable>
#include <exception>
#include <list>
#include <mutex>
#include <unordered_map>

#include "obs/obs.hpp"

namespace htp::serve {

namespace {

obs::Counter c_hit_netlist("serve.cache_hit_netlist");
obs::Counter c_miss_netlist("serve.cache_miss_netlist");
obs::Counter c_evict_netlist("serve.cache_evict_netlist");
obs::Counter c_hit_csr("serve.cache_hit_csr");
obs::Counter c_miss_csr("serve.cache_miss_csr");
obs::Counter c_evict_csr("serve.cache_evict_csr");
obs::Counter c_hit_metric("serve.cache_hit_metric");
obs::Counter c_miss_metric("serve.cache_miss_metric");
obs::Counter c_evict_metric("serve.cache_evict_metric");

// One LRU tier: bounded map + in-flight deduplication. The compute
// callback runs outside the lock; waiters on the same key block on the
// condvar and share the leader's value (or its exception). Distinct keys
// never serialize on each other beyond the map operations themselves.
template <typename V>
class Tier {
 public:
  Tier(std::size_t capacity, obs::Counter& hit, obs::Counter& miss,
       obs::Counter& evict)
      : capacity_(capacity), hit_(hit), miss_(miss), evict_(evict) {}

  bool enabled() const { return capacity_ > 0; }

  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  template <typename Fn, typename CacheableFn>
  std::pair<V, bool> GetOrCompute(std::uint64_t key, const Fn& fn,
                                  const CacheableFn& cacheable) {
    if (capacity_ == 0) {
      miss_.Add();
      return {fn(), false};
    }
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = map_.find(key);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.pos);
        hit_.Add();
        return {it->second.value, true};
      }
      auto inflight = inflight_.find(key);
      if (inflight == inflight_.end()) break;
      // Deduplication: another thread is computing this key right now.
      // Wait for it and share the outcome — value or exception alike.
      std::shared_ptr<InFlight> slot = inflight->second;
      cv_.wait(lock, [&] { return slot->done; });
      if (slot->error) std::rethrow_exception(slot->error);
      hit_.Add();
      return {slot->value, true};
    }
    auto slot = std::make_shared<InFlight>();
    inflight_.emplace(key, slot);
    lock.unlock();
    V value;
    try {
      value = fn();
    } catch (...) {
      lock.lock();
      slot->error = std::current_exception();
      slot->done = true;
      inflight_.erase(key);
      cv_.notify_all();
      throw;
    }
    lock.lock();
    slot->value = value;
    slot->done = true;
    inflight_.erase(key);
    if (cacheable(value)) {
      lru_.push_front(key);
      map_.emplace(key, Entry{value, lru_.begin()});
      while (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        evict_.Add();
      }
    }
    cv_.notify_all();
    miss_.Add();
    return {std::move(value), false};
  }

 private:
  struct Entry {
    V value;
    std::list<std::uint64_t>::iterator pos;
  };
  struct InFlight {
    V value{};
    std::exception_ptr error;
    bool done = false;
  };

  const std::size_t capacity_;
  obs::Counter& hit_;
  obs::Counter& miss_;
  obs::Counter& evict_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Entry> map_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_;
};

constexpr auto kAlwaysCacheable = [](const auto&) { return true; };

}  // namespace

struct ArtifactCache::Impl {
  explicit Impl(const CacheConfig& config)
      : netlist(config.netlist_capacity, c_hit_netlist, c_miss_netlist,
                c_evict_netlist),
        csr(config.csr_capacity, c_hit_csr, c_miss_csr, c_evict_csr),
        metric(config.metric_capacity, c_hit_metric, c_miss_metric,
               c_evict_metric) {}

  Tier<NetlistArtifact> netlist;
  Tier<std::shared_ptr<const CsrView>> csr;
  Tier<FlowInjectionResult> metric;
};

ArtifactCache::ArtifactCache(const CacheConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

ArtifactCache::~ArtifactCache() = default;

bool ArtifactCache::netlist_enabled() const { return impl_->netlist.enabled(); }
bool ArtifactCache::csr_enabled() const { return impl_->csr.enabled(); }
bool ArtifactCache::metric_enabled() const { return impl_->metric.enabled(); }

std::pair<NetlistArtifact, bool> ArtifactCache::GetOrComputeNetlist(
    std::uint64_t source_key, const std::function<NetlistArtifact()>& fn) {
  return impl_->netlist.GetOrCompute(source_key, fn, kAlwaysCacheable);
}

std::pair<std::shared_ptr<const CsrView>, bool> ArtifactCache::GetOrComputeCsr(
    std::uint64_t netlist_hash,
    const std::function<std::shared_ptr<const CsrView>()>& fn) {
  return impl_->csr.GetOrCompute(netlist_hash, fn, kAlwaysCacheable);
}

std::pair<FlowInjectionResult, bool> ArtifactCache::GetOrComputeMetric(
    std::uint64_t key, const std::function<FlowInjectionResult()>& fn) {
  // A cancellation-truncated metric reflects one request's deadline, not
  // the artifact: hand it to its requester (and any deduplicated waiters)
  // but keep it out of the cache.
  return impl_->metric.GetOrCompute(
      key, fn, [](const FlowInjectionResult& r) { return !r.cancelled; });
}

std::size_t ArtifactCache::netlist_entries() const {
  return impl_->netlist.entries();
}
std::size_t ArtifactCache::csr_entries() const { return impl_->csr.entries(); }
std::size_t ArtifactCache::metric_entries() const {
  return impl_->metric.entries();
}

}  // namespace htp::serve
