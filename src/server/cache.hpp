// ArtifactCache: the bounded, three-tier LRU cache behind htp_serve.
//
// A partition request repeats three expensive, perfectly-reusable
// computations: parsing/generating the netlist, lowering its CSR star
// expansion, and converging a spreading metric (Algorithm 2 — measured at
// ~90% of request CPU on the ISCAS85 suite). Each gets its own tier, each
// tier an independent entry-count bound (0 disables the tier):
//
//   * netlist — key: a hash of the request's *source* (built-in circuit
//     name + generator seed, or the full .bench text). Value: the parsed
//     Hypergraph plus its structural hash (artifact_key.hpp), computed
//     once at insert.
//   * csr — key: the structural netlist hash (of the whole graph or of a
//     subproblem — per-subproblem metrics cache their sub-CSRs the same
//     way). Value: the immutable CsrView.
//   * metric — key: combine(netlist-hash, spec-hash, injection-params-
//     hash); the injection hash covers the seed, so different seeds are
//     different artifacts. Value: the full FlowInjectionResult. Only
//     converged-or-round-capped results are cached — a result truncated
//     by a fired cancellation token is returned to its requester but
//     never inserted, so a deadline can shrink one response, not poison
//     later ones.
//
// Concurrency: requests run on pool workers, so every tier is guarded by
// one mutex with an in-flight map for deduplication — when N identical
// computations race, one thread computes while the rest wait on a condvar
// and share the result (counted as hits: they did not compute). The
// compute callback runs OUTSIDE the lock; distinct keys never serialize
// on each other.
//
// Observability: serve.cache_{hit,miss,evict}_{netlist,csr,metric}
// counters record every lookup outcome (a dedup wait counts as a hit).
// Counters are process-global like all obs state; per-request outcomes are
// the booleans GetOrCompute returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "core/flow_injection.hpp"
#include "graph/csr_view.hpp"
#include "netlist/hypergraph.hpp"

namespace htp::serve {

/// A parsed netlist plus its structural hash (computed once at insert so
/// repeat requests skip the O(pins) fingerprint walk too).
struct NetlistArtifact {
  std::shared_ptr<const Hypergraph> hg;
  std::uint64_t structural_hash = 0;
};

/// Entry-count bound per tier; 0 disables a tier entirely (every lookup
/// reports a miss and computes).
struct CacheConfig {
  std::size_t netlist_capacity = 8;
  std::size_t csr_capacity = 16;
  std::size_t metric_capacity = 256;
};

class ArtifactCache {
 public:
  explicit ArtifactCache(const CacheConfig& config = {});
  ~ArtifactCache();
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  bool netlist_enabled() const;
  bool csr_enabled() const;
  bool metric_enabled() const;

  /// Each GetOrCompute returns (value, hit): `hit` is true when the value
  /// came from the cache or from another thread's in-flight computation,
  /// false when this call computed it. Compute callbacks run unlocked and
  /// may throw — the exception propagates to every deduplicated waiter.
  std::pair<NetlistArtifact, bool> GetOrComputeNetlist(
      std::uint64_t source_key, const std::function<NetlistArtifact()>& fn);
  std::pair<std::shared_ptr<const CsrView>, bool> GetOrComputeCsr(
      std::uint64_t netlist_hash,
      const std::function<std::shared_ptr<const CsrView>()>& fn);
  /// Never caches results with `cancelled == true` (see file comment).
  std::pair<FlowInjectionResult, bool> GetOrComputeMetric(
      std::uint64_t key, const std::function<FlowInjectionResult()>& fn);

  /// Live entry counts (for tests and the shutdown report).
  std::size_t netlist_entries() const;
  std::size_t csr_entries() const;
  std::size_t metric_entries() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace htp::serve
