#include "server/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace htp::serve {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    SkipWhitespace();
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw Error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string_value = ParseString();
        return v;
      }
      case 't':
        if (!ConsumeLiteral("true")) Fail("bad literal");
        return MakeBool(true);
      case 'f':
        if (!ConsumeLiteral("false")) Fail("bad literal");
        return MakeBool(false);
      case 'n':
        if (!ConsumeLiteral("null")) Fail("bad literal");
        return JsonValue{};
      default:
        return ParseNumber();
    }
  }

  static JsonValue MakeBool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.bool_value = b;
    return v;
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      v.object_value[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipWhitespace();
      v.array_value.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        Fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': AppendUnicodeEscape(out); break;
        default: Fail("unknown escape sequence");
      }
    }
  }

  unsigned ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else Fail("bad hex digit in \\u escape");
    }
    return value;
  }

  void AppendUnicodeEscape(std::string& out) {
    unsigned code = ParseHex4();
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        Fail("unpaired surrogate");
      pos_ += 2;
      const unsigned low = ParseHex4();
      if (low < 0xDC00 || low > 0xDFFF) Fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      Fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      Fail("bad number");
    // Integer part: a leading zero must stand alone.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        Fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        Fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // The slice is a validated JSON number, a strict subset of strtod's
    // grammar, so conversion cannot fail.
    v.number_value = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object_value.find(std::string(key));
  return it == object_value.end() ? nullptr : &it->second;
}

JsonValue ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace htp::serve
