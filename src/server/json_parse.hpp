// Minimal JSON parsing for htp_serve requests.
//
// The obs layer only ever *emits* JSON (obs/json.hpp is a writer); the
// daemon is the first consumer, so this header adds the matching reader: a
// small recursive-descent parser producing a DOM of JsonValue nodes.
// Deliberately minimal — requests are single-line NDJSON objects written
// by scripts — but a complete parser of the JSON grammar: all escape
// sequences (\uXXXX included, encoded back as UTF-8), nested containers,
// scientific-notation numbers. Every number is held as a double, exactly
// like the emitter renders them. Throws htp::Error with a byte offset on
// malformed input; no partial results.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/common.hpp"

namespace htp::serve {

/// One parsed JSON node. A tagged union in struct clothing: `kind` says
/// which member is meaningful. Object keys keep insertion order out of the
/// map's sorting — requests never depend on key order, so std::map's
/// lexicographic order is fine and keeps lookups simple.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::map<std::string, JsonValue> object_value;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses exactly one JSON document from `text` (surrounding whitespace
/// allowed, trailing garbage rejected). Throws htp::Error on anything
/// else.
JsonValue ParseJson(std::string_view text);

}  // namespace htp::serve
