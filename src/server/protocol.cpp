#include "server/protocol.hpp"

#include <cmath>
#include <set>

#include "core/partition_io.hpp"
#include "obs/json.hpp"
#include "server/artifact_key.hpp"

namespace htp::serve {

namespace {

// Every member a v1 request may carry. Strict decoding: anything else is
// rejected, so a typo ("iteration") cannot silently run with defaults.
const std::set<std::string, std::less<>>& KnownRequestKeys() {
  static const std::set<std::string, std::less<>> keys = {
      "schema",        "schema_version", "op",
      "id",            "circuit",        "bench_text",
      "algo",          "height",         "branching",
      "slack",         "weights",        "iterations",
      "threads",       "metric_threads", "build_threads",
      "refine",        "multilevel",     "coarsen_threshold",
      "oracle_sample", "seed",           "deadline_ms",
      "max_rounds",    "report",         "delta_text",
      "warm_text",     "warm_from_cache", "emit_warm_state",
  };
  return keys;
}

[[noreturn]] void FailField(std::string_view key, std::string_view what) {
  throw Error("request: member '" + std::string(key) + "' " +
              std::string(what));
}

double GetNumber(const JsonValue& doc, std::string_view key, double fallback) {
  const JsonValue* v = doc.Find(key);
  if (!v) return fallback;
  if (v->kind != JsonValue::Kind::kNumber) FailField(key, "must be a number");
  return v->number_value;
}

std::size_t GetCount(const JsonValue& doc, std::string_view key,
                     std::size_t fallback) {
  const JsonValue* v = doc.Find(key);
  if (!v) return fallback;
  if (v->kind != JsonValue::Kind::kNumber || v->number_value < 0 ||
      v->number_value != std::floor(v->number_value))
    FailField(key, "must be a nonnegative integer");
  return static_cast<std::size_t>(v->number_value);
}

std::string GetString(const JsonValue& doc, std::string_view key,
                      std::string fallback) {
  const JsonValue* v = doc.Find(key);
  if (!v) return fallback;
  if (v->kind != JsonValue::Kind::kString) FailField(key, "must be a string");
  return v->string_value;
}

bool GetBool(const JsonValue& doc, std::string_view key, bool fallback) {
  const JsonValue* v = doc.Find(key);
  if (!v) return fallback;
  if (v->kind != JsonValue::Kind::kBool) FailField(key, "must be a boolean");
  return v->bool_value;
}

std::string RenderIdFragment(const JsonValue* id) {
  if (!id) return "null";
  obs::JsonWriter w;
  switch (id->kind) {
    case JsonValue::Kind::kString:
      w.String(id->string_value);
      break;
    case JsonValue::Kind::kNumber:
      w.Number(id->number_value);
      break;
    default:
      FailField("id", "must be a string or a number");
  }
  return std::move(w).Take();
}

void BeginResponse(obs::JsonWriter& w, const std::string& id_json) {
  w.BeginObject();
  w.Key("schema");
  w.String(kServeResponseSchema);
  w.Key("schema_version");
  w.Number(kServeSchemaVersion);
  w.Key("id");
  w.Raw(id_json);
}

}  // namespace

ServeRequest ParseServeRequest(const JsonValue& doc) {
  if (!doc.is_object()) throw Error("request: must be a JSON object");
  for (const auto& [key, value] : doc.object_value) {
    (void)value;
    if (!KnownRequestKeys().contains(key))
      throw Error("request: unknown member '" + key + "'");
  }
  const std::string schema =
      GetString(doc, "schema", std::string(kServeRequestSchema));
  if (schema != kServeRequestSchema)
    throw Error("request: schema must be '" +
                std::string(kServeRequestSchema) + "'");
  const std::size_t version =
      GetCount(doc, "schema_version", kServeSchemaVersion);
  if (version != kServeSchemaVersion)
    throw Error("request: unknown schema_version " + std::to_string(version));

  ServeRequest request;
  request.id_json = RenderIdFragment(doc.Find("id"));
  request.op = GetString(doc, "op", "partition");
  if (request.op != "partition" && request.op != "ping" &&
      request.op != "shutdown")
    throw Error("request: unknown op '" + request.op + "'");

  SessionRequest& s = request.session;
  s.circuit = GetString(doc, "circuit", "");
  s.bench_text = GetString(doc, "bench_text", "");
  if (request.op == "partition" && s.circuit.empty() && s.bench_text.empty())
    throw Error("request: need a netlist source (circuit or bench_text)");
  if (!s.circuit.empty() && !s.bench_text.empty())
    throw Error("request: circuit and bench_text are mutually exclusive");
  s.algo = GetString(doc, "algo", "flow");
  s.height = static_cast<Level>(GetCount(doc, "height", 4));
  s.branching = GetCount(doc, "branching", 2);
  s.slack = GetNumber(doc, "slack", 0.10);
  if (const JsonValue* weights = doc.Find("weights")) {
    if (weights->kind != JsonValue::Kind::kArray)
      FailField("weights", "must be an array of numbers");
    for (const JsonValue& w : weights->array_value) {
      if (w.kind != JsonValue::Kind::kNumber)
        FailField("weights", "must be an array of numbers");
      s.weights.push_back(w.number_value);
    }
  }
  s.iterations = GetCount(doc, "iterations", 4);
  s.threads = GetCount(doc, "threads", 0);
  s.metric_threads = GetCount(doc, "metric_threads", 1);
  s.build_threads = GetCount(doc, "build_threads", 1);
  s.refine = GetBool(doc, "refine", false);
  s.multilevel = GetBool(doc, "multilevel", false);
  s.coarsen_threshold = GetCount(doc, "coarsen_threshold", 800);
  s.oracle_sample = GetNumber(doc, "oracle_sample", 0.0);
  // ECO members (docs/incremental.md): inline documents only — the daemon
  // never opens request-named paths, mirroring bench_text vs bench_file.
  s.delta_text = GetString(doc, "delta_text", "");
  s.warm_text = GetString(doc, "warm_text", "");
  s.warm_from_cache = GetBool(doc, "warm_from_cache", false);
  s.emit_warm_state = GetBool(doc, "emit_warm_state", false);
  // Seeds ride a JSON number: exact up to 2^53, documented in
  // docs/file-formats.md.
  s.seed = static_cast<std::uint64_t>(GetCount(doc, "seed", 1));
  s.budget.max_rounds = GetCount(doc, "max_rounds", 0);
  request.deadline_ms = GetNumber(doc, "deadline_ms", 0.0);
  if (request.deadline_ms < 0) FailField("deadline_ms", "must be >= 0");
  if (request.deadline_ms > 0)
    s.budget.time_budget_seconds = request.deadline_ms / 1000.0;
  request.want_report = GetBool(doc, "report", false);
  s.collect_report = request.want_report;
  s.report_tool = "htp_serve";
  return request;
}

std::string RenderServeResponse(const ServeRequest& request,
                                const SessionResult& result,
                                double queue_wait_ms) {
  const Hypergraph& hg = *result.netlist;
  obs::JsonWriter w;
  BeginResponse(w, request.id_json);
  w.Key("status");
  w.String("ok");

  // The deterministic section leads, holds no wall-clock or cache-state
  // fields, and is the exact slice obs::DeterministicSection() extracts.
  w.Key("deterministic");
  w.BeginObject();
  w.Key("meta");
  w.BeginObject();
  w.Key("algorithm");
  w.String(request.session.algo);
  w.Key("source");
  w.String(request.session.circuit.empty() ? "bench"
                                           : request.session.circuit);
  w.Key("netlist_hash");
  w.String(HexKey(result.netlist_hash));
  w.Key("nodes");
  w.Number(static_cast<std::uint64_t>(hg.num_nodes()));
  w.Key("nets");
  w.Number(static_cast<std::uint64_t>(hg.num_nets()));
  w.Key("pins");
  w.Number(static_cast<std::uint64_t>(hg.num_pins()));
  w.Key("hierarchy");
  w.String(result.spec.ToString());
  w.Key("seed");
  w.Number(static_cast<std::uint64_t>(request.session.seed));
  w.Key("iterations_requested");
  w.Number(static_cast<std::uint64_t>(request.session.iterations));
  w.Key("build_mode");
  w.String(request.session.build_threads == 1 ? "serial" : "tasked");
  w.Key("multilevel");
  w.Bool(result.used_multilevel);
  w.EndObject();  // meta

  w.Key("result");
  w.BeginObject();
  w.Key("cost");
  w.Number(result.refined ? result.fm.final_cost : result.cost);
  w.Key("algo_cost");
  w.Number(result.cost);
  w.Key("completed");
  w.Bool(result.completed);
  w.Key("stop_reason");
  w.String(StopReasonName(result.stop_reason));
  w.Key("refined");
  w.Bool(result.refined);
  if (result.refined) {
    w.Key("fm_moves_kept");
    w.Number(static_cast<std::uint64_t>(result.fm.moves_kept));
    w.Key("fm_passes");
    w.Number(static_cast<std::uint64_t>(result.fm.passes));
  }
  if (result.used_multilevel) {
    w.Key("coarsen_levels");
    w.Number(static_cast<std::uint64_t>(result.coarsen_levels));
    w.Key("coarsest_nodes");
    w.Number(static_cast<std::uint64_t>(result.coarsest_nodes));
    w.Key("coarse_cost");
    w.Number(result.coarse_cost);
    w.Key("feasibility_fallbacks");
    w.Number(static_cast<std::uint64_t>(result.feasibility_fallbacks));
  }
  if (result.eco) {
    // ECO summary. Deterministic by construction: every field is a pure
    // function of the request (warm_from_cache recomputes its seed through
    // the provider rather than probing cache presence), so this object is
    // safe inside the deterministic section.
    w.Key("eco");
    w.BeginObject();
    w.Key("pre_delta_hash");
    w.String(HexKey(result.pre_delta_hash));
    w.Key("warm_source");
    w.String(result.warm_source);
    w.Key("blocks_reused");
    w.Number(static_cast<std::uint64_t>(result.eco_blocks_reused));
    w.Key("blocks_recarved");
    w.Number(static_cast<std::uint64_t>(result.eco_blocks_recarved));
    w.Key("full_rebuild");
    w.Bool(result.eco_full_rebuild);
    w.Key("warm_rounds");
    w.Number(static_cast<std::uint64_t>(result.eco_warm_rounds));
    w.Key("warm_injections");
    w.Number(static_cast<std::uint64_t>(result.eco_warm_injections));
    w.Key("converged");
    w.Bool(result.eco_converged);
    w.EndObject();
  }
  w.Key("iterations");
  w.BeginArray();
  for (const HtpFlowIteration& it : result.iterations) {
    // wall_seconds deliberately omitted: it is the one iteration field
    // outside the determinism contract.
    w.BeginObject();
    w.Key("metric_cost");
    w.Number(it.metric_cost);
    w.Key("best_partition_cost");
    w.Number(it.best_partition_cost);
    w.Key("injections");
    w.Number(static_cast<std::uint64_t>(it.injections));
    w.Key("converged");
    w.Bool(it.metric_converged);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // result

  w.Key("partition");
  w.String(WritePartitionText(*result.partition));
  if (!result.warm_state.empty()) {
    // Present iff emit_warm_state: the next run's warm-start input.
    // Deterministic (hexfloat metric + partition text).
    w.Key("warm_state");
    w.String(result.warm_state);
  }
  w.EndObject();  // deterministic

  w.Key("cache");
  w.BeginObject();
  w.Key("netlist");
  w.String(result.cache.netlist);
  w.Key("csr");
  w.BeginObject();
  w.Key("hits");
  w.Number(static_cast<std::uint64_t>(result.cache.csr_hits));
  w.Key("misses");
  w.Number(static_cast<std::uint64_t>(result.cache.csr_misses));
  w.EndObject();
  w.Key("metric");
  w.BeginObject();
  w.Key("hits");
  w.Number(static_cast<std::uint64_t>(result.cache.metric_hits));
  w.Key("misses");
  w.Number(static_cast<std::uint64_t>(result.cache.metric_misses));
  w.EndObject();
  w.EndObject();  // cache

  w.Key("wall");
  w.BeginObject();
  w.Key("run_seconds");
  w.Number(result.run_seconds);
  w.Key("queue_wait_ms");
  w.Number(queue_wait_ms);
  w.EndObject();  // wall

  if (request.want_report && !result.report.empty()) {
    w.Key("report");
    w.Raw(result.report);
  }
  w.EndObject();
  return std::move(w).Take();
}

std::string RenderServeAck(const std::string& id_json, std::string_view op) {
  obs::JsonWriter w;
  BeginResponse(w, id_json);
  w.Key("status");
  w.String("ok");
  w.Key("op");
  w.String(op);
  w.EndObject();
  return std::move(w).Take();
}

std::string RenderServeError(const std::string& id_json,
                             std::string_view message) {
  obs::JsonWriter w;
  BeginResponse(w, id_json);
  w.Key("status");
  w.String("error");
  w.Key("error");
  w.String(message);
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace htp::serve
