// The htp_serve wire protocol: newline-delimited JSON, one request object
// per line, one response object per line (docs/server.md is the
// field-by-field handbook; docs/file-formats.md holds the format grammar).
//
// Requests carry schema "htp-serve-request", responses
// "htp-serve-response", both at schema_version 1 and versioned under the
// same policy as htp-run-report: additive fields keep the version,
// breaking changes bump it, consumers reject versions they do not know.
//
// Response layout is deliberate: the top-level "deterministic" key comes
// first and holds everything bit-identical across cache states and thread
// counts for a deadline-free request — meta, result, and the partition
// text — so obs::DeterministicSection() extracts the comparable slice
// directly (the warm-vs-cold byte-identity test does exactly that). The
// "cache" and "wall" sections sit outside it and may differ freely.
#pragma once

#include <string>
#include <string_view>

#include "server/json_parse.hpp"
#include "server/session.hpp"

namespace htp::serve {

inline constexpr std::string_view kServeRequestSchema = "htp-serve-request";
inline constexpr std::string_view kServeResponseSchema = "htp-serve-response";
inline constexpr int kServeSchemaVersion = 1;

/// One decoded request line.
struct ServeRequest {
  /// "partition" (default), "ping" (liveness probe), or "shutdown".
  std::string op = "partition";
  /// The request's `id` member re-rendered as a JSON fragment (string,
  /// number, or "null" when absent), echoed verbatim in the response so
  /// clients can match responses arriving in completion order.
  std::string id_json = "null";
  SessionRequest session;
  /// Per-request wall-clock SLA in milliseconds; 0 = none. Routed into
  /// Budget::time_budget_seconds — the same safepoint machinery as
  /// htp_cli --time-budget — armed when the request starts *running*
  /// (queue wait is excluded; serve.queue_wait observes it instead).
  double deadline_ms = 0.0;
  /// Embed the full RunReport under the top-level "report" key. Off by
  /// default: report counters are process-cumulative in a daemon, so the
  /// report is NOT part of the deterministic response section.
  bool want_report = false;
};

/// Decodes one parsed request document. Strict: unknown members, wrong
/// types, or an unsupported schema/schema_version throw htp::Error, so
/// client typos fail loudly instead of silently running defaults.
ServeRequest ParseServeRequest(const JsonValue& doc);

/// Renders the success response for a completed partition request.
std::string RenderServeResponse(const ServeRequest& request,
                                const SessionResult& result,
                                double queue_wait_ms);

/// Renders the response for "ping" and "shutdown" ops.
std::string RenderServeAck(const std::string& id_json, std::string_view op);

/// Renders an error response (parse failures, rejected requests, run
/// errors). `id_json` may be "null" when the id never decoded.
std::string RenderServeError(const std::string& id_json,
                             std::string_view message);

}  // namespace htp::serve
