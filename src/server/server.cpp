#include "server/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "server/protocol.hpp"

namespace htp::serve {

namespace {

obs::Counter c_requests("serve.requests");
obs::Counter c_errors("serve.errors");
obs::Histogram h_queue_wait("serve.queue_wait", obs::HistogramKind::kTimeNs);
obs::Event e_request("serve.request");

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One client connection: the fd plus the write lock the pool tasks share
// (responses go out in completion order, one full line at a time) and the
// outstanding-request count the reader drains before closing.
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::mutex state_mu;
  std::condition_variable drained;
  std::size_t outstanding = 0;

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
      // MSG_NOSIGNAL: a client that hung up must cost us an EPIPE errno,
      // not a process-killing SIGPIPE.
      const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // client gone; nothing useful to do
      sent += static_cast<std::size_t>(n);
    }
  }

  void TaskDone() {
    std::lock_guard<std::mutex> lock(state_mu);
    --outstanding;
    drained.notify_all();
  }

  void DrainOutstanding() {
    std::unique_lock<std::mutex> lock(state_mu);
    drained.wait(lock, [&] { return outstanding == 0; });
  }
};

class Daemon {
 public:
  explicit Daemon(const ServeOptions& options)
      : options_(options),
        cache_(options.cache),
        pool_(ResolveThreadCount(options.threads)) {}

  ServeStats Run() {
    const int listen_fd = Listen();
    std::vector<std::thread> readers;
    while (!ShouldStop()) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
      if (ready <= 0) continue;  // timeout / EINTR: re-check the flag
      const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = conn_fd;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(conn);
      }
      readers.emplace_back([this, conn] { ReadLoop(conn); });
    }
    // Wake any reader blocked on a silent client, then join them all —
    // their outstanding pool tasks drain inside ReadLoop.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
    }
    for (std::thread& reader : readers) reader.join();
    ::close(listen_fd);
    ::unlink(options_.socket_path.c_str());
    ServeStats stats;
    stats.requests = served_.load();
    stats.errors = errors_.load();
    return stats;
  }

 private:
  int Listen() {
    if (options_.socket_path.empty())
      throw Error("serve: socket path must not be empty");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path))
      throw Error("serve: socket path too long: " + options_.socket_path);
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error("serve: cannot create socket");
    ::unlink(options_.socket_path.c_str());  // stale file from a past run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      throw Error("serve: cannot bind " + options_.socket_path + ": " +
                  std::strerror(errno));
    }
    if (::listen(fd, 16) < 0) {
      ::close(fd);
      throw Error("serve: cannot listen on " + options_.socket_path);
    }
    return fd;
  }

  bool ShouldStop() const {
    if (shutdown_.load(std::memory_order_acquire)) return true;
    return options_.max_requests > 0 &&
           dispatched_.load(std::memory_order_acquire) >=
               options_.max_requests;
  }

  void ReadLoop(const std::shared_ptr<Connection>& conn) {
    std::string buffer;
    char chunk[4096];
    bool stop = false;
    while (!stop) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while (!stop && (newline = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        stop = HandleLine(conn, line);
      }
    }
    conn->DrainOutstanding();
    ::close(conn->fd);
  }

  /// Returns true when this connection should stop reading (shutdown, or
  /// the max-requests bound was reached).
  bool HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return false;
    ServeRequest request;
    try {
      request = ParseServeRequest(ParseJson(line));
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      c_errors.Add();
      conn->WriteLine(RenderServeError("null", e.what()));
      return false;
    }
    if (request.op == "ping") {
      conn->WriteLine(RenderServeAck(request.id_json, "ping"));
      return false;
    }
    if (request.op == "shutdown") {
      conn->WriteLine(RenderServeAck(request.id_json, "shutdown"));
      shutdown_.store(true, std::memory_order_release);
      return true;
    }
    Dispatch(conn, std::move(request));
    return options_.max_requests > 0 &&
           dispatched_.load(std::memory_order_acquire) >=
               options_.max_requests;
  }

  void Dispatch(const std::shared_ptr<Connection>& conn,
                ServeRequest request) {
    dispatched_.fetch_add(1, std::memory_order_acq_rel);
    c_requests.Add();
    {
      std::lock_guard<std::mutex> lock(conn->state_mu);
      ++conn->outstanding;
    }
    const std::uint64_t enqueue_ns = NowNs();
    auto shared_request = std::make_shared<ServeRequest>(std::move(request));
    pool_.Submit([this, conn, shared_request, enqueue_ns] {
      const std::uint64_t wait_ns = NowNs() - enqueue_ns;
      h_queue_wait.Record(wait_ns);
      std::string response;
      try {
        const SessionResult result =
            RunSession(shared_request->session, &cache_);
        response = RenderServeResponse(*shared_request, result,
                                       static_cast<double>(wait_ns) / 1e6);
        served_.fetch_add(1);
        e_request.Record(
            {{"cost", result.refined ? result.fm.final_cost : result.cost},
             {"completed", result.completed ? 1.0 : 0.0},
             {"metric_hits",
              static_cast<double>(result.cache.metric_hits)},
             {"metric_misses",
              static_cast<double>(result.cache.metric_misses)}});
      } catch (const std::exception& e) {
        errors_.fetch_add(1);
        c_errors.Add();
        response = RenderServeError(shared_request->id_json, e.what());
      }
      conn->WriteLine(response);
      conn->TaskDone();
    });
  }

  const ServeOptions options_;
  ArtifactCache cache_;
  ThreadPool pool_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> dispatched_{0};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> errors_{0};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace

ServeStats RunServer(const ServeOptions& options) {
  return Daemon(options).Run();
}

}  // namespace htp::serve
