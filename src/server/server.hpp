// The htp_serve daemon core: accept loop, request scheduling, shutdown.
//
// RunServer listens on an AF_UNIX stream socket, reads newline-delimited
// JSON requests (protocol.hpp) from each connection, and schedules every
// partition request as one task on the shared ThreadPool — the inner
// parallelism knobs of a request degrade serially inside a pool worker
// via the runtime's nested-parallelism guard, so a busy daemon never
// oversubscribes the machine with pools-within-pools. Responses are
// written back on the request's connection in *completion* order, tagged
// with the request's echoed id (docs/server.md documents the matching
// rule). "ping" and "shutdown" are answered inline on the reader thread;
// shutdown drains outstanding requests, then returns from RunServer.
//
// One ArtifactCache (cache.hpp) spans the daemon's lifetime: identical
// repeat requests skip parsing, CSR lowering, and metric convergence.
//
// Observability: serve.requests / serve.errors counters, the
// serve.queue_wait time histogram (enqueue -> start of execution), and a
// serve.request journal event per completed request.
#pragma once

#include <cstddef>
#include <string>

#include "server/cache.hpp"

namespace htp::serve {

struct ServeOptions {
  /// Filesystem path of the AF_UNIX listening socket. A stale socket file
  /// from a previous run is unlinked first. Keep it short: the kernel
  /// limit on sun_path is ~108 bytes.
  std::string socket_path;
  /// Pool workers executing partition requests (0 = all hardware
  /// threads). Each request occupies one worker for its whole run.
  std::size_t threads = 0;
  CacheConfig cache;
  /// Stop after serving this many partition requests (0 = run until a
  /// shutdown request). Lets tests and CI smokes bound the daemon's
  /// lifetime without racing a kill signal.
  std::size_t max_requests = 0;
};

/// What the daemon did, for the driver's shutdown report.
struct ServeStats {
  std::size_t requests = 0;  ///< partition requests completed (ok)
  std::size_t errors = 0;    ///< lines answered with status "error"
};

/// Runs the daemon until shutdown (or max_requests). Throws htp::Error
/// when the socket cannot be created or bound.
ServeStats RunServer(const ServeOptions& options);

}  // namespace htp::serve
