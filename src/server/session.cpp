#include "server/session.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/cost.hpp"
#include "core/partition_io.hpp"
#include "core/tree_partition.hpp"
#include "incremental/eco_repartition.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generators.hpp"
#include "netlist/rng.hpp"
#include "obs/report.hpp"
#include "partition/gfm.hpp"
#include "partition/parallel_refine.hpp"
#include "partition/rfm.hpp"
#include "server/artifact_key.hpp"

namespace htp::serve {

namespace {

// Key of the netlist *source* (what the request asked for), as opposed to
// the structural hash of the parsed result. A built-in circuit is keyed by
// (name, seed) because MakeIscas85Like instantiates from the run seed;
// .bench text is keyed by its full content.
std::uint64_t SourceKey(const SessionRequest& request) {
  std::uint64_t h = HashBytes(kFnvOffset, "htp-netlist-source-v1");
  if (!request.bench_text.empty()) {
    h = HashBytes(h, "bench");
    h = HashBytes(h, request.bench_text);
    return h;
  }
  h = HashBytes(h, "circuit");
  h = HashBytes(h, request.circuit);
  return CombineHashes(std::array<std::uint64_t, 2>{h, request.seed});
}

std::string ReadBenchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open bench file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

NetlistArtifact BuildNetlist(const SessionRequest& request) {
  Hypergraph hg = request.bench_text.empty()
                      ? MakeIscas85Like(request.circuit, request.seed)
                      : ParseBench(request.bench_text).hg;
  auto shared = std::make_shared<const Hypergraph>(std::move(hg));
  const std::uint64_t hash = HashNetlist(*shared);
  return NetlistArtifact{std::move(shared), hash};
}

// Per-request tallies the cache-aware metric provider accumulates from
// pool workers; folded into SessionCacheOutcome after the run joins them.
struct ProviderStats {
  std::atomic<std::size_t> csr_hits{0};
  std::atomic<std::size_t> csr_misses{0};
  std::atomic<std::size_t> metric_hits{0};
  std::atomic<std::size_t> metric_misses{0};
};

}  // namespace

SessionResult RunSession(const SessionRequest& request, ArtifactCache* cache) {
  const auto start = std::chrono::steady_clock::now();
  SessionResult result;

  // --- Netlist: provided > cache > direct build. A file path is read
  // into text first so every cached key is content-derived. ---
  SessionRequest normalized;
  const SessionRequest* req = &request;
  if (!request.bench_file.empty()) {
    normalized = request;
    normalized.bench_text = ReadBenchFile(request.bench_file);
    // An explicitly named bench file must never fall back to the
    // request's (defaulted) built-in circuit.
    if (normalized.bench_text.empty())
      throw Error("session: bench file is empty: " + request.bench_file);
    normalized.bench_file.clear();
    req = &normalized;
  }
  if (req->netlist) {
    result.netlist = req->netlist;
    result.netlist_hash = HashNetlist(*result.netlist);
  } else {
    if (req->circuit.empty() && req->bench_text.empty())
      throw Error("session: no netlist source (circuit or bench_text)");
    if (cache && cache->netlist_enabled()) {
      auto [artifact, hit] = cache->GetOrComputeNetlist(
          SourceKey(*req), [&] { return BuildNetlist(*req); });
      result.netlist = std::move(artifact.hg);
      result.netlist_hash = artifact.structural_hash;
      result.cache.netlist = hit ? "hit" : "miss";
    } else {
      NetlistArtifact artifact = BuildNetlist(*req);
      result.netlist = std::move(artifact.hg);
      result.netlist_hash = artifact.structural_hash;
    }
  }
  // --- Incremental (ECO) inputs: parse the delta and warm state, apply
  // the delta to the resolved base netlist. The request's netlist source
  // always names the PRE-delta base; the run partitions the edited
  // result (docs/incremental.md). ---
  if (!request.delta_text.empty() && !request.delta_file.empty())
    throw Error("session: delta_text and delta_file are mutually exclusive");
  if (!request.warm_text.empty() && !request.warm_file.empty())
    throw Error("session: warm_text and warm_file are mutually exclusive");
  const bool have_warm_state =
      !request.warm_text.empty() || !request.warm_file.empty();
  if (request.warm_from_cache && have_warm_state)
    throw Error(
        "session: warm_from_cache excludes an explicit warm-start state");
  const bool have_delta =
      !request.delta_text.empty() || !request.delta_file.empty();
  // A warm source without a delta is the empty-delta resume: the delta
  // application below degenerates to an identity rebuild of the base.
  NetlistDelta delta;
  if (!request.delta_file.empty())
    delta = ReadDeltaFile(request.delta_file);
  else if (!request.delta_text.empty())
    delta = ParseDeltaText(request.delta_text);
  std::optional<WarmStartState> warm_state;
  if (!request.warm_file.empty())
    warm_state = ReadWarmStartFile(request.warm_file);
  else if (!request.warm_text.empty())
    warm_state = ParseWarmStartText(request.warm_text);

  const bool eco_mode =
      have_delta || have_warm_state || request.warm_from_cache;
  if ((eco_mode || request.emit_warm_state) &&
      (request.algo != "flow" && request.algo != "flow-mst"))
    throw Error(
        "session: delta/warm-start/emit_warm_state require --algo flow "
        "or flow-mst");
  if ((eco_mode || request.emit_warm_state) && request.multilevel)
    throw Error(
        "session: delta/warm-start/emit_warm_state cannot combine with "
        "--multilevel");
  std::shared_ptr<const Hypergraph> base;
  std::optional<DeltaApplication> app;
  if (eco_mode) {
    base = result.netlist;
    result.eco = true;
    result.pre_delta_hash = result.netlist_hash;
    app.emplace(ApplyDelta(*base, delta));
    result.netlist = app->hg;
    result.netlist_hash = HashNetlist(*app->hg);
  }
  const Hypergraph& hg = *result.netlist;

  const std::vector<double> weights =
      request.weights.empty() ? std::vector<double>(request.height, 1.0)
                              : request.weights;
  if (weights.size() != request.height)
    throw Error("session: weights must carry exactly `height` values");
  // With a delta the spec is still derived from the PRE-delta total: the
  // hierarchy is the physical target an ECO edits into, not a function of
  // the edited netlist (a delta that outgrows it fails validation).
  result.spec =
      UniformHierarchy(base ? base->total_size() : hg.total_size(),
                       request.height, request.branching, request.slack,
                       weights);
  const HierarchySpec& spec = result.spec;

  // The deadline is armed once, here, and shared by every stage below —
  // construction and refinement draw from the same clock. Passing the
  // token as params.cancel (not re-arming params.budget) keeps the budget
  // from being granted twice. Identical to the pre-extraction htp_cli.
  const CancellationToken run_token =
      StartBudget(request.budget, request.cancel);

  if (request.multilevel && request.algo != "flow" &&
      request.algo != "flow-mst")
    throw Error("--multilevel requires --algo flow or flow-mst");

  TreePartition tp(hg, 0);
  auto provider_stats = std::make_shared<ProviderStats>();
  // Converged metric retained for request.emit_warm_state (set on every
  // path that can emit: plain flow via keep_best_metric, ECO directly).
  std::optional<SpreadingMetric> emit_metric;
  if (request.algo == "flow" || request.algo == "flow-mst") {
    HtpFlowParams params;
    params.iterations = request.iterations;
    params.seed = request.seed;
    params.keep_best_metric = request.emit_warm_state;
    params.collect_report = request.collect_report;
    params.threads = request.threads;
    params.metric_threads = request.metric_threads;
    params.build_threads = request.build_threads;
    params.budget.max_rounds = request.budget.max_rounds;
    params.cancel = run_token;
    params.injection.oracle_sample = request.oracle_sample;
    if (request.algo == "flow-mst") params.carver = CarverKind::kMstSplit;

    if (cache && (cache->metric_enabled() || cache->csr_enabled())) {
      // The cache-aware provider intercepts every metric computation —
      // the global per-iteration one and the per-subproblem locals alike.
      // It must be thread-safe (pool workers call it concurrently) and
      // bit-transparent: a served artifact is exactly what the direct
      // ComputeSpreadingMetric call would have returned, because the key
      // covers every result-affecting input (artifact_key.hpp).
      ArtifactCache* const c = cache;
      params.metric_compute = [c, provider_stats](
                                  const Hypergraph& g, const HierarchySpec& s,
                                  const FlowInjectionParams& p) {
        FlowInjectionParams pp = p;
        const std::uint64_t g_hash = HashNetlist(g);
        if (c->csr_enabled()) {
          auto [view, hit] = c->GetOrComputeCsr(
              g_hash, [&] { return std::make_shared<const CsrView>(g); });
          pp.csr = std::move(view);
          (hit ? provider_stats->csr_hits : provider_stats->csr_misses)
              .fetch_add(1, std::memory_order_relaxed);
        }
        if (!c->metric_enabled()) return ComputeSpreadingMetric(g, s, pp);
        const std::uint64_t key = CombineHashes(std::array<std::uint64_t, 3>{
            g_hash, HashSpec(s), HashInjectionParams(pp)});
        auto [metric, hit] = c->GetOrComputeMetric(
            key, [&] { return ComputeSpreadingMetric(g, s, pp); });
        (hit ? provider_stats->metric_hits : provider_stats->metric_misses)
            .fetch_add(1, std::memory_order_relaxed);
        return metric;
      };
    }

    if (request.multilevel) {
      MultilevelParams ml;
      ml.flow = params;
      ml.collect_report = request.collect_report;
      ml.coarsen_threshold = static_cast<NodeId>(request.coarsen_threshold);
      MultilevelResult ml_result = RunMultilevelFlow(hg, spec, ml);
      result.used_multilevel = true;
      result.coarsen_levels = ml_result.coarsen_levels;
      result.coarsest_nodes = ml_result.coarsest_nodes;
      result.coarse_cost = ml_result.coarse_cost;
      result.feasibility_fallbacks = ml_result.feasibility_fallbacks;
      result.level_stats = std::move(ml_result.level_stats);
      result.completed = ml_result.completed;
      result.stop_reason = ml_result.stop_reason;
      result.report = std::move(ml_result.report);
      tp = std::move(ml_result.partition);
    } else if (warm_state) {
      // Full ECO: warm metric re-convergence plus delta-scoped re-carving,
      // cloning the prior partition's untouched root subtrees.
      CheckWarmStartMatches(*warm_state, *base);
      const TreePartition old_tp =
          ReadPartitionText(*base, warm_state->partition_text);
      const SpreadingMetric warm = RemapWarmMetric(*warm_state, *app);
      EcoParams eco;
      eco.flow = params;
      EcoResult er = RunEcoRepartition(*app, spec, old_tp, warm, eco);
      result.warm_source = "state";
      result.eco_blocks_reused = er.blocks_reused;
      result.eco_blocks_recarved = er.blocks_recarved;
      result.eco_full_rebuild = er.full_rebuild;
      result.eco_warm_rounds = er.warm_rounds;
      result.eco_warm_injections = er.warm_injections;
      result.eco_converged = er.metric_converged;
      if (er.metric_cancelled) {
        result.completed = false;
        result.stop_reason = request.cancel.Cancelled()
                                 ? StopReason::kCancelled
                                 : StopReason::kDeadline;
      }
      tp = std::move(er.partition);
      if (request.emit_warm_state) emit_metric = std::move(er.metric);
    } else {
      if (request.warm_from_cache) {
        // Metric-cache interop: recompute the PRE-delta iteration-0
        // converged metric through the provider — with a warm cache this
        // is a hit on the exact entry the prior cold run stored (same
        // key: pre-delta hash x spec x injection params). Deliberately an
        // inert token and deterministic caps only, so the seed — and with
        // it the deterministic response section — is a pure function of
        // the request, never of cache state.
        FlowInjectionParams pre = params.injection;
        if (request.budget.max_rounds > 0)
          pre.max_rounds = std::min(pre.max_rounds, request.budget.max_rounds);
        pre.seed = Rng(request.seed).fork(0).next_u64();
        pre.threads = request.metric_threads;
        const FlowInjectionResult pre_metric =
            params.metric_compute
                ? params.metric_compute(*base, spec, pre)
                : ComputeSpreadingMetric(*base, spec, pre);
        params.injection.warm_metric = std::make_shared<const SpreadingMetric>(
            RemapWarmMetric(pre_metric.metric, *app));
        result.warm_source = "cache";
      }
      HtpFlowResult flow_result = RunHtpFlow(hg, spec, params);
      result.completed = flow_result.completed;
      result.stop_reason = flow_result.stop_reason;
      result.iterations = std::move(flow_result.iterations);
      result.report = std::move(flow_result.report);
      tp = std::move(flow_result.partition);
      if (request.emit_warm_state)
        emit_metric = std::move(flow_result.best_metric);
      if (result.eco) {
        // No prior partition to stitch from on this path.
        result.eco_full_rebuild = true;
        if (!result.iterations.empty()) {
          result.eco_warm_injections = result.iterations[0].injections;
          result.eco_converged = result.iterations[0].metric_converged;
        }
      }
    }
  } else if (request.algo == "rfm") {
    RfmParams rfm_params;
    rfm_params.seed = request.seed;
    rfm_params.cancel = run_token;
    rfm_params.build_threads = request.build_threads;
    tp = RunRfm(hg, spec, rfm_params);
  } else if (request.algo == "gfm") {
    GfmParams gfm_params;
    gfm_params.seed = request.seed;
    gfm_params.cancel = run_token;
    tp = RunGfm(hg, spec, gfm_params);
  } else {
    throw Error("unknown --algo '" + request.algo + "'");
  }
  result.cost = PartitionCost(tp, spec);

  if (request.refine) {
    HtpFmParams fm_params;
    fm_params.seed = request.seed;
    fm_params.cancel = run_token;
    result.fm = request.build_threads != 1
                    ? RefineHtpFmBlocks(tp, spec, fm_params,
                                        request.build_threads)
                    : RefineHtpFm(tp, spec, fm_params);
    result.refined = true;
  }
  RequireValidPartition(tp, spec);
  result.partition = std::move(tp);

  if (request.emit_warm_state) {
    HTP_CHECK_MSG(emit_metric.has_value(),
                  "emit_warm_state: no converged metric on this path");
    result.warm_state = WriteWarmStartText(MakeWarmStartState(
        hg, *emit_metric, *result.partition, request.seed));
  }

  // rfm/gfm runs assemble a driver-level report so collect_report always
  // yields a valid artifact (the flow pipelines build their own richer
  // one). Field-for-field the fallback htp_cli used to build inline.
  if (request.collect_report && result.report.empty()) {
    obs::RunReportBuilder rb(request.report_tool);
    rb.MetaString("algorithm", request.algo);
    rb.MetaNumber("nodes", static_cast<double>(hg.num_nodes()));
    rb.MetaNumber("nets", static_cast<double>(hg.num_nets()));
    rb.MetaNumber("levels", static_cast<double>(spec.num_levels()));
    rb.MetaNumber("seed", static_cast<double>(request.seed));
    rb.ResultNumber("cost", PartitionCost(*result.partition, spec));
    rb.WallNumber("threads", static_cast<double>(request.threads));
    rb.WallNumber("build_threads",
                  static_cast<double>(request.build_threads));
    result.report = rb.Render(obs::TakeSnapshot(), obs::DrainEvents());
  }

  result.cache.csr_hits =
      provider_stats->csr_hits.load(std::memory_order_relaxed);
  result.cache.csr_misses =
      provider_stats->csr_misses.load(std::memory_order_relaxed);
  result.cache.metric_hits =
      provider_stats->metric_hits.load(std::memory_order_relaxed);
  result.cache.metric_misses =
      provider_stats->metric_misses.load(std::memory_order_relaxed);
  result.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace htp::serve
