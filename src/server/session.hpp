// Session: the reusable run-pipeline extracted from htp_cli.
//
// One SessionRequest describes everything a partition run needs — netlist
// source, hierarchy shape, algorithm, parallelism knobs, budget — and
// RunSession executes the exact pipeline htp_cli used to inline: resolve
// the netlist, build the hierarchy spec, arm the budget once, run the
// chosen algorithm (flow / flow-mst, optionally multilevel; rfm; gfm),
// optionally refine with generalized FM, and validate the result. htp_cli
// is now a thin driver over this function (parse argv, call, print), and
// htp_serve drives the same function per request — the library/driver
// split ROADMAP calls for, so the two binaries cannot drift apart.
//
// Determinism: for a fixed request (and no wall-clock deadline) the
// partition, cost, and iteration stats are bit-identical whether cache is
// null or warm, and identical between htp_cli and htp_serve — the serve
// smoke test diffs the two binaries' partitions byte for byte. The cache
// preserves bits because every artifact it serves is a pure function of
// the key (docs/server.md, "Cache key derivation").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/htp_flow.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "partition/htp_fm.hpp"
#include "server/cache.hpp"

namespace htp::serve {

/// One partition run. Field defaults mirror htp_cli's flag defaults.
struct SessionRequest {
  /// Netlist source — exactly one of the four. `circuit` names a built-in
  /// ISCAS85-like generator (instantiated with the run seed, matching
  /// htp_cli); `bench_text` is inline .bench source; `bench_file` is a
  /// path read up-front into `bench_text` (so cache keys stay
  /// content-based, never path-based); `netlist` is a pre-parsed
  /// hypergraph (tests, embedding callers).
  std::string circuit;
  std::string bench_text;
  std::string bench_file;
  std::shared_ptr<const Hypergraph> netlist;

  std::string algo = "flow";  ///< flow | flow-mst | rfm | gfm
  Level height = 4;
  std::size_t branching = 2;
  double slack = 0.10;
  std::vector<double> weights;  ///< per-level; empty = all 1.0
  std::size_t iterations = 4;
  std::size_t threads = 0;
  std::size_t metric_threads = 1;
  std::size_t build_threads = 1;
  bool refine = false;
  bool multilevel = false;
  std::size_t coarsen_threshold = 800;
  double oracle_sample = 0.0;
  /// Incremental (ECO) repartitioning inputs (docs/incremental.md).
  /// `delta_text` is an inline "htp-delta v1" document, `delta_file` a path
  /// read up-front (mutually exclusive). The delta applies to the resolved
  /// netlist (the PRE-delta base); the run partitions the edited result,
  /// but the hierarchy spec is still built from the base's total size —
  /// the hierarchy is the physical target an ECO edits into. Requires
  /// algo flow/flow-mst and excludes multilevel.
  std::string delta_text;
  std::string delta_file;
  /// Prior-run warm-start state ("htp-warm-start v1"), inline or a path
  /// (mutually exclusive). Must match the PRE-delta netlist. When present,
  /// the prior metric is remapped through the delta and the run goes
  /// through RunEcoRepartition: Algorithm 2 resumes injection and the
  /// prior partition's untouched root subtrees are cloned. Without a
  /// delta, this is the empty-delta resume (bit-identical to the run that
  /// produced the state).
  std::string warm_text;
  std::string warm_file;
  /// Derive the warm metric from the metric-cache interop instead of a
  /// state file: the PRE-delta iteration-0 converged metric is recomputed
  /// through the metric provider — a pure function of this request, so the
  /// deterministic response section never depends on cache state; with a
  /// warm cache it is served as a hit keyed by the pre-delta hash. No
  /// prior partition is available, so construction runs in full (the
  /// remapped metric seeds a plain flow run). Excludes warm_text/warm_file.
  bool warm_from_cache = false;
  /// Serialize the run's winning converged metric plus the FINAL
  /// (post-refine) partition into SessionResult::warm_state — the next
  /// run's warm-start input. Requires algo flow/flow-mst, no multilevel.
  bool emit_warm_state = false;
  std::uint64_t seed = 1;
  /// Armed once at the top of RunSession and shared by every stage, like
  /// htp_cli's --time-budget / --max-rounds.
  Budget budget;
  /// Optional external cancellation, linked as the budget's parent.
  CancellationToken cancel;
  /// Assemble a RunReport into SessionResult::report. For rfm/gfm the
  /// fallback CLI-level report is built here, under `report_tool`.
  bool collect_report = false;
  std::string report_tool = "htp_cli";
};

/// Per-request cache outcome. The netlist tier resolves exactly once per
/// request; the csr and metric tiers are consulted once per metric
/// computation (the per-subproblem metrics of MetricScope::kPerSubproblem
/// included), so they report counts.
struct SessionCacheOutcome {
  std::string netlist = "off";  ///< "hit" | "miss" | "off"
  std::size_t csr_hits = 0;
  std::size_t csr_misses = 0;
  std::size_t metric_hits = 0;
  std::size_t metric_misses = 0;
};

/// Everything the drivers print or serialize.
struct SessionResult {
  std::shared_ptr<const Hypergraph> netlist;
  /// Structural fingerprint (artifact_key.hpp), always computed — it is
  /// the identity serve responses report.
  std::uint64_t netlist_hash = 0;
  HierarchySpec spec;
  /// Always engaged on a successful return (optional only because
  /// TreePartition needs its hypergraph to construct).
  std::optional<TreePartition> partition;
  /// Interconnection cost of `partition` as the algorithm produced it
  /// (before refinement; `fm.final_cost` is the post-refinement cost).
  double cost = 0.0;
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
  /// Flow-algorithm iteration stats (empty for rfm/gfm/multilevel).
  std::vector<HtpFlowIteration> iterations;

  /// Multilevel extras, populated iff `used_multilevel`.
  bool used_multilevel = false;
  std::size_t coarsen_levels = 0;
  NodeId coarsest_nodes = 0;
  double coarse_cost = 0.0;
  std::size_t feasibility_fallbacks = 0;
  std::vector<MultilevelLevelStats> level_stats;

  bool refined = false;
  HtpFmStats fm;  ///< valid iff `refined`

  /// ECO extras, populated iff `eco` (a delta or warm source was given).
  /// All of them are deterministic — pure functions of the request.
  bool eco = false;
  /// Structural hash of the PRE-delta netlist (the metric-cache interop
  /// key component; `netlist_hash` above is the post-delta hash).
  std::uint64_t pre_delta_hash = 0;
  std::string warm_source = "none";  ///< "state" | "cache" | "none"
  std::size_t eco_blocks_reused = 0;
  std::size_t eco_blocks_recarved = 0;
  bool eco_full_rebuild = false;
  std::size_t eco_warm_rounds = 0;
  std::size_t eco_warm_injections = 0;
  bool eco_converged = false;

  /// "htp-warm-start v1" document, populated iff request.emit_warm_state.
  std::string warm_state;

  std::string report;  ///< RunReport JSON, iff collect_report
  SessionCacheOutcome cache;
  double run_seconds = 0.0;  ///< wall clock (outside determinism)
};

/// Runs one session. `cache` may be null (htp_cli passes null: identical
/// behaviour to the pre-extraction CLI). Throws htp::Error on invalid
/// requests (unknown algo, bad weights length, --multilevel with a
/// non-flow algo — same messages the CLI raised inline) and propagates
/// parse/validation errors.
SessionResult RunSession(const SessionRequest& request, ArtifactCache* cache);

}  // namespace htp::serve
