# End-to-end artifact validity: run htp_cli with every observability sink
# enabled (multilevel pipeline, parallel inner scan) and check that all
# three artifacts parse — the trace and JSONL via json.load, the RunReport
# via scripts/obs_report.py validate (schema check) and render.
#
# Driven by ctest as
#   cmake -DCLI=... -DPYTHON=... -DSCRIPT=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(TRACE ${WORK_DIR}/run.trace.json)
set(JSONL ${WORK_DIR}/run.obs.jsonl)
set(REPORT ${WORK_DIR}/run.report.json)

execute_process(
  COMMAND ${CLI} --circuit c2670 --height 3 --iterations 2 --multilevel
          --coarsen-threshold 300 --metric-threads 8
          --trace ${TRACE} --obs-jsonl ${JSONL} --report ${REPORT}
  RESULT_VARIABLE cli_status)
if(NOT cli_status EQUAL 0)
  message(FATAL_ERROR "htp_cli failed with status ${cli_status}")
endif()

# With obs compiled out all three artifacts must still be valid JSON, but
# the telemetry in them is legitimately empty — only gate on content when
# the probes are compiled in.
execute_process(
  COMMAND ${PYTHON} -c
"import json, sys
trace, jsonl, report, obs_on = sys.argv[1:5]
t = json.load(open(trace))
assert isinstance(t['traceEvents'], list), 'trace must carry traceEvents'
rows = [json.loads(line) for line in open(jsonl)]
assert all('type' in row and 'name' in row for row in rows)
if obs_on == '1':
    assert rows, 'jsonl snapshot must not be empty'
json.load(open(report))
print(f'trace {len(t[\"traceEvents\"])} events, jsonl {len(rows)} rows')"
          ${TRACE} ${JSONL} ${REPORT} ${OBS_ENABLED}
  RESULT_VARIABLE parse_status)
if(NOT parse_status EQUAL 0)
  message(FATAL_ERROR "artifact JSON parse failed")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} validate ${REPORT}
  RESULT_VARIABLE validate_status)
if(NOT validate_status EQUAL 0)
  message(FATAL_ERROR "obs_report.py validate rejected the report")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} render ${REPORT}
  RESULT_VARIABLE render_status OUTPUT_QUIET)
if(NOT render_status EQUAL 0)
  message(FATAL_ERROR "obs_report.py render failed")
endif()

# Negative check: the validator is strict about the top level — a report
# with an unknown extra section must be rejected, not waved through.
set(TAMPERED ${WORK_DIR}/run.tampered.report.json)
execute_process(
  COMMAND ${PYTHON} -c
"import json, sys
doc = json.load(open(sys.argv[1]))
doc['bogus_section'] = {}
json.dump(doc, open(sys.argv[2], 'w'))"
          ${REPORT} ${TAMPERED}
  RESULT_VARIABLE tamper_status)
if(NOT tamper_status EQUAL 0)
  message(FATAL_ERROR "could not write tampered report")
endif()
execute_process(
  COMMAND ${PYTHON} ${SCRIPT} validate ${TAMPERED}
  RESULT_VARIABLE strict_status OUTPUT_QUIET)
if(strict_status EQUAL 0)
  message(FATAL_ERROR
          "obs_report.py validate accepted an unknown top-level section")
endif()
