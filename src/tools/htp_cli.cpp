// htp_cli — command-line hierarchical tree partitioner.
//
// Reads an ISCAS85 .bench netlist (or one of the built-in ISCAS85-like
// circuits), partitions it into a K-ary hierarchy, optionally refines with
// the generalized FM improver, and writes the partition in the
// htp-partition text format (core/partition_io.hpp).
//
//   htp_cli --bench c880.bench --height 4 --algo flow --refine
//           --out c880.part
//   htp_cli --circuit c2670 --height 3 --branching 2 --weights 1,4,16
//   htp_cli --circuit c1355 --stats --trace c1355.trace.json
//
// The run pipeline itself lives in server/session.hpp (RunSession); this
// file is the thin driver: parse argv into a SessionRequest, run it with
// no cache, print the same summary lines the pre-split CLI printed, and
// write the requested artifacts. htp_serve drives the identical pipeline,
// which is what keeps daemon partitions bit-identical to CLI partitions.
//
// Exit codes: 0 success, 2 bad usage (including malformed numeric
// arguments), 1 runtime failure.
#include <cstdio>
#include <fstream>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dot_export.hpp"
#include "core/partition_io.hpp"
#include "incremental/netlist_delta.hpp"
#include "incremental/warm_start.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/sinks.hpp"
#include "runtime/thread_pool.hpp"
#include "server/session.hpp"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bench FILE | --circuit NAME] [options]\n"
               "  --bench FILE       ISCAS85 .bench netlist to partition\n"
               "  --circuit NAME     built-in circuit (c1355..c7552); "
               "default c1355\n"
               "  --algo A           flow | flow-mst | rfm | gfm "
               "(default flow)\n"
               "  --height H         hierarchy height (default 4)\n"
               "  --branching K      children per block (default 2)\n"
               "  --slack S          capacity slack fraction (default 0.10)\n"
               "  --weights w0,w1..  per-level cost weights (default all 1)\n"
               "  --iterations N     Algorithm-1 iterations (default 4)\n"
               "  --threads T        worker threads for FLOW iterations; "
               "0 = all\n"
               "                     hardware threads (default 0); results "
               "are\n"
               "                     identical for every T\n"
               "  --metric-threads M worker threads for the candidate scan\n"
               "                     inside each flow-injection round "
               "(default 1;\n"
               "                     0 = all); results are identical for "
               "every M\n"
               "  --build-threads B  construction-parallelism mode "
               "(default 1 =\n"
               "                     legacy serial recursion); any other "
               "value\n"
               "                     (0 = all) fans recursive carves and "
               "--refine\n"
               "                     out per subtree — identical for every "
               "such B,\n"
               "                     but a different deterministic universe "
               "than\n"
               "                     B=1 (see docs/parallelism.md)\n"
               "  --time-budget SEC  wall-clock budget in seconds; when it "
               "fires,\n"
               "                     the best partition found so far is "
               "returned\n"
               "                     and the run reports stop_reason="
               "deadline\n"
               "  --max-rounds N     cap Algorithm-2 worklist rounds per "
               "metric\n"
               "                     (deterministic, unlike --time-budget)\n"
               "  --multilevel       coarsen -> partition -> uncoarsen "
               "pipeline\n"
               "                     for large netlists (flow algos only; "
               "see\n"
               "                     docs/scaling.md)\n"
               "  --coarsen-threshold N\n"
               "                     stop coarsening at N supernodes "
               "(default 800);\n"
               "                     inputs already below N run flat\n"
               "  --oracle-sample F  sampled separation oracle: check "
               "family-(5)\n"
               "                     constraints from a ceil(F*n) sample of "
               "sources\n"
               "                     per metric (0 or 1 = exact, the "
               "default)\n"
               "  --refine           apply generalized FM afterwards\n"
               "  --delta FILE       htp-delta v1 netlist edit applied to "
               "the\n"
               "                     resolved netlist before partitioning "
               "(ECO;\n"
               "                     flow algos only, see "
               "docs/incremental.md)\n"
               "  --warm-start FILE  htp-warm-start v1 state of a prior "
               "run;\n"
               "                     resumes flow injection and clones the "
               "prior\n"
               "                     partition's untouched root subtrees\n"
               "  --warm-out FILE    write this run's warm-start state "
               "(metric +\n"
               "                     final partition) for the next ECO "
               "run\n"
               "  --seed S           random seed (default 1)\n"
               "  --out FILE         write the partition (default stdout "
               "summary only)\n"
               "  --dot FILE         write a Graphviz rendering of the "
               "tree\n"
               "  --stats[=FILE]     print (or write) the telemetry stats "
               "report\n"
               "  --trace FILE       write a Chrome trace_event JSON of the "
               "run\n"
               "                     (open in chrome://tracing or Perfetto)\n"
               "  --report FILE      write the schema-versioned RunReport "
               "JSON\n"
               "                     (deterministic journal + wall stats; "
               "validate,\n"
               "                     render, or diff with "
               "scripts/obs_report.py)\n"
               "  --obs-jsonl FILE   write the telemetry snapshot as JSONL "
               "rows\n"
               "                     (one object per counter/timer/"
               "histogram)\n",
               argv0);
}

std::vector<double> ParseWeights(const std::string& csv) {
  std::vector<double> weights;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string piece = comma == std::string::npos
                                  ? csv.substr(start)
                                  : csv.substr(start, comma - start);
    weights.push_back(std::stod(piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return weights;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  serve::SessionRequest request;
  request.circuit = "c1355";
  std::string out_file;
  std::string warm_out_file;
  std::string dot_file, trace_file, stats_file, report_file, jsonl_file;
  std::string weights_csv;
  bool stats = false;

  // Bad usage — unknown flags, missing values, and malformed numbers alike
  // (std::stoul and friends throw on garbage) — exits 2 with the usage
  // message, as docs/file-formats.md promises.
  try {
    for (int i = 1; i < argc; ++i) {
      auto arg = [&](const char* name) {
        if (std::strcmp(argv[i], name) != 0) return false;
        if (i + 1 >= argc) {
          Usage(argv[0]);
          std::exit(2);
        }
        return true;
      };
      if (arg("--bench")) request.bench_file = argv[++i];
      else if (arg("--circuit")) request.circuit = argv[++i];
      else if (arg("--algo")) request.algo = argv[++i];
      else if (arg("--height"))
        request.height = static_cast<Level>(std::stoul(argv[++i]));
      else if (arg("--branching")) request.branching = std::stoul(argv[++i]);
      else if (arg("--slack")) request.slack = std::stod(argv[++i]);
      else if (arg("--weights")) weights_csv = argv[++i];
      else if (arg("--iterations")) request.iterations = std::stoul(argv[++i]);
      else if (arg("--threads")) request.threads = std::stoul(argv[++i]);
      else if (arg("--metric-threads"))
        request.metric_threads = std::stoul(argv[++i]);
      else if (arg("--build-threads"))
        request.build_threads = std::stoul(argv[++i]);
      else if (arg("--time-budget"))
        request.budget.time_budget_seconds = std::stod(argv[++i]);
      else if (arg("--max-rounds"))
        request.budget.max_rounds = std::stoul(argv[++i]);
      else if (arg("--coarsen-threshold"))
        request.coarsen_threshold = std::stoul(argv[++i]);
      else if (arg("--oracle-sample"))
        request.oracle_sample = std::stod(argv[++i]);
      else if (std::strcmp(argv[i], "--multilevel") == 0)
        request.multilevel = true;
      else if (arg("--seed")) request.seed = std::stoull(argv[++i]);
      else if (arg("--out")) out_file = argv[++i];
      else if (arg("--dot")) dot_file = argv[++i];
      else if (arg("--trace")) trace_file = argv[++i];
      else if (arg("--report")) report_file = argv[++i];
      else if (arg("--obs-jsonl")) jsonl_file = argv[++i];
      else if (std::strcmp(argv[i], "--stats") == 0) stats = true;
      else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
        stats = true;
        stats_file = argv[i] + 8;
      }
      else if (arg("--delta")) request.delta_file = argv[++i];
      else if (arg("--warm-start")) request.warm_file = argv[++i];
      else if (arg("--warm-out")) {
        warm_out_file = argv[++i];
        request.emit_warm_state = true;
      }
      else if (std::strcmp(argv[i], "--refine") == 0) request.refine = true;
      else if (std::strcmp(argv[i], "--help") == 0) { Usage(argv[0]); return 0; }
      else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        Usage(argv[0]);
        return 2;
      }
    }
    if (!weights_csv.empty()) {
      request.weights = ParseWeights(weights_csv);
      if (request.weights.size() != request.height) {
        std::fprintf(stderr,
                     "error: --weights needs exactly --height values\n");
        Usage(argv[0]);
        return 2;
      }
    }
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "error: malformed numeric argument\n");
    Usage(argv[0]);
    return 2;
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: numeric argument out of range\n");
    Usage(argv[0]);
    return 2;
  }

  if (!trace_file.empty()) obs::SetTracing(true);
  // Deterministic lane naming: the driver thread is "main", pool workers
  // are "worker-<i>" (named by the runtime), so repeated traces line up.
  obs::NameThisThread("main");
  request.collect_report = !report_file.empty();

  try {
    const serve::SessionResult run = serve::RunSession(request, nullptr);
    const Hypergraph& hg = *run.netlist;
    std::printf("netlist: %u nodes, %u nets, %zu pins\n", hg.num_nodes(),
                hg.num_nets(), hg.num_pins());
    std::printf("hierarchy: %s\n", run.spec.ToString().c_str());

    if (request.algo == "flow" || request.algo == "flow-mst") {
      // Self-describing runs: --threads 0 silently meant "all hardware
      // threads", which made timings impossible to interpret after the
      // fact; print the resolved worker counts up front.
      std::printf(
          "flow: %zu iterations on %zu threads (--threads %zu), "
          "%zu scan threads (--metric-threads %zu), "
          "build %s (--build-threads %zu)\n",
          request.iterations, ResolveThreadCount(request.threads),
          request.threads, ResolveThreadCount(request.metric_threads),
          request.metric_threads,
          request.build_threads == 1 ? "serial" : "tasked",
          request.build_threads);
      if (run.used_multilevel) {
        std::printf(
            "multilevel: %zu coarsening levels, coarsest %u nodes, "
            "coarse cost %.0f%s\n",
            run.coarsen_levels, run.coarsest_nodes, run.coarse_cost,
            run.feasibility_fallbacks
                ? (" (" + std::to_string(run.feasibility_fallbacks) +
                   " infeasible levels discarded)")
                      .c_str()
                : "");
        for (std::size_t i = 0; i < run.level_stats.size(); ++i) {
          const MultilevelLevelStats& s = run.level_stats[i];
          std::printf("  uncoarsen level %zu: %u nodes, %.0f -> %.0f "
                      "(%zu FM passes)\n",
                      run.level_stats.size() - 1 - i, s.nodes,
                      s.projected_cost, s.refined_cost, s.fm_passes);
        }
        if (!request.budget.Unlimited())
          std::printf("multilevel: stop_reason=%s\n",
                      StopReasonName(run.stop_reason));
      } else if (!request.budget.Unlimited()) {
        std::printf("flow: stop_reason=%s (%zu of %zu iterations ran)\n",
                    StopReasonName(run.stop_reason), run.iterations.size(),
                    request.iterations);
      }
    }
    if (run.eco) {
      std::printf(
          "eco: warm=%s, %zu blocks reused, %zu re-carved%s, "
          "warm injections %zu%s\n",
          run.warm_source.c_str(), run.eco_blocks_reused,
          run.eco_blocks_recarved, run.eco_full_rebuild ? " (full rebuild)" : "",
          run.eco_warm_injections,
          run.eco_converged ? "" : " (metric not converged)");
    }
    std::printf("%s cost: %.0f\n", request.algo.c_str(), run.cost);

    if (run.refined) {
      std::printf("after FM refinement: %.0f (%zu moves kept, %zu passes%s)\n",
                  run.fm.final_cost, run.fm.moves_kept, run.fm.passes,
                  run.fm.completed ? "" : ", stopped by budget");
    }

    if (!out_file.empty()) {
      WritePartitionFile(*run.partition, out_file);
      std::printf("partition written to %s\n", out_file.c_str());
    }
    if (!warm_out_file.empty()) {
      std::ofstream warm(warm_out_file, std::ios::binary);
      if (!warm) throw Error("cannot open for writing: " + warm_out_file);
      warm << run.warm_state;
      std::printf("warm-start state written to %s\n", warm_out_file.c_str());
    }
    if (!dot_file.empty()) {
      std::ofstream dot(dot_file);
      if (!dot) throw Error("cannot open for writing: " + dot_file);
      dot << PartitionToDot(*run.partition, run.spec);
      std::printf("graphviz tree written to %s\n", dot_file.c_str());
    }
    if (!trace_file.empty()) {
      std::ofstream trace(trace_file);
      if (!trace) throw Error("cannot open for writing: " + trace_file);
      obs::WriteChromeTrace(trace, obs::DrainTrace(), obs::TakeLaneNames());
      std::printf("chrome trace written to %s%s\n", trace_file.c_str(),
                  obs::TracingEnabled()
                      ? ""
                      : " (empty: built with HTP_OBS_ENABLED=OFF)");
    }
    if (!report_file.empty()) {
      std::ofstream report(report_file);
      if (!report) throw Error("cannot open for writing: " + report_file);
      report << run.report << '\n';
      std::printf("run report written to %s\n", report_file.c_str());
    }
    if (!jsonl_file.empty()) {
      std::ofstream jsonl(jsonl_file);
      if (!jsonl) throw Error("cannot open for writing: " + jsonl_file);
      obs::WriteJsonlSnapshot(
          jsonl, obs::TakeSnapshot(), "htp_cli",
          request.bench_file.empty() ? request.circuit : request.bench_file);
      std::printf("obs jsonl written to %s\n", jsonl_file.c_str());
    }
    if (stats) {
      const std::string report = obs::RenderStatsReport(obs::TakeSnapshot());
      if (stats_file.empty()) {
        std::fputs(report.c_str(), stdout);
      } else {
        std::ofstream out(stats_file);
        if (!out) throw Error("cannot open for writing: " + stats_file);
        out << report;
        std::printf("stats report written to %s\n", stats_file.c_str());
      }
    }
  } catch (const DeltaError& e) {
    // Malformed --delta / --warm-start input is a usage error, like
    // malformed numeric flags: exit 2 with the usage text
    // (docs/incremental.md; enforced by the WILL_FAIL CLI smokes).
    std::fprintf(stderr, "error: %s\n", e.what());
    Usage(argv[0]);
    return 2;
  } catch (const WarmStartError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    Usage(argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
