// htp_cli — command-line hierarchical tree partitioner.
//
// Reads an ISCAS85 .bench netlist (or one of the built-in ISCAS85-like
// circuits), partitions it into a K-ary hierarchy, optionally refines with
// the generalized FM improver, and writes the partition in the
// htp-partition text format (core/partition_io.hpp).
//
//   htp_cli --bench c880.bench --height 4 --algo flow --refine \
//           --out c880.part
//   htp_cli --circuit c2670 --height 3 --branching 2 --weights 1,4,16
//   htp_cli --circuit c1355 --stats --trace c1355.trace.json
//
// Exit codes: 0 success, 2 bad usage (including malformed numeric
// arguments), 1 runtime failure.
#include <cstdio>
#include <fstream>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/htp_flow.hpp"
#include "core/dot_export.hpp"
#include "multilevel/multilevel_flow.hpp"
#include "core/partition_io.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/sinks.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/parallel_refine.hpp"
#include "partition/rfm.hpp"
#include "runtime/thread_pool.hpp"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bench FILE | --circuit NAME] [options]\n"
               "  --bench FILE       ISCAS85 .bench netlist to partition\n"
               "  --circuit NAME     built-in circuit (c1355..c7552); "
               "default c1355\n"
               "  --algo A           flow | flow-mst | rfm | gfm "
               "(default flow)\n"
               "  --height H         hierarchy height (default 4)\n"
               "  --branching K      children per block (default 2)\n"
               "  --slack S          capacity slack fraction (default 0.10)\n"
               "  --weights w0,w1..  per-level cost weights (default all 1)\n"
               "  --iterations N     Algorithm-1 iterations (default 4)\n"
               "  --threads T        worker threads for FLOW iterations; "
               "0 = all\n"
               "                     hardware threads (default 0); results "
               "are\n"
               "                     identical for every T\n"
               "  --metric-threads M worker threads for the candidate scan\n"
               "                     inside each flow-injection round "
               "(default 1;\n"
               "                     0 = all); results are identical for "
               "every M\n"
               "  --build-threads B  construction-parallelism mode "
               "(default 1 =\n"
               "                     legacy serial recursion); any other "
               "value\n"
               "                     (0 = all) fans recursive carves and "
               "--refine\n"
               "                     out per subtree — identical for every "
               "such B,\n"
               "                     but a different deterministic universe "
               "than\n"
               "                     B=1 (see docs/parallelism.md)\n"
               "  --time-budget SEC  wall-clock budget in seconds; when it "
               "fires,\n"
               "                     the best partition found so far is "
               "returned\n"
               "                     and the run reports stop_reason="
               "deadline\n"
               "  --max-rounds N     cap Algorithm-2 worklist rounds per "
               "metric\n"
               "                     (deterministic, unlike --time-budget)\n"
               "  --multilevel       coarsen -> partition -> uncoarsen "
               "pipeline\n"
               "                     for large netlists (flow algos only; "
               "see\n"
               "                     docs/scaling.md)\n"
               "  --coarsen-threshold N\n"
               "                     stop coarsening at N supernodes "
               "(default 800);\n"
               "                     inputs already below N run flat\n"
               "  --oracle-sample F  sampled separation oracle: check "
               "family-(5)\n"
               "                     constraints from a ceil(F*n) sample of "
               "sources\n"
               "                     per metric (0 or 1 = exact, the "
               "default)\n"
               "  --refine           apply generalized FM afterwards\n"
               "  --seed S           random seed (default 1)\n"
               "  --out FILE         write the partition (default stdout "
               "summary only)\n"
               "  --dot FILE         write a Graphviz rendering of the "
               "tree\n"
               "  --stats[=FILE]     print (or write) the telemetry stats "
               "report\n"
               "  --trace FILE       write a Chrome trace_event JSON of the "
               "run\n"
               "                     (open in chrome://tracing or Perfetto)\n"
               "  --report FILE      write the schema-versioned RunReport "
               "JSON\n"
               "                     (deterministic journal + wall stats; "
               "validate,\n"
               "                     render, or diff with "
               "scripts/obs_report.py)\n"
               "  --obs-jsonl FILE   write the telemetry snapshot as JSONL "
               "rows\n"
               "                     (one object per counter/timer/"
               "histogram)\n",
               argv0);
}

std::vector<double> ParseWeights(const std::string& csv) {
  std::vector<double> weights;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string piece = comma == std::string::npos
                                  ? csv.substr(start)
                                  : csv.substr(start, comma - start);
    weights.push_back(std::stod(piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return weights;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  std::string bench_file, circuit = "c1355", algo = "flow", out_file;
  std::string dot_file, trace_file, stats_file, report_file, jsonl_file;
  std::string weights_csv;
  std::vector<double> weights;
  Level height = 4;
  std::size_t branching = 2, iterations = 4, threads = 0, metric_threads = 1;
  std::size_t build_threads = 1;
  double slack = 0.10;
  bool refine = false, stats = false, multilevel = false;
  std::size_t coarsen_threshold = 800;
  double oracle_sample = 0.0;
  std::uint64_t seed = 1;
  Budget budget;

  // Bad usage — unknown flags, missing values, and malformed numbers alike
  // (std::stoul and friends throw on garbage) — exits 2 with the usage
  // message, as docs/file-formats.md promises.
  try {
    for (int i = 1; i < argc; ++i) {
      auto arg = [&](const char* name) {
        if (std::strcmp(argv[i], name) != 0) return false;
        if (i + 1 >= argc) {
          Usage(argv[0]);
          std::exit(2);
        }
        return true;
      };
      if (arg("--bench")) bench_file = argv[++i];
      else if (arg("--circuit")) circuit = argv[++i];
      else if (arg("--algo")) algo = argv[++i];
      else if (arg("--height")) height = static_cast<Level>(std::stoul(argv[++i]));
      else if (arg("--branching")) branching = std::stoul(argv[++i]);
      else if (arg("--slack")) slack = std::stod(argv[++i]);
      else if (arg("--weights")) weights_csv = argv[++i];
      else if (arg("--iterations")) iterations = std::stoul(argv[++i]);
      else if (arg("--threads")) threads = std::stoul(argv[++i]);
      else if (arg("--metric-threads")) metric_threads = std::stoul(argv[++i]);
      else if (arg("--build-threads")) build_threads = std::stoul(argv[++i]);
      else if (arg("--time-budget"))
        budget.time_budget_seconds = std::stod(argv[++i]);
      else if (arg("--max-rounds")) budget.max_rounds = std::stoul(argv[++i]);
      else if (arg("--coarsen-threshold"))
        coarsen_threshold = std::stoul(argv[++i]);
      else if (arg("--oracle-sample")) oracle_sample = std::stod(argv[++i]);
      else if (std::strcmp(argv[i], "--multilevel") == 0) multilevel = true;
      else if (arg("--seed")) seed = std::stoull(argv[++i]);
      else if (arg("--out")) out_file = argv[++i];
      else if (arg("--dot")) dot_file = argv[++i];
      else if (arg("--trace")) trace_file = argv[++i];
      else if (arg("--report")) report_file = argv[++i];
      else if (arg("--obs-jsonl")) jsonl_file = argv[++i];
      else if (std::strcmp(argv[i], "--stats") == 0) stats = true;
      else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
        stats = true;
        stats_file = argv[i] + 8;
      }
      else if (std::strcmp(argv[i], "--refine") == 0) refine = true;
      else if (std::strcmp(argv[i], "--help") == 0) { Usage(argv[0]); return 0; }
      else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        Usage(argv[0]);
        return 2;
      }
    }
    weights = weights_csv.empty() ? std::vector<double>(height, 1.0)
                                  : ParseWeights(weights_csv);
    if (weights.size() != height) {
      std::fprintf(stderr, "error: --weights needs exactly --height values\n");
      Usage(argv[0]);
      return 2;
    }
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "error: malformed numeric argument\n");
    Usage(argv[0]);
    return 2;
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: numeric argument out of range\n");
    Usage(argv[0]);
    return 2;
  }

  if (!trace_file.empty()) obs::SetTracing(true);
  // Deterministic lane naming: the driver thread is "main", pool workers
  // are "worker-<i>" (named by the runtime), so repeated traces line up.
  obs::NameThisThread("main");

  try {
    Hypergraph hg = bench_file.empty()
                        ? MakeIscas85Like(circuit, seed)
                        : ParseBenchFile(bench_file).hg;
    std::printf("netlist: %u nodes, %u nets, %zu pins\n", hg.num_nodes(),
                hg.num_nets(), hg.num_pins());

    const HierarchySpec spec =
        UniformHierarchy(hg.total_size(), height, branching, slack, weights);
    std::printf("hierarchy: %s\n", spec.ToString().c_str());

    // The deadline is armed once, here, and shared by every stage below
    // (construction and refinement draw from the same clock); passing the
    // token as params.cancel rather than re-arming params.budget keeps the
    // budget from being granted twice.
    const CancellationToken run_token = StartBudget(budget);

    if (multilevel && algo != "flow" && algo != "flow-mst")
      throw Error("--multilevel requires --algo flow or flow-mst");

    TreePartition tp(hg, 0);
    std::string run_report;
    if (algo == "flow" || algo == "flow-mst") {
      HtpFlowParams params;
      params.iterations = iterations;
      params.seed = seed;
      params.collect_report = !report_file.empty();
      params.threads = threads;
      params.metric_threads = metric_threads;
      params.build_threads = build_threads;
      params.budget.max_rounds = budget.max_rounds;
      params.cancel = run_token;
      params.injection.oracle_sample = oracle_sample;
      if (algo == "flow-mst") params.carver = CarverKind::kMstSplit;
      // Self-describing runs: --threads 0 silently meant "all hardware
      // threads", which made timings impossible to interpret after the
      // fact; print the resolved worker counts up front.
      std::printf(
          "flow: %zu iterations on %zu threads (--threads %zu), "
          "%zu scan threads (--metric-threads %zu), "
          "build %s (--build-threads %zu)\n",
          iterations, ResolveThreadCount(threads), threads,
          ResolveThreadCount(metric_threads), metric_threads,
          build_threads == 1 ? "serial" : "tasked", build_threads);
      if (multilevel) {
        MultilevelParams ml;
        ml.flow = params;
        ml.collect_report = !report_file.empty();
        ml.coarsen_threshold = static_cast<NodeId>(coarsen_threshold);
        MultilevelResult result = RunMultilevelFlow(hg, spec, ml);
        run_report = std::move(result.report);
        std::printf(
            "multilevel: %zu coarsening levels, coarsest %u nodes, "
            "coarse cost %.0f%s\n",
            result.coarsen_levels, result.coarsest_nodes, result.coarse_cost,
            result.feasibility_fallbacks
                ? (" (" + std::to_string(result.feasibility_fallbacks) +
                   " infeasible levels discarded)")
                      .c_str()
                : "");
        for (std::size_t i = 0; i < result.level_stats.size(); ++i) {
          const MultilevelLevelStats& s = result.level_stats[i];
          std::printf("  uncoarsen level %zu: %u nodes, %.0f -> %.0f "
                      "(%zu FM passes)\n",
                      result.level_stats.size() - 1 - i, s.nodes,
                      s.projected_cost, s.refined_cost, s.fm_passes);
        }
        if (!budget.Unlimited())
          std::printf("multilevel: stop_reason=%s\n",
                      StopReasonName(result.stop_reason));
        tp = std::move(result.partition);
      } else {
        HtpFlowResult result = RunHtpFlow(hg, spec, params);
        if (!budget.Unlimited())
          std::printf("flow: stop_reason=%s (%zu of %zu iterations ran)\n",
                      StopReasonName(result.stop_reason),
                      result.iterations.size(), iterations);
        run_report = std::move(result.report);
        tp = std::move(result.partition);
      }
    } else if (algo == "rfm") {
      RfmParams rfm_params;
      rfm_params.seed = seed;
      rfm_params.cancel = run_token;
      rfm_params.build_threads = build_threads;
      tp = RunRfm(hg, spec, rfm_params);
    } else if (algo == "gfm") {
      GfmParams gfm_params;
      gfm_params.seed = seed;
      gfm_params.cancel = run_token;
      tp = RunGfm(hg, spec, gfm_params);
    } else {
      throw Error("unknown --algo '" + algo + "'");
    }
    std::printf("%s cost: %.0f\n", algo.c_str(), PartitionCost(tp, spec));

    if (refine) {
      HtpFmParams params;
      params.seed = seed;
      params.cancel = run_token;
      const HtpFmStats stats =
          build_threads != 1
              ? RefineHtpFmBlocks(tp, spec, params, build_threads)
              : RefineHtpFm(tp, spec, params);
      std::printf("after FM refinement: %.0f (%zu moves kept, %zu passes%s)\n",
                  stats.final_cost, stats.moves_kept, stats.passes,
                  stats.completed ? "" : ", stopped by budget");
    }
    RequireValidPartition(tp, spec);

    if (!out_file.empty()) {
      WritePartitionFile(tp, out_file);
      std::printf("partition written to %s\n", out_file.c_str());
    }
    if (!dot_file.empty()) {
      std::ofstream dot(dot_file);
      if (!dot) throw Error("cannot open for writing: " + dot_file);
      dot << PartitionToDot(tp, spec);
      std::printf("graphviz tree written to %s\n", dot_file.c_str());
    }
    if (!trace_file.empty()) {
      std::ofstream trace(trace_file);
      if (!trace) throw Error("cannot open for writing: " + trace_file);
      obs::WriteChromeTrace(trace, obs::DrainTrace(), obs::TakeLaneNames());
      std::printf("chrome trace written to %s%s\n", trace_file.c_str(),
                  obs::TracingEnabled()
                      ? ""
                      : " (empty: built with HTP_OBS_ENABLED=OFF)");
    }
    if (!report_file.empty()) {
      // The flow pipelines assemble their own report (with their result
      // fields and the drained journal); rfm/gfm runs get a CLI-level one
      // so --report always yields a valid artifact.
      if (run_report.empty()) {
        obs::RunReportBuilder rb("htp_cli");
        rb.MetaString("algorithm", algo);
        rb.MetaNumber("nodes", static_cast<double>(hg.num_nodes()));
        rb.MetaNumber("nets", static_cast<double>(hg.num_nets()));
        rb.MetaNumber("levels", static_cast<double>(spec.num_levels()));
        rb.MetaNumber("seed", static_cast<double>(seed));
        rb.ResultNumber("cost", PartitionCost(tp, spec));
        rb.WallNumber("threads", static_cast<double>(threads));
        rb.WallNumber("build_threads", static_cast<double>(build_threads));
        run_report = rb.Render(obs::TakeSnapshot(), obs::DrainEvents());
      }
      std::ofstream report(report_file);
      if (!report) throw Error("cannot open for writing: " + report_file);
      report << run_report << '\n';
      std::printf("run report written to %s\n", report_file.c_str());
    }
    if (!jsonl_file.empty()) {
      std::ofstream jsonl(jsonl_file);
      if (!jsonl) throw Error("cannot open for writing: " + jsonl_file);
      obs::WriteJsonlSnapshot(jsonl, obs::TakeSnapshot(), "htp_cli",
                              bench_file.empty() ? circuit : bench_file);
      std::printf("obs jsonl written to %s\n", jsonl_file.c_str());
    }
    if (stats) {
      const std::string report = obs::RenderStatsReport(obs::TakeSnapshot());
      if (stats_file.empty()) {
        std::fputs(report.c_str(), stdout);
      } else {
        std::ofstream out(stats_file);
        if (!out) throw Error("cannot open for writing: " + stats_file);
        out << report;
        std::printf("stats report written to %s\n", stats_file.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
