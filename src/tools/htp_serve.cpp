// htp_serve — partition-as-a-service daemon.
//
// Listens on an AF_UNIX stream socket for newline-delimited JSON partition
// requests (docs/server.md), schedules them on a shared thread pool, and
// answers each with a schema-versioned JSON response carrying the
// partition, cost, stop reason, and per-tier cache outcome. A bounded LRU
// artifact cache spans the daemon's lifetime, so identical repeat requests
// skip parsing, CSR lowering, and metric convergence (cold vs warm is
// gated >= 5x by bench/serve_throughput).
//
//   htp_serve --socket /tmp/htp.sock --threads 2 &
//   printf '%s\n' '{"circuit":"c1355","height":3,"iterations":2,"id":1}'
//     | nc -U /tmp/htp.sock
//   printf '%s\n' '{"op":"shutdown"}' | nc -U /tmp/htp.sock
//
// Exit codes mirror htp_cli: 0 clean shutdown, 2 bad usage, 1 runtime
// failure (cannot bind, etc.).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "server/server.hpp"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH      AF_UNIX socket path to listen on "
               "(required;\n"
               "                     keep it short — sun_path caps at ~108 "
               "bytes)\n"
               "  --threads T        pool workers executing requests "
               "(default 0 =\n"
               "                     all hardware threads)\n"
               "  --cache-netlists N netlist cache entries (default 8; 0 "
               "disables)\n"
               "  --cache-csr N      CSR-view cache entries (default 16; 0 "
               "disables)\n"
               "  --cache-metrics N  spreading-metric cache entries "
               "(default 256;\n"
               "                     0 disables)\n"
               "  --max-requests N   exit after N partition requests "
               "(default 0 =\n"
               "                     run until a shutdown request)\n"
               "  --report FILE      write an htp_serve RunReport at "
               "shutdown\n"
               "                     (serve.* counters, queue-wait "
               "histogram,\n"
               "                     per-request journal)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htp;
  serve::ServeOptions options;
  std::string report_file;

  try {
    for (int i = 1; i < argc; ++i) {
      auto arg = [&](const char* name) {
        if (std::strcmp(argv[i], name) != 0) return false;
        if (i + 1 >= argc) {
          Usage(argv[0]);
          std::exit(2);
        }
        return true;
      };
      if (arg("--socket")) options.socket_path = argv[++i];
      else if (arg("--threads")) options.threads = std::stoul(argv[++i]);
      else if (arg("--cache-netlists"))
        options.cache.netlist_capacity = std::stoul(argv[++i]);
      else if (arg("--cache-csr"))
        options.cache.csr_capacity = std::stoul(argv[++i]);
      else if (arg("--cache-metrics"))
        options.cache.metric_capacity = std::stoul(argv[++i]);
      else if (arg("--max-requests"))
        options.max_requests = std::stoul(argv[++i]);
      else if (arg("--report")) report_file = argv[++i];
      else if (std::strcmp(argv[i], "--help") == 0) {
        Usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        Usage(argv[0]);
        return 2;
      }
    }
    if (options.socket_path.empty()) {
      std::fprintf(stderr, "error: --socket is required\n");
      Usage(argv[0]);
      return 2;
    }
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "error: malformed numeric argument\n");
    Usage(argv[0]);
    return 2;
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "error: numeric argument out of range\n");
    Usage(argv[0]);
    return 2;
  }

  obs::NameThisThread("main");
  try {
    std::printf("htp_serve: listening on %s\n", options.socket_path.c_str());
    std::fflush(stdout);  // let launch scripts see readiness promptly
    const serve::ServeStats stats = serve::RunServer(options);
    std::printf("htp_serve: served %zu requests (%zu errors)\n",
                stats.requests, stats.errors);
    if (!report_file.empty()) {
      obs::RunReportBuilder rb("htp_serve");
      rb.MetaString("socket", options.socket_path);
      rb.ResultNumber("requests", static_cast<double>(stats.requests));
      rb.ResultNumber("errors", static_cast<double>(stats.errors));
      rb.WallNumber("threads", static_cast<double>(options.threads));
      std::ofstream report(report_file);
      if (!report) throw Error("cannot open for writing: " + report_file);
      report << rb.Render(obs::TakeSnapshot(), obs::DrainEvents()) << '\n';
      std::printf("run report written to %s\n", report_file.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
