# The report-determinism gate for the tasked construction mode: with build
# parallelism on (--build-threads != 1), two runs differing in EVERY thread
# knob — outer iterations, metric scan, and engine worker count — must
# produce RunReports whose deterministic sections diff clean under
# scripts/obs_report.py. This is the engine's worker-count invariance
# contract (docs/parallelism.md) exercised through the real CLI artifacts,
# --refine included so the per-block parallel refiner is on the path too.
#
#   cmake -DCLI=... -DPYTHON=... -DSCRIPT=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(REPORT_A ${WORK_DIR}/build2.report.json)
set(REPORT_B ${WORK_DIR}/build8.report.json)

execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 2
          --threads 1 --metric-threads 1 --build-threads 2 --refine
          --report ${REPORT_A}
  RESULT_VARIABLE a_status)
if(NOT a_status EQUAL 0)
  message(FATAL_ERROR "htp_cli run with --build-threads 2 failed")
endif()

execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 2
          --threads 8 --metric-threads 8 --build-threads 8 --refine
          --report ${REPORT_B}
  RESULT_VARIABLE b_status)
if(NOT b_status EQUAL 0)
  message(FATAL_ERROR "htp_cli run with --build-threads 8 failed")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} diff ${REPORT_A} ${REPORT_B}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "deterministic report sections diverged across engine worker "
          "counts (build parallelism on)")
endif()
