# The report-determinism gate: two runs differing only in thread counts
# (--threads 1 --metric-threads 1 vs --threads 8 --metric-threads 8) must
# produce RunReports whose deterministic sections diff clean under
# scripts/obs_report.py. This is the same contract
# tests/obs/report_test.cpp asserts in-process, exercised here through the
# real CLI artifacts and the real diff tool — what CI runs.
#
#   cmake -DCLI=... -DPYTHON=... -DSCRIPT=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(REPORT_SERIAL ${WORK_DIR}/serial.report.json)
set(REPORT_PARALLEL ${WORK_DIR}/parallel.report.json)

execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 2
          --threads 1 --metric-threads 1 --report ${REPORT_SERIAL}
  RESULT_VARIABLE serial_status)
if(NOT serial_status EQUAL 0)
  message(FATAL_ERROR "serial htp_cli run failed")
endif()

execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 2
          --threads 8 --metric-threads 8 --report ${REPORT_PARALLEL}
  RESULT_VARIABLE parallel_status)
if(NOT parallel_status EQUAL 0)
  message(FATAL_ERROR "parallel htp_cli run failed")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} diff ${REPORT_SERIAL} ${REPORT_PARALLEL}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "deterministic report sections diverged across thread counts")
endif()
