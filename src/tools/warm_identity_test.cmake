# The empty-delta bit-identity gate (docs/incremental.md): a cold run
# emits its warm-start state; resuming from that state with an empty delta
# must reproduce the cold partition byte for byte, and two warm resumes
# differing only in thread knobs (threads x metric-threads x build-threads)
# must produce RunReports whose deterministic sections diff clean under
# scripts/obs_report.py. This is the CLI-artifact form of the contract
# tests/incremental/warm_start_property_test.cpp asserts in-process.
#
#   cmake -DCLI=... -DPYTHON=... -DSCRIPT=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(COLD_PART ${WORK_DIR}/cold.part)
set(COLD_WARM ${WORK_DIR}/cold.warm)
set(EMPTY_DELTA ${WORK_DIR}/empty.delta)
file(WRITE ${EMPTY_DELTA} "htp-delta v1\n# no edits\n")

execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 1
          --out ${COLD_PART} --warm-out ${COLD_WARM}
  RESULT_VARIABLE cold_status)
if(NOT cold_status EQUAL 0)
  message(FATAL_ERROR "cold htp_cli run failed")
endif()

# Two warm resumes across the knob matrix; ECO results are bit-identical
# across ALL of threads x metric-threads x build-threads (a stronger
# contract than the cold pipeline's, which excludes build-threads).
execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 1
          --warm-start ${COLD_WARM} --delta ${EMPTY_DELTA}
          --threads 1 --metric-threads 1 --build-threads 1
          --out ${WORK_DIR}/warm1.part --report ${WORK_DIR}/warm1.report.json
  RESULT_VARIABLE warm1_status)
if(NOT warm1_status EQUAL 0)
  message(FATAL_ERROR "first warm htp_cli resume failed")
endif()
execute_process(
  COMMAND ${CLI} --circuit c1355 --height 3 --iterations 1
          --warm-start ${COLD_WARM} --delta ${EMPTY_DELTA}
          --threads 4 --metric-threads 3 --build-threads 4
          --out ${WORK_DIR}/warm2.part --report ${WORK_DIR}/warm2.report.json
  RESULT_VARIABLE warm2_status)
if(NOT warm2_status EQUAL 0)
  message(FATAL_ERROR "second warm htp_cli resume failed")
endif()

foreach(warm_part warm1.part warm2.part)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${COLD_PART}
            ${WORK_DIR}/${warm_part}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "empty-delta warm resume ${warm_part} is not byte-identical to "
            "the cold partition")
  endif()
endforeach()

execute_process(
  COMMAND ${PYTHON} ${SCRIPT} diff ${WORK_DIR}/warm1.report.json
          ${WORK_DIR}/warm2.report.json
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "warm-resume deterministic report sections diverged across "
          "thread knobs")
endif()
