#include "treemap/tree_mapping.hpp"

#include <algorithm>
#include <queue>

#include "core/find_cut.hpp"
#include "netlist/subhypergraph.hpp"

namespace htp {

TreeMapping::TreeMapping(const Hypergraph& hg, const TreeTopology& tree)
    : hg_(&hg), tree_(&tree) {
  HTP_CHECK_MSG(tree.finalized(), "finalize the topology first");
  vertex_of_.assign(hg.num_nodes(), kInvalidTreeVertex);
  load_.assign(tree.num_vertices(), 0.0);
}

void TreeMapping::Assign(NodeId node, TreeVertexId vertex) {
  HTP_CHECK(node < hg_->num_nodes() && vertex < tree_->num_vertices());
  HTP_CHECK_MSG(vertex_of_[node] == kInvalidTreeVertex,
                "node already assigned");
  vertex_of_[node] = vertex;
  load_[vertex] += hg_->node_size(node);
  ++assigned_;
}

void TreeMapping::Move(NodeId node, TreeVertexId vertex) {
  HTP_CHECK(node < hg_->num_nodes() && vertex < tree_->num_vertices());
  HTP_CHECK_MSG(vertex_of_[node] != kInvalidTreeVertex, "node not assigned");
  load_[vertex_of_[node]] -= hg_->node_size(node);
  vertex_of_[node] = vertex;
  load_[vertex] += hg_->node_size(node);
}

double NetRoutingCost(const TreeMapping& mapping, NetId e) {
  const Hypergraph& hg = mapping.hypergraph();
  std::vector<TreeVertexId> hosts;
  hosts.reserve(hg.net_degree(e));
  for (NodeId v : hg.pins(e)) hosts.push_back(mapping.vertex_of(v));
  return hg.net_capacity(e) * mapping.tree().SteinerCost(hosts);
}

double MappingCost(const TreeMapping& mapping) {
  HTP_CHECK_MSG(mapping.fully_assigned(), "cost needs a complete mapping");
  double total = 0.0;
  for (NetId e = 0; e < mapping.hypergraph().num_nets(); ++e)
    total += NetRoutingCost(mapping, e);
  return total;
}

std::vector<std::string> ValidateMapping(const TreeMapping& mapping) {
  std::vector<std::string> issues;
  if (!mapping.fully_assigned())
    issues.push_back("not every node is mapped to a tree vertex");
  const TreeTopology& tree = mapping.tree();
  for (TreeVertexId v = 0; v < tree.num_vertices(); ++v)
    if (mapping.load(v) > tree.capacity(v) + 1e-9)
      issues.push_back("vertex " + std::to_string(v) + " overloaded: " +
                       std::to_string(mapping.load(v)) + " > " +
                       std::to_string(tree.capacity(v)));
  return issues;
}

TreeMapping GreedyTreeMap(const Hypergraph& hg, const TreeTopology& tree,
                          Rng& rng) {
  HTP_CHECK_MSG(hg.total_size() <= tree.total_capacity() + 1e-9,
                "netlist does not fit the tree");
  TreeMapping mapping(hg, tree);

  std::vector<NodeId> remaining(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) remaining[v] = v;

  // Capacity still available at vertices not yet visited, so each carve
  // can take enough that the leftover always fits the rest of the tree.
  double future_capacity = tree.total_capacity();

  // Visit capacitated vertices root-first; carve a connected cluster of
  // the right size for each from the remaining netlist.
  for (TreeVertexId vertex : tree.order()) {
    if (tree.capacity(vertex) <= 0.0 || remaining.empty()) continue;
    future_capacity -= tree.capacity(vertex);
    double rem_size = 0.0;
    for (NodeId v : remaining) rem_size += hg.node_size(v);
    std::vector<NodeId> chunk;
    if (rem_size <= tree.capacity(vertex) + 1e-9) {
      chunk = std::move(remaining);
      remaining.clear();
    } else {
      SubHypergraph sub = InducedSubHypergraph(hg, remaining);
      const std::vector<double> unit(sub.hg.num_nets(), 1.0);
      const double lb = std::min(
          tree.capacity(vertex),
          std::max(tree.capacity(vertex) * 0.5, rem_size - future_capacity));
      const CarveResult cut =
          MetricFindCut(sub.hg, unit, lb, tree.capacity(vertex), rng);
      std::vector<char> taken(sub.hg.num_nodes(), 0);
      for (NodeId local : cut.nodes) {
        taken[local] = 1;
        chunk.push_back(sub.node_to_parent[local]);
      }
      std::vector<NodeId> rest;
      for (NodeId local = 0; local < sub.hg.num_nodes(); ++local)
        if (!taken[local]) rest.push_back(sub.node_to_parent[local]);
      remaining = std::move(rest);
    }
    for (NodeId v : chunk) mapping.Assign(v, vertex);
  }
  HTP_CHECK_MSG(remaining.empty(),
                "greedy mapper could not place every node (capacities too "
                "fragmented)");
  return mapping;
}

TreeMapStats RefineTreeMap(TreeMapping& mapping, std::size_t max_passes) {
  HTP_CHECK(mapping.fully_assigned());
  const Hypergraph& hg = mapping.hypergraph();
  const TreeTopology& tree = mapping.tree();
  TreeMapStats stats;
  stats.initial_cost = MappingCost(mapping);
  double cost = stats.initial_cost;

  // Exact gain of moving `node` to `target`: recompute its nets' routing
  // costs before and after (net degrees and the tree are both small).
  auto move_gain = [&](NodeId node, TreeVertexId target) {
    const TreeVertexId from = mapping.vertex_of(node);
    double before = 0.0, after = 0.0;
    for (NetId e : hg.nets(node)) before += NetRoutingCost(mapping, e);
    mapping.Move(node, target);
    for (NetId e : hg.nets(node)) after += NetRoutingCost(mapping, e);
    mapping.Move(node, from);
    return before - after;
  };

  // Total overload across vertices; exact-capacity instances need swap
  // sequences, so a move may overload its target by up to the moved node's
  // size when the mapping is currently feasible, and must strictly reduce
  // the overload otherwise. Best prefixes are recorded only at feasible
  // states (the same discipline as the FM bipartitioner).
  auto overload = [&]() {
    double total = 0.0;
    for (TreeVertexId t = 0; t < tree.num_vertices(); ++t)
      total += std::max(0.0, mapping.load(t) - tree.capacity(t));
    return total;
  };

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::vector<char> locked(hg.num_nodes(), 0);
    std::vector<std::pair<NodeId, TreeVertexId>> log;  // (node, old vertex)
    double cum = 0.0, best_cum = 0.0;
    std::size_t best_len = 0;

    for (;;) {
      // Best permitted single move over unlocked nodes (exhaustive scan —
      // this refiner targets small trees).
      const double overload_now = overload();
      double best_gain = -1e30;
      NodeId best_node = kInvalidNode;
      TreeVertexId best_target = kInvalidTreeVertex;
      for (NodeId v = 0; v < hg.num_nodes(); ++v) {
        if (locked[v]) continue;
        const double s = hg.node_size(v);
        for (TreeVertexId t = 0; t < tree.num_vertices(); ++t) {
          if (t == mapping.vertex_of(v)) continue;
          const double new_over =
              std::max(0.0, mapping.load(t) + s - tree.capacity(t)) -
              std::max(0.0, mapping.load(t) - tree.capacity(t));
          const double reduced =
              std::min(std::max(0.0, mapping.load(mapping.vertex_of(v)) -
                                         tree.capacity(mapping.vertex_of(v))),
                       s);
          const double overload_next = overload_now + new_over - reduced;
          const bool permitted =
              overload_next <= 1e-9 ||
              (overload_now <= 1e-9 && overload_next <= s + 1e-9) ||
              overload_next < overload_now - 1e-12;
          if (!permitted) continue;
          const double gain = move_gain(v, t);
          if (gain > best_gain) {
            best_gain = gain;
            best_node = v;
            best_target = t;
          }
        }
      }
      if (best_node == kInvalidNode || best_gain < -1e20) break;
      // Stop expanding clearly hopeless tails: FM still explores negative
      // moves, but a full pass on a converged mapping is wasted work.
      if (best_gain <= 0.0 && cum + best_gain < best_cum - 10.0) break;
      log.emplace_back(best_node, mapping.vertex_of(best_node));
      mapping.Move(best_node, best_target);
      locked[best_node] = 1;
      cum += best_gain;
      if (cum > best_cum + 1e-12 && overload() <= 1e-9) {
        best_cum = cum;
        best_len = log.size();
      }
    }
    for (std::size_t i = log.size(); i > best_len; --i)
      mapping.Move(log[i - 1].first, log[i - 1].second);
    stats.moves_kept += best_len;
    cost -= best_cum;
    if (best_cum <= 1e-12) break;
  }
  stats.final_cost = cost;
  return stats;
}

}  // namespace htp
