// Min-cost tree partitioning (Vijayan [16]): map a netlist onto the
// vertices of a fixed tree, minimizing the total cost of globally routing
// every net over the tree's edges:
//
//   cost(M) = sum_e c(e) * SteinerCost(T, vertices hosting e's pins)
//
// subject to the per-vertex size capacities. This module holds the mapping
// representation, the objective, validation, and the optimizers: a
// locality-seeded constructive mapper and an FM-style single-node-move
// refiner with best-prefix rollback.
#pragma once

#include <optional>

#include "netlist/hypergraph.hpp"
#include "netlist/rng.hpp"
#include "treemap/tree_topology.hpp"

namespace htp {

/// A (possibly partial) assignment of nodes to tree vertices.
class TreeMapping {
 public:
  TreeMapping(const Hypergraph& hg, const TreeTopology& tree);

  const Hypergraph& hypergraph() const { return *hg_; }
  const TreeTopology& tree() const { return *tree_; }

  /// Assigns an unassigned node (capacity is NOT enforced here; use
  /// ValidateMapping / the optimizers for feasibility).
  void Assign(NodeId node, TreeVertexId vertex);
  /// Reassigns a node.
  void Move(NodeId node, TreeVertexId vertex);

  TreeVertexId vertex_of(NodeId node) const {
    HTP_CHECK(node < hg_->num_nodes());
    return vertex_of_[node];
  }
  double load(TreeVertexId vertex) const {
    HTP_CHECK(vertex < tree_->num_vertices());
    return load_[vertex];
  }
  bool fully_assigned() const { return assigned_ == hg_->num_nodes(); }

 private:
  const Hypergraph* hg_;
  const TreeTopology* tree_;
  std::vector<TreeVertexId> vertex_of_;
  std::vector<double> load_;
  NodeId assigned_ = 0;
};

/// The routing objective; the mapping must be fully assigned.
double MappingCost(const TreeMapping& mapping);

/// Routing cost of one net under the mapping.
double NetRoutingCost(const TreeMapping& mapping, NetId e);

/// Capacity/completeness violations (empty = valid).
std::vector<std::string> ValidateMapping(const TreeMapping& mapping);

/// Constructive mapper: visits tree vertices in BFS order and fills each
/// with a Prim-grown cluster of still-unassigned nodes (locality-seeded).
/// Throws htp::Error when the netlist does not fit the tree's capacity.
TreeMapping GreedyTreeMap(const Hypergraph& hg, const TreeTopology& tree,
                          Rng& rng);

/// FM-style refinement statistics.
struct TreeMapStats {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::size_t passes = 0;
  std::size_t moves_kept = 0;
};

/// Single-node-move FM refinement (gain = exact routing-cost delta,
/// capacity-feasible targets only, best-prefix rollback per pass). Never
/// worsens the mapping.
TreeMapStats RefineTreeMap(TreeMapping& mapping, std::size_t max_passes = 8);

}  // namespace htp
