#include "treemap/tree_topology.hpp"

#include <numeric>
#include <queue>

namespace htp {

TreeVertexId TreeTopology::AddVertex(double capacity, std::string name) {
  HTP_CHECK_MSG(!finalized_, "topology already finalized");
  HTP_CHECK_MSG(capacity >= 0.0, "vertex capacity must be nonnegative");
  capacity_.push_back(capacity);
  name_.push_back(std::move(name));
  adjacency_.emplace_back();
  return static_cast<TreeVertexId>(capacity_.size() - 1);
}

void TreeTopology::AddEdge(TreeVertexId a, TreeVertexId b, double weight) {
  HTP_CHECK_MSG(!finalized_, "topology already finalized");
  HTP_CHECK(a < num_vertices() && b < num_vertices() && a != b);
  HTP_CHECK_MSG(weight > 0.0, "edge weight must be positive");
  adjacency_[a].emplace_back(b, weight);
  adjacency_[b].emplace_back(a, weight);
  ++num_edges_;
}

void TreeTopology::Finalize() {
  HTP_CHECK_MSG(!finalized_, "topology already finalized");
  HTP_CHECK_MSG(num_vertices() >= 1, "empty topology");
  HTP_CHECK_MSG(num_edges_ + 1 == num_vertices(),
                "edge count does not match a tree");
  parent_.assign(num_vertices(), kInvalidTreeVertex);
  parent_weight_.assign(num_vertices(), 0.0);
  order_.clear();
  std::vector<char> seen(num_vertices(), 0);
  std::queue<TreeVertexId> frontier;
  seen[0] = 1;
  frontier.push(0);
  while (!frontier.empty()) {
    const TreeVertexId v = frontier.front();
    frontier.pop();
    order_.push_back(v);
    for (const auto& [u, w] : adjacency_[v]) {
      if (seen[u]) continue;
      seen[u] = 1;
      parent_[u] = v;
      parent_weight_[u] = w;
      frontier.push(u);
    }
  }
  HTP_CHECK_MSG(order_.size() == num_vertices(),
                "edges do not connect the tree");
  finalized_ = true;
}

double TreeTopology::SteinerCost(
    std::span<const TreeVertexId> marked) const {
  HTP_CHECK(finalized_);
  // cnt[v] = marked vertices in v's subtree; the edge (v, parent) belongs
  // to the minimal spanning subtree iff its lower side holds some but not
  // all marks.
  std::vector<std::size_t> cnt(num_vertices(), 0);
  std::size_t total = 0;
  for (TreeVertexId v : marked) {
    HTP_CHECK(v < num_vertices());
    ++cnt[v];
    ++total;
  }
  if (total == 0) return 0.0;
  double cost = 0.0;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const TreeVertexId v = *it;
    if (parent_[v] == kInvalidTreeVertex) continue;
    if (cnt[v] > 0 && cnt[v] < total) cost += parent_weight_[v];
    cnt[parent_[v]] += cnt[v];
  }
  return cost;
}

double TreeTopology::total_capacity() const {
  return std::accumulate(capacity_.begin(), capacity_.end(), 0.0);
}

TreeTopology TreeTopology::Path(std::size_t n, double capacity) {
  HTP_CHECK(n >= 1);
  TreeTopology tree;
  for (std::size_t i = 0; i < n; ++i)
    tree.AddVertex(capacity, "p" + std::to_string(i));
  for (std::size_t i = 1; i < n; ++i)
    tree.AddEdge(static_cast<TreeVertexId>(i - 1),
                 static_cast<TreeVertexId>(i));
  tree.Finalize();
  return tree;
}

TreeTopology TreeTopology::Star(std::size_t leaves, double capacity) {
  HTP_CHECK(leaves >= 1);
  TreeTopology tree;
  tree.AddVertex(0.0, "hub");
  for (std::size_t i = 0; i < leaves; ++i) {
    const TreeVertexId leaf =
        tree.AddVertex(capacity, "s" + std::to_string(i));
    tree.AddEdge(0, leaf);
  }
  tree.Finalize();
  return tree;
}

TreeTopology TreeTopology::KAryLeaves(std::size_t height,
                                      std::size_t branching,
                                      double leaf_capacity) {
  HTP_CHECK(height >= 1 && branching >= 2);
  TreeTopology tree;
  std::vector<TreeVertexId> frontier{tree.AddVertex(0.0, "root")};
  for (std::size_t level = 1; level <= height; ++level) {
    std::vector<TreeVertexId> next;
    for (TreeVertexId parent : frontier) {
      for (std::size_t b = 0; b < branching; ++b) {
        const TreeVertexId child = tree.AddVertex(
            level == height ? leaf_capacity : 0.0,
            "v" + std::to_string(level) + "_" + std::to_string(next.size()));
        tree.AddEdge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  tree.Finalize();
  return tree;
}

}  // namespace htp
