// Tree topologies for min-cost tree partitioning (Vijayan [16]).
//
// The paper's introduction situates HTP against Vijayan's generalization
// of min-cut partitioning: map a hypergraph onto the vertices of an
// ARBITRARY tree T, minimizing the cost of globally routing each net over
// T's edges. This module provides the tree substrate: capacitated
// vertices, undirected tree edges with routing weights, and the
// minimal-Steiner-subtree cost query that the mapping objective needs
// (an edge of T carries net e iff both of its sides host pins of e).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/common.hpp"

namespace htp {

/// Dense index of a tree vertex.
using TreeVertexId = std::uint32_t;

/// A capacitated tree: vertices hold cells, edges carry routed nets.
class TreeTopology {
 public:
  /// Adds a vertex with a size capacity; returns its id.
  TreeVertexId AddVertex(double capacity, std::string name = {});
  /// Connects two existing vertices with an edge of routing weight
  /// `weight` (> 0). Edges must form a tree (checked in Finalize).
  void AddEdge(TreeVertexId a, TreeVertexId b, double weight = 1.0);
  /// Validates treeness (connected, |E| = |V|-1) and roots the tree at
  /// vertex 0, precomputing traversal orders. Must be called once before
  /// queries; further mutation is rejected.
  void Finalize();

  std::size_t num_vertices() const { return capacity_.size(); }
  double capacity(TreeVertexId v) const {
    HTP_CHECK(v < num_vertices());
    return capacity_[v];
  }
  const std::string& name(TreeVertexId v) const {
    HTP_CHECK(v < num_vertices());
    return name_[v];
  }
  bool finalized() const { return finalized_; }

  /// Parent of v in the rooted tree (kInvalid for the root = vertex 0).
  TreeVertexId parent(TreeVertexId v) const {
    HTP_CHECK(finalized_ && v < num_vertices());
    return parent_[v];
  }
  /// Routing weight of the edge (v, parent(v)).
  double parent_edge_weight(TreeVertexId v) const {
    HTP_CHECK(finalized_ && v < num_vertices());
    return parent_weight_[v];
  }
  /// Vertices in a root-first (topological) order.
  std::span<const TreeVertexId> order() const {
    HTP_CHECK(finalized_);
    return order_;
  }

  /// Weighted size of the minimal subtree of T spanning `marked` vertices:
  /// the sum of weights of edges with marked vertices on both sides. Zero
  /// when all marks coincide. `marked` entries must be valid vertex ids
  /// (duplicates allowed).
  double SteinerCost(std::span<const TreeVertexId> marked) const;

  /// Total capacity over all vertices.
  double total_capacity() const;

  /// Builders for common shapes: a path of `n` vertices, a star with `n`
  /// leaves, and a complete K-ary tree of the given height where only
  /// leaves have nonzero capacity (an HTP-like hardware hierarchy). All
  /// come finalized with unit edge weights.
  static TreeTopology Path(std::size_t n, double capacity);
  static TreeTopology Star(std::size_t leaves, double capacity);
  static TreeTopology KAryLeaves(std::size_t height, std::size_t branching,
                                 double leaf_capacity);

 private:
  std::vector<double> capacity_;
  std::vector<std::string> name_;
  std::vector<std::vector<std::pair<TreeVertexId, double>>> adjacency_;
  std::vector<TreeVertexId> parent_;
  std::vector<double> parent_weight_;
  std::vector<TreeVertexId> order_;
  std::size_t num_edges_ = 0;
  bool finalized_ = false;
};

inline constexpr TreeVertexId kInvalidTreeVertex =
    std::numeric_limits<TreeVertexId>::max();

}  // namespace htp
