#include <gtest/gtest.h>

#include "core/hierarchy.hpp"

namespace htp {
namespace {

TEST(AchievableCapacity, FloorsForUnitSizes) {
  // C = (2.4, 4.8, 9.6), K = 2: unit cells give 2 per leaf, 4 per level-1
  // block, 8 per level-2 block.
  HierarchySpec spec({{2.4, 2, 1.0}, {4.8, 2, 1.0}, {9.6, 2, 1.0}});
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(0, true), 2.0);
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(1, true), 4.0);
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(2, true), 8.0);
}

TEST(AchievableCapacity, CapsByChildrenNotOnlyByCl) {
  // A generous C_1 cannot be realized when its children are tight.
  HierarchySpec spec({{2.0, 2, 1.0}, {100.0, 2, 1.0}, {100.0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(1, true), 4.0);
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(2, true), 8.0);
}

TEST(AchievableCapacity, GranularityMarginForGeneralSizes) {
  // Non-integral regime: each level loses (K-1) * granularity.
  HierarchySpec spec({{10.0, 2, 1.0}, {20.0, 2, 1.0}, {40.0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(0, false, 3.0), 10.0);
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(1, false, 3.0), 17.0);  // 2*10-3
  EXPECT_DOUBLE_EQ(spec.AchievableCapacity(2, false, 3.0), 31.0);  // 2*17-3
}

TEST(AchievableCapacity, MonotoneInLevel) {
  const HierarchySpec spec = FullBinaryHierarchy(1000.0, 4, 0.1);
  double prev = 0.0;
  for (Level l = 0; l <= spec.root_level(); ++l) {
    const double cap = spec.AchievableCapacity(l, true);
    EXPECT_GE(cap, prev);
    EXPECT_LE(cap, spec.capacity(l));
    prev = cap;
  }
}

TEST(AchievableCapacity, ThrowsWhenTooTightForGranularity) {
  // Leaves hold 1.0 but the items are size 2: level-1 capacity underflows.
  HierarchySpec spec({{1.0, 2, 1.0}, {2.0, 2, 1.0}});
  EXPECT_THROW(spec.AchievableCapacity(1, false, 2.0), Error);
  EXPECT_THROW(spec.AchievableCapacity(0, true, 0.0), Error);  // bad gran
}

TEST(AchievableCapacity, PaperHierarchyIsSelfConsistent) {
  // The experimental hierarchy must be realizable at every level for unit
  // cells, with room for the whole circuit at the root.
  for (double n : {546.0, 1193.0, 1669.0, 2396.0, 3512.0}) {
    const HierarchySpec spec = FullBinaryHierarchy(n);
    EXPECT_GE(spec.AchievableCapacity(spec.root_level(), true), n)
        << "n = " << n;
  }
}

}  // namespace
}  // namespace htp
