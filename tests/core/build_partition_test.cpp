#include "core/build_partition.hpp"

#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(BuildPartition, OptimalMetricReconstructsFigure2Optimum) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition optimal = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(optimal, spec);
  Rng rng(1);
  const TreePartition built =
      BuildPartitionTopDown(hg, spec, metric, MetricCarver(), rng);
  RequireValidPartition(built, spec);
  EXPECT_DOUBLE_EQ(PartitionCost(built, spec), kFigure2OptimalCost);
}

TEST(BuildPartition, SingleLeafWhenEverythingFits) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(6, 4, 3, 1);
  HierarchySpec spec({{10.0, 2, 1.0}, {10.0, 2, 1.0}});
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  Rng rng(1);
  const TreePartition tp =
      BuildPartitionTopDown(hg, spec, zero, MetricCarver(), rng);
  RequireValidPartition(tp, spec);
  EXPECT_EQ(tp.root_level(), 0u);  // total <= C_0
  EXPECT_DOUBLE_EQ(PartitionCost(tp, spec), 0.0);
}

TEST(BuildPartition, ChainDescendsWhenSetFitsOneChild) {
  // Root level forced high by total size, but after the first carve the
  // pieces are small: leaves still land at level 0 through chains.
  Hypergraph hg = testutil::RandomConnectedHypergraph(16, 12, 3, 2);
  HierarchySpec spec(
      {{8.0, 2, 1.0}, {8.5, 2, 1.0}, {9.0, 2, 1.0}, {16.0, 2, 1.0}});
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  Rng rng(3);
  const TreePartition tp =
      BuildPartitionTopDown(hg, spec, zero, MetricCarver(), rng);
  RequireValidPartition(tp, spec);
  for (BlockId leaf : tp.Leaves()) EXPECT_EQ(tp.level(leaf), 0u);
  EXPECT_EQ(tp.root_level(), 3u);
}

TEST(BuildPartition, RespectsBranchBounds) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(60, 80, 4, 7);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.15);
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  Rng rng(11);
  const TreePartition tp =
      BuildPartitionTopDown(hg, spec, zero, MetricCarver(), rng);
  RequireValidPartition(tp, spec);
  for (BlockId q = 0; q < tp.num_blocks(); ++q)
    if (tp.level(q) > 0)
      EXPECT_LE(tp.children(q).size(), spec.max_branches(tp.level(q)));
}

TEST(RunHtpFlow, SolvesFigure2ToOptimum) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 2024;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
  EXPECT_DOUBLE_EQ(result.cost, kFigure2OptimalCost);
  ASSERT_EQ(result.iterations.size(), 4u);
  for (const HtpFlowIteration& it : result.iterations) {
    EXPECT_TRUE(it.metric_converged);
    // Lemma 2: every metric cost lower-bounds every achievable cost, and
    // Lemma 1 bounds it by the best partition's cost from above... in the
    // heuristic it just needs to be positive and no larger than a feasible
    // integral solution's cost would force.
    EXPECT_GT(it.metric_cost, 0.0);
    EXPECT_GE(it.best_partition_cost, result.cost);
  }
}

TEST(RunHtpFlow, MultipleConstructionsPerMetricNeverHurt) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(48, 60, 3, 21);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams one;
  one.iterations = 2;
  one.constructions_per_metric = 1;
  one.seed = 9;
  HtpFlowParams many = one;
  many.constructions_per_metric = 6;
  const HtpFlowResult r1 = RunHtpFlow(hg, spec, one);
  const HtpFlowResult rm = RunHtpFlow(hg, spec, many);
  RequireValidPartition(r1.partition, spec);
  RequireValidPartition(rm.partition, spec);
  EXPECT_LE(rm.cost, r1.cost + 1e-9);  // superset of constructions
}

class BuildPartitionPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuildPartitionPropertyTest, AlwaysProducesValidPartitions) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      30 + seed % 50, 30 + seed % 60, 2 + seed % 5, seed);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 3, 0.2);
  std::vector<double> metric(hg.num_nets());
  Rng lrng(seed * 3);
  for (double& d : metric) d = lrng.next_double() * 2.0;
  Rng rng(seed);
  const TreePartition tp =
      BuildPartitionTopDown(hg, spec, metric, MetricCarver(), rng);
  RequireValidPartition(tp, spec);
  EXPECT_GE(PartitionCost(tp, spec), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuildPartitionPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 15));

}  // namespace
}  // namespace htp
