#include "core/cost.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"

namespace htp {
namespace {

TEST(Cost, Figure2WorkedExample) {
  // The paper: edges cut only at level 0 cost w0 * 2 = 2; edges cut at both
  // levels cost w0 * 2 + w1 * 2 = 6; total of the shown partition = 20.
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);

  std::size_t cost2 = 0, cost6 = 0, cost0 = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    const double c = NetCost(tp, spec, e);
    if (c == 2.0)
      ++cost2;
    else if (c == 6.0)
      ++cost6;
    else if (c == 0.0)
      ++cost0;
    else
      FAIL() << "unexpected edge cost " << c;
  }
  EXPECT_EQ(cost0, 24u);  // intra-cluster K4 edges
  EXPECT_EQ(cost2, 4u);   // the (a,b) edges
  EXPECT_EQ(cost6, 2u);   // the (c,d) edges
  EXPECT_DOUBLE_EQ(PartitionCost(tp, spec), kFigure2OptimalCost);
}

TEST(Cost, SpanCountsMultiwayNets) {
  // A 4-pin net spread over 3 leaves at level 0 spans 3 there.
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{2.0, 4, 1.0}, {4.0, 4, 1.0}});
  TreePartition tp(hg, 1);
  const BlockId l0 = tp.AddChild(TreePartition::kRoot);
  const BlockId l1 = tp.AddChild(TreePartition::kRoot);
  const BlockId l2 = tp.AddChild(TreePartition::kRoot);
  tp.AssignNode(0, l0);
  tp.AssignNode(1, l0);
  tp.AssignNode(2, l1);
  tp.AssignNode(3, l2);
  EXPECT_EQ(NetSpan(tp, 0, 0), 3u);
  EXPECT_DOUBLE_EQ(NetCost(tp, spec, 0), 3.0);
}

TEST(Cost, SpanIsZeroWhenContained) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  // Net 0 is an intra-cluster K4 edge (nodes 0-1).
  EXPECT_EQ(NetSpan(tp, 0, 0), 0u);
  EXPECT_EQ(NetSpan(tp, 0, 1), 0u);
}

TEST(Cost, WeightsScaleLevels) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  // Doubling w0 adds 2 per level-0-cut edge: 6 edges cut at level 0.
  HierarchySpec heavier({{4.0, 2, 2.0}, {8.0, 2, 2.0}, {16.0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(PartitionCost(tp, heavier),
                   /* 6 edges * 2*2 at level 0 + 2 edges * 2*2 at level 1 */
                   6 * 4.0 + 2 * 4.0);
}

TEST(Cost, CapacityScalesNetCost) {
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u}, 3.5);
  Hypergraph hg = builder.build();
  HierarchySpec spec({{1.0, 2, 1.0}, {2.0, 2, 1.0}});
  TreePartition tp(hg, 1);
  const BlockId a = tp.AddChild(TreePartition::kRoot);
  const BlockId b = tp.AddChild(TreePartition::kRoot);
  tp.AssignNode(0, a);
  tp.AssignNode(1, b);
  EXPECT_DOUBLE_EQ(PartitionCost(tp, spec), 2.0 * 3.5);
}

TEST(Cost, ByLevelBreakdownSumsToTotal) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::vector<double> by_level = PartitionCostByLevel(tp, spec);
  ASSERT_EQ(by_level.size(), 2u);
  EXPECT_DOUBLE_EQ(by_level[0] + by_level[1], PartitionCost(tp, spec));
  // Level 0: 6 cut edges * w0 * 2 = 12; level 1: 2 * w1 * 2 = 8.
  EXPECT_DOUBLE_EQ(by_level[0], 12.0);
  EXPECT_DOUBLE_EQ(by_level[1], 8.0);
}

TEST(Cost, CutNetsByLevel) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::vector<std::size_t> cuts = CutNetsByLevel(tp);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], 6u);
  EXPECT_EQ(cuts[1], 2u);
}

TEST(Cost, SingleLeafTreeCostsNothing) {
  HypergraphBuilder builder;
  builder.add_node();
  builder.add_node();
  builder.add_net({0u, 1u});
  Hypergraph hg = builder.build();
  TreePartition tp(hg, 0);  // root is the only (leaf) block
  tp.AssignNode(0, TreePartition::kRoot);
  tp.AssignNode(1, TreePartition::kRoot);
  HierarchySpec spec({{2.0, 2, 1.0}, {2.0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(PartitionCost(tp, spec), 0.0);
}

}  // namespace
}  // namespace htp
