#include "core/dot_export.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"

namespace htp {
namespace {

TEST(DotExport, RendersFigure2Tree) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::string dot = PartitionToDot(tp, spec);
  EXPECT_NE(dot.find("digraph htp_partition"), std::string::npos);
  // One node per block, one edge per child.
  std::size_t nodes = 0, edges = 0, pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, tp.num_blocks());
  EXPECT_EQ(edges, tp.num_blocks() - 1);
  // Pin annotations appear for non-root blocks (e.g. "3 pins" on leaves).
  EXPECT_NE(dot.find("3 pins"), std::string::npos);
}

TEST(DotExport, RequiresCompletePartition) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp(hg, 2);
  EXPECT_THROW(PartitionToDot(tp, Figure2Spec()), Error);
}

TEST(ConnectivityCost, MatchesSpanRelationOnFigure2) {
  // For 2-pin nets lambda - 1 = span / 2 when cut: 6 cut edges at level 0
  // give km1 = 6; 2 cut at level 1 give km1 = 2.
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  EXPECT_DOUBLE_EQ(ConnectivityCost(tp, 0), 6.0);
  EXPECT_DOUBLE_EQ(ConnectivityCost(tp, 1), 2.0);
  EXPECT_DOUBLE_EQ(ConnectivityCost(tp, 2), 0.0);  // root holds everything
}

TEST(ConnectivityCost, MultiPinNetCountsLambdaMinusOne) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u}, 2.0);
  Hypergraph hg = builder.build();
  TreePartition tp(hg, 1);
  const BlockId a = tp.AddChild(TreePartition::kRoot);
  const BlockId b = tp.AddChild(TreePartition::kRoot);
  const BlockId c = tp.AddChild(TreePartition::kRoot);
  tp.AssignNode(0, a);
  tp.AssignNode(1, a);
  tp.AssignNode(2, b);
  tp.AssignNode(3, c);
  EXPECT_DOUBLE_EQ(ConnectivityCost(tp, 0), (3.0 - 1.0) * 2.0);
}

}  // namespace
}  // namespace htp
