#include "core/paper_examples.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "partition/exhaustive.hpp"

namespace htp {
namespace {

TEST(Figure2, GraphMatchesPaperDescription) {
  Hypergraph hg = Figure2Graph();
  EXPECT_EQ(hg.num_nodes(), 16u);   // "a graph of 16 nodes"
  EXPECT_EQ(hg.num_nets(), 30u);    // "and 30 edges"
  EXPECT_TRUE(hg.unit_sizes());     // "with unit sizes"
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    EXPECT_EQ(hg.net_degree(e), 2u);              // a graph
    EXPECT_DOUBLE_EQ(hg.net_capacity(e), 1.0);    // "unit edge capacities"
  }
}

TEST(Figure2, SpecMatchesPaperTable) {
  const HierarchySpec spec = Figure2Spec();
  EXPECT_EQ(spec.root_level(), 2u);
  EXPECT_DOUBLE_EQ(spec.capacity(0), 4.0);
  EXPECT_DOUBLE_EQ(spec.capacity(1), 8.0);
  EXPECT_DOUBLE_EQ(spec.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.weight(1), 2.0);
}

// Certifies by exhaustive enumeration that the intended partition is a true
// optimum of the reconstructed instance ("can be optimally partitioned into
// this tree hierarchy as shown in Figure 2(b)").
TEST(Figure2, IntendedPartitionIsGlobalOptimum) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition intended = Figure2OptimalPartition(hg);
  RequireValidPartition(intended, spec);
  EXPECT_DOUBLE_EQ(PartitionCost(intended, spec), kFigure2OptimalCost);

  const auto exact = ExhaustiveHtp(hg, spec);
  ASSERT_TRUE(exact.has_value()) << "enumeration cap hit";
  EXPECT_DOUBLE_EQ(exact->cost, kFigure2OptimalCost);
  RequireValidPartition(exact->best, spec);
}

}  // namespace
}  // namespace htp
