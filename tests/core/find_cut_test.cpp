#include "core/find_cut.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Independent cut recomputation for cross-checking CarveResult.
double RecomputeCut(const Hypergraph& hg, const std::vector<NodeId>& inside) {
  std::vector<char> in(hg.num_nodes(), 0);
  for (NodeId v : inside) in[v] = 1;
  double cut = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    bool has_in = false, has_out = false;
    for (NodeId v : hg.pins(e)) (in[v] ? has_in : has_out) = true;
    if (has_in && has_out) cut += hg.net_capacity(e);
  }
  return cut;
}

TEST(MetricFindCut, PeelsAClusterUnderTheOptimalMetric) {
  // Under the Lemma-1 metric of the optimal Figure-2 partition, growing by
  // cheapest nets keeps clusters together: a [4..4] carve must return one
  // whole cluster with cut <= 4 (= 2 cheap + up to 2 cross edges... the
  // intended clusters have boundary 3).
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const CarveResult cut = MetricFindCut(hg, metric, 4.0, 4.0, rng);
    ASSERT_TRUE(cut.in_window);
    ASSERT_EQ(cut.nodes.size(), 4u);
    // All four nodes from the same cluster (cluster id = v / 4).
    const NodeId cluster = cut.nodes[0] / 4;
    for (NodeId v : cut.nodes) EXPECT_EQ(v / 4, cluster);
    EXPECT_DOUBLE_EQ(cut.cut_value, 3.0);
  }
}

TEST(MetricFindCut, ReportedCutMatchesRecomputation) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 4, 3);
  std::vector<double> metric(hg.num_nets());
  Rng lrng(17);
  for (double& d : metric) d = lrng.next_double();
  Rng rng(5);
  const CarveResult cut = MetricFindCut(hg, metric, 10.0, 20.0, rng);
  EXPECT_TRUE(cut.in_window);
  EXPECT_GE(cut.size, 10.0);
  EXPECT_LE(cut.size, 20.0);
  EXPECT_NEAR(cut.cut_value, RecomputeCut(hg, cut.nodes), 1e-9);
}

TEST(MetricFindCut, WholeGraphWhenUbCoversEverything) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(12, 8, 3, 2);
  const std::vector<double> metric(hg.num_nets(), 1.0);
  Rng rng(1);
  const CarveResult cut = MetricFindCut(hg, metric, 1.0, 100.0, rng);
  EXPECT_EQ(cut.nodes.size(), hg.num_nodes());
  EXPECT_DOUBLE_EQ(cut.cut_value, 0.0);
}

TEST(MetricFindCut, HandlesDisconnectedGraphs) {
  HypergraphBuilder builder;
  for (int i = 0; i < 8; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({2u, 3u});  // two 2-node islands + 4 isolated nodes
  Hypergraph hg = builder.build();
  const std::vector<double> metric(hg.num_nets(), 1.0);
  Rng rng(9);
  const CarveResult cut = MetricFindCut(hg, metric, 5.0, 6.0, rng);
  EXPECT_TRUE(cut.in_window);
  EXPECT_GE(cut.size, 5.0);
  EXPECT_LE(cut.size, 6.0);
}

TEST(MetricFindCut, FallbackWhenWindowUnreachable) {
  // Node sizes 3,3,3 with window [4..5]: no prefix hits the window; the
  // carver must still return a nonempty best-effort prefix of size <= 5.
  HypergraphBuilder builder;
  for (int i = 0; i < 3; ++i) builder.add_node(3.0);
  builder.add_net({0u, 1u});
  builder.add_net({1u, 2u});
  Hypergraph hg = builder.build();
  const std::vector<double> metric(hg.num_nets(), 1.0);
  Rng rng(2);
  const CarveResult cut = MetricFindCut(hg, metric, 4.0, 5.0, rng);
  EXPECT_FALSE(cut.in_window);
  EXPECT_FALSE(cut.nodes.empty());
  EXPECT_LE(cut.size, 5.0);
}

TEST(MetricFindCut, PrefersCheapBoundary) {
  // Chain of two K4 clusters joined by an expensive edge; metric puts
  // length 10 on the bridge, so the carve should cut exactly there.
  HypergraphBuilder builder;
  for (int i = 0; i < 8; ++i) builder.add_node();
  std::vector<double> metric;
  for (NodeId base : {0u, 4u})
    for (NodeId i = 0; i < 4; ++i)
      for (NodeId j = i + 1; j < 4; ++j) {
        builder.add_net({base + i, base + j});
        metric.push_back(0.1);
      }
  builder.add_net({3u, 4u});
  metric.push_back(10.0);
  Hypergraph hg = builder.build();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const CarveResult cut = MetricFindCut(hg, metric, 2.0, 4.0, rng);
    ASSERT_TRUE(cut.in_window);
    EXPECT_DOUBLE_EQ(cut.size, 4.0);
    EXPECT_DOUBLE_EQ(cut.cut_value, 1.0);  // only the bridge
  }
}

class FindCutPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FindCutPropertyTest, AlwaysReturnsValidWindowedPrefix) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      15 + seed % 40, 10 + seed % 50, 2 + seed % 5, seed);
  std::vector<double> metric(hg.num_nets());
  Rng lrng(seed ^ 0x777);
  for (double& d : metric) d = lrng.next_double() * 3.0;
  Rng rng(seed);
  const double ub = 4.0 + static_cast<double>(seed % 10);
  const double lb = ub / 2.0;
  const CarveResult cut = MetricFindCut(hg, metric, lb, ub, rng);
  ASSERT_FALSE(cut.nodes.empty());
  EXPECT_LE(cut.size, ub + 1e-9);
  if (cut.in_window) EXPECT_GE(cut.size, lb - 1e-9);
  EXPECT_NEAR(cut.cut_value, RecomputeCut(hg, cut.nodes), 1e-9);
  // No duplicates.
  std::vector<NodeId> sorted = cut.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindCutPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace htp
