#include "core/flow_injection.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(FlowInjection, ConvergesOnFigure2) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  const FlowInjectionResult result =
      ComputeSpreadingMetric(hg, spec, FlowInjectionParams{});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.injections, 0u);
  // The produced metric must be feasible for family (5).
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, result.metric, 1e-6)
                   .has_value());
  EXPECT_GT(result.metric_cost, 0.0);
}

TEST(FlowInjection, TrivialInstanceNeedsNoFlow) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({2u, 3u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{4.0, 2, 1.0}, {4.0, 2, 1.0}});
  const FlowInjectionResult result =
      ComputeSpreadingMetric(hg, spec, FlowInjectionParams{});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.injections, 0u);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(FlowInjection, CongestedBridgeGetsLongest) {
  // Two heavy clusters joined by one bridge: the bridge must end up with a
  // much larger d(e) than intra-cluster edges (it lies on every violating
  // tree crossing the cut).
  HypergraphBuilder builder;
  for (int i = 0; i < 8; ++i) builder.add_node();
  for (NodeId base : {0u, 4u})
    for (NodeId i = 0; i < 4; ++i)
      for (NodeId j = i + 1; j < 4; ++j) builder.add_net({base + i, base + j});
  builder.add_net({0u, 4u}, 1.0, "bridge");
  Hypergraph hg = builder.build();
  HierarchySpec spec({{4.0, 2, 1.0}, {8.0, 2, 1.0}});
  const FlowInjectionResult result =
      ComputeSpreadingMetric(hg, spec, FlowInjectionParams{});
  ASSERT_TRUE(result.converged);
  const NetId bridge = 12;
  ASSERT_EQ(hg.net_name(bridge), "bridge");
  double max_other = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    if (e != bridge) max_other = std::max(max_other, result.metric[e]);
  EXPECT_GT(result.metric[bridge], max_other);
}

TEST(FlowInjection, DeterministicForSeed) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 25, 3, 4);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.2);
  FlowInjectionParams params;
  params.seed = 123;
  const FlowInjectionResult a = ComputeSpreadingMetric(hg, spec, params);
  const FlowInjectionResult b = ComputeSpreadingMetric(hg, spec, params);
  ASSERT_EQ(a.metric.size(), b.metric.size());
  for (NetId e = 0; e < hg.num_nets(); ++e)
    EXPECT_DOUBLE_EQ(a.metric[e], b.metric[e]);
  EXPECT_EQ(a.injections, b.injections);
}

TEST(FlowInjection, ThreadsKnobIsBitIdentical) {
  // The scan/commit split's whole-algorithm contract: Algorithm 2 with a
  // parallel candidate scan returns the exact serial result — metric, flow,
  // injection count, round count, convergence — for every thread count.
  // 80 nodes clears the scanner's small-graph serial fallback.
  Hypergraph hg = testutil::RandomConnectedHypergraph(80, 100, 4, 42);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  FlowInjectionParams params;
  params.seed = 1997;
  const FlowInjectionResult serial = ComputeSpreadingMetric(hg, spec, params);
  ASSERT_GT(serial.injections, 0u);  // the scan path actually commits hits
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    params.threads = threads;
    const FlowInjectionResult parallel =
        ComputeSpreadingMetric(hg, spec, params);
    EXPECT_EQ(serial.metric, parallel.metric);  // bitwise, every net
    EXPECT_EQ(serial.flow, parallel.flow);
    EXPECT_EQ(serial.injections, parallel.injections);
    EXPECT_EQ(serial.rounds, parallel.rounds);
    EXPECT_EQ(serial.converged, parallel.converged);
    EXPECT_EQ(serial.metric_cost, parallel.metric_cost);
  }
}

TEST(FlowInjection, ParameterValidation) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  FlowInjectionParams params;
  params.alpha = 0.0;
  EXPECT_THROW(ComputeSpreadingMetric(hg, spec, params), Error);
  params = {};
  params.delta = -1.0;
  EXPECT_THROW(ComputeSpreadingMetric(hg, spec, params), Error);
  params = {};
  params.epsilon = 0.0;
  EXPECT_THROW(ComputeSpreadingMetric(hg, spec, params), Error);
}

// Property: across random circuits and hierarchies, Algorithm 2 converges
// and its metric is feasible.
class FlowInjectionPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowInjectionPropertyTest, ConvergesToFeasibleMetric) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 30, 25 + seed % 30, 2 + seed % 4, seed);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 2, 0.2);
  FlowInjectionParams params;
  params.seed = seed;
  const FlowInjectionResult result = ComputeSpreadingMetric(hg, spec, params);
  ASSERT_TRUE(result.converged) << "no convergence in " << result.rounds
                                << " rounds";
  EXPECT_FALSE(
      CheckSpreadingMetric(hg, spec, result.metric, 1e-6).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowInjectionPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// The [10]/[17]-style pair-path variant must satisfy the same feasibility
// contract under the same termination criterion.
class PairPathInjectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PairPathInjectionTest, ConvergesToFeasibleMetric) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 25, 25 + seed % 25, 2 + seed % 3, seed ^ 0x1111);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 2, 0.2);
  FlowInjectionParams params;
  params.seed = seed;
  const FlowInjectionResult path =
      ComputePairPathSpreadingMetric(hg, spec, params);
  ASSERT_TRUE(path.converged);
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, path.metric, 1e-6).has_value());
  // Paths flood fewer nets per injection than trees, so they need at least
  // as many injections to reach the same feasibility (the paper's
  // motivation for tree flooding).
  const FlowInjectionResult tree = ComputeSpreadingMetric(hg, spec, params);
  EXPECT_GE(path.injections, tree.injections);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairPathInjectionTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
