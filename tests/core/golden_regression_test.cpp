// Golden regression pins: exact end-to-end costs of deterministic FLOW runs
// on reference instances. These are change detectors, not correctness
// oracles — any edit to the RNG forking, heap tie-breaks, CSR lowering,
// carve ordering, or metric convergence shows up here as an exact-value
// mismatch. If a change is *intended* to alter results, update the pinned
// values in the same commit and say why; bit-identity across thread counts
// is asserted separately (htp_flow_parallel_test.cpp).
#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "netlist/generators.hpp"

namespace htp {
namespace {

TEST(GoldenRegression, Figure2ExampleCostIsTwenty) {
  // The paper's worked example (Figure 2): FLOW must land on the known
  // optimal interconnection cost of 20 under default parameters.
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  const HtpFlowResult result = RunHtpFlow(hg, spec, {});
  RequireValidPartition(result.partition, spec);
  EXPECT_DOUBLE_EQ(result.cost, kFigure2OptimalCost);
  EXPECT_DOUBLE_EQ(result.cost, 20.0);
}

// The exact costs produced by bench/table2_constructive --quick (seed 1997,
// 2 FLOW iterations, full binary hierarchy of height 4) for the two small
// quick-suite circuits. Same generator seed, same parameters — a change in
// either cost means the quick-suite regression baseline (BENCH_htp.json)
// needs regenerating too.
struct GoldenCase {
  const char* circuit;
  double flow_cost;
};

class Table2QuickGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(Table2QuickGoldenTest, QuickModeFlowCostIsPinned) {
  const GoldenCase golden = GetParam();
  Hypergraph hg = MakeIscas85Like(golden.circuit, 1997);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 2;  // --quick
  params.seed = 1997;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
  EXPECT_DOUBLE_EQ(result.cost, golden.flow_cost);
}

INSTANTIATE_TEST_SUITE_P(Circuits, Table2QuickGoldenTest,
                         ::testing::Values(GoldenCase{"c1355", 80.0},
                                           GoldenCase{"c2670", 70.0}),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace htp
