#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace htp {
namespace {

TEST(HierarchySpec, ValidatesShape) {
  EXPECT_THROW(HierarchySpec({LevelSpec{4.0, 2, 1.0}}), Error);  // one level
  EXPECT_THROW(HierarchySpec({{0.0, 2, 1.0}, {8.0, 2, 1.0}}), Error);
  EXPECT_THROW(HierarchySpec({{8.0, 2, 1.0}, {4.0, 2, 1.0}}), Error);  // dec
  EXPECT_THROW(HierarchySpec({{4.0, 2, 1.0}, {8.0, 1, 1.0}}), Error);  // K<2
  EXPECT_THROW(HierarchySpec({{4.0, 2, -1.0}, {8.0, 2, 1.0}}), Error); // w<0
  EXPECT_NO_THROW(HierarchySpec({{4.0, 2, 1.0}, {8.0, 2, 1.0}}));
}

TEST(HierarchySpec, Accessors) {
  HierarchySpec spec({{4.0, 2, 1.0}, {8.0, 3, 2.0}, {16.0, 4, 1.0}});
  EXPECT_EQ(spec.root_level(), 2u);
  EXPECT_EQ(spec.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(spec.capacity(1), 8.0);
  EXPECT_EQ(spec.max_branches(2), 4u);
  EXPECT_DOUBLE_EQ(spec.weight(1), 2.0);
  EXPECT_THROW(spec.capacity(3), Error);
}

TEST(HierarchySpec, GFunctionPiecewise) {
  // C = (4, 8, 16), w = (1, 2).
  HierarchySpec spec({{4.0, 2, 1.0}, {8.0, 2, 2.0}, {16.0, 2, 1.0}});
  EXPECT_DOUBLE_EQ(spec.g(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.g(4.0), 0.0);  // x <= C0
  // C0 < x <= C1: g = 2 (x - 4) * 1.
  EXPECT_DOUBLE_EQ(spec.g(6.0), 4.0);
  EXPECT_DOUBLE_EQ(spec.g(8.0), 8.0);
  // C1 < x <= C2: g = 2 [ (x-4)*1 + (x-8)*2 ].
  EXPECT_DOUBLE_EQ(spec.g(12.0), 2.0 * (8.0 + 8.0));
  EXPECT_DOUBLE_EQ(spec.g(16.0), 2.0 * (12.0 + 16.0));
}

TEST(HierarchySpec, GIsMonotoneNondecreasing) {
  HierarchySpec spec({{3.0, 2, 0.5}, {9.0, 2, 2.0}, {27.0, 2, 1.5},
                      {81.0, 2, 1.0}});
  double prev = -1.0;
  for (double x = 0.0; x <= 81.0; x += 0.5) {
    const double g = spec.g(x);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(HierarchySpec, LevelForSize) {
  HierarchySpec spec({{4.0, 2, 1.0}, {8.0, 2, 1.0}, {16.0, 2, 1.0}});
  EXPECT_EQ(spec.LevelForSize(1.0), 0u);
  EXPECT_EQ(spec.LevelForSize(4.0), 0u);
  EXPECT_EQ(spec.LevelForSize(4.5), 1u);
  EXPECT_EQ(spec.LevelForSize(16.0), 2u);
  EXPECT_THROW(spec.LevelForSize(17.0), Error);
}

TEST(FullBinaryHierarchy, PaperConfiguration) {
  // "full binary tree with height 4": root level 4, K = 2 everywhere,
  // C_l = ceil(n / 2^(4-l)) * 1.1.
  const HierarchySpec spec = FullBinaryHierarchy(1600.0);
  EXPECT_EQ(spec.root_level(), 4u);
  for (Level l = 1; l <= 4; ++l) EXPECT_EQ(spec.max_branches(l), 2u);
  EXPECT_NEAR(spec.capacity(0), std::ceil(1600.0 / 16.0) * 1.1, 1e-9);
  EXPECT_NEAR(spec.capacity(3), std::ceil(1600.0 / 2.0) * 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(spec.capacity(4), 1600.0);
  EXPECT_EQ(spec.LevelForSize(1600.0), 4u);
  spec.Validate();
}

TEST(UniformHierarchy, CustomWeightsAndBranching) {
  const HierarchySpec spec =
      UniformHierarchy(270.0, 3, 3, 0.2, {1.0, 2.0, 4.0});
  EXPECT_EQ(spec.root_level(), 3u);
  EXPECT_EQ(spec.max_branches(1), 3u);
  EXPECT_DOUBLE_EQ(spec.weight(2), 4.0);
  EXPECT_THROW(UniformHierarchy(100.0, 2, 3, 0.1, {1.0}), Error);  // w size
}

TEST(HierarchySpec, ToStringMentionsEveryLevel) {
  HierarchySpec spec({{4.0, 2, 1.0}, {8.0, 2, 2.0}, {16.0, 2, 1.0}});
  const std::string s = spec.ToString();
  EXPECT_NE(s.find("l0"), std::string::npos);
  EXPECT_NE(s.find("l2"), std::string::npos);
}

}  // namespace
}  // namespace htp
