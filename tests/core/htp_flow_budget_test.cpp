// The anytime contract of the FLOW driver (docs/robustness.md):
//  * an unlimited budget reproduces the unbudgeted run bit for bit;
//  * deterministic caps (max_iterations, max_rounds) equal a prefix /
//    reparameterization of the uncapped run, identically for every thread
//    count;
//  * a fired deadline — even one that is pre-expired — still yields a
//    *valid* best-so-far partition with completed=false and the right
//    stop_reason;
//  * the baselines and refiner degrade instead of failing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/htp_flow.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

Hypergraph TestCircuit() {
  return testutil::RandomConnectedHypergraph(48, 64, 3, 11);
}

HtpFlowParams BaseParams(std::size_t threads = 1) {
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 77;
  params.threads = threads;
  return params;
}

void ExpectSamePartition(const HtpFlowResult& a, const HtpFlowResult& b,
                         const Hypergraph& hg) {
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    ASSERT_EQ(a.partition.leaf_of(v), b.partition.leaf_of(v)) << "node " << v;
}

TEST(HtpFlowBudget, UnlimitedBudgetIsBitIdenticalToDefault) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  const HtpFlowResult plain = RunHtpFlow(hg, spec, BaseParams());

  HtpFlowParams budgeted = BaseParams();
  budgeted.budget = Budget{};  // explicit unlimited
  const HtpFlowResult result = RunHtpFlow(hg, spec, budgeted);

  ExpectSamePartition(plain, result, hg);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(result.iterations.size(), 4u);
}

TEST(HtpFlowBudget, HugeDeadlineNeverFiresAndChangesNothing) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  const HtpFlowResult plain = RunHtpFlow(hg, spec, BaseParams());

  HtpFlowParams budgeted = BaseParams();
  budgeted.budget.time_budget_seconds = 1e6;
  const HtpFlowResult result = RunHtpFlow(hg, spec, budgeted);

  ExpectSamePartition(plain, result, hg);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kCompleted);
}

TEST(HtpFlowBudget, IterationCapEqualsPrefixOfUncappedRun) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  const HtpFlowResult full = RunHtpFlow(hg, spec, BaseParams());

  HtpFlowParams capped = BaseParams();
  capped.budget.max_iterations = 2;
  const HtpFlowResult result = RunHtpFlow(hg, spec, capped);

  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kIterationCap);
  ASSERT_EQ(result.iterations.size(), 2u);
  // Pre-forked streams make the capped run the uncapped run's prefix.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(result.iterations[i].metric_cost,
                     full.iterations[i].metric_cost);
    EXPECT_DOUBLE_EQ(result.iterations[i].best_partition_cost,
                     full.iterations[i].best_partition_cost);
    EXPECT_EQ(result.iterations[i].injections, full.iterations[i].injections);
  }
  // And the winner is the best of that prefix.
  double best = result.iterations[0].best_partition_cost;
  for (const HtpFlowIteration& it : result.iterations)
    best = std::min(best, it.best_partition_cost);
  EXPECT_DOUBLE_EQ(result.cost, best);
  RequireValidPartition(result.partition, spec);
}

TEST(HtpFlowBudget, IterationCapAtOrAboveNIsANoOp) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  const HtpFlowResult full = RunHtpFlow(hg, spec, BaseParams());

  HtpFlowParams capped = BaseParams();
  capped.budget.max_iterations = 9;  // above iterations=4
  const HtpFlowResult result = RunHtpFlow(hg, spec, capped);
  ExpectSamePartition(full, result, hg);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kCompleted);
}

TEST(HtpFlowBudget, IterationCapIsBitIdenticalAcrossThreadCounts) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams capped = BaseParams(1);
  capped.budget.max_iterations = 3;
  const HtpFlowResult serial = RunHtpFlow(hg, spec, capped);
  for (std::size_t threads : {2u, 8u}) {
    capped.threads = threads;
    const HtpFlowResult parallel = RunHtpFlow(hg, spec, capped);
    SCOPED_TRACE(threads);
    ExpectSamePartition(serial, parallel, hg);
    EXPECT_EQ(parallel.stop_reason, StopReason::kIterationCap);
  }
}

TEST(HtpFlowBudget, RoundCapIsDeterministicAndMatchesInjectionCap) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);

  // Budget-capping the rounds must equal setting the injection round cap
  // directly — it is the same deterministic knob, min'd in.
  HtpFlowParams via_budget = BaseParams();
  via_budget.budget.max_rounds = 3;
  const HtpFlowResult a = RunHtpFlow(hg, spec, via_budget);

  HtpFlowParams via_injection = BaseParams();
  via_injection.injection.max_rounds = 3;
  const HtpFlowResult b = RunHtpFlow(hg, spec, via_injection);

  ExpectSamePartition(a, b, hg);
  // A parameter change, not a cancellation: the run still completes.
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.stop_reason, StopReason::kCompleted);
  RequireValidPartition(a.partition, spec);

  // And it is thread-count invariant like everything deterministic.
  via_budget.threads = 8;
  const HtpFlowResult c = RunHtpFlow(hg, spec, via_budget);
  ExpectSamePartition(a, c, hg);
}

TEST(HtpFlowBudget, ZeroDeadlineStillReturnsAValidPartition) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  for (std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    HtpFlowParams params = BaseParams(threads);
    params.budget.time_budget_seconds = 0.0;
    const HtpFlowResult result = RunHtpFlow(hg, spec, params);
    // The floor guarantee: iteration 0's first construction completed.
    RequireValidPartition(result.partition, spec);
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
    EXPECT_GE(result.iterations.size(), 1u);
    EXPECT_GT(result.cost, 0.0);
  }
}

TEST(HtpFlowBudget, ExternalManualTokenReportsCancelled) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams params = BaseParams();
  params.cancel = CancellationToken::Manual();
  params.cancel.Cancel();  // fired before the run even starts
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
}

TEST(HtpFlowBudget, InjectionReportsCancelledMetric) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  FlowInjectionParams params;
  params.seed = 5;
  params.cancel = CancellationToken::WithDeadline(0.0);
  const FlowInjectionResult result = ComputeSpreadingMetric(hg, spec, params);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.injections, 0u);
  // The metric is still a usable (epsilon-initialized) length vector.
  ASSERT_EQ(result.metric.size(), hg.num_nets());
  for (NetId e = 0; e < hg.num_nets(); ++e)
    EXPECT_GT(result.metric[e], 0.0);
}

TEST(HtpFlowBudget, PairPathInjectionHonorsTheToken) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  FlowInjectionParams params;
  params.seed = 5;
  params.cancel = CancellationToken::WithDeadline(0.0);
  const FlowInjectionResult result =
      ComputePairPathSpreadingMetric(hg, spec, params);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.converged);
}

TEST(HtpFlowBudget, BuildPartitionThrowsCancelledErrorOnFiredToken) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  const CarveFn carve = [](const Hypergraph& sub, std::span<const double>,
                           double lb, double ub, Rng& rng) {
    return MetricFindCut(sub, std::vector<double>(sub.num_nets(), 0.0), lb,
                         ub, rng);
  };
  Rng rng(3);
  const CancellationToken fired = CancellationToken::WithDeadline(0.0);
  EXPECT_THROW(BuildPartitionTopDown(hg, spec, zero, carve, rng, fired),
               CancelledError);
  // An inert token builds fine.
  Rng rng2(3);
  const TreePartition tp = BuildPartitionTopDown(hg, spec, zero, carve, rng2);
  RequireValidPartition(tp, spec);
}

TEST(HtpFlowBudget, BaselinesStayValidUnderAFiredToken) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);

  RfmParams rfm;
  rfm.seed = 9;
  rfm.cancel = CancellationToken::WithDeadline(0.0);
  RequireValidPartition(RunRfm(hg, spec, rfm), spec);

  GfmParams gfm;
  gfm.seed = 9;
  gfm.cancel = CancellationToken::WithDeadline(0.0);
  RequireValidPartition(RunGfm(hg, spec, gfm), spec);
}

TEST(HtpFlowBudget, RefinerStopsBetweenPassesAndNeverWorsens) {
  const Hypergraph hg = TestCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  RfmParams rfm;
  rfm.seed = 9;
  TreePartition tp = RunGfm(hg, spec, {16, 9});
  const double before = PartitionCost(tp, spec);

  HtpFmParams params;
  params.seed = 9;
  params.cancel = CancellationToken::WithDeadline(0.0);
  const HtpFmStats stats = RefineHtpFm(tp, spec, params);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.passes, 0u);  // pre-expired: not a single pass ran
  EXPECT_DOUBLE_EQ(stats.final_cost, before);
  RequireValidPartition(tp, spec);

  // Unfired token: identical to no token at all.
  HtpFmParams free_params;
  free_params.seed = 9;
  TreePartition tp2 = RunGfm(hg, spec, {16, 9});
  const HtpFmStats free_stats = RefineHtpFm(tp2, spec, free_params);
  EXPECT_TRUE(free_stats.completed);
  EXPECT_LE(free_stats.final_cost, before);
}

}  // namespace
}  // namespace htp
