// Option-matrix coverage of RunHtpFlow: metric scopes, carvers, attempt
// counts, and whole-pipeline determinism.
#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(HtpFlowOptions, GlobalOnceSolvesFigure2) {
  Hypergraph hg = Figure2Graph();
  HtpFlowParams params;
  params.iterations = 4;
  params.metric_scope = MetricScope::kGlobalOnce;
  const HtpFlowResult result = RunHtpFlow(hg, Figure2Spec(), params);
  RequireValidPartition(result.partition, Figure2Spec());
  EXPECT_DOUBLE_EQ(result.cost, kFigure2OptimalCost);
}

TEST(HtpFlowOptions, SingleCarveAttemptStillValid) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 3, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams params;
  params.iterations = 1;
  params.carve_attempts = 1;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
}

TEST(HtpFlowOptions, RejectsZeroedParameters) {
  Hypergraph hg = Figure2Graph();
  HtpFlowParams params;
  params.iterations = 0;
  EXPECT_THROW(RunHtpFlow(hg, Figure2Spec(), params), Error);
  params = {};
  params.carve_attempts = 0;
  EXPECT_THROW(RunHtpFlow(hg, Figure2Spec(), params), Error);
  params = {};
  params.constructions_per_metric = 0;
  EXPECT_THROW(RunHtpFlow(hg, Figure2Spec(), params), Error);
}

class HtpFlowOptionMatrixTest
    : public ::testing::TestWithParam<std::tuple<MetricScope, CarverKind>> {};

TEST_P(HtpFlowOptionMatrixTest, EveryCombinationIsValidAndDeterministic) {
  const auto [scope, carver] = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(48, 60, 3, 77);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams params;
  params.iterations = 2;
  params.metric_scope = scope;
  params.carver = carver;
  params.seed = 31;
  const HtpFlowResult a = RunHtpFlow(hg, spec, params);
  const HtpFlowResult b = RunHtpFlow(hg, spec, params);
  RequireValidPartition(a.partition, spec);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(a.partition.leaf_of(v), b.partition.leaf_of(v));
  ASSERT_EQ(a.iterations.size(), 2u);
  EXPECT_EQ(a.iterations[0].injections, b.iterations[0].injections);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HtpFlowOptionMatrixTest,
    ::testing::Combine(::testing::Values(MetricScope::kGlobalOnce,
                                         MetricScope::kPerSubproblem),
                       ::testing::Values(CarverKind::kPrimPrefix,
                                         CarverKind::kMstSplit)));

}  // namespace
}  // namespace htp
