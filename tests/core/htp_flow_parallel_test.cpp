// Determinism of the parallel FLOW driver: RunHtpFlow must return a
// bit-identical partition, cost, per-iteration stats (wall_seconds aside),
// and obs counter totals for every thread count, on multiple circuits and
// both carvers.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Two structurally different circuits: a clustered random netlist and a
// denser one with a taller hierarchy.
struct Circuit {
  const char* name;
  Hypergraph hg;
  HierarchySpec spec;
};

std::vector<Circuit> TestCircuits() {
  std::vector<Circuit> circuits;
  {
    Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 3, 5);
    HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
    circuits.push_back({"rand40", std::move(hg), std::move(spec)});
  }
  {
    Hypergraph hg = testutil::RandomConnectedHypergraph(64, 90, 4, 123);
    HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 4, 0.15);
    circuits.push_back({"rand64", std::move(hg), std::move(spec)});
  }
  return circuits;
}

void ExpectIdenticalResults(const HtpFlowResult& reference,
                            const HtpFlowResult& other,
                            const Hypergraph& hg, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_DOUBLE_EQ(reference.cost, other.cost);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    ASSERT_EQ(reference.partition.leaf_of(v), other.partition.leaf_of(v))
        << "node " << v;
  ASSERT_EQ(reference.iterations.size(), other.iterations.size());
  for (std::size_t i = 0; i < reference.iterations.size(); ++i) {
    const HtpFlowIteration& a = reference.iterations[i];
    const HtpFlowIteration& b = other.iterations[i];
    EXPECT_DOUBLE_EQ(a.metric_cost, b.metric_cost) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.best_partition_cost, b.best_partition_cost)
        << "iteration " << i;
    EXPECT_EQ(a.injections, b.injections) << "iteration " << i;
    EXPECT_EQ(a.metric_converged, b.metric_converged) << "iteration " << i;
    // wall_seconds is intentionally not compared.
  }
}

class HtpFlowParallelTest : public ::testing::TestWithParam<CarverKind> {};

TEST_P(HtpFlowParallelTest, BitIdenticalAcrossThreadCounts) {
  for (const Circuit& circuit : TestCircuits()) {
    SCOPED_TRACE(circuit.name);
    HtpFlowParams params;
    params.iterations = 4;
    params.constructions_per_metric = 2;
    params.carver = GetParam();
    params.seed = 97;
    params.threads = 1;
    const HtpFlowResult serial = RunHtpFlow(circuit.hg, circuit.spec, params);
    RequireValidPartition(serial.partition, circuit.spec);
    ASSERT_EQ(serial.iterations.size(), params.iterations);

    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      params.threads = threads;
      const HtpFlowResult parallel =
          RunHtpFlow(circuit.hg, circuit.spec, params);
      RequireValidPartition(parallel.partition, circuit.spec);
      ExpectIdenticalResults(serial, parallel, circuit.hg,
                             threads == 2 ? "threads=2" : "threads=8");
    }
  }
}

TEST_P(HtpFlowParallelTest, HardwareConcurrencyMatchesSerial) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 3, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams params;
  params.iterations = 3;
  params.carver = GetParam();
  params.seed = 7;
  params.threads = 1;
  const HtpFlowResult serial = RunHtpFlow(hg, spec, params);
  params.threads = 0;  // all hardware threads
  const HtpFlowResult parallel = RunHtpFlow(hg, spec, params);
  ExpectIdenticalResults(serial, parallel, hg, "threads=0");
}

INSTANTIATE_TEST_SUITE_P(Carvers, HtpFlowParallelTest,
                         ::testing::Values(CarverKind::kPrimPrefix,
                                           CarverKind::kMstSplit));

TEST(HtpFlowParallel, ParallelRunMatchesPreParallelismSerialBehaviour) {
  // The refactor pre-forks the per-iteration RNG streams; this pins the
  // serial path's output so any future reordering of the forks (which
  // would silently change every seed's result) fails loudly.
  Hypergraph hg = Figure2Graph();
  HtpFlowParams params;
  params.iterations = 4;
  params.metric_scope = MetricScope::kGlobalOnce;  // mirrors HtpFlowOptions.
  params.threads = 8;
  const HtpFlowResult result = RunHtpFlow(hg, Figure2Spec(), params);
  RequireValidPartition(result.partition, Figure2Spec());
  EXPECT_DOUBLE_EQ(result.cost, kFigure2OptimalCost);
}

TEST(HtpFlowParallel, ObsCounterTotalsAreBitIdenticalAcrossThreadCounts) {
  // The threads-invariance guarantee extends to the telemetry layer: every
  // counter total (Dijkstra pops, injections, carve attempts, FM moves, ...)
  // must match exactly between serial and parallel runs, because the work
  // itself is identical and integer sums/maxes are order-independent.
  // Timers measure real durations and are excluded, like wall_seconds.
  Hypergraph hg = MakeIscas85Like("c1355", 1997);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 1997;

  auto run = [&](std::size_t threads) {
    obs::ResetAll();
    params.threads = threads;
    RunHtpFlow(hg, spec, params);
    return obs::TakeSnapshot().counters;
  };

  const std::vector<obs::CounterValue> reference = run(1);
#if HTP_OBS_ENABLED
  ASSERT_FALSE(reference.empty());
#endif
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const std::vector<obs::CounterValue> counters = run(threads);
    ASSERT_EQ(reference.size(), counters.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].name, counters[i].name) << "counter " << i;
      EXPECT_EQ(reference[i].kind, counters[i].kind)
          << "counter " << reference[i].name;
      EXPECT_EQ(reference[i].value, counters[i].value)
          << "counter " << reference[i].name;
    }
  }
}

TEST(HtpFlowParallel, MetricThreadsCrossProductIsBitIdentical) {
  // The two parallelism knobs compose: `threads` fans out the Algorithm-1
  // iterations, `metric_threads` fans out the candidate scan inside each
  // Algorithm-2 round (degrading to serial inside pool workers via the
  // nested-parallelism guard). Every combination must reproduce the fully
  // serial run bit-for-bit — partition, costs, per-iteration stats, and
  // every obs counter total, including the flow.scan_* and dijkstra.*
  // counters whose totals are defined by committed (serial-order) work only.
  Hypergraph hg = MakeIscas85Like("c1355", 1997);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 1997;

  struct Run {
    HtpFlowResult result;
    std::vector<obs::CounterValue> counters;
  };
  auto run = [&](std::size_t threads, std::size_t metric_threads) {
    obs::ResetAll();
    params.threads = threads;
    params.metric_threads = metric_threads;
    Run r{RunHtpFlow(hg, spec, params), {}};
    r.counters = obs::TakeSnapshot().counters;
    return r;
  };

  const Run reference = run(1, 1);
  RequireValidPartition(reference.result.partition, spec);
  // The full {1,2,8} x {1,2,8} cross-product (minus the reference itself).
  for (const auto [threads, metric_threads] :
       {std::pair<std::size_t, std::size_t>{1, 2},
        {1, 8},
        {2, 1},
        {2, 2},
        {2, 8},
        {8, 1},
        {8, 2},
        {8, 8}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads
                                    << " metric_threads=" << metric_threads);
    const Run other = run(threads, metric_threads);
    ExpectIdenticalResults(reference.result, other.result, hg, "cross");
    ASSERT_EQ(reference.counters.size(), other.counters.size());
    for (std::size_t i = 0; i < reference.counters.size(); ++i) {
      EXPECT_EQ(reference.counters[i].name, other.counters[i].name);
      EXPECT_EQ(reference.counters[i].value, other.counters[i].value)
          << "counter " << reference.counters[i].name;
    }
  }
}

TEST(HtpFlowParallel, BuildThreadsCrossProductIsBitIdentical) {
  // Third knob: `build_threads != 1` switches construction to the subtree
  // task engine. Engine mode is its own deterministic universe — the
  // reference is an engine run (threads=1, metric_threads=1,
  // build_threads=2), and EVERY {threads} x {metric_threads} combination
  // with build parallelism on must reproduce it bit for bit (results and
  // counter totals), for any engine worker count (2, 8, 0). The serial
  // mode (build_threads=1) is intentionally a different universe and is
  // pinned by the other tests in this file.
  Hypergraph hg = MakeIscas85Like("c1355", 1997);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 4;
  params.seed = 1997;

  struct Run {
    HtpFlowResult result;
    std::vector<obs::CounterValue> counters;
  };
  auto run = [&](std::size_t threads, std::size_t metric_threads,
                 std::size_t build_threads) {
    obs::ResetAll();
    params.threads = threads;
    params.metric_threads = metric_threads;
    params.build_threads = build_threads;
    Run r{RunHtpFlow(hg, spec, params), {}};
    r.counters = obs::TakeSnapshot().counters;
    return r;
  };

  const Run reference = run(1, 1, 2);
  RequireValidPartition(reference.result.partition, spec);

  // The full {1,2,8} x {1,2,8} cross-product at build_threads=2, plus
  // engine worker-count samples (8 and 0 = all hardware) at mixed outer
  // knobs.
  const std::vector<std::array<std::size_t, 3>> combos = {
      {1, 2, 2}, {1, 8, 2}, {2, 1, 2}, {2, 2, 2}, {2, 8, 2},
      {8, 1, 2}, {8, 2, 2}, {8, 8, 2}, {1, 1, 8}, {2, 2, 8},
      {8, 8, 8}, {1, 1, 0}, {2, 2, 0}};
  for (const auto& [threads, metric_threads, build_threads] : combos) {
    SCOPED_TRACE(testing::Message()
                 << "threads=" << threads << " metric_threads="
                 << metric_threads << " build_threads=" << build_threads);
    const Run other = run(threads, metric_threads, build_threads);
    ExpectIdenticalResults(reference.result, other.result, hg, "cross");
    ASSERT_EQ(reference.counters.size(), other.counters.size());
    for (std::size_t i = 0; i < reference.counters.size(); ++i) {
      EXPECT_EQ(reference.counters[i].name, other.counters[i].name);
      EXPECT_EQ(reference.counters[i].value, other.counters[i].value)
          << "counter " << reference.counters[i].name;
    }
  }
}

TEST(HtpFlowParallel, IterationWallTimesArePopulated) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 3, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  HtpFlowParams params;
  params.iterations = 3;
  params.threads = 2;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  double total = 0.0;
  for (const HtpFlowIteration& it : result.iterations) {
    EXPECT_GE(it.wall_seconds, 0.0);
    total += it.wall_seconds;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace htp
