#include "core/mst_carver.hpp"

#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "core/paper_examples.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

double RecomputeCut(const Hypergraph& hg, const std::vector<NodeId>& inside) {
  std::vector<char> in(hg.num_nodes(), 0);
  for (NodeId v : inside) in[v] = 1;
  double cut = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    bool has_in = false, has_out = false;
    for (NodeId v : hg.pins(e)) (in[v] ? has_in : has_out) = true;
    if (has_in && has_out) cut += hg.net_capacity(e);
  }
  return cut;
}

TEST(MstSplitCarve, PeelsAFigure2Cluster) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const CarveResult cut = MstSplitCarve(hg, metric, 4.0, 4.0, rng);
    ASSERT_TRUE(cut.in_window);
    ASSERT_EQ(cut.nodes.size(), 4u);
    const NodeId cluster = cut.nodes[0] / 4;
    for (NodeId v : cut.nodes) EXPECT_EQ(v / 4, cluster);
    EXPECT_DOUBLE_EQ(cut.cut_value, 3.0);
  }
}

TEST(MstSplitCarve, FallsBackWhenNoSubtreeFits) {
  // A star: every MST subtree below the hub is a single node, so a window
  // requiring >= 3 nodes has no 1-respecting candidate rooted below the
  // hub, and the hub's own subtree is everything. The fallback must still
  // produce a sane carve.
  HypergraphBuilder builder;
  const NodeId hub = builder.add_node();
  for (int i = 0; i < 6; ++i) {
    const NodeId leaf = builder.add_node();
    builder.add_net({hub, leaf});
  }
  Hypergraph hg = builder.build();
  const std::vector<double> metric(hg.num_nets(), 1.0);
  Rng rng(3);
  const CarveResult cut = MstSplitCarve(hg, metric, 3.0, 4.0, rng);
  EXPECT_FALSE(cut.nodes.empty());
  EXPECT_LE(cut.size, 4.0 + 1e-9);
}

TEST(MstSplitCarve, HandlesDisconnectedGraphs) {
  HypergraphBuilder builder;
  for (int i = 0; i < 9; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u});
  builder.add_net({3u, 4u});
  // nodes 5..8 isolated
  Hypergraph hg = builder.build();
  const std::vector<double> metric(hg.num_nets(), 1.0);
  Rng rng(5);
  const CarveResult cut = MstSplitCarve(hg, metric, 2.0, 4.0, rng);
  EXPECT_FALSE(cut.nodes.empty());
  EXPECT_GE(cut.size, 2.0);
  EXPECT_LE(cut.size, 4.0);
}

TEST(RunHtpFlow, MstCarverSolvesFigure2) {
  Hypergraph hg = Figure2Graph();
  HtpFlowParams params;
  params.iterations = 4;
  params.carver = CarverKind::kMstSplit;
  const HtpFlowResult result = RunHtpFlow(hg, Figure2Spec(), params);
  RequireValidPartition(result.partition, Figure2Spec());
  EXPECT_DOUBLE_EQ(result.cost, kFigure2OptimalCost);
}

class MstCarvePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstCarvePropertyTest, CutsAreConsistentAndWindowed) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 40, 15 + seed % 40, 2 + seed % 4, seed);
  std::vector<double> metric(hg.num_nets());
  Rng lrng(seed * 3 + 1);
  for (double& d : metric) d = lrng.next_double();
  Rng rng(seed);
  const double ub = 6.0 + static_cast<double>(seed % 8);
  const CarveResult cut = MstSplitCarve(hg, metric, ub / 2.0, ub, rng);
  ASSERT_FALSE(cut.nodes.empty());
  EXPECT_LE(cut.size, ub + 1e-9);
  EXPECT_NEAR(cut.cut_value, RecomputeCut(hg, cut.nodes), 1e-9);
  std::vector<NodeId> sorted = cut.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_P(MstCarvePropertyTest, FlowWithMstCarverProducesValidPartitions) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      30 + seed % 30, 30 + seed % 40, 3, seed ^ 0xfeed);
  const HierarchySpec spec =
      FullBinaryHierarchy(hg.total_size(), 2 + seed % 2, 0.2);
  HtpFlowParams params;
  params.iterations = 1;
  params.carver = CarverKind::kMstSplit;
  params.seed = seed;
  const HtpFlowResult result = RunHtpFlow(hg, spec, params);
  RequireValidPartition(result.partition, spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstCarvePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
