#include "core/partition_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/cost.hpp"
#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(PartitionIo, RoundTripsFigure2) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::string text = WritePartitionText(tp);
  const TreePartition back = ReadPartitionText(hg, text);
  EXPECT_EQ(back.num_blocks(), tp.num_blocks());
  EXPECT_EQ(back.root_level(), tp.root_level());
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(back.leaf_of(v), tp.leaf_of(v));
  EXPECT_DOUBLE_EQ(PartitionCost(back, spec), PartitionCost(tp, spec));
}

TEST(PartitionIo, RoundTripsRandomPartitions) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(40, 40, 4, seed);
    const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.3);
    Rng rng(seed);
    TreePartition tp = RandomPartition(hg, spec, rng);
    const TreePartition back =
        ReadPartitionText(hg, WritePartitionText(tp));
    for (NodeId v = 0; v < hg.num_nodes(); ++v)
      EXPECT_EQ(back.leaf_of(v), tp.leaf_of(v));
    RequireValidPartition(back, spec);
  }
}

TEST(PartitionIo, RejectsPartialPartition) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp(hg, 2);
  EXPECT_THROW(WritePartitionText(tp), Error);
}

TEST(PartitionIo, RejectsMalformedInput) {
  Hypergraph hg = Figure2Graph();
  EXPECT_THROW(ReadPartitionText(hg, ""), Error);
  EXPECT_THROW(ReadPartitionText(hg, "wrong header\n"), Error);
  const std::string good = WritePartitionText(Figure2OptimalPartition(hg));
  // Truncation (drop the last line).
  const std::string truncated = good.substr(0, good.rfind("assign"));
  EXPECT_THROW(ReadPartitionText(hg, truncated), Error);
  // Trailing garbage.
  EXPECT_THROW(ReadPartitionText(hg, good + "extra\n"), Error);
  // Leaf id out of range.
  std::string bad = good;
  bad.replace(bad.rfind(' ') + 1, 1, "99");
  EXPECT_THROW(ReadPartitionText(hg, bad), Error);
}

TEST(PartitionIo, RejectsForeignNetlists) {
  // A partition written for one hypergraph must not load against another,
  // even when the node counts coincide (found by a verification probe).
  Hypergraph hg = Figure2Graph();
  const std::string text = WritePartitionText(Figure2OptimalPartition(hg));
  Hypergraph other =
      testutil::RandomConnectedHypergraph(16, 20, 3, 9);  // 16 nodes too
  ASSERT_EQ(other.num_nodes(), hg.num_nodes());
  EXPECT_THROW(ReadPartitionText(other, text), Error);
  EXPECT_NO_THROW(ReadPartitionText(hg, text));
}

TEST(PartitionIo, AcceptsFingerprintlessFiles) {
  // Backward compatibility: older files lack the `netlist` line.
  Hypergraph hg = Figure2Graph();
  std::string text = WritePartitionText(Figure2OptimalPartition(hg));
  const std::size_t start = text.find("netlist");
  const std::size_t end = text.find('\n', start);
  text.erase(start, end - start + 1);
  const TreePartition tp = ReadPartitionText(hg, text);
  EXPECT_TRUE(tp.fully_assigned());
}

TEST(PartitionIo, ErrorsMentionLineNumbers) {
  Hypergraph hg = Figure2Graph();
  try {
    ReadPartitionText(hg, "htp-partition v1\nroot_level banana\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PartitionIo, FileRoundTrip) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::string path = ::testing::TempDir() + "/htp_partition_io.txt";
  WritePartitionFile(tp, path);
  const TreePartition back = ReadPartitionFile(hg, path);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_EQ(back.leaf_of(v), tp.leaf_of(v));
  std::remove(path.c_str());
  EXPECT_THROW(ReadPartitionFile(hg, "/nonexistent/p.txt"), Error);
}

}  // namespace
}  // namespace htp
