#include "core/pin_report.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(PinReport, Figure2BlockPins) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const PartitionReport report = ReportPartition(tp, spec);

  // Level 0: every cluster leaf has boundary 3 (two same-block peers + one
  // cross edge); level 1: each of the two blocks touches the 2 cross edges.
  ASSERT_EQ(report.levels.size(), 2u);
  EXPECT_EQ(report.levels[0].blocks, 4u);
  EXPECT_DOUBLE_EQ(report.levels[0].total_pins, 12.0);
  EXPECT_DOUBLE_EQ(report.levels[0].max_pins, 3.0);
  EXPECT_DOUBLE_EQ(report.levels[0].max_utilization, 1.0);
  EXPECT_EQ(report.levels[1].blocks, 2u);
  EXPECT_DOUBLE_EQ(report.levels[1].total_pins, 4.0);
}

TEST(PinReport, TiesOutWithEquationOne) {
  // sum of level-l pins == sum_e c(e) * span(e, l) == cost_by_level / w_l.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(40, 50, 4, seed);
    std::vector<double> weights{1.0, 3.0, 0.5};
    const HierarchySpec spec =
        UniformHierarchy(hg.total_size(), 3, 2, 0.25, weights);
    Rng rng(seed);
    TreePartition tp = RandomPartition(hg, spec, rng);
    const PartitionReport report = ReportPartition(tp, spec);
    const std::vector<double> by_level = PartitionCostByLevel(tp, spec);
    ASSERT_EQ(report.levels.size(), by_level.size());
    for (Level l = 0; l < by_level.size(); ++l) {
      EXPECT_NEAR(report.levels[l].total_pins * spec.weight(l), by_level[l],
                  1e-9)
          << "level " << l << " seed " << seed;
    }
  }
}

TEST(PinReport, UtilizationIsSizeOverCapacity) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const PartitionReport report = ReportPartition(tp, spec);
  for (const BlockReport& block : report.blocks) {
    EXPECT_NEAR(block.utilization, block.size / block.capacity, 1e-12);
    EXPECT_DOUBLE_EQ(block.size, tp.block_size(block.block));
  }
}

TEST(PinReport, RequiresCompletePartition) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp(hg, 2);
  EXPECT_THROW(ReportPartition(tp, Figure2Spec()), Error);
}

TEST(PinReport, FormatMentionsEveryLevel) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::string text =
      FormatReport(ReportPartition(tp, Figure2Spec()));
  EXPECT_NE(text.find("level 0"), std::string::npos);
  EXPECT_NE(text.find("level 1"), std::string::npos);
  EXPECT_NE(text.find("block#"), std::string::npos);
}

}  // namespace
}  // namespace htp
