#include "core/spreading_metric.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "runtime/thread_pool.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(SpreadingMetric, Figure2MetricValues) {
  // d(e) = cost(e)/c(e): 0 on intra-cluster edges, 2 on level-0 cuts, 6 on
  // level-1 cuts — exactly the labels of Figure 2(b).
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  std::size_t zeros = 0, twos = 0, sixes = 0;
  for (double d : metric) {
    if (d == 0.0) ++zeros;
    if (d == 2.0) ++twos;
    if (d == 6.0) ++sixes;
  }
  EXPECT_EQ(zeros, 24u);
  EXPECT_EQ(twos, 4u);
  EXPECT_EQ(sixes, 2u);
  EXPECT_DOUBLE_EQ(MetricCost(hg, metric), kFigure2OptimalCost);
}

TEST(SpreadingMetric, Figure2MetricIsFeasible) {
  // Lemma 1 on the worked example.
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, metric).has_value());
}

TEST(SpreadingMetric, ZeroMetricViolatedWhenGraphTooBig) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  const auto violation = CheckSpreadingMetric(hg, spec, zero);
  ASSERT_TRUE(violation.has_value());
  EXPECT_LT(violation->lhs, violation->rhs);
  EXPECT_GT(violation->tree_size, spec.capacity(0));
  // The violating tree must carry at least one net to inject on.
  EXPECT_FALSE(TreeNets(violation->tree).empty());
}

TEST(SpreadingMetric, ZeroMetricFeasibleWhenEverythingFits) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{4.0, 2, 1.0}, {4.0, 2, 1.0}});
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, zero).has_value());
}

// Lemma 1 as a property: the metric induced by ANY valid partition of a
// random circuit is feasible for constraint family (5).
class Lemma1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1PropertyTest, PartitionMetricsAreFeasible) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      24 + seed % 20, 20 + seed % 20, 4, seed);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.25);
  Rng rng(seed * 7 + 5);
  const TreePartition tp = RandomPartition(hg, spec, rng);
  RequireValidPartition(tp, spec);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  const auto violation = CheckSpreadingMetric(hg, spec, metric);
  EXPECT_FALSE(violation.has_value())
      << "Lemma 1 violated from source " << violation->source << ": lhs "
      << violation->lhs << " < g = " << violation->rhs;
  // And its metric cost equals the partition cost (Lemma 1's equality).
  EXPECT_NEAR(MetricCost(hg, metric), PartitionCost(tp, spec), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// What a serial FindViolationFrom sweep from `begin` would commit: the
// reference the scanner's determinism contract is stated against.
struct SweepResult {
  std::size_t index;
  SpreadingViolation violation;
};
std::optional<SweepResult> SerialSweep(const Hypergraph& hg,
                                       const HierarchySpec& spec,
                                       const std::vector<NodeId>& candidates,
                                       std::size_t begin,
                                       const SpreadingMetric& metric,
                                       double tolerance) {
  for (std::size_t i = begin; i < candidates.size(); ++i)
    if (auto v =
            FindViolationFrom(hg, spec, metric, candidates[i], tolerance))
      return SweepResult{i, std::move(*v)};
  return std::nullopt;
}

class ViolationScannerTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ViolationScannerTest, MatchesSerialSweepOnEveryCursor) {
  // 80 nodes clears the scanner's small-graph serial fallback, so the
  // GetParam() = 2 / 8 instances genuinely scan in parallel.
  Hypergraph hg = testutil::RandomConnectedHypergraph(80, 100, 4, 42);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.2);
  std::vector<NodeId> candidates(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) candidates[v] = v;
  Rng rng(11);
  rng.shuffle(candidates);

  // A uniformly short metric violates from many sources; scaling it up
  // sweeps the hit across the candidate list and eventually to "feasible".
  ViolationScanner scanner(hg, spec, GetParam());
  for (double scale : {0.001, 0.01, 0.1, 1.0, 100.0}) {
    const SpreadingMetric metric(hg.num_nets(), scale);
    for (std::size_t begin : {std::size_t{0}, std::size_t{17},
                              candidates.size() - 1, candidates.size()}) {
      SCOPED_TRACE(testing::Message() << "scale " << scale << " begin "
                                      << begin);
      const auto expect =
          SerialSweep(hg, spec, candidates, begin, metric, 1e-7);
      const auto hit = scanner.FindFirstViolation(candidates, begin, metric,
                                                  1e-7);
      ASSERT_EQ(expect.has_value(), hit.has_value());
      if (!expect) continue;
      EXPECT_EQ(hit->index, expect->index);
      EXPECT_EQ(hit->source, expect->violation.source);
      EXPECT_EQ(hit->tree_nodes, expect->violation.tree_nodes);
      EXPECT_EQ(hit->tree_size, expect->violation.tree_size);  // bitwise
      EXPECT_EQ(hit->lhs, expect->violation.lhs);
      EXPECT_EQ(hit->rhs, expect->violation.rhs);
      const std::vector<NetId> expect_nets = TreeNets(expect->violation.tree);
      EXPECT_TRUE(std::equal(hit->tree_nets.begin(), hit->tree_nets.end(),
                             expect_nets.begin(), expect_nets.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ViolationScannerTest,
                         ::testing::Values(1, 2, 8));

TEST(ViolationScanner, FeasibleMetricReturnsNullopt) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  const SpreadingMetric metric =
      MetricFromPartition(Figure2OptimalPartition(hg), spec);
  std::vector<NodeId> candidates(hg.num_nodes());
  for (NodeId v = 0; v < hg.num_nodes(); ++v) candidates[v] = v;
  ViolationScanner scanner(hg, spec, 4);
  EXPECT_FALSE(
      scanner.FindFirstViolation(candidates, 0, metric, 1e-7).has_value());
}

TEST(ViolationScanner, SmallGraphAndNestedConstructionDegradeToSerial) {
  Hypergraph hg = Figure2Graph();  // well under the parallel threshold
  const HierarchySpec spec = Figure2Spec();
  ViolationScanner small(hg, spec, 8);
  EXPECT_EQ(small.workers(), 1u);
  // Constructed inside a pool worker: the nested-parallelism guard forces
  // serial regardless of the requested count.
  Hypergraph big = testutil::RandomConnectedHypergraph(80, 100, 4, 42);
  const HierarchySpec big_spec = FullBinaryHierarchy(big.total_size(), 3, 0.2);
  std::size_t nested_workers = 99;
  ThreadPool pool(2);
  ParallelFor(pool, 1, [&](std::size_t) {
    ViolationScanner nested(big, big_spec, 8);
    nested_workers = nested.workers();
  });
  EXPECT_EQ(nested_workers, 1u);
  ViolationScanner outer(big, big_spec, 8);
  EXPECT_EQ(outer.workers(), 8u);
}

}  // namespace
}  // namespace htp
