#include "core/spreading_metric.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "partition/random_partition.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

TEST(SpreadingMetric, Figure2MetricValues) {
  // d(e) = cost(e)/c(e): 0 on intra-cluster edges, 2 on level-0 cuts, 6 on
  // level-1 cuts — exactly the labels of Figure 2(b).
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  std::size_t zeros = 0, twos = 0, sixes = 0;
  for (double d : metric) {
    if (d == 0.0) ++zeros;
    if (d == 2.0) ++twos;
    if (d == 6.0) ++sixes;
  }
  EXPECT_EQ(zeros, 24u);
  EXPECT_EQ(twos, 4u);
  EXPECT_EQ(sixes, 2u);
  EXPECT_DOUBLE_EQ(MetricCost(hg, metric), kFigure2OptimalCost);
}

TEST(SpreadingMetric, Figure2MetricIsFeasible) {
  // Lemma 1 on the worked example.
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  TreePartition tp = Figure2OptimalPartition(hg);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, metric).has_value());
}

TEST(SpreadingMetric, ZeroMetricViolatedWhenGraphTooBig) {
  Hypergraph hg = Figure2Graph();
  const HierarchySpec spec = Figure2Spec();
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  const auto violation = CheckSpreadingMetric(hg, spec, zero);
  ASSERT_TRUE(violation.has_value());
  EXPECT_LT(violation->lhs, violation->rhs);
  EXPECT_GT(violation->tree_size, spec.capacity(0));
  // The violating tree must carry at least one net to inject on.
  EXPECT_FALSE(TreeNets(violation->tree).empty());
}

TEST(SpreadingMetric, ZeroMetricFeasibleWhenEverythingFits) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u});
  Hypergraph hg = builder.build();
  HierarchySpec spec({{4.0, 2, 1.0}, {4.0, 2, 1.0}});
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  EXPECT_FALSE(CheckSpreadingMetric(hg, spec, zero).has_value());
}

// Lemma 1 as a property: the metric induced by ANY valid partition of a
// random circuit is feasible for constraint family (5).
class Lemma1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1PropertyTest, PartitionMetricsAreFeasible) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      24 + seed % 20, 20 + seed % 20, 4, seed);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.25);
  Rng rng(seed * 7 + 5);
  const TreePartition tp = RandomPartition(hg, spec, rng);
  RequireValidPartition(tp, spec);
  const SpreadingMetric metric = MetricFromPartition(tp, spec);
  const auto violation = CheckSpreadingMetric(hg, spec, metric);
  EXPECT_FALSE(violation.has_value())
      << "Lemma 1 violated from source " << violation->source << ": lhs "
      << violation->lhs << " < g = " << violation->rhs;
  // And its metric cost equals the partition cost (Lemma 1's equality).
  EXPECT_NEAR(MetricCost(hg, metric), PartitionCost(tp, spec), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace htp
