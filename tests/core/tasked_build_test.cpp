// BuildPartitionTasked: the engine-mode Algorithm 3. Asserts the contract
// the mode knob rests on — bit-identical partitions, costs, and build
// counters for EVERY engine worker count (serial drain included) — plus
// validity, leaf placement, and cancellation parity with the serial
// builder.
#include "core/build_partition.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/htp_flow.hpp"
#include "netlist/generators.hpp"
#include "obs/obs.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

std::vector<BlockId> LeafVector(const TreePartition& tp) {
  std::vector<BlockId> leaves(tp.hypergraph().num_nodes());
  for (NodeId v = 0; v < tp.hypergraph().num_nodes(); ++v)
    leaves[v] = tp.leaf_of(v);
  return leaves;
}

TEST(TaskedBuild, BitIdenticalForEveryWorkerCount) {
  const Hypergraph hg = MakeIscas85Like("c1355", 11);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  const SpreadingMetric metric(hg.num_nets(), 1.0);

  // Reference: engine with 2 workers. Counters must match too — they are
  // part of the schedule-independence contract.
  obs::ResetAll();
  Rng ref_rng(42);
  const TreePartition reference = BuildPartitionTasked(
      hg, spec, metric, FmCarver(), ref_rng, /*build_threads=*/2);
  RequireValidPartition(reference, spec);
  const std::vector<BlockId> ref_leaves = LeafVector(reference);
  const double ref_cost = PartitionCost(reference, spec);
  std::map<std::string, std::uint64_t> ref_counters;
  for (const obs::CounterValue& c : obs::TakeSnapshot().counters)
    ref_counters[c.name] = c.value;

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{8}, std::size_t{0}}) {
    obs::ResetAll();
    Rng rng(42);
    const TreePartition tp =
        BuildPartitionTasked(hg, spec, metric, FmCarver(), rng, workers);
    RequireValidPartition(tp, spec);
    EXPECT_EQ(LeafVector(tp), ref_leaves) << "build_threads=" << workers;
    EXPECT_EQ(PartitionCost(tp, spec), ref_cost)
        << "build_threads=" << workers;
    std::map<std::string, std::uint64_t> counters;
    for (const obs::CounterValue& c : obs::TakeSnapshot().counters)
      counters[c.name] = c.value;
    EXPECT_EQ(counters, ref_counters) << "build_threads=" << workers;
  }
}

TEST(TaskedBuild, MetricCarverWorkerCountInvariance) {
  const Hypergraph hg = testutil::RandomConnectedHypergraph(48, 30, 4, 5);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  SpreadingMetric metric(hg.num_nets());
  for (NetId e = 0; e < hg.num_nets(); ++e)
    metric[e] = 0.25 * static_cast<double>(e % 7);

  Rng ref_rng(5);
  const TreePartition reference = BuildPartitionTasked(
      hg, spec, metric, MetricCarver(), ref_rng, /*build_threads=*/4);
  RequireValidPartition(reference, spec);
  for (BlockId leaf : reference.Leaves()) EXPECT_EQ(reference.level(leaf), 0u);

  Rng rng(5);
  const TreePartition again =
      BuildPartitionTasked(hg, spec, metric, MetricCarver(), rng, 1);
  EXPECT_EQ(LeafVector(again), LeafVector(reference));
}

TEST(TaskedBuild, PreFiredTokenThrowsCancelledError) {
  const Hypergraph hg = testutil::RandomConnectedHypergraph(32, 20, 3, 9);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3);
  const SpreadingMetric zero(hg.num_nets(), 0.0);
  CancellationToken token = CancellationToken::Manual();
  token.Cancel();
  Rng rng(1);
  EXPECT_THROW(BuildPartitionTasked(hg, spec, zero, MetricCarver(), rng, 4,
                                    token),
               CancelledError);
}

TEST(TaskedBuild, RfmDispatchesThroughEngine) {
  // RunRfm with build_threads != 1 must stay worker-count invariant and
  // valid; it need not (and does not) match the serial-mode RFM result.
  const Hypergraph hg = MakeIscas85Like("c1355", 3);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  RfmParams params;
  params.seed = 7;
  params.build_threads = 2;
  const TreePartition reference = RunRfm(hg, spec, params);
  RequireValidPartition(reference, spec);
  params.build_threads = 8;
  const TreePartition other = RunRfm(hg, spec, params);
  EXPECT_EQ(LeafVector(other), LeafVector(reference));
  EXPECT_EQ(PartitionCost(other, spec), PartitionCost(reference, spec));
}

}  // namespace
}  // namespace htp
