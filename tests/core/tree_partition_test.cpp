#include "core/tree_partition.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"

namespace htp {
namespace {

Hypergraph SmallGraph() {
  HypergraphBuilder builder;
  for (int i = 0; i < 8; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({2u, 3u});
  builder.add_net({1u, 2u});
  return builder.build();
}

TEST(TreePartition, StructureAndLevels) {
  Hypergraph hg = SmallGraph();
  TreePartition tp(hg, 2);
  EXPECT_EQ(tp.root_level(), 2u);
  const BlockId a = tp.AddChild(TreePartition::kRoot);
  const BlockId b = tp.AddChild(TreePartition::kRoot);
  const BlockId a0 = tp.AddChild(a);
  const BlockId a1 = tp.AddChild(a);
  const BlockId b0 = tp.AddChild(b);
  EXPECT_EQ(tp.level(a), 1u);
  EXPECT_EQ(tp.level(a0), 0u);
  EXPECT_EQ(tp.parent(a1), a);
  EXPECT_EQ(tp.children(TreePartition::kRoot).size(), 2u);
  EXPECT_THROW(tp.AddChild(a0), Error);  // leaves cannot have children
  EXPECT_EQ(tp.Leaves().size(), 3u);
  EXPECT_EQ(tp.BlocksAtLevel(1).size(), 2u);
  (void)b0;
}

TEST(TreePartition, AssignAndSizes) {
  Hypergraph hg = SmallGraph();
  TreePartition tp(hg, 1);
  const BlockId l0 = tp.AddChild(TreePartition::kRoot);
  const BlockId l1 = tp.AddChild(TreePartition::kRoot);
  for (NodeId v = 0; v < 4; ++v) tp.AssignNode(v, l0);
  for (NodeId v = 4; v < 8; ++v) tp.AssignNode(v, l1);
  EXPECT_TRUE(tp.fully_assigned());
  EXPECT_DOUBLE_EQ(tp.block_size(l0), 4.0);
  EXPECT_DOUBLE_EQ(tp.block_size(TreePartition::kRoot), 8.0);
  EXPECT_EQ(tp.leaf_of(2), l0);
  EXPECT_EQ(tp.block_at(2, 1), TreePartition::kRoot);
  EXPECT_THROW(tp.AssignNode(0, l1), Error);  // already assigned
}

TEST(TreePartition, AssignRequiresLeafLevel) {
  Hypergraph hg = SmallGraph();
  TreePartition tp(hg, 2);
  const BlockId mid = tp.AddChild(TreePartition::kRoot);  // level 1
  EXPECT_THROW(tp.AssignNode(0, mid), Error);
}

TEST(TreePartition, MoveNodeUpdatesSizesAlongPaths) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const BlockId from = tp.leaf_of(0);
  const BlockId to = tp.leaf_of(15);
  const double from_size = tp.block_size(from);
  const double to_size = tp.block_size(to);
  tp.MoveNode(0, to);
  EXPECT_DOUBLE_EQ(tp.block_size(from), from_size - 1.0);
  EXPECT_DOUBLE_EQ(tp.block_size(to), to_size + 1.0);
  EXPECT_DOUBLE_EQ(tp.block_size(TreePartition::kRoot), 16.0);
  tp.MoveNode(0, from);  // restore
  EXPECT_DOUBLE_EQ(tp.block_size(from), from_size);
}

TEST(TreePartition, LcaLevel) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const BlockId leaf0 = tp.leaf_of(0);    // cluster A
  const BlockId leaf1 = tp.leaf_of(4);    // cluster B (same level-1 block)
  const BlockId leaf2 = tp.leaf_of(8);    // cluster C (other level-1 block)
  EXPECT_EQ(tp.LcaLevel(leaf0, leaf0), 0u);
  EXPECT_EQ(tp.LcaLevel(leaf0, leaf1), 1u);
  EXPECT_EQ(tp.LcaLevel(leaf0, leaf2), 2u);
}

TEST(ValidatePartition, AcceptsFigure2Optimum) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  EXPECT_TRUE(ValidatePartition(tp, Figure2Spec()).empty());
  EXPECT_NO_THROW(RequireValidPartition(tp, Figure2Spec()));
}

TEST(ValidatePartition, FlagsCapacityViolation) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  // Overstuff one leaf (C0 = 4) by moving a fifth node in.
  tp.MoveNode(4, tp.leaf_of(0));
  const auto issues = ValidatePartition(tp, Figure2Spec());
  EXPECT_FALSE(issues.empty());
  EXPECT_THROW(RequireValidPartition(tp, Figure2Spec()), Error);
}

TEST(ValidatePartition, FlagsIncompleteAssignment) {
  Hypergraph hg = SmallGraph();
  TreePartition tp(hg, 1);
  const BlockId leaf = tp.AddChild(TreePartition::kRoot);
  tp.AssignNode(0, leaf);
  HierarchySpec spec({{8.0, 2, 1.0}, {8.0, 2, 1.0}});
  const auto issues = ValidatePartition(tp, spec);
  EXPECT_FALSE(issues.empty());
}

TEST(ValidatePartition, FlagsBranchOverflow) {
  Hypergraph hg = SmallGraph();
  TreePartition tp(hg, 1);
  for (int i = 0; i < 3; ++i) (void)tp.AddChild(TreePartition::kRoot);
  HierarchySpec spec({{8.0, 2, 1.0}, {8.0, 2, 1.0}});  // K = 2, 3 children
  bool flagged = false;
  for (const std::string& s : ValidatePartition(tp, spec))
    flagged |= s.find("children") != std::string::npos;
  EXPECT_TRUE(flagged);
}

TEST(TreePartition, ToStringShowsTree) {
  Hypergraph hg = Figure2Graph();
  TreePartition tp = Figure2OptimalPartition(hg);
  const std::string s = tp.ToString();
  EXPECT_NE(s.find("L2 block#0"), std::string::npos);
  EXPECT_NE(s.find("nodes=4"), std::string::npos);
}

}  // namespace
}  // namespace htp
