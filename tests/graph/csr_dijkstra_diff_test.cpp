// Differential tests for the CSR Dijkstra engine (graph/csr_view.hpp):
// the CsrView + 4-ary-heap growth must be bit-identical to the legacy
// Hypergraph walk — distances, parents, settling (pop) order, and work
// counts — for every layout, including tie-heavy length functions that
// exercise the (dist, node) heap tie-break.
#include <gtest/gtest.h>

#include "graph/csr_view.hpp"
#include "graph/dijkstra.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

void ExpectSameTree(const ShortestPathTree& a, const ShortestPathTree& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.parent, b.parent);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t v = 0; v < a.dist.size(); ++v)
    EXPECT_EQ(a.dist[v], b.dist[v]) << "node " << v;  // bitwise, incl. inf
}

std::vector<double> RandomLengths(const Hypergraph& hg, std::uint64_t seed,
                                  double scale) {
  Rng rng(seed);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double() * scale;
  return len;
}

TEST(CsrView, ArcsMirrorIncidenceOrder) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(25, 20, 4, 11);
  for (CsrLayout layout : {CsrLayout::kDuplicated, CsrLayout::kShared}) {
    CsrView view(hg, layout);
    ASSERT_EQ(view.num_nodes(), hg.num_nodes());
    ASSERT_EQ(view.num_nets(), hg.num_nets());
    for (NodeId v = 0; v < hg.num_nodes(); ++v) {
      const auto nets = hg.nets(v);
      const auto arcs = view.arcs_of(v);
      ASSERT_EQ(arcs.size(), nets.size()) << "node " << v;
      for (std::size_t i = 0; i < nets.size(); ++i) {
        const CsrArc& arc = arcs[i];
        EXPECT_EQ(arc.net, nets[i]);
        // Pins preserve the net's pin order; the duplicated layout drops
        // the owning node, the shared layout keeps the full block.
        std::vector<NodeId> expect;
        for (NodeId x : hg.pins(nets[i]))
          if (layout == CsrLayout::kShared || x != v) expect.push_back(x);
        std::vector<NodeId> got(view.pins() + arc.pin_begin,
                                view.pins() + arc.pin_end);
        EXPECT_EQ(got, expect) << "node " << v << " net " << nets[i];
      }
    }
  }
}

TEST(CsrView, SharedLayoutStoresEachNetOnce) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 25, 5, 3);
  CsrView view(hg, CsrLayout::kShared);
  EXPECT_FALSE(view.duplicated());
  EXPECT_EQ(view.pin_entries(), hg.num_pins());
}

TEST(CsrView, DuplicatedLayoutMatchesStarExpansionSize) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 25, 5, 3);
  CsrView view(hg, CsrLayout::kDuplicated);
  EXPECT_TRUE(view.duplicated());
  std::size_t expect = 0;
  for (NetId e = 0; e < hg.num_nets(); ++e)
    expect += hg.net_degree(e) * (hg.net_degree(e) - 1);
  EXPECT_EQ(view.pin_entries(), expect);
}

TEST(CsrView, AutoFallsBackToSharedOnHubNets) {
  // One hub net touching all nodes blows the star expansion quadratic:
  // kAuto must refuse to duplicate it.
  HypergraphBuilder builder;
  constexpr NodeId n = 200;
  std::vector<NodeId> all;
  for (NodeId v = 0; v < n; ++v) {
    builder.add_node();
    all.push_back(v);
  }
  builder.add_net(all);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_net({v, v + 1});
  Hypergraph hg = builder.build();
  EXPECT_FALSE(CsrView(hg).duplicated());
  // Short-net graphs stay on the fast duplicated layout.
  EXPECT_TRUE(CsrView(testutil::RandomConnectedHypergraph(30, 10, 3, 1))
                  .duplicated());
}

class CsrDijkstraDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrDijkstraDiffTest, FullGrowthBitIdenticalEverySourceBothLayouts) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 25, 12 + seed % 30, 2 + seed % 5, seed);
  const std::vector<double> len = RandomLengths(hg, seed * 13 + 5, 4.0);
  const CsrView dup(hg, CsrLayout::kDuplicated);
  const CsrView shared(hg, CsrLayout::kShared);
  for (NodeId source = 0; source < hg.num_nodes(); ++source) {
    const ShortestPathTree expect = Dijkstra(hg, source, len);
    ExpectSameTree(expect, Dijkstra(dup, source, len));
    ExpectSameTree(expect, Dijkstra(shared, source, len));
  }
}

TEST_P(CsrDijkstraDiffTest, TieHeavyLengthsPopInSameOrder) {
  // Constant and zero lengths force maximal ties: every settling decision
  // is made by the (dist, node) heap tie-break, which both heaps must
  // resolve identically.
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      25 + seed % 20, 20 + seed % 20, 3 + seed % 3, seed ^ 0xc0ffee);
  const CsrView view(hg);
  for (double c : {0.0, 1.0}) {
    const std::vector<double> len(hg.num_nets(), c);
    for (NodeId source = 0; source < hg.num_nodes(); source += 3)
      ExpectSameTree(Dijkstra(hg, source, len), Dijkstra(view, source, len));
  }
}

TEST_P(CsrDijkstraDiffTest, TruncatedGrowthAndStatsMatch) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      30 + seed % 15, 25 + seed % 15, 4, seed + 17);
  const std::vector<double> len = RandomLengths(hg, seed, 2.0);
  const CsrView view(hg);
  DijkstraWorkspace legacy_ws, csr_ws;
  ShortestPathTree legacy_tree, csr_tree;
  for (std::size_t stop_k : {std::size_t{1}, std::size_t{5},
                             static_cast<std::size_t>(hg.num_nodes())}) {
    auto stop_at = [stop_k](const GrowState& s) {
      return s.tree_nodes >= stop_k ? GrowAction::kStop : GrowAction::kContinue;
    };
    DijkstraStats legacy_stats, csr_stats;
    legacy_ws.Grow(hg, 2, len, stop_at, legacy_tree, &legacy_stats);
    csr_ws.Grow(view, 2, len, stop_at, csr_tree, &csr_stats);
    ExpectSameTree(legacy_tree, csr_tree);
    EXPECT_EQ(legacy_stats.pops, csr_stats.pops);
    EXPECT_EQ(legacy_stats.relaxations, csr_stats.relaxations);
    EXPECT_EQ(legacy_stats.settled, csr_stats.settled);
  }
}

TEST_P(CsrDijkstraDiffTest, VisitorSeesIdenticalGrowStates) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg =
      testutil::RandomConnectedHypergraph(24, 20, 3, seed ^ 0x9e3779b9);
  const std::vector<double> len = RandomLengths(hg, seed * 7, 1.0);
  const CsrView view(hg);
  std::vector<GrowState> legacy_states, csr_states;
  GrowShortestPathTree(hg, 0, len, [&](const GrowState& s) {
    legacy_states.push_back(s);
    return GrowAction::kContinue;
  });
  GrowShortestPathTree(view, 0, len, [&](const GrowState& s) {
    csr_states.push_back(s);
    return GrowAction::kContinue;
  });
  ASSERT_EQ(legacy_states.size(), csr_states.size());
  for (std::size_t i = 0; i < legacy_states.size(); ++i) {
    EXPECT_EQ(legacy_states[i].node, csr_states[i].node);
    EXPECT_EQ(legacy_states[i].distance, csr_states[i].distance);    // bitwise
    EXPECT_EQ(legacy_states[i].tree_size, csr_states[i].tree_size);  // bitwise
    EXPECT_EQ(legacy_states[i].weighted_dist, csr_states[i].weighted_dist);
    EXPECT_EQ(legacy_states[i].tree_nodes, csr_states[i].tree_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrDijkstraDiffTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(CsrDijkstraDiff, WorkspaceSharedAcrossViewAndHypergraphCalls) {
  // One workspace alternating between the two flavors (and across graphs)
  // must stay correct: epoch stamps, not clears, isolate the growths.
  DijkstraWorkspace ws;
  ShortestPathTree tree;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Hypergraph hg =
        testutil::RandomConnectedHypergraph(15 + seed * 9, 10 + seed * 6, 3,
                                            seed);
    const std::vector<double> len = RandomLengths(hg, seed, 3.0);
    const CsrView view(hg);
    for (NodeId source = 0; source < hg.num_nodes(); source += 4) {
      const ShortestPathTree expect = Dijkstra(hg, source, len);
      ws.Grow(view, source, len,
              [](const GrowState&) { return GrowAction::kContinue; }, tree);
      ExpectSameTree(expect, tree);
      ws.Grow(hg, source, len,
              [](const GrowState&) { return GrowAction::kContinue; }, tree);
      ExpectSameTree(expect, tree);
    }
  }
}

}  // namespace
}  // namespace htp
