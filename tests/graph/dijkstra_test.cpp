#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace htp {
namespace {

Hypergraph PathGraph(NodeId n) {
  HypergraphBuilder builder;
  for (NodeId v = 0; v < n; ++v) builder.add_node();
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_net({v, v + 1});
  return builder.build();
}

TEST(Dijkstra, PathGraphDistances) {
  Hypergraph hg = PathGraph(5);
  const std::vector<double> len{1.0, 2.0, 3.0, 4.0};
  const ShortestPathTree tree = Dijkstra(hg, 0, len);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 6.0);
  EXPECT_DOUBLE_EQ(tree.dist[4], 10.0);
  EXPECT_EQ(tree.order.front(), 0u);
  EXPECT_EQ(tree.order.size(), 5u);
}

TEST(Dijkstra, HyperedgeActsAsSwitchbox) {
  // One 4-pin net of length 2: all other pins are at distance 2 from any
  // pin, not 4.
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u}, 1.0);
  Hypergraph hg = builder.build();
  const std::vector<double> len{2.0};
  const ShortestPathTree tree = Dijkstra(hg, 1, len);
  for (NodeId v : {0u, 2u, 3u}) EXPECT_DOUBLE_EQ(tree.dist[v], 2.0);
}

TEST(Dijkstra, UnreachableNodesStayInfinite) {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  Hypergraph hg = builder.build();
  const std::vector<double> len{1.0};
  const ShortestPathTree tree = Dijkstra(hg, 0, len);
  EXPECT_TRUE(tree.settled(1));
  EXPECT_FALSE(tree.settled(2));
  EXPECT_FALSE(tree.settled(3));
  EXPECT_EQ(tree.order.size(), 2u);
}

TEST(Dijkstra, ZeroLengthsAllowed) {
  Hypergraph hg = PathGraph(4);
  const std::vector<double> len{0.0, 0.0, 0.0};
  const ShortestPathTree tree = Dijkstra(hg, 2, len);
  for (NodeId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(tree.dist[v], 0.0);
}

TEST(Dijkstra, EarlyStopTruncatesTree) {
  Hypergraph hg = PathGraph(10);
  const std::vector<double> len(hg.num_nets(), 1.0);
  std::size_t count = 0;
  const ShortestPathTree tree =
      GrowShortestPathTree(hg, 0, len, [&](const GrowState&) {
        return ++count == 4 ? GrowAction::kStop : GrowAction::kContinue;
      });
  EXPECT_EQ(tree.order.size(), 4u);
  EXPECT_FALSE(tree.settled(7));
}

TEST(Dijkstra, GrowStateSumsAreConsistent) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 25, 4, 5);
  std::vector<double> len(hg.num_nets());
  Rng rng(77);
  for (double& d : len) d = rng.next_double() * 3.0;
  double expect_size = 0.0, expect_wd = 0.0;
  GrowShortestPathTree(hg, 3, len, [&](const GrowState& s) {
    expect_size += hg.node_size(s.node);
    expect_wd += hg.node_size(s.node) * s.distance;
    EXPECT_DOUBLE_EQ(s.tree_size, expect_size);
    EXPECT_NEAR(s.weighted_dist, expect_wd, 1e-9);
    return GrowAction::kContinue;
  });
}

// Property sweep: Dijkstra agrees with Bellman-Ford relaxation on random
// hypergraphs with random lengths.
class DijkstraPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(
      20 + seed % 30, 10 + seed % 40, 2 + seed % 4, seed);
  Rng rng(seed * 17 + 1);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double() * 5.0;
  const NodeId source = static_cast<NodeId>(rng.next_below(hg.num_nodes()));
  const ShortestPathTree tree = Dijkstra(hg, source, len);
  const std::vector<double> expect =
      testutil::BruteForceDistances(hg, source, len);
  for (NodeId v = 0; v < hg.num_nodes(); ++v)
    EXPECT_NEAR(tree.dist[v], expect[v], 1e-9) << "node " << v;
}

TEST_P(DijkstraPropertyTest, ParentEdgesFormConsistentTree) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg =
      testutil::RandomConnectedHypergraph(25, 20, 3, seed ^ 0xabcdef);
  Rng rng(seed);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double();
  const ShortestPathTree tree = Dijkstra(hg, 0, len);
  for (NodeId v : tree.order) {
    if (v == 0) continue;
    const NodeId p = tree.parent[v].node;
    const NetId e = tree.parent[v].net;
    ASSERT_NE(p, kInvalidNode);
    ASSERT_NE(e, kInvalidNet);
    EXPECT_TRUE(tree.settled(p));
    EXPECT_LE(tree.dist[p], tree.dist[v] + 1e-12);
    EXPECT_NEAR(tree.dist[v], tree.dist[p] + len[e], 1e-9);
  }
}

TEST_P(DijkstraPropertyTest, SubtreeSizesMatchEquationSix) {
  // Equation (6): sum_u s(u) dist(v,u) == sum_e d(e) delta(S, e).
  const std::uint64_t seed = GetParam();
  Hypergraph hg =
      testutil::RandomConnectedHypergraph(22, 18, 4, seed ^ 0x5555);
  Rng rng(seed + 3);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double() * 2.0;
  const ShortestPathTree tree = Dijkstra(hg, 1, len);
  double lhs = 0.0;
  for (NodeId v : tree.order) lhs += hg.node_size(v) * tree.dist[v];
  double rhs = 0.0;
  for (const auto& [e, delta] : TreeSubtreeSizes(hg, tree))
    rhs += len[e] * delta;
  EXPECT_NEAR(lhs, rhs, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

void ExpectSameTree(const ShortestPathTree& a, const ShortestPathTree& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.parent, b.parent);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t v = 0; v < a.dist.size(); ++v)
    EXPECT_EQ(a.dist[v], b.dist[v]) << "node " << v;  // bitwise, incl. inf
}

TEST(DijkstraWorkspace, GrowMatchesLegacyEntryPoint) {
  // The legacy free function and an explicit workspace share one growth
  // loop; an explicit workspace reused across sources and graphs must
  // reproduce its trees bit-for-bit (same heap tie-breaks, same order).
  DijkstraWorkspace workspace;
  ShortestPathTree reused;
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    Hypergraph hg = testutil::RandomConnectedHypergraph(
        20 + seed * 7, 15 + seed * 5, 3, seed);
    Rng rng(seed * 31);
    std::vector<double> len(hg.num_nets());
    for (double& d : len) d = rng.next_double() * 4.0;
    for (NodeId source = 0; source < hg.num_nodes(); source += 5) {
      const ShortestPathTree expect = Dijkstra(hg, source, len);
      workspace.Grow(hg, source, len,
                     [](const GrowState&) { return GrowAction::kContinue; },
                     reused);
      ExpectSameTree(expect, reused);
    }
  }
}

TEST(DijkstraWorkspace, TruncatedGrowMatchesLegacyAndReturnsStats) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(40, 35, 4, 9);
  Rng rng(100);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double();
  auto stop_at = [](std::size_t k) {
    return [k](const GrowState& s) {
      return s.tree_nodes >= k ? GrowAction::kStop : GrowAction::kContinue;
    };
  };
  const ShortestPathTree expect = GrowShortestPathTree(hg, 2, len, stop_at(7));
  DijkstraWorkspace workspace;
  ShortestPathTree tree;
  DijkstraStats stats;
  workspace.Grow(hg, 2, len, stop_at(7), tree, &stats);
  ExpectSameTree(expect, tree);
  EXPECT_EQ(stats.settled, 7u);
  EXPECT_GE(stats.pops, stats.settled);  // stale entries only add pops
  // Stats accumulate across calls (the scan engine sums per-batch).
  workspace.Grow(hg, 2, len, stop_at(7), tree, &stats);
  EXPECT_EQ(stats.settled, 14u);
}

TEST(DijkstraWorkspace, TreeNetsIntoMatchesTreeNetsAndReusesCapacity) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 28, 3, 21);
  Rng rng(7);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double();
  std::vector<NetId> reused;
  for (NodeId source : {0u, 4u, 9u}) {
    const ShortestPathTree tree = Dijkstra(hg, source, len);
    TreeNetsInto(tree, reused);
    EXPECT_EQ(reused, TreeNets(tree));
    EXPECT_TRUE(std::is_sorted(reused.begin(), reused.end()));
  }
}

}  // namespace
}  // namespace htp
