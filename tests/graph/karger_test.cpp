#include "graph/karger.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace htp {
namespace {

// Exhaustive global min cut over all 2^(n-1) splits (reference oracle).
double BruteForceGlobalCut(const Hypergraph& hg) {
  const NodeId n = hg.num_nodes();
  double best = 1e18;
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    std::vector<char> side(n, 0);
    std::uint32_t bits = mask;
    for (NodeId v = 1; v < n; ++v, bits >>= 1) side[v] = bits & 1;
    double value = 0.0;
    for (NetId e = 0; e < hg.num_nets(); ++e) {
      bool zero = false, one = false;
      for (NodeId v : hg.pins(e)) (side[v] ? one : zero) = true;
      if (zero && one) value += hg.net_capacity(e);
    }
    best = std::min(best, value);
  }
  return best;
}

TEST(Karger, FindsTheBridge) {
  HypergraphBuilder builder;
  for (int i = 0; i < 10; ++i) builder.add_node();
  for (NodeId base : {0u, 5u})
    for (NodeId i = 0; i < 5; ++i)
      for (NodeId j = i + 1; j < 5; ++j) builder.add_net({base + i, base + j});
  builder.add_net({4u, 5u}, 0.5, "bridge");
  Hypergraph hg = builder.build();
  const GlobalCut cut = KargerGlobalMinCut(hg, 64, 7);
  EXPECT_DOUBLE_EQ(cut.value, 0.5);
  ASSERT_EQ(cut.cut_nets.size(), 1u);
  EXPECT_EQ(hg.net_name(cut.cut_nets[0]), "bridge");
}

TEST(Karger, DisconnectedGivesZeroCut) {
  HypergraphBuilder builder;
  for (int i = 0; i < 5; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({2u, 3u, 4u});
  Hypergraph hg = builder.build();
  const GlobalCut cut = KargerGlobalMinCut(hg, 4, 1);
  EXPECT_DOUBLE_EQ(cut.value, 0.0);
  EXPECT_TRUE(cut.cut_nets.empty());
  EXPECT_NE(cut.side[0], cut.side[2]);
}

TEST(Karger, SideIsConsistentWithValue) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(20, 25, 4, 3);
  const GlobalCut cut = KargerGlobalMinCut(hg, 32, 9);
  double recomputed = 0.0;
  for (NetId e = 0; e < hg.num_nets(); ++e) {
    bool zero = false, one = false;
    for (NodeId v : hg.pins(e)) (cut.side[v] ? one : zero) = true;
    if (zero && one) recomputed += hg.net_capacity(e);
  }
  EXPECT_NEAR(cut.value, recomputed, 1e-9);
  // Both sides populated.
  EXPECT_NE(std::count(cut.side.begin(), cut.side.end(), 0), 0);
  EXPECT_NE(std::count(cut.side.begin(), cut.side.end(), 1), 0);
}

class KargerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KargerPropertyTest, MatchesBruteForceOnSmallGraphs) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(11, 9, 3, seed);
  const double oracle = BruteForceGlobalCut(hg);
  // n^2 log n trials gives high success probability at this size.
  const GlobalCut cut = KargerGlobalMinCut(hg, 600, seed * 13 + 1);
  EXPECT_NEAR(cut.value, oracle, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KargerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
