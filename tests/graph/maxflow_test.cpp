#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace htp {
namespace {

TEST(FlowNetwork, ClassicDiamond) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 3.0);
  net.AddEdge(0, 2, 2.0);
  net.AddEdge(1, 2, 1.0);
  net.AddEdge(1, 3, 2.0);
  net.AddEdge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 5.0);
}

TEST(FlowNetwork, DisconnectedIsZero) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 2), 0.0);
}

TEST(FlowNetwork, FlowConservationAndEdgeFlows) {
  FlowNetwork net(5);
  const std::size_t a = net.AddEdge(0, 1, 10.0);
  const std::size_t b = net.AddEdge(1, 2, 4.0);
  const std::size_t c = net.AddEdge(1, 3, 5.0);
  const std::size_t d = net.AddEdge(2, 4, 10.0);
  const std::size_t e = net.AddEdge(3, 4, 10.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 4), 9.0);
  EXPECT_DOUBLE_EQ(net.flow(a), 9.0);
  EXPECT_DOUBLE_EQ(net.flow(b) + net.flow(c), 9.0);
  EXPECT_DOUBLE_EQ(net.flow(d), net.flow(b));
  EXPECT_DOUBLE_EQ(net.flow(e), net.flow(c));
}

TEST(FlowNetwork, SourceSideIsMinCut) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 1.0);
  net.AddEdge(0, 2, 8.0);
  net.AddEdge(1, 3, 8.0);
  net.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(net.MaxFlow(0, 3), 2.0);
  const std::vector<char> side = net.SourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
  // The cut {0,2} | {1,3} has value 1 + 1 = 2.
  EXPECT_FALSE(side[1]);
  EXPECT_TRUE(side[2]);
}

TEST(HypergraphMinCut, SeparatesSingleBridgeNet) {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u});
  builder.add_net({2u, 3u}, 0.5, "bridge");  // strictly cheapest cut
  builder.add_net({3u, 4u, 5u});
  Hypergraph hg = builder.build();
  const std::vector<NodeId> src{0};
  const std::vector<NodeId> snk{5};
  const HyperMinCut cut = HypergraphMinCut(hg, src, snk);
  EXPECT_DOUBLE_EQ(cut.cut_value, 0.5);
  ASSERT_EQ(cut.cut_nets.size(), 1u);
  EXPECT_EQ(hg.net_name(cut.cut_nets[0]), "bridge");
}

TEST(HypergraphMinCut, HyperedgeCountedOnce) {
  // A 4-pin net separating s from t costs c(e) once, not per crossing pair.
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node();
  builder.add_net({0u, 1u, 2u, 3u}, 2.5);
  Hypergraph hg = builder.build();
  const std::vector<NodeId> src{0};
  const std::vector<NodeId> snk{3};
  const HyperMinCut cut = HypergraphMinCut(hg, src, snk);
  EXPECT_DOUBLE_EQ(cut.cut_value, 2.5);
}

TEST(HypergraphMinCut, RejectsOverlappingTerminals) {
  Hypergraph hg = testutil::RandomConnectedHypergraph(6, 3, 3, 1);
  const std::vector<NodeId> src{0, 1};
  const std::vector<NodeId> snk{1, 2};
  EXPECT_THROW(HypergraphMinCut(hg, src, snk), Error);
}

class MinCutPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCutPropertyTest, CutValueMatchesCutNets) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(16, 18, 4, seed);
  const std::vector<NodeId> src{0};
  const std::vector<NodeId> snk{static_cast<NodeId>(hg.num_nodes() - 1)};
  const HyperMinCut cut = HypergraphMinCut(hg, src, snk);
  double value = 0.0;
  for (NetId e : cut.cut_nets) value += hg.net_capacity(e);
  EXPECT_NEAR(cut.cut_value, value, 1e-6);
  EXPECT_TRUE(cut.source_side[0]);
  EXPECT_FALSE(cut.source_side[hg.num_nodes() - 1]);
}

TEST_P(MinCutPropertyTest, NoCheaperCutByExhaustion) {
  // Exhaustively check all 2^(n-2) s-t splits on tiny instances.
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(10, 10, 3, seed ^ 0x99);
  const NodeId s = 0, t = hg.num_nodes() - 1;
  const std::vector<NodeId> src{s};
  const std::vector<NodeId> snk{t};
  const HyperMinCut cut = HypergraphMinCut(hg, src, snk);
  double best = 1e18;
  const NodeId n = hg.num_nodes();
  for (std::uint32_t mask = 0; mask < (1u << (n - 2)); ++mask) {
    std::vector<char> side(n, 0);
    side[s] = 1;
    std::uint32_t bits = mask;
    for (NodeId v = 1; v < n - 1; ++v, bits >>= 1) side[v] = bits & 1;
    double value = 0.0;
    for (NetId e = 0; e < hg.num_nets(); ++e) {
      bool in = false, out = false;
      for (NodeId v : hg.pins(e)) (side[v] ? in : out) = true;
      if (in && out) value += hg.net_capacity(e);
    }
    best = std::min(best, value);
  }
  EXPECT_NEAR(cut.cut_value, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace htp
