#include "graph/prim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// Kruskal over the clique expansion (each net offers weight d(e) between any
// pins) — reference MST weight for 2-pin graphs and hypergraphs alike.
double KruskalWeight(const Hypergraph& hg, std::span<const double> len) {
  std::vector<NetId> order(hg.num_nets());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](NetId a, NetId b) { return len[a] < len[b]; });
  UnionFind uf(hg.num_nodes());
  double weight = 0.0;
  for (NetId e : order) {
    const auto pins = hg.pins(e);
    for (std::size_t i = 1; i < pins.size(); ++i)
      if (uf.Union(pins[0], pins[i])) weight += len[e];
  }
  return weight;
}

TEST(Prim, SimpleTriangle) {
  HypergraphBuilder builder;
  for (int i = 0; i < 3; ++i) builder.add_node();
  builder.add_net({0u, 1u});  // len 1
  builder.add_net({1u, 2u});  // len 2
  builder.add_net({0u, 2u});  // len 5
  Hypergraph hg = builder.build();
  const std::vector<double> len{1.0, 2.0, 5.0};
  const PrimTree tree = GrowPrimTree(hg, 0, len);
  EXPECT_EQ(tree.order.size(), 3u);
  EXPECT_DOUBLE_EQ(tree.total_weight, 3.0);
}

TEST(Prim, CoversOnlyStartComponent) {
  HypergraphBuilder builder;
  for (int i = 0; i < 5; ++i) builder.add_node();
  builder.add_net({0u, 1u});
  builder.add_net({2u, 3u, 4u});
  Hypergraph hg = builder.build();
  const std::vector<double> len{1.0, 1.0};
  const PrimTree tree = GrowPrimTree(hg, 2, len);
  EXPECT_EQ(tree.order.size(), 3u);
  EXPECT_EQ(tree.attach_net[0], kInvalidNet);
  EXPECT_EQ(tree.attach_net[1], kInvalidNet);
}

class PrimPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimPropertyTest, MatchesKruskalOnGraphs) {
  const std::uint64_t seed = GetParam();
  // 2-pin nets only (max_degree = 2) so MST weight is classical.
  Hypergraph hg = testutil::RandomConnectedHypergraph(30, 40, 2, seed);
  Rng rng(seed * 31);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double() * 9.0 + 0.1;
  const PrimTree tree = GrowPrimTree(hg, 0, len);
  EXPECT_EQ(tree.order.size(), hg.num_nodes());
  EXPECT_NEAR(tree.total_weight, KruskalWeight(hg, len), 1e-9);
}

TEST_P(PrimPropertyTest, MatchesKruskalOnHypergraphs) {
  const std::uint64_t seed = GetParam();
  Hypergraph hg = testutil::RandomConnectedHypergraph(25, 25, 5, seed ^ 0xf0);
  Rng rng(seed * 13 + 7);
  std::vector<double> len(hg.num_nets());
  for (double& d : len) d = rng.next_double() * 4.0 + 0.05;
  const PrimTree tree = GrowPrimTree(hg, 3, len);
  EXPECT_EQ(tree.order.size(), hg.num_nodes());
  EXPECT_NEAR(tree.total_weight, KruskalWeight(hg, len), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace htp
