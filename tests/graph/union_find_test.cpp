#include "graph/union_find.hpp"

#include <gtest/gtest.h>

namespace htp {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind uf(6);
  EXPECT_EQ(uf.NumSets(), 6u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already joined
  EXPECT_TRUE(uf.Union(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Connected(1, 3));
  EXPECT_FALSE(uf.Connected(1, 4));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_EQ(uf.SetSize(5), 1u);
}

TEST(UnionFind, FindIsIdempotentAndCanonical) {
  UnionFind uf(8);
  uf.Union(0, 7);
  uf.Union(7, 3);
  const std::size_t rep = uf.Find(3);
  EXPECT_EQ(uf.Find(0), rep);
  EXPECT_EQ(uf.Find(7), rep);
  EXPECT_EQ(uf.Find(rep), rep);
}

TEST(UnionFind, BoundsChecked) {
  UnionFind uf(3);
  EXPECT_THROW(uf.Find(3), Error);
}

TEST(UnionFind, ChainMergeKeepsCounts) {
  constexpr std::size_t kN = 1000;
  UnionFind uf(kN);
  for (std::size_t i = 1; i < kN; ++i) EXPECT_TRUE(uf.Union(i - 1, i));
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SetSize(0), kN);
}

}  // namespace
}  // namespace htp
