// Malformed-input hardening for the ECO text front-ends (netlist_delta,
// warm_start), mirroring tests/netlist/malformed_input_test.cpp: hostile or
// truncated input must raise DeltaError/WarmStartError — never crash, never
// invoke UB (the suite also runs under the asan-ubsan preset).
#include <gtest/gtest.h>

#include <string>

#include "incremental/netlist_delta.hpp"
#include "incremental/warm_start.hpp"
#include "netlist/rng.hpp"

namespace htp {
namespace {

Hypergraph SmallBase() {
  HypergraphBuilder builder;
  for (int i = 0; i < 4; ++i) builder.add_node(1.0);
  builder.add_net({0u, 1u});
  builder.add_net({1u, 2u, 3u});
  return builder.build();
}

// ---- delta text -----------------------------------------------------------

TEST(MalformedDelta, HeaderRequired) {
  EXPECT_THROW(ParseDeltaText(""), DeltaError);
  EXPECT_THROW(ParseDeltaText("remove-net 0\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v2\n"), DeltaError);
  // Comments and blank lines before the header are fine; a directive is not.
  EXPECT_NO_THROW(ParseDeltaText("# comment first\nhtp-delta v1\n"));
}

TEST(MalformedDelta, TruncatedLines) {
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nremove-node\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nset-node-size 1\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-net 1.0\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-net 1.0 3\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nset-net-capacity 0\n"),
               DeltaError);
}

TEST(MalformedDelta, UnknownDirectivesAndExtraTokens) {
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nfrobnicate 3\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nremove-net 0 0\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node 1.0 2.0\n"),
               DeltaError);
}

TEST(MalformedDelta, UnparsableAndNonPositiveNumbers) {
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node zero\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node 0\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node -1\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node inf\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nadd-node nan\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nremove-net -1\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nremove-net 1x\n"), DeltaError);
  EXPECT_THROW(ParseDeltaText("htp-delta v1\nset-net-capacity 0 0\n"),
               DeltaError);
}

TEST(MalformedDelta, AddedNetNeedsTwoDistinctPins) {
  // The parser keeps the pin list verbatim; distinctness is an application
  // property (duplicate pins may still merge through resolve()).
  const Hypergraph base = SmallBase();
  EXPECT_THROW(
      ApplyDelta(base, ParseDeltaText("htp-delta v1\nadd-net 1.0 2 2\n")),
      DeltaError);
}

TEST(MalformedDelta, ApplicationRejectsUnknownIds) {
  const Hypergraph base = SmallBase();
  const auto apply = [&](const std::string& text) {
    return ApplyDelta(base, ParseDeltaText(text));
  };
  EXPECT_THROW(apply("htp-delta v1\nremove-node 4\n"), DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nremove-net 2\n"), DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nset-node-size 9 1.0\n"), DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nset-net-capacity 5 1.0\n"), DeltaError);
  // Pin references a node id beyond base + added.
  EXPECT_THROW(apply("htp-delta v1\nadd-net 1.0 0 9\n"), DeltaError);
}

TEST(MalformedDelta, ApplicationRejectsDuplicateRemoves) {
  const Hypergraph base = SmallBase();
  const auto apply = [&](const std::string& text) {
    return ApplyDelta(base, ParseDeltaText(text));
  };
  EXPECT_THROW(apply("htp-delta v1\nremove-node 1\nremove-node 1\n"),
               DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nremove-net 0\nremove-net 0\n"),
               DeltaError);
}

TEST(MalformedDelta, ApplicationRejectsDeleteThenReference) {
  const Hypergraph base = SmallBase();
  const auto apply = [&](const std::string& text) {
    return ApplyDelta(base, ParseDeltaText(text));
  };
  // Resize/recap/connect something this same delta deletes.
  EXPECT_THROW(apply("htp-delta v1\nremove-node 1\nset-node-size 1 2.0\n"),
               DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nremove-net 0\nset-net-capacity 0 2.0\n"),
               DeltaError);
  EXPECT_THROW(apply("htp-delta v1\nremove-node 0\nadd-net 1.0 0 2\n"),
               DeltaError);
}

TEST(MalformedDelta, ApplicationRejectsRemovingEveryNode) {
  const Hypergraph base = SmallBase();
  EXPECT_THROW(
      ApplyDelta(base, ParseDeltaText("htp-delta v1\nremove-node 0\n"
                                      "remove-node 1\nremove-node 2\n"
                                      "remove-node 3\n")),
      DeltaError);
}

TEST(MalformedDelta, EveryTruncationThrowsOrParses) {
  const std::string text =
      "htp-delta v1\n"
      "add-node 2.0\n"
      "remove-node 3\n"
      "set-node-size 1 0.5\n"
      "add-net 1.5 0 4\n"
      "remove-net 1\n"
      "set-net-capacity 0 2.0\n";
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    try {
      ParseDeltaText(text.substr(0, cut));
    } catch (const DeltaError&) {
      // expected for most cuts
    }
  }
}

TEST(MalformedDelta, RandomByteMutationsNeverCrash) {
  const std::string original =
      "htp-delta v1\n"
      "add-node 2.0\n"
      "add-net 1.5 0 4\n"
      "remove-net 1\n";
  const Hypergraph base = SmallBase();
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = original;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i)
      text[rng.next_below(text.size())] =
          static_cast<char>(rng.next_below(256));
    try {
      ApplyDelta(base, ParseDeltaText(text));
    } catch (const DeltaError&) {
    }
  }
}

TEST(MalformedDelta, MissingFileThrows) {
  EXPECT_THROW(ReadDeltaFile("/nonexistent/path/x.delta"), DeltaError);
}

// ---- warm-start text ------------------------------------------------------

TEST(MalformedWarmStart, HeaderAndStructure) {
  EXPECT_THROW(ParseWarmStartText(""), WarmStartError);
  EXPECT_THROW(ParseWarmStartText("htp-warm-start v2\n"), WarmStartError);
  EXPECT_THROW(ParseWarmStartText("htp-warm-start v1\n"), WarmStartError);
  EXPECT_THROW(ParseWarmStartText("htp-warm-start v1\nnetlist 2 1\n"),
               WarmStartError);
  EXPECT_THROW(
      ParseWarmStartText("htp-warm-start v1\nnetlist 2 1 2\nseed 1\n"
                         "metric 2\n0.5\n"),  // count != nets
      WarmStartError);
}

TEST(MalformedWarmStart, TruncationSweepNeverCrashes) {
  const std::string text =
      "htp-warm-start v1\n"
      "netlist 2 1 2\n"
      "seed 7\n"
      "metric 1\n"
      "0x1.8p+1\n"
      "partition 2\n"
      "htp-partition v1\n"
      "netlist 2 1 2\n";
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    try {
      ParseWarmStartText(text.substr(0, cut));
    } catch (const WarmStartError&) {
    }
  }
}

TEST(MalformedWarmStart, BadMetricValuesAndTrailingContent) {
  const auto doc = [](const std::string& value) {
    return "htp-warm-start v1\nnetlist 2 1 2\nseed 1\nmetric 1\n" + value +
           "\npartition 1\nhtp-partition v1\n";
  };
  EXPECT_THROW(ParseWarmStartText(doc("wat")), WarmStartError);
  EXPECT_THROW(ParseWarmStartText(doc("-0.5")), WarmStartError);
  EXPECT_THROW(ParseWarmStartText(doc("inf")), WarmStartError);
  EXPECT_THROW(ParseWarmStartText(doc("0.5 0.5")), WarmStartError);
  EXPECT_NO_THROW(ParseWarmStartText(doc("0.5")));
  EXPECT_THROW(ParseWarmStartText(doc("0.5") + "trailing\n"), WarmStartError);
}

TEST(MalformedWarmStart, FingerprintMismatchRejected) {
  const Hypergraph base = SmallBase();
  const WarmStartState state = ParseWarmStartText(
      "htp-warm-start v1\nnetlist 2 1 2\nseed 1\nmetric 1\n0.5\n"
      "partition 1\nhtp-partition v1\n");
  EXPECT_THROW(CheckWarmStartMatches(state, base), WarmStartError);
}

TEST(MalformedWarmStart, MissingFileThrows) {
  EXPECT_THROW(ReadWarmStartFile("/nonexistent/path/x.warm"), WarmStartError);
}

}  // namespace
}  // namespace htp
