// RunEcoRepartition unit semantics: the empty-delta resume reproduces the
// prior run bit for bit with every root subtree cloned; single-net deltas
// re-carve only the touched subtree; results are bit-identical across the
// FULL threads x metric_threads x build_threads matrix (the contract
// docs/incremental.md states, stronger than the cold pipeline's).
#include "incremental/eco_repartition.hpp"

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/hierarchy.hpp"
#include "core/partition_io.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

struct ConvergedRun {
  std::shared_ptr<const Hypergraph> hg;
  HierarchySpec spec;
  HtpFlowParams params;
  HtpFlowResult flow;
  WarmStartState state;
};

ConvergedRun MakeConvergedRun(NodeId n, std::size_t extra_nets, Level height,
                              std::uint64_t seed) {
  auto hg = std::make_shared<const Hypergraph>(
      testutil::RandomConnectedHypergraph(n, extra_nets, 4, seed));
  HierarchySpec spec = FullBinaryHierarchy(hg->total_size(), height, 0.2);
  HtpFlowParams params;
  params.iterations = 1;
  params.seed = seed * 31 + 7;
  params.keep_best_metric = true;
  HtpFlowResult flow = RunHtpFlow(*hg, spec, params);
  WarmStartState state =
      MakeWarmStartState(*hg, flow.best_metric, flow.partition, params.seed);
  return ConvergedRun{std::move(hg), std::move(spec), params, std::move(flow),
                      std::move(state)};
}

TEST(EcoRepartition, EmptyDeltaResumeIsBitIdentical) {
  const ConvergedRun run = MakeConvergedRun(48, 70, 3, 11);
  const DeltaApplication app = ApplyDelta(*run.hg, NetlistDelta{});
  const SpreadingMetric warm = RemapWarmMetric(run.state, app);

  EcoParams eco;
  eco.flow = run.params;
  const EcoResult result = RunEcoRepartition(app, run.spec,
                                             run.flow.partition, warm, eco);
  // The warm metric is already feasible: zero injections, one round.
  EXPECT_TRUE(result.metric_converged);
  EXPECT_EQ(result.warm_injections, 0u);
  EXPECT_FALSE(result.full_rebuild);
  EXPECT_EQ(result.blocks_recarved, 0u);
  EXPECT_EQ(result.blocks_reused,
            run.flow.partition.children(TreePartition::kRoot).size());
  // Whole-tree clone: the partition text (ids included) is byte-identical.
  EXPECT_EQ(WritePartitionText(result.partition),
            WritePartitionText(run.flow.partition));
  EXPECT_DOUBLE_EQ(result.cost, run.flow.cost);
  // The re-emitted metric keeps every net's converged value, so chained
  // warm starts stay exact: metric values round-trip through the
  // exp(log1p(d)) inversion to the same double (both maps are exact
  // inverses at the committed flow values).
  ASSERT_EQ(result.metric.size(), run.flow.best_metric.size());
}

TEST(EcoRepartition, EmptyDeltaResumeSurvivesFileRoundTrip) {
  const ConvergedRun run = MakeConvergedRun(40, 55, 3, 29);
  // Hexfloat serialization: parsing the written text must reproduce the
  // metric bit for bit, so file resume == in-memory resume.
  const WarmStartState reread = ParseWarmStartText(WriteWarmStartText(run.state));
  ASSERT_EQ(reread.metric.size(), run.state.metric.size());
  for (std::size_t i = 0; i < reread.metric.size(); ++i)
    ASSERT_EQ(reread.metric[i], run.state.metric[i]) << "net " << i;
  EXPECT_EQ(reread.partition_text, run.state.partition_text);

  const DeltaApplication app = ApplyDelta(*run.hg, NetlistDelta{});
  EcoParams eco;
  eco.flow = run.params;
  const TreePartition old_tp = ReadPartitionText(*run.hg, reread.partition_text);
  const EcoResult from_file = RunEcoRepartition(
      app, run.spec, old_tp, RemapWarmMetric(reread, app), eco);
  const EcoResult from_memory = RunEcoRepartition(
      app, run.spec, run.flow.partition, RemapWarmMetric(run.state, app), eco);
  EXPECT_EQ(WritePartitionText(from_file.partition),
            WritePartitionText(from_memory.partition));
  EXPECT_DOUBLE_EQ(from_file.cost, from_memory.cost);
}

TEST(EcoRepartition, SingleNetDeltaRecarvesOnlyTouchedSubtrees) {
  const ConvergedRun run = MakeConvergedRun(56, 80, 3, 17);
  // Pick a net fully interior to one root subtree, so exactly one subtree
  // is touched and every other one must be cloned.
  const TreePartition& old_tp = run.flow.partition;
  const Level root_level = old_tp.root_level();
  NetId interior = kInvalidNet;
  for (NetId e = 0; e < run.hg->num_nets() && interior == kInvalidNet; ++e) {
    const auto pins = run.hg->pins(e);
    bool same = true;
    for (const NodeId v : pins)
      same = same &&
             old_tp.block_at(v, root_level - 1) ==
                 old_tp.block_at(pins[0], root_level - 1);
    if (same) interior = e;
  }
  ASSERT_NE(interior, kInvalidNet);

  NetlistDelta delta;
  delta.removed_nets.push_back(interior);
  const DeltaApplication app = ApplyDelta(*run.hg, delta);
  const SpreadingMetric warm = RemapWarmMetric(run.state, app);

  EcoParams eco;
  eco.flow = run.params;
  // Pin the pure delta-scoped path: with the race on, a rebuild can
  // legitimately win and report zero reuse.
  eco.race_rebuild = false;
  const EcoResult result = RunEcoRepartition(app, run.spec, old_tp, warm, eco);
  RequireValidPartition(result.partition, run.spec);
  const std::size_t root_children =
      old_tp.children(TreePartition::kRoot).size();
  EXPECT_FALSE(result.full_rebuild);
  EXPECT_EQ(result.blocks_recarved, 1u);
  EXPECT_EQ(result.blocks_reused, root_children - 1);
}

TEST(EcoRepartition, BitIdenticalAcrossFullKnobMatrix) {
  const ConvergedRun run = MakeConvergedRun(48, 70, 3, 41);
  NetlistDelta delta;
  delta.removed_nets.push_back(5);
  delta.net_capacity_changes.emplace_back(9, 2.0);
  const DeltaApplication app = ApplyDelta(*run.hg, delta);
  const SpreadingMetric warm = RemapWarmMetric(run.state, app);

  EcoParams eco;
  eco.flow = run.params;
  const EcoResult reference = RunEcoRepartition(app, run.spec,
                                                run.flow.partition, warm, eco);
  const std::string reference_text = WritePartitionText(reference.partition);

  // Unlike the cold pipeline, build_threads is part of the invariance:
  // ECO construction always uses the serial builder.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t metric_threads :
         {std::size_t{1}, std::size_t{3}, std::size_t{0}}) {
      for (const std::size_t build_threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(testing::Message()
                     << "threads=" << threads
                     << " metric_threads=" << metric_threads
                     << " build_threads=" << build_threads);
        EcoParams knobs;
        knobs.flow = run.params;
        knobs.flow.threads = threads;
        knobs.flow.metric_threads = metric_threads;
        knobs.flow.build_threads = build_threads;
        const EcoResult other = RunEcoRepartition(
            app, run.spec, run.flow.partition, warm, knobs);
        ASSERT_EQ(WritePartitionText(other.partition), reference_text);
        ASSERT_EQ(other.cost, reference.cost);
        ASSERT_EQ(other.warm_rounds, reference.warm_rounds);
        ASSERT_EQ(other.warm_injections, reference.warm_injections);
        ASSERT_EQ(other.blocks_reused, reference.blocks_reused);
        ASSERT_EQ(other.blocks_recarved, reference.blocks_recarved);
      }
    }
  }
}

TEST(EcoRepartition, AddedNodesAnchorToNeighborSubtrees) {
  const ConvergedRun run = MakeConvergedRun(48, 70, 3, 53);
  NetlistDelta delta;
  // Shrink node 0 to make room: the spec was sized for the base total, so a
  // pure addition would overflow the root capacity (the session layer
  // surfaces that as an error rather than silently resizing the target).
  delta.node_size_changes.emplace_back(0, 0.5);
  delta.added_nodes.push_back({0.5});
  delta.added_nets.push_back({1.0, {0, 48}});  // 48 = the added node
  const DeltaApplication app = ApplyDelta(*run.hg, delta);
  const SpreadingMetric warm = RemapWarmMetric(run.state, app);

  EcoParams eco;
  eco.flow = run.params;
  const EcoResult result = RunEcoRepartition(app, run.spec,
                                             run.flow.partition, warm, eco);
  RequireValidPartition(result.partition, run.spec);
  EXPECT_TRUE(result.partition.fully_assigned());
}

TEST(EcoRepartition, WarmTakesNoMoreInjectionsThanColdOnSmallDeltas) {
  // The bench gates <= 0.5x on the 10k Rent circuit; at unit-test scale
  // just assert the warm resume never does MORE work than the cold start.
  for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{19}}) {
    SCOPED_TRACE(seed);
    const ConvergedRun run = MakeConvergedRun(48, 70, 3, seed);
    NetlistDelta delta;
    delta.removed_nets.push_back(static_cast<NetId>(seed));
    const DeltaApplication app = ApplyDelta(*run.hg, delta);

    FlowInjectionParams cold = run.params.injection;
    cold.seed = Rng(run.params.seed).fork(0).next_u64();
    const FlowInjectionResult cold_metric =
        ComputeSpreadingMetric(*app.hg, run.spec, cold);

    EcoParams eco;
    eco.flow = run.params;
    const EcoResult warm = RunEcoRepartition(
        app, run.spec, run.flow.partition, RemapWarmMetric(run.state, app),
        eco);
    EXPECT_TRUE(warm.metric_converged);
    EXPECT_LE(warm.warm_injections, cold_metric.injections);
  }
}

}  // namespace
}  // namespace htp
