// NetlistDelta: text round-trip, application semantics (mappings, touched
// marks, net dropping, degree-0 keep), and the empty-delta identity the
// warm-start machinery builds on (docs/incremental.md).
#include "incremental/netlist_delta.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace htp {
namespace {

// 6 nodes, 4 nets — the subhypergraph_test sample, so the two files probe
// the same degree-0 contract from both sides.
Hypergraph Sample() {
  HypergraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.add_node(1.0 + i);
  builder.add_net({0u, 1u, 2u}, 2.0, "abc");
  builder.add_net({2u, 3u}, 1.0, "cd");
  builder.add_net({3u, 4u, 5u}, 3.0, "def");
  builder.add_net({0u, 5u}, 1.5, "af");
  return builder.build();
}

TEST(DeltaText, RoundTripsThroughWrite) {
  NetlistDelta delta;
  delta.added_nodes.push_back({2.5});
  delta.added_nodes.push_back({1.0});
  delta.removed_nodes.push_back(4);
  delta.node_size_changes.emplace_back(1, 3.25);
  delta.added_nets.push_back({0.75, {0, 6, 7}});
  delta.removed_nets.push_back(2);
  delta.net_capacity_changes.emplace_back(0, 4.0);

  const NetlistDelta reparsed = ParseDeltaText(WriteDeltaText(delta));
  EXPECT_EQ(WriteDeltaText(reparsed), WriteDeltaText(delta));
  EXPECT_EQ(reparsed.added_nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(reparsed.added_nodes[0].size, 2.5);
  ASSERT_EQ(reparsed.added_nets.size(), 1u);
  EXPECT_EQ(reparsed.added_nets[0].pins, (std::vector<NodeId>{0, 6, 7}));
}

TEST(DeltaText, CommentsAndBlankLinesIgnored) {
  const NetlistDelta delta = ParseDeltaText(
      "htp-delta v1\n"
      "# a comment\n"
      "\n"
      "remove-net 1   # trailing comment\n");
  EXPECT_EQ(delta.removed_nets, (std::vector<NetId>{1}));
  EXPECT_TRUE(ParseDeltaText("htp-delta v1\n").empty());
}

TEST(ApplyDelta, EmptyDeltaReproducesBaseBitForBit) {
  const Hypergraph base = Sample();
  const DeltaApplication app = ApplyDelta(base, NetlistDelta{});
  const Hypergraph& hg = *app.hg;
  ASSERT_EQ(hg.num_nodes(), base.num_nodes());
  ASSERT_EQ(hg.num_nets(), base.num_nets());
  ASSERT_EQ(hg.num_pins(), base.num_pins());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    EXPECT_EQ(app.node_to_new[v], v);
    EXPECT_EQ(hg.node_size(v), base.node_size(v));
    EXPECT_FALSE(app.node_touched[v]);
  }
  for (NetId e = 0; e < base.num_nets(); ++e) {
    EXPECT_EQ(app.net_to_new[e], e);
    EXPECT_EQ(hg.net_capacity(e), base.net_capacity(e));
    EXPECT_FALSE(app.net_touched[e]);
    const auto base_pins = base.pins(e);
    const auto pins = hg.pins(e);
    ASSERT_EQ(pins.size(), base_pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i)
      EXPECT_EQ(pins[i], base_pins[i]);
  }
  EXPECT_EQ(app.dropped_nets, 0u);
}

TEST(ApplyDelta, RemoveNodeCompactsAndMarksTouched) {
  const Hypergraph base = Sample();
  NetlistDelta delta;
  delta.removed_nodes.push_back(2);  // pins of nets "abc" and "cd"
  const DeltaApplication app = ApplyDelta(base, delta);
  const Hypergraph& hg = *app.hg;

  ASSERT_EQ(hg.num_nodes(), 5u);
  EXPECT_EQ(app.node_to_new[2], kInvalidNode);
  EXPECT_EQ(app.node_to_new[3], 2u);  // survivors keep base order
  // Net "abc" survives as {0,1}; net "cd" drops to one pin.
  EXPECT_NE(app.net_to_new[0], kInvalidNet);
  EXPECT_EQ(app.net_to_new[1], kInvalidNet);
  EXPECT_EQ(app.dropped_nets, 1u);
  EXPECT_TRUE(app.net_touched[app.net_to_new[0]]);
  // Node 3 lost its "cd" net: touched. Node 4 only pins "def": untouched.
  EXPECT_TRUE(app.node_touched[app.node_to_new[3]]);
  EXPECT_FALSE(app.node_touched[app.node_to_new[4]]);
  // Node 3 is KEPT even though "cd" was its... (it still pins "def"); the
  // degree-0 variant is its own test below.
}

TEST(ApplyDelta, DegreeZeroNodesAreKept) {
  // Removing a node's last net must keep the node (size still consumes
  // capacity) — the same KEEP contract InducedSubHypergraph documents.
  HypergraphBuilder builder;
  builder.add_node(1.0);
  builder.add_node(2.0);
  builder.add_node(4.0);
  builder.add_net({0u, 1u}, 1.0);
  builder.add_net({1u, 2u}, 1.0);
  const Hypergraph base = builder.build();

  NetlistDelta delta;
  delta.removed_nets.push_back(1);  // node 2's only net
  const DeltaApplication app = ApplyDelta(base, delta);
  ASSERT_EQ(app.hg->num_nodes(), 3u);
  EXPECT_EQ(app.node_to_new[2], 2u);
  EXPECT_DOUBLE_EQ(app.hg->node_size(2), 4.0);
  EXPECT_EQ(app.hg->nets(2).size(), 0u);
  EXPECT_TRUE(app.node_touched[2]);  // it lost a pin
  EXPECT_DOUBLE_EQ(app.hg->total_size(), base.total_size());
}

TEST(ApplyDelta, AddNodeAndNetNumbering) {
  const Hypergraph base = Sample();
  NetlistDelta delta;
  delta.added_nodes.push_back({2.0});
  delta.added_nodes.push_back({3.0});
  // Pins mix base ids and added ids (6 = first added, 7 = second).
  delta.added_nets.push_back({1.25, {1, 6, 7}});
  const DeltaApplication app = ApplyDelta(base, delta);
  const Hypergraph& hg = *app.hg;

  ASSERT_EQ(hg.num_nodes(), 8u);
  EXPECT_EQ(app.added_node_ids, (std::vector<NodeId>{6, 7}));
  EXPECT_DOUBLE_EQ(hg.node_size(6), 2.0);
  EXPECT_DOUBLE_EQ(hg.node_size(7), 3.0);
  ASSERT_EQ(hg.num_nets(), 5u);
  EXPECT_DOUBLE_EQ(hg.net_capacity(4), 1.25);
  EXPECT_TRUE(app.net_touched[4]);
  EXPECT_TRUE(app.node_touched[6]);
  EXPECT_TRUE(app.node_touched[7]);
  EXPECT_TRUE(app.node_touched[1]);  // pins an added net
  EXPECT_FALSE(app.node_touched[4]);
}

TEST(ApplyDelta, CapacityAndSizeChangesMarkTouched) {
  const Hypergraph base = Sample();
  NetlistDelta delta;
  delta.net_capacity_changes.emplace_back(2, 9.0);
  delta.node_size_changes.emplace_back(1, 0.5);
  const DeltaApplication app = ApplyDelta(base, delta);
  EXPECT_DOUBLE_EQ(app.hg->net_capacity(2), 9.0);
  EXPECT_DOUBLE_EQ(app.hg->node_size(1), 0.5);
  EXPECT_TRUE(app.net_touched[2]);
  EXPECT_TRUE(app.node_touched[1]);
  EXPECT_FALSE(app.net_touched[0]);
  // Pins of the recapped net are touched (their metric environment moved).
  EXPECT_TRUE(app.node_touched[3]);
  EXPECT_TRUE(app.node_touched[4]);
  EXPECT_TRUE(app.node_touched[5]);
  EXPECT_FALSE(app.node_touched[0]);
}

TEST(ApplyDelta, RandomizedEmptyDeltaIdentity) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Hypergraph base =
        testutil::RandomConnectedHypergraph(40, 50, 5, seed);
    const DeltaApplication app = ApplyDelta(base, NetlistDelta{});
    ASSERT_EQ(app.hg->num_nodes(), base.num_nodes());
    ASSERT_EQ(app.hg->num_nets(), base.num_nets());
    ASSERT_EQ(app.hg->num_pins(), base.num_pins());
    for (NetId e = 0; e < base.num_nets(); ++e) {
      const auto a = app.hg->pins(e);
      const auto b = base.pins(e);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
    }
  }
}

}  // namespace
}  // namespace htp
