// The warm-vs-cold equivalence battery (docs/incremental.md):
//
//   1. 200+ seeded (netlist, delta) pairs: the warm-started ECO run always
//      returns a valid partition whose cost is within 5% of the cold run
//      on the same edited netlist (cost <= cold x 1.05).
//   2. Empty-delta warm starts are bit-identical — partition bytes, cost,
//      and the deterministic report section — to the converged run that
//      produced the state, across the full threads x metric_threads x
//      build_threads matrix (driven through serve::RunSession, the same
//      pipeline htp_cli and htp_serve share).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/cost.hpp"
#include "core/hierarchy.hpp"
#include "core/partition_io.hpp"
#include "incremental/eco_repartition.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "server/session.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// A small random edit: one directive per pair, cycling through every delta
// kind so the battery covers removals, recaps, resizes, and additions.
NetlistDelta RandomDelta(const Hypergraph& base, std::uint64_t seed) {
  Rng rng(seed);
  NetlistDelta delta;
  switch (rng.next_below(5)) {
    case 0:
      delta.removed_nets.push_back(
          static_cast<NetId>(rng.next_below(base.num_nets())));
      break;
    case 1:
      delta.net_capacity_changes.emplace_back(
          static_cast<NetId>(rng.next_below(base.num_nets())),
          0.5 + static_cast<double>(rng.next_below(3)));
      break;
    case 2:
      delta.removed_nodes.push_back(
          static_cast<NodeId>(rng.next_below(base.num_nodes())));
      break;
    case 3:
      delta.node_size_changes.emplace_back(
          static_cast<NodeId>(rng.next_below(base.num_nodes())),
          0.5 + static_cast<double>(rng.next_below(3)));
      break;
    default: {
      delta.added_nodes.push_back({1.0});
      const NodeId added = base.num_nodes();
      const NodeId anchor =
          static_cast<NodeId>(rng.next_below(base.num_nodes()));
      delta.added_nets.push_back({1.0, {anchor, added}});
      break;
    }
  }
  return delta;
}

TEST(WarmStartProperty, WarmCostWithinFivePercentOfCold) {
  constexpr int kPairs = 200;
  int reused_any = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(pair);
    SCOPED_TRACE(testing::Message() << "pair seed " << seed);
    const NodeId n = static_cast<NodeId>(32 + (pair % 5) * 8);
    const Hypergraph base_hg =
        testutil::RandomConnectedHypergraph(n, n + n / 2, 4, seed);
    const NetlistDelta delta = RandomDelta(base_hg, seed * 7 + 1);
    const DeltaApplication app = ApplyDelta(base_hg, delta);

    // One spec serves both sides; size it for whichever netlist is larger
    // so additive deltas stay feasible (the session layer instead pins the
    // spec to the pre-delta total and lets oversized deltas fail loudly).
    const HierarchySpec spec = FullBinaryHierarchy(
        std::max(base_hg.total_size(), app.hg->total_size()), 3, 0.2);

    HtpFlowParams params;
    params.iterations = 1;
    params.seed = seed * 31 + 7;
    params.keep_best_metric = true;
    const HtpFlowResult converged = RunHtpFlow(base_hg, spec, params);
    const WarmStartState state = MakeWarmStartState(
        base_hg, converged.best_metric, converged.partition, params.seed);

    EcoParams eco;
    eco.flow = params;
    const EcoResult warm = RunEcoRepartition(
        app, spec, converged.partition, RemapWarmMetric(state, app), eco);
    RequireValidPartition(warm.partition, spec);
    ASSERT_DOUBLE_EQ(warm.cost, PartitionCost(warm.partition, spec));
    if (warm.blocks_reused > 0) ++reused_any;

    const HtpFlowResult cold = RunHtpFlow(*app.hg, spec, params);
    EXPECT_LE(warm.cost, cold.cost * 1.05)
        << "warm " << warm.cost << " vs cold " << cold.cost
        << " (reused " << warm.blocks_reused << ", recarved "
        << warm.blocks_recarved << ", rebuild " << warm.full_rebuild << ")";
  }
  // The battery must actually exercise the stitcher. At this scale (random
  // nets with no locality, 32-64 nodes) the rebuild race legitimately wins
  // most pairs, so only a fraction of runs keep cloned blocks; the
  // dedicated ECO tests and the bench pin the large-scale reuse story.
  EXPECT_GT(reused_any, kPairs / 8);
}

// The empty-delta resume through the shared session pipeline: partitions,
// costs, and deterministic report sections must be bit-identical to the
// converged run for every knob combination.
TEST(WarmStartProperty, EmptyDeltaSessionResumeBitIdentical) {
  for (const std::uint64_t seed :
       {std::uint64_t{5}, std::uint64_t{77}, std::uint64_t{901}}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    auto hg = std::make_shared<const Hypergraph>(
        testutil::RandomConnectedHypergraph(48, 70, 4, seed));

    serve::SessionRequest cold_request;
    cold_request.netlist = hg;
    cold_request.height = 3;
    cold_request.branching = 2;
    cold_request.slack = 0.2;
    cold_request.iterations = 1;
    cold_request.threads = 1;
    cold_request.seed = seed * 13 + 3;
    cold_request.emit_warm_state = true;
    const serve::SessionResult cold = serve::RunSession(cold_request, nullptr);
    ASSERT_FALSE(cold.warm_state.empty());
    const std::string cold_partition = WritePartitionText(*cold.partition);

    std::string reference_section;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t metric_threads :
           {std::size_t{1}, std::size_t{3}}) {
        for (const std::size_t build_threads :
             {std::size_t{1}, std::size_t{4}}) {
          SCOPED_TRACE(testing::Message()
                       << "threads=" << threads
                       << " metric_threads=" << metric_threads
                       << " build_threads=" << build_threads);
          serve::SessionRequest warm_request = cold_request;
          warm_request.emit_warm_state = false;
          warm_request.warm_text = cold.warm_state;
          warm_request.threads = threads;
          warm_request.metric_threads = metric_threads;
          warm_request.build_threads = build_threads;
          warm_request.collect_report = true;
          // Counters and the journal are process-global and cumulative;
          // reset so each report covers exactly this run.
          obs::ResetAll();
          obs::DrainEvents();
          const serve::SessionResult warm =
              serve::RunSession(warm_request, nullptr);

          EXPECT_TRUE(warm.eco);
          EXPECT_EQ(warm.warm_source, "state");
          EXPECT_FALSE(warm.eco_full_rebuild);
          EXPECT_EQ(warm.eco_warm_injections, 0u);
          ASSERT_EQ(WritePartitionText(*warm.partition), cold_partition);
          ASSERT_EQ(warm.cost, cold.cost);

          const std::string section{obs::DeterministicSection(warm.report)};
          ASSERT_FALSE(section.empty());
          if (reference_section.empty())
            reference_section = section;
          else
            ASSERT_EQ(section, reference_section);
        }
      }
    }
  }
}

// Chained ECO runs: state emitted by a warm run must itself warm-start the
// next run (the metric round-trips the flow inversion exactly).
TEST(WarmStartProperty, WarmStateChains) {
  auto hg = std::make_shared<const Hypergraph>(
      testutil::RandomConnectedHypergraph(40, 60, 4, 321));
  serve::SessionRequest request;
  request.netlist = hg;
  request.height = 3;
  request.slack = 0.2;
  request.iterations = 1;
  request.seed = 17;
  request.emit_warm_state = true;
  const serve::SessionResult first = serve::RunSession(request, nullptr);

  serve::SessionRequest second = request;
  second.warm_text = first.warm_state;
  const serve::SessionResult resumed = serve::RunSession(second, nullptr);
  ASSERT_FALSE(resumed.warm_state.empty());
  EXPECT_EQ(resumed.warm_state, first.warm_state)
      << "an empty-delta resume must re-emit the identical state";

  serve::SessionRequest third = second;
  third.warm_text = resumed.warm_state;
  third.delta_text = "htp-delta v1\nremove-net 2\n";
  const serve::SessionResult edited = serve::RunSession(third, nullptr);
  EXPECT_TRUE(edited.eco);
  EXPECT_EQ(edited.netlist->num_nets(), hg->num_nets() - 1);
  RequireValidPartition(*edited.partition, edited.spec);
}

}  // namespace
}  // namespace htp
