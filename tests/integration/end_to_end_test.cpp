// Integration tests: the complete FLOW / GFM / RFM / "+" pipelines on
// realistic (generated) circuits under the paper's experimental hierarchy.
#include <gtest/gtest.h>

#include "core/htp_flow.hpp"
#include "lp/spreading_lp.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generators.hpp"
#include "partition/gfm.hpp"
#include "partition/htp_fm.hpp"
#include "partition/random_partition.hpp"
#include "partition/rfm.hpp"
#include "test_util.hpp"

namespace htp {
namespace {

// A small Rent-style circuit shared by the pipeline tests.
Hypergraph SmallCircuit(std::uint64_t seed = 11) {
  RentCircuitParams params;
  params.num_gates = 256;
  params.num_primary_inputs = 24;
  params.seed = seed;
  return RentCircuit(params);
}

TEST(EndToEnd, FlowPipelineOnRentCircuit) {
  Hypergraph hg = SmallCircuit();
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 2;
  params.seed = 1;
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  RequireValidPartition(flow.partition, spec);
  EXPECT_GT(flow.cost, 0.0);
  for (const auto& it : flow.iterations) EXPECT_TRUE(it.metric_converged);
}

TEST(EndToEnd, AllThreeConstructorsBeatRandom) {
  Hypergraph hg = SmallCircuit(23);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  Rng rng(99);
  const double random_cost =
      PartitionCost(RandomPartition(hg, spec, rng), spec);
  HtpFlowParams fparams;
  fparams.iterations = 2;
  const double flow_cost = RunHtpFlow(hg, spec, fparams).cost;
  const double rfm_cost = PartitionCost(RunRfm(hg, spec), spec);
  const double gfm_cost = PartitionCost(RunGfm(hg, spec), spec);
  EXPECT_LT(flow_cost, random_cost);
  EXPECT_LT(rfm_cost, random_cost);
  EXPECT_LT(gfm_cost, random_cost);
}

TEST(EndToEnd, PlusVariantsImproveOrMatchTheirBases) {
  Hypergraph hg = SmallCircuit(31);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());

  HtpFlowParams fparams;
  fparams.iterations = 1;
  HtpFlowResult flow = RunHtpFlow(hg, spec, fparams);
  TreePartition rfm = RunRfm(hg, spec);
  TreePartition gfm = RunGfm(hg, spec);

  struct Case {
    TreePartition* tp;
    const char* name;
  } cases[] = {{&flow.partition, "FLOW"}, {&rfm, "RFM"}, {&gfm, "GFM"}};
  for (auto& c : cases) {
    const double before = PartitionCost(*c.tp, spec);
    const HtpFmStats stats = RefineHtpFm(*c.tp, spec);
    RequireValidPartition(*c.tp, spec);
    EXPECT_LE(stats.final_cost, before + 1e-9) << c.name;
    EXPECT_NEAR(stats.final_cost, PartitionCost(*c.tp, spec), 1e-6) << c.name;
  }
}

TEST(EndToEnd, FlowMetricCostLowerBoundsItsPartitions) {
  // Lemma 2 intuition at heuristic scale: the (feasible) spreading metric's
  // objective never exceeds the cost of the partitions built from it.
  Hypergraph hg = SmallCircuit(47);
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size());
  HtpFlowParams params;
  params.iterations = 2;
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  for (const auto& it : flow.iterations)
    EXPECT_LE(0.0, it.best_partition_cost);
  EXPECT_LE(flow.cost, PartitionCost(flow.partition, spec) + 1e-9);
}

TEST(EndToEnd, C17ThroughTheFullPipeline) {
  const BenchCircuit c17 = ParseBench(C17BenchText());
  HierarchySpec spec({{2.2, 2, 1.0}, {4.4, 2, 1.0}, {6.0, 2, 1.0}});
  HtpFlowParams params;
  params.iterations = 4;
  const HtpFlowResult flow = RunHtpFlow(c17.hg, spec, params);
  RequireValidPartition(flow.partition, spec);
  // And the exact LP lower bound is compatible.
  const SpreadingLpResult lp = SolveSpreadingLp(c17.hg, spec);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.converged);
  EXPECT_LE(lp.lower_bound, flow.cost + 1e-6);
}

TEST(EndToEnd, MultiplierCircuitPartitions) {
  Hypergraph hg = ArrayMultiplier(6);  // ~300 gates, grid structure
  const HierarchySpec spec = FullBinaryHierarchy(hg.total_size(), 3, 0.15);
  HtpFlowParams params;
  params.iterations = 1;
  const HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  RequireValidPartition(flow.partition, spec);
  TreePartition rfm = RunRfm(hg, spec);
  RequireValidPartition(rfm, spec);
}

TEST(EndToEnd, WeightedLevelsShiftTheTradeoff) {
  // With a huge w1, cutting at level 1 must be avoided: FLOW+ should find
  // partitions whose level-1 cost share is small.
  Hypergraph hg = SmallCircuit(53);
  std::vector<double> weights{1.0, 1.0, 50.0};
  const HierarchySpec spec =
      UniformHierarchy(hg.total_size(), 3, 2, 0.15, weights);
  HtpFlowParams params;
  params.iterations = 2;
  HtpFlowResult flow = RunHtpFlow(hg, spec, params);
  RefineHtpFm(flow.partition, spec);
  const std::vector<double> by_level =
      PartitionCostByLevel(flow.partition, spec);
  // Weighted level-2 cost should not dominate despite the 50x weight,
  // i.e. the optimizer actually responded to the weights: the raw number
  // of level-2 cut nets must be far below the level-0 one.
  const std::vector<std::size_t> cuts = CutNetsByLevel(flow.partition);
  EXPECT_LT(cuts[2], cuts[0]);
}

}  // namespace
}  // namespace htp
